//! Cross-crate tests of the partition-strategy layer: Gset-format
//! instances fed end-to-end through every divide strategy, the
//! refinement quality guarantee on the bench instances, and a
//! bit-identity pin of the default configuration against the
//! pre-strategy-layer pipeline.

use qaoa2_suite::prelude::*;
use qq_core::{PartitionSchedule, PartitionStrategy, RefineConfig};
use qq_graph::io::{read_gset, write_gset};
use qq_graph::{partition_with_cap, Partition};
use std::io::BufReader;

/// The instances `benches/partition_strategies.rs` sweeps — kept in
/// lockstep so the quality assertions here cover exactly what the
/// bench records.
fn bench_instances() -> Vec<(&'static str, Graph)> {
    vec![
        ("er-120", generators::erdos_renyi(120, 0.06, generators::WeightKind::Uniform, 5)),
        ("er-90w", generators::erdos_renyi(90, 0.1, generators::WeightKind::Random01, 7)),
        ("planted-100", generators::planted_partition(10, 10, 0.8, 0.03, 9)),
        ("planted-48", generators::planted_partition(6, 8, 0.9, 0.05, 11)),
    ]
}

fn strategy_cfg(strategy: PartitionStrategy, refine: RefineConfig) -> Qaoa2Config {
    Qaoa2Config {
        max_qubits: 10,
        solver: SubSolver::LocalSearch,
        coarse_solver: SubSolver::LocalSearch,
        partition: strategy,
        refine,
        parallelism: Parallelism::Sequential,
        seed: 1,
    }
}

/// Gset-format round trip, end-to-end: generated graphs leave through
/// `write_gset`, re-enter through `read_gset`, and the loaded instance
/// runs through QAOA² under every registered partition strategy. The
/// approximation ratios vs the exact optimum are recorded in
/// EXPERIMENTS.md (via `examples/gset_pipeline.rs`, which runs this
/// same pipeline on larger instances against the GW baseline).
#[test]
fn gset_roundtrip_feeds_every_partition_strategy() {
    let g = generators::erdos_renyi(24, 0.25, generators::WeightKind::Uniform, 42);
    let exact = exact_maxcut(&g);

    // out through the Gset writer, back through the Gset reader
    let mut buf = Vec::new();
    write_gset(&g, &mut buf).unwrap();
    let loaded = read_gset(BufReader::new(buf.as_slice())).unwrap();
    assert_eq!(loaded.num_nodes(), g.num_nodes());
    assert_eq!(loaded.num_edges(), g.num_edges());
    for (a, b) in g.edges().iter().zip(loaded.edges()) {
        assert_eq!((a.u, a.v), (b.u, b.v));
        assert!((a.w - b.w).abs() < 1e-12);
    }

    for strategy in PartitionStrategy::builtin() {
        let label = strategy.label().to_string();
        let res = qaoa2_solve(&loaded, &strategy_cfg(strategy, RefineConfig::full())).unwrap();
        assert_eq!(res.cut.len(), 24, "{label}");
        assert!(res.cut_value <= exact.value + 1e-9, "{label} exceeded the optimum");
        let ratio = res.cut_value / exact.value;
        assert!(ratio >= 0.85, "{label}: approximation ratio {ratio:.3} too low");
    }
}

/// The acceptance criterion of the refinement pass: with boundary
/// refinement (partition sweeps + cut polish) enabled, the mean cut
/// value on every bench instance is at least the unrefined baseline.
///
/// The per-strategy assertion on top is an *empirical pin*, not an
/// algorithmic guarantee: refinement changes the divide, so the
/// refined pipeline composes a different cut, and the polish only
/// guarantees ≥ its own composed cut. On these fixed instances/seeds
/// every cell currently improves (see EXPERIMENTS.md); if a legitimate
/// tie-break tweak ever nudges one cell below its baseline, relax the
/// per-cell check to the mean criterion rather than reverting the
/// change.
#[test]
fn refinement_never_loses_to_the_unrefined_baseline_on_bench_instances() {
    for (name, g) in bench_instances() {
        let mut mean_plain = 0.0;
        let mut mean_refined = 0.0;
        for strategy in PartitionStrategy::builtin() {
            let label = strategy.label().to_string();
            let plain = qaoa2_solve(&g, &strategy_cfg(strategy.clone(), RefineConfig::default()))
                .unwrap()
                .cut_value;
            let refined =
                qaoa2_solve(&g, &strategy_cfg(strategy, RefineConfig::full())).unwrap().cut_value;
            assert!(
                refined >= plain - 1e-9,
                "{name}/{label}: refined {refined:.3} < unrefined {plain:.3}"
            );
            mean_plain += plain;
            mean_refined += refined;
        }
        assert!(
            mean_refined >= mean_plain - 1e-9,
            "{name}: mean refined {mean_refined:.3} < mean unrefined {mean_plain:.3}"
        );
    }
}

/// The tentpole guarantee of per-instance auto-selection, exactly as
/// the bench records it: on every bench instance, in both refinement
/// modes, `Auto`'s end-to-end QAOA² cut matches or beats **every**
/// fixed strategy's. An *empirical pin* on these fixed
/// instances/seeds (auto optimizes the divide's inter-weight
/// fraction, which is a proxy — not a per-instance guarantee about
/// the final cut); it holds on the whole suite today, so a regression
/// here means the selection got worse, not that the pin was always
/// loose.
#[test]
fn auto_matches_or_beats_every_fixed_strategy_on_bench_instances() {
    for (name, g) in bench_instances() {
        for (mode, refine) in
            [("plain", RefineConfig::default()), ("refined", RefineConfig::full())]
        {
            let auto =
                qaoa2_solve(&g, &strategy_cfg(PartitionStrategy::Auto, refine)).unwrap().cut_value;
            for strategy in PartitionStrategy::builtin() {
                let label = strategy.label().to_string();
                let fixed = qaoa2_solve(&g, &strategy_cfg(strategy, refine)).unwrap().cut_value;
                assert!(auto >= fixed - 1e-9, "{name}/{mode}: auto {auto:.3} < {label} {fixed:.3}");
            }
        }
    }
}

/// Per-level schedules resolve per depth and report the resolution in
/// the level stats; auto records its per-instance choice the same way.
#[test]
fn schedules_and_auto_report_per_level_attribution() {
    let g = generators::erdos_renyi(90, 0.1, generators::WeightKind::Random01, 7);

    // multilevel on the input graph, label propagation on the coarse
    // negative-weight merge graphs below it
    let schedule = PartitionSchedule::new(
        vec![PartitionStrategy::Multilevel],
        PartitionStrategy::LabelPropagation,
    );
    let cfg = strategy_cfg(PartitionStrategy::scheduled(schedule), RefineConfig::default());
    let res = qaoa2_solve(&g, &cfg).unwrap();
    assert!(res.levels.len() >= 2, "expected a multi-level solve");
    assert_eq!(res.levels[0].strategy_requested, "multilevel");
    for level in &res.levels[1..] {
        assert_eq!(level.strategy_requested, "label-propagation");
    }
    for level in &res.levels {
        // label propagation absorbs the negative-weight coarse levels
        // that used to silently fall back to chunks — and whenever the
        // guard does fire, the effective label must say so
        if level.stall_fallback {
            assert_eq!(level.strategy_effective, "balanced-chunks");
        } else {
            assert_eq!(level.strategy_effective, level.strategy_requested);
        }
    }

    let auto_cfg = strategy_cfg(PartitionStrategy::Auto, RefineConfig::default());
    let auto_res = qaoa2_solve(&g, &auto_cfg).unwrap();
    for level in &auto_res.levels {
        assert_eq!(level.strategy_requested, "auto");
        assert_ne!(level.strategy_effective, "auto", "auto must name its concrete choice");
    }
}

/// The level report names the *effective* strategy when the
/// singleton-stall guard replaces a stalled structural divide: run
/// greedy modularity on an all-negative-weight instance — the shape
/// every coarse merge graph can take — and check the fallback is
/// attributed instead of silently credited to the stalled strategy.
#[test]
fn stall_fallback_is_attributed_in_level_stats() {
    // a negative-weight path: CNM has no positive-ΔQ merge anywhere,
    // returns singletons, and the guard must substitute chunks
    let g = Graph::from_edges(30, (0..29).map(|i| (i, i + 1, -1.0))).unwrap();
    let cfg = strategy_cfg(PartitionStrategy::GreedyModularity, RefineConfig::default());
    let res = qaoa2_solve(&g, &cfg).unwrap();
    assert!(!res.levels.is_empty());
    let first = &res.levels[0];
    assert!(first.stall_fallback, "CNM cannot stall-free divide an all-negative graph");
    assert_eq!(first.strategy_requested, "greedy-modularity");
    assert_eq!(first.strategy_effective, "balanced-chunks");
    // label propagation handles the same instance without the guard
    let lp = strategy_cfg(PartitionStrategy::LabelPropagation, RefineConfig::default());
    let lp_res = qaoa2_solve(&g, &lp).unwrap();
    assert!(!lp_res.levels[0].stall_fallback);
    assert_eq!(lp_res.levels[0].strategy_effective, "label-propagation");
}

/// Splitmix-style seed derivation, copied verbatim from the orchestrator
/// spec (DESIGN.md §10): the pin below re-implements the pre-refactor
/// pipeline and must derive identical per-(level, index) seeds.
fn mix_seed(seed: u64, level: u64, index: u64) -> u64 {
    let mut z = seed ^ (level.wrapping_mul(0x9e37_79b9_7f4a_7c15)) ^ (index << 17);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The pre-strategy-layer pipeline, reimplemented from public pieces:
/// `partition_with_cap`, the singleton-stall balanced fallback, local
/// search per sub-graph, merge, recurse. The default configuration
/// (`GreedyModularity`, refinement off) must reproduce it bit for bit.
fn legacy_solve(g: &Graph, cap: usize, seed: u64, depth: u64) -> Cut {
    if g.num_nodes() <= cap {
        return one_exchange(g, mix_seed(seed, depth, 0)).cut;
    }
    let mut partition = partition_with_cap(g, cap);
    if partition.len() >= g.num_nodes() {
        let chunks: Vec<Vec<u32>> = (0..g.num_nodes() as u32)
            .collect::<Vec<_>>()
            .chunks(cap)
            .map(<[u32]>::to_vec)
            .collect();
        partition = Partition::new(g.num_nodes(), chunks);
    }
    let local_cuts: Vec<Cut> = qq_graph::extract_subgraphs(g, &partition)
        .iter()
        .enumerate()
        .map(|(i, sub)| one_exchange(&sub.graph, mix_seed(seed, depth, i as u64)).cut)
        .collect();
    let coarse = qq_core::build_merge_graph(g, &partition, &local_cuts);
    let coarse_cut = legacy_solve(&coarse, cap, seed, depth + 1);
    qq_core::apply_flips(g, &partition, &local_cuts, &coarse_cut)
}

#[test]
fn default_strategy_reproduces_the_legacy_pipeline_bit_for_bit() {
    for (seed, n) in [(3u64, 56usize), (17, 72)] {
        let g = generators::erdos_renyi(n, 0.12, generators::WeightKind::Random01, seed * 7 + 1);
        let expected = legacy_solve(&g, 9, seed, 0);
        let cfg = Qaoa2Config {
            max_qubits: 9,
            solver: SubSolver::LocalSearch,
            coarse_solver: SubSolver::LocalSearch,
            partition: PartitionStrategy::GreedyModularity,
            refine: RefineConfig::default(),
            parallelism: Parallelism::Sequential,
            seed,
        };
        let res = qaoa2_solve(&g, &cfg).unwrap();
        assert_eq!(res.cut, expected, "seed {seed}: divide refactor changed the default cuts");
        // and the strategy layer reports coherent metrics while at it
        for level in &res.levels {
            assert_eq!(level.communities_before_refine, level.communities_after_refine);
            assert!((0.0..=1.0).contains(&level.inter_weight_fraction));
            assert!(level.balance >= 1.0 - 1e-12);
        }
    }
}

/// An external strategy plugged through the `Custom` escape hatch runs
/// the whole pipeline — and its output is revalidated, so a broken one
/// fails as a divide error instead of corrupting the merge.
#[test]
fn custom_partitioner_runs_end_to_end_and_is_validated() {
    use qq_core::{PartitionError, Partitioner};

    struct StripedChunks;
    impl Partitioner for StripedChunks {
        fn label(&self) -> &str {
            "striped-chunks"
        }
        fn partition(&self, g: &Graph, cap: usize) -> Result<Partition, PartitionError> {
            // round-robin stripes: node v joins community v % k
            let n = g.num_nodes();
            let k = n.div_ceil(cap);
            let mut communities = vec![Vec::new(); k];
            for v in 0..n as u32 {
                communities[v as usize % k].push(v);
            }
            Partition::try_new(n, communities)
        }
    }

    let g = generators::erdos_renyi(40, 0.15, generators::WeightKind::Uniform, 23);
    let cfg = strategy_cfg(PartitionStrategy::custom(StripedChunks), RefineConfig::default());
    let res = qaoa2_solve(&g, &cfg).unwrap();
    assert_eq!(res.cut.len(), 40);
    assert!(res.cut_value > 0.0);

    struct Liar;
    impl Partitioner for Liar {
        fn label(&self) -> &str {
            "liar"
        }
        fn partition(&self, g: &Graph, _cap: usize) -> Result<Partition, PartitionError> {
            // claims node 0 twice and never covers node 1
            let mut communities: Vec<Vec<u32>> =
                (0..g.num_nodes() as u32).map(|v| vec![v]).collect();
            communities[1][0] = 0;
            Ok(Partition::new_unchecked(g.num_nodes(), communities))
        }
    }
    let bad = strategy_cfg(PartitionStrategy::custom(Liar), RefineConfig::default());
    let err = qaoa2_solve(&g, &bad).unwrap_err();
    assert!(matches!(err, qq_core::Qaoa2Error::Partition(_)), "{err:?}");
}
