//! Cross-crate integration tests: the full stack, graph → partition →
//! (QAOA | GW) sub-solves → merge → global cut, against certified optima.

use qaoa2_suite::prelude::*;

#[test]
fn qaoa_vs_exact_small_graph() {
    let g = generators::erdos_renyi(12, 0.35, generators::WeightKind::Uniform, 100);
    let exact = exact_maxcut(&g);
    let cfg = QaoaConfig {
        layers: 4,
        max_iters: 200,
        objective: ObjectiveMode::Exact,
        policy: SolutionPolicy::TopK(32),
        seed: 5,
        ..QaoaConfig::default()
    };
    let res = qaoa_solve(&g, &cfg).unwrap();
    assert!(res.best.value <= exact.value + 1e-9, "heuristic exceeded certified optimum");
    assert!(
        res.best.value >= 0.8 * exact.value,
        "QAOA ratio {:.3} too low",
        res.best.value / exact.value
    );
}

#[test]
fn gw_certificate_sandwich() {
    // exact ≤ SDP bound and GW-best ≥ 0.878·exact on every seed
    for seed in 0..3 {
        let g = generators::erdos_renyi(15, 0.3, generators::WeightKind::Random01, 200 + seed);
        let exact = exact_maxcut(&g);
        let gw = goemans_williamson(&g, &GwConfig::default());
        assert!(exact.value <= gw.sdp_bound + 1e-6);
        assert!(gw.best.value >= 0.878 * exact.value);
        assert!(gw.best.value <= exact.value + 1e-9);
    }
}

#[test]
fn qaoa2_full_stack_with_quantum_and_classical_solvers() {
    let g = generators::erdos_renyi(30, 0.2, generators::WeightKind::Uniform, 7);
    let exact = exact_maxcut(&g);
    let cfg = Qaoa2Config {
        max_qubits: 8,
        solver: SubSolver::Best {
            qaoa: QaoaConfig { layers: 2, max_iters: 30, ..QaoaConfig::default() },
            gw: GwConfig::default(),
        },
        coarse_solver: SubSolver::Gw(GwConfig::default()),
        parallelism: Parallelism::Threads,
        seed: 9,
        ..Qaoa2Config::default()
    };
    let res = qaoa2_solve(&g, &cfg).unwrap();
    assert!(res.cut_value <= exact.value + 1e-9);
    // divide-and-conquer on a 30-node graph should stay close to optimal
    assert!(res.cut_value >= 0.85 * exact.value, "QAOA² ratio {:.3}", res.cut_value / exact.value);
    assert!(res.levels[0].max_subgraph <= 8);
}

#[test]
fn qaoa2_through_cluster_workflow_matches_threaded() {
    let g = generators::erdos_renyi(48, 0.15, generators::WeightKind::Random01, 31);
    let mk = |parallelism| Qaoa2Config {
        max_qubits: 10,
        solver: SubSolver::LocalSearch,
        coarse_solver: SubSolver::LocalSearch,
        parallelism,
        seed: 2,
        ..Qaoa2Config::default()
    };
    let threaded = qaoa2_solve(&g, &mk(Parallelism::Threads)).unwrap();
    let cluster = qaoa2_solve(&g, &mk(Parallelism::Cluster(3))).unwrap();
    assert_eq!(threaded.cut_value, cluster.cut_value);
    assert_eq!(threaded.cut, cluster.cut);
}

#[test]
fn blocked_engine_reproduces_qaoa_state_through_circuit_layer() {
    let g = generators::erdos_renyi(9, 0.4, generators::WeightKind::Uniform, 77);
    let model = CostModel::from_maxcut(&g);
    let params = AnsatzParams::new(vec![0.35, 0.6], vec![0.25, 0.45]);
    let circuit = Synthesizer::new(Preference::Depth).qaoa_ansatz(&model, &params);
    let flat = qq_circuit::exec::run_statevector(&circuit);
    let blocked = qq_circuit::exec::run_blocked(&circuit, 4).unwrap();
    let blocked_flat = blocked.to_statevector();
    let mut overlap = C64::ZERO;
    for (a, b) in flat.amplitudes().iter().zip(blocked_flat.amplitudes()) {
        overlap += a.conj() * *b;
    }
    assert!((overlap.abs() - 1.0).abs() < 1e-9);
    // the cost layers were communication-free; only high mixer gates paid
    assert!(blocked.stats().pair_exchanges > 0);
}

#[test]
fn shots_pipeline_matches_paper_configuration() {
    // 4096 shots, highest-amplitude extraction: the paper's exact setup
    let g = generators::erdos_renyi(10, 0.3, generators::WeightKind::Uniform, 55);
    let cfg = QaoaConfig::grid_cell(3, 0.5, 1);
    assert_eq!(cfg.shots, 4096);
    assert_eq!(cfg.max_iters, 30);
    let res = qaoa_solve(&g, &cfg).unwrap();
    let rnd = randomized_partitioning(&g, 1, 1);
    // QAOA with paper budgets must at least compete with one random cut
    assert!(res.best.value >= 0.8 * rnd.value);
}

#[test]
fn workflow_scheduler_and_coordinator_compose() {
    use qq_hpc::scheduler::{fig1_hetjob_scenario, Cluster};
    let (mono, het) = fig1_hetjob_scenario(4, 30, 6, Cluster { cpu_nodes: 6, qpus: 1 });
    let mono_idle = mono.qpu_idle_fraction().expect("cluster has a QPU");
    let het_idle = het.qpu_idle_fraction().expect("cluster has a QPU");
    assert!(het_idle <= mono_idle);

    let tasks: Vec<u64> = (0..24).collect();
    let report = master_worker(3, tasks, |_, &t| t * 2);
    assert_eq!(report.results.len(), 24);
    assert!(report.results.iter().enumerate().all(|(i, &v)| v == i as u64 * 2));
}
