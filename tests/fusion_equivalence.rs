//! Fused-executor equivalence suite.
//!
//! The fused path (`qq_circuit::fuse` + the `apply_fused_*` entry
//! points) must agree with the per-gate reference lowering on both
//! storage engines, for circuits exercising **every** `Gate` variant,
//! at every blocked chunk size class (fully chunked `0`, mid `2`, and
//! degenerate single-chunk `n`). Sweep accounting is held to the
//! fusion contract: one state sweep per diagonal run, never more
//! passes than the source gate count.

use qq_circuit::exec::{
    apply_fused_to_blocked, apply_fused_to_statevector, run_statevector_unfused,
};
use qq_circuit::{fuse, AnsatzParams, Circuit, CostModel, Gate, Preference, Synthesizer};
use qq_graph::generators;
use qq_sim::{BlockedState, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random circuit drawing uniformly over all nine gate variants.
fn random_circuit(n: usize, len: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..len {
        let q = rng.gen_range(0u32..n as u32);
        let mut r = rng.gen_range(0u32..n as u32 - 1);
        if r >= q {
            r += 1;
        }
        let t = rng.gen::<f64>() * 6.0 - 3.0;
        let gate = match rng.gen_range(0usize..9) {
            0 => Gate::H(q),
            1 => Gate::X(q),
            2 => Gate::Rx(q, t),
            3 => Gate::Ry(q, t),
            4 => Gate::Rz(q, t),
            5 => Gate::Rzz(q, r, t),
            6 => Gate::Cz(q, r),
            7 => Gate::Cnot(q, r),
            _ => Gate::GlobalPhase(t),
        };
        c.push(gate).expect("generated gates are valid");
    }
    c
}

fn assert_overlap(a: &StateVector, b: &StateVector, ctx: &str) {
    let mut overlap = qq_sim::C64::ZERO;
    for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
        overlap += x.conj() * *y;
    }
    assert!((overlap.abs() - 1.0).abs() < 1e-9, "{ctx}: overlap = {}", overlap.abs());
}

/// Maximal diagonal runs in a gate list — the sweep budget the fused
/// executor must meet (one sweep per run).
fn diagonal_runs(c: &Circuit) -> usize {
    let mut runs = 0;
    let mut in_run = false;
    for g in c.gates() {
        match (g.is_diagonal(), in_run) {
            (true, false) => {
                runs += 1;
                in_run = true;
            }
            (false, _) => in_run = false,
            _ => {}
        }
    }
    runs
}

#[test]
fn randomized_circuits_fused_matches_unfused_flat_and_blocked() {
    let n = 7;
    for seed in 0..12u64 {
        let c = random_circuit(n, 60, 0xf05e ^ seed);
        let reference = run_statevector_unfused(&c);
        let program = fuse(&c);

        let mut flat = StateVector::zero_state(n);
        let stats = apply_fused_to_statevector(&program, &mut flat);
        assert_overlap(&reference, &flat, &format!("flat seed {seed}"));
        assert!(stats.diag_blocks <= diagonal_runs(&c), "seed {seed}");

        for chunk_qubits in [0, 2, n] {
            let mut blk = BlockedState::zero_state(n, chunk_qubits).unwrap();
            let bstats = apply_fused_to_blocked(&program, &mut blk).unwrap();
            assert_overlap(
                &reference,
                &blk.to_statevector(),
                &format!("blocked chunk {chunk_qubits} seed {seed}"),
            );
            assert_eq!(bstats.diag_blocks, stats.diag_blocks, "seed {seed}");
        }
    }
}

#[test]
fn every_gate_variant_covered_by_generator() {
    // guard the generator itself: a refactor that drops a variant would
    // silently weaken the equivalence suite
    let c = random_circuit(7, 400, 99);
    let mut names: Vec<&str> = c.gates().iter().map(|g| g.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names, vec!["cx", "cz", "gphase", "h", "rx", "ry", "rz", "rzz", "x"]);
}

#[test]
fn fused_sweep_accounting_meets_contract() {
    // the QAOA ansatz is the hot path the fusion targets: p diagonal
    // runs (cost layers) and p+1 walls around them
    let g = generators::erdos_renyi(10, 0.5, generators::WeightKind::Random01, 8);
    let model = CostModel::from_maxcut(&g);
    let p = 3;
    let params = AnsatzParams::new(vec![0.3, 0.8, 0.4], vec![0.2, 0.6, 0.1]);
    let circuit = Synthesizer::new(Preference::Depth).qaoa_ansatz(&model, &params);
    let program = fuse(&circuit);
    let mut s = StateVector::zero_state(circuit.num_qubits());
    let stats = apply_fused_to_statevector(&program, &mut s);

    // one sweep per diagonal run, exactly
    assert_eq!(stats.diag_blocks, diagonal_runs(&circuit));
    assert_eq!(stats.diag_blocks, p);
    // every diagonal source gate was folded
    let diag_gates = circuit.gates().iter().filter(|g| g.is_diagonal()).count();
    assert_eq!(stats.diag_gates, diag_gates);
    // the fused execution makes strictly fewer passes than gates
    assert_eq!(stats.source_gates, circuit.gates().len());
    assert!(
        stats.sweeps < stats.source_gates / 4,
        "sweeps {} vs source gates {}",
        stats.sweeps,
        stats.source_gates
    );
    // nothing in the ansatz needs the per-gate fallback
    assert_eq!(stats.unfused_gates, 0);
}

#[test]
fn fused_path_is_bit_identical_across_chunkings() {
    // the fused kernels are pure per-amplitude functions and the 1q
    // kernels share one arithmetic expression, so on Cnot-free circuits
    // (Cnot lowers differently per engine) every chunking produces
    // identical bits — not merely equivalent states
    let n = 7;
    let raw = random_circuit(n, 50, 4242);
    let mut c = Circuit::new(n);
    for &g in raw.gates() {
        let g = match g {
            Gate::Cnot(a, b) => Gate::Rzz(a, b, 0.37),
            other => other,
        };
        c.push(g).unwrap();
    }
    let program = fuse(&c);
    let mut reference = StateVector::zero_state(n);
    apply_fused_to_statevector(&program, &mut reference);
    for chunk_qubits in [0, 2, n] {
        let mut blk = BlockedState::zero_state(n, chunk_qubits).unwrap();
        apply_fused_to_blocked(&program, &mut blk).unwrap();
        let blk_flat = blk.to_statevector();
        assert_eq!(reference.amplitudes(), blk_flat.amplitudes(), "chunk {chunk_qubits}");
    }
}
