//! Property-based tests over the core invariants.
//!
//! Originally written against `proptest`; this build environment cannot
//! fetch crates.io dependencies, so the same properties run under a small
//! seeded-case harness: every property is checked over `CASES` graphs and
//! parameter draws derived deterministically from the case index, so
//! failures reproduce exactly.

use qaoa2_suite::prelude::*;
use qq_core::PartitionStrategy;
use qq_graph::{extract_subgraphs, inter_weight_fraction, partition_with_cap, Partitioner};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

/// One deterministic RNG per (property, case) pair.
fn case_rng(property: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(property.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ case)
}

/// The `arb_graph` strategy: 2–39 nodes, edge fraction 0.05–0.8,
/// `U[0,1]` weights.
fn arb_graph(rng: &mut StdRng) -> Graph {
    let n = rng.gen_range(2usize..40);
    let p = 0.05 + rng.gen::<f64>() * 0.75;
    generators::erdos_renyi(n, p, generators::WeightKind::Random01, rng.gen::<u64>())
}

#[test]
fn cut_value_invariant_under_global_flip() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let g = arb_graph(&mut rng);
        let n = g.num_nodes();
        let mut cut = Cut::from_basis_index(n.min(64), rng.gen::<u64>());
        if cut.len() != n {
            continue;
        }
        let before = cut.value(&g);
        cut.flip_all();
        assert!((cut.value(&g) - before).abs() < 1e-9, "case {case}");
    }
}

#[test]
fn flip_gain_consistent_with_value() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let g = arb_graph(&mut rng);
        let n = g.num_nodes();
        let v = rng.gen_range(0u32..40);
        if v as usize >= n || n > 64 {
            continue;
        }
        let mut cut = Cut::from_basis_index(n, rng.gen::<u64>());
        let before = cut.value(&g);
        let gain = cut.flip_gain(&g, v);
        cut.flip_node(v);
        assert!((cut.value(&g) - before - gain).abs() < 1e-9, "case {case}");
    }
}

#[test]
fn partition_is_disjoint_cover_with_cap() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let g = arb_graph(&mut rng);
        let cap = rng.gen_range(2usize..12);
        let p = partition_with_cap(&g, cap);
        assert!(p.is_valid(), "case {case}");
        assert!(p.max_community_size() <= cap, "case {case}");
        let total: usize = p.communities().iter().map(Vec::len).sum();
        assert_eq!(total, g.num_nodes(), "case {case}");
    }
}

/// A graph whose tail nodes are isolated (degree 0) and whose head is
/// split into several small components: the divide strategies must
/// neither drop nodes nor violate the cap when BFS frontiers and
/// matchings run dry (the shape that exposes region-growing bugs).
fn with_isolated_nodes(rng: &mut StdRng) -> Graph {
    let connected = rng.gen_range(4usize..16);
    let isolated = rng.gen_range(1usize..10);
    let n = connected + isolated;
    let mut g = Graph::new(n);
    // chain the connected head into ~3-node components: 0-1-2, 3-4-5, …
    for start in (0..connected.saturating_sub(1)).step_by(3) {
        for v in start..(start + 2).min(connected - 1) {
            g.add_edge(v as u32, v as u32 + 1, 0.5 + rng.gen::<f64>()).unwrap();
        }
    }
    g
}

/// One graph from every generator family, seeded per case: the divide
/// strategies must hold their invariants on community-structured,
/// structure-free, dense, sparse, multi-component, isolated-node, and
/// degenerate inputs alike.
fn generator_zoo(rng: &mut StdRng) -> Vec<Graph> {
    vec![
        arb_graph(rng),
        generators::erdos_renyi(
            rng.gen_range(10usize..50),
            0.02 + rng.gen::<f64>() * 0.2,
            generators::WeightKind::Uniform,
            rng.gen(),
        ),
        generators::planted_partition(
            rng.gen_range(2usize..5),
            rng.gen_range(3usize..8),
            0.9,
            0.05,
            rng.gen(),
        ),
        generators::ring(rng.gen_range(3usize..30)),
        generators::complete(rng.gen_range(2usize..16)),
        generators::barbell(rng.gen_range(2usize..9)),
        generators::star(rng.gen_range(2usize..20)),
        with_isolated_nodes(rng),
        Graph::new(rng.gen_range(1usize..6)), // fully edgeless
        // the large-path generators at test scale: geometric-skip ER,
        // preferential-attachment hubs, bipartite lattice
        generators::erdos_renyi_fast(
            rng.gen_range(10usize..60),
            0.02 + rng.gen::<f64>() * 0.3,
            generators::WeightKind::Random01,
            rng.gen(),
        ),
        generators::barabasi_albert(rng.gen_range(6usize..40), rng.gen_range(1usize..4), rng.gen()),
        generators::grid_2d(rng.gen_range(1usize..7), rng.gen_range(1usize..7)),
    ]
}

/// Every registered strategy — the fixed built-ins plus per-instance
/// `Auto` — for the exhaustive coverage loops below.
fn all_strategies() -> Vec<PartitionStrategy> {
    let mut all = PartitionStrategy::builtin();
    all.push(PartitionStrategy::Auto);
    all
}

#[test]
fn every_partition_strategy_is_a_valid_capped_cover() {
    // every registered strategy × every generator family × caps × seeds
    for case in 0..16 {
        let mut rng = case_rng(11, case);
        let cap = rng.gen_range(2usize..12);
        for g in generator_zoo(&mut rng) {
            for strategy in all_strategies() {
                let p = strategy
                    .to_partitioner()
                    .partition(&g, cap)
                    .unwrap_or_else(|e| panic!("{} case {case}: {e}", strategy.label()));
                assert!(p.is_valid(), "{} case {case}", strategy.label());
                assert!(
                    p.max_community_size() <= cap,
                    "{} case {case}: {} > {cap}",
                    strategy.label(),
                    p.max_community_size()
                );
                let covered: usize = p.communities().iter().map(Vec::len).sum();
                assert_eq!(covered, g.num_nodes(), "{} case {case}", strategy.label());
            }
        }
    }
}

#[test]
fn bfs_grow_covers_isolated_nodes_and_holds_the_cap() {
    // the region-growing strategy on graphs where BFS frontiers run dry:
    // every isolated node and every small component must land in exactly
    // one community, with the cap intact (no node dropped on reseed)
    use qq_graph::BfsGrow;
    for case in 0..32 {
        let mut rng = case_rng(13, case);
        let g = with_isolated_nodes(&mut rng);
        let cap = rng.gen_range(2usize..8);
        let p = BfsGrow.partition(&g, cap).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert!(p.is_valid(), "case {case}: dropped or duplicated a node");
        assert!(p.max_community_size() <= cap, "case {case}");
        let covered: usize = p.communities().iter().map(Vec::len).sum();
        assert_eq!(covered, g.num_nodes(), "case {case}: node lost on an empty frontier");
        // isolated nodes have no BFS frontier at all: each one must
        // still end up covered — as a singleton community or a reseed
        for v in 0..g.num_nodes() as u32 {
            if g.degree(v) == 0 {
                assert!(
                    p.communities().iter().any(|c| c.contains(&v)),
                    "case {case}: isolated node {v} dropped"
                );
            }
        }
    }
}

#[test]
fn refinement_never_increases_inter_weight_nor_violates_cap() {
    use qq_graph::{refine_partition_with, RefineOptions};
    for case in 0..16 {
        let mut rng = case_rng(12, case);
        let cap = rng.gen_range(2usize..12);
        let passes = rng.gen_range(1usize..5);
        let swap_moves = case % 2 == 1; // alternate migration-only and FM-swap sweeps
        for g in generator_zoo(&mut rng) {
            for strategy in all_strategies() {
                let base = strategy.to_partitioner().partition(&g, cap).unwrap();
                let out = refine_partition_with(
                    &g,
                    &base,
                    cap,
                    RefineOptions { max_passes: passes, swap_moves },
                );
                assert!(
                    out.inter_weight_after <= out.inter_weight_before + 1e-9,
                    "{} case {case}: {} > {}",
                    strategy.label(),
                    out.inter_weight_after,
                    out.inter_weight_before
                );
                assert!(out.partition.is_valid(), "{} case {case}", strategy.label());
                assert!(
                    out.partition.max_community_size() <= cap,
                    "{} case {case}",
                    strategy.label()
                );
                // the abs-weight fraction metric also never rises on
                // non-negative-weight inputs (all generators here)
                assert!(
                    inter_weight_fraction(&g, &out.partition)
                        <= inter_weight_fraction(&g, &base) + 1e-9,
                    "{} case {case}",
                    strategy.label()
                );
            }
        }
    }
}

#[test]
fn subgraph_edges_never_cross_communities() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let g = arb_graph(&mut rng);
        let cap = rng.gen_range(2usize..10);
        let p = partition_with_cap(&g, cap);
        let subs = extract_subgraphs(&g, &p);
        let assignment = p.assignment();
        for (c, sub) in subs.iter().enumerate() {
            for e in sub.graph.edges() {
                let gu = sub.nodes[e.u as usize];
                let gv = sub.nodes[e.v as usize];
                assert_eq!(assignment[gu as usize], c as u32, "case {case}");
                assert_eq!(assignment[gv as usize], c as u32, "case {case}");
            }
        }
    }
}

#[test]
fn merge_identity_holds_for_arbitrary_local_cuts() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let g = arb_graph(&mut rng);
        let cap = rng.gen_range(2usize..10);
        let seed = rng.gen::<u64>();
        // compose(local cuts, coarse cut) evaluated directly must equal the
        // intra + coarse-decomposed inter value — the core QAOA² identity.
        let partition = partition_with_cap(&g, cap);
        let local_cuts: Vec<Cut> = partition
            .communities()
            .iter()
            .enumerate()
            .map(|(i, m)| Cut::from_basis_index(m.len(), seed.rotate_left(i as u32)))
            .collect();
        let coarse = qq_core::build_merge_graph(&g, &partition, &local_cuts);
        let coarse_cut = Cut::from_basis_index(partition.len().min(64), seed / 3);
        if coarse_cut.len() != partition.len() {
            continue;
        }
        let global = qq_core::apply_flips(&g, &partition, &local_cuts, &coarse_cut);

        // direct evaluation
        let direct = global.value(&g);
        // decomposition
        let mut intra = 0.0;
        for (c, members) in partition.communities().iter().enumerate() {
            let (sub, _) = g.induced_subgraph(members);
            intra += local_cuts[c].value(&sub);
        }
        let assignment = partition.assignment();
        let w_inter: f64 = g
            .edges()
            .iter()
            .filter(|e| assignment[e.u as usize] != assignment[e.v as usize])
            .map(|e| e.w)
            .sum();
        let signed: f64 =
            coarse.edges().iter().map(|e| e.w * coarse_cut.spin(e.u) * coarse_cut.spin(e.v)).sum();
        assert!((direct - (intra + (w_inter - signed) / 2.0)).abs() < 1e-6, "case {case}");
    }
}

#[test]
fn statevector_norm_preserved_by_random_circuits() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let n = rng.gen_range(2usize..8);
        let num_ops = rng.gen_range(1usize..40);
        let mut s = StateVector::plus_state(n);
        for _ in 0..num_ops {
            let a = rng.gen_range(0usize..8) % n;
            let b = rng.gen_range(0usize..8) % n;
            let theta = -3.0 + rng.gen::<f64>() * 6.0;
            s.rx(a, theta);
            s.rz(b, -theta);
            if a != b {
                s.rzz(a, b, theta * 0.7);
            }
        }
        assert!((s.norm_sqr() - 1.0).abs() < 1e-8, "case {case}");
    }
}

#[test]
fn sampling_conserves_shots_and_range() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let n = rng.gen_range(1usize..8);
        let shots = rng.gen_range(1usize..4096);
        let s = StateVector::plus_state(n);
        let counts = sample_counts(s.amplitudes(), shots, rng.gen::<u64>());
        let total: u32 = counts.iter().map(|&(_, c)| c).sum();
        assert_eq!(total as usize, shots, "case {case}");
        assert!(counts.iter().all(|&(z, _)| z < (1u64 << n)), "case {case}");
    }
}

#[test]
fn exact_dominates_every_heuristic() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        let g = arb_graph(&mut rng);
        let seed = rng.gen::<u64>();
        if g.num_nodes() > 18 {
            continue;
        }
        let exact = exact_maxcut(&g);
        let ls = one_exchange(&g, seed);
        let rnd = randomized_partitioning(&g, 4, seed);
        assert!(exact.value >= ls.value - 1e-9, "case {case}");
        assert!(exact.value >= rnd.value - 1e-9, "case {case}");
    }
}

#[test]
fn gw_bound_dominates_rounding() {
    for case in 0..CASES {
        let mut rng = case_rng(9, case);
        let g = arb_graph(&mut rng);
        let seed = rng.gen::<u64>();
        if g.num_nodes() > 24 {
            continue;
        }
        // non-negative weights: rounding can never beat the SDP objective
        let gw = goemans_williamson(&g, &GwConfig { seed, ..GwConfig::default() });
        assert!(gw.best.value <= gw.sdp_bound + 1e-6, "case {case}");
        assert!(gw.mean_value <= gw.best.value + 1e-12, "case {case}");
        // the best-value check above is enforced by construction in
        // `goemans_williamson`; compare against the independently computed
        // optimum so under-convergence regressions stay detectable
        if g.num_nodes() <= 16 {
            let exact = exact_maxcut(&g);
            assert!(
                gw.sdp_bound >= exact.value - 1e-6,
                "case {case}: bound {} < optimum {}",
                gw.sdp_bound,
                exact.value
            );
        }
    }
}

#[test]
fn communicator_reduce_matches_sequential_fold() {
    for case in 0..16 {
        let mut rng = case_rng(10, case);
        let n = rng.gen_range(1usize..6);
        let vals: Vec<i64> = (0..n).map(|_| rng.gen_range(0i64..1000)).collect();
        let expected: i64 = vals.iter().sum();
        let outs = run_ranks(n, |mut comm: Communicator<i64>| {
            let v = vals[comm.rank()];
            comm.reduce(0, v, |a, b| a + b)
        });
        assert_eq!(outs[0], Some(expected), "case {case}");
    }
}

/// Independent reference adjacency: Vec-of-Vecs accumulated straight
/// from the edge list, per-node sorted by neighbor id — the layout the
/// CSR arrays must reproduce exactly, built without touching any CSR
/// code path.
fn reference_adjacency(g: &Graph) -> Vec<Vec<(u32, f64)>> {
    let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); g.num_nodes()];
    for e in g.edges() {
        adj[e.u as usize].push((e.v, e.w));
        adj[e.v as usize].push((e.u, e.w));
    }
    for list in &mut adj {
        list.sort_by_key(|&(u, _)| u);
    }
    adj
}

#[test]
fn csr_adjacency_matches_reference_build_over_the_zoo() {
    // every generator family: the CSR neighbor slices, degrees, and
    // edge lookups must agree bit-for-bit with the reference build
    for case in 0..16 {
        let mut rng = case_rng(21, case);
        for g in generator_zoo(&mut rng) {
            let reference = reference_adjacency(&g);
            let mut degree_sum = 0usize;
            for v in 0..g.num_nodes() as u32 {
                assert_eq!(
                    g.neighbors(v),
                    reference[v as usize].as_slice(),
                    "case {case} node {v}"
                );
                assert_eq!(g.degree(v), reference[v as usize].len(), "case {case} node {v}");
                degree_sum += g.degree(v);
            }
            assert_eq!(degree_sum, 2 * g.num_edges(), "case {case}: handshake identity");
            for e in g.edges() {
                assert!(e.u < e.v, "case {case}: canonical orientation");
                assert_eq!(g.edge_weight(e.u, e.v), Some(e.w), "case {case}");
                assert_eq!(g.edge_weight(e.v, e.u), Some(e.w), "case {case}");
            }
        }
    }
}

#[test]
fn snapshot_label_propagation_is_bit_identical_pooled_vs_sequential() {
    // the two-phase (snapshot-score, sequential-apply) label propagation
    // the large-instance gate switches to: running it on the worker pool
    // must produce the *same Partition, bit for bit*, as running it
    // forced inline through `sequential_scope` — over every generator
    // family, including multi-component, isolated-node, and edgeless
    // shapes where proposal ranges are degenerate
    use qq_graph::partitioner::label_propagation_snapshot;
    for case in 0..16 {
        let mut rng = case_rng(23, case);
        let cap = rng.gen_range(2usize..12);
        for g in generator_zoo(&mut rng) {
            let pooled = label_propagation_snapshot(&g, cap).unwrap();
            let inline = rayon::sequential_scope(|| label_propagation_snapshot(&g, cap).unwrap());
            assert_eq!(pooled, inline, "case {case} cap {cap}: snapshot LP drifted");
            assert!(pooled.is_valid(), "case {case}");
            assert!(pooled.max_community_size() <= cap, "case {case}");
        }
    }
}

#[test]
fn snapshot_refinement_is_bit_identical_pooled_vs_sequential() {
    // same contract for the score/apply refinement sweep: identical
    // partition, identical move/swap counts, and bit-identical f64
    // inter-weight accounting whether the gain flagging runs pooled or
    // inline — for both migration-only and FM-swap configurations
    use qq_graph::refine::refine_partition_snapshot_with;
    use qq_graph::RefineOptions;
    for case in 0..16 {
        let mut rng = case_rng(24, case);
        let cap = rng.gen_range(2usize..12);
        let passes = rng.gen_range(1usize..4);
        for g in generator_zoo(&mut rng) {
            let base = partition_with_cap(&g, cap);
            for swap_moves in [false, true] {
                let opts = RefineOptions { max_passes: passes, swap_moves };
                let pooled = refine_partition_snapshot_with(&g, &base, cap, opts);
                let inline = rayon::sequential_scope(|| {
                    refine_partition_snapshot_with(&g, &base, cap, opts)
                });
                assert_eq!(
                    pooled.partition, inline.partition,
                    "case {case} swaps={swap_moves}: refined partition drifted"
                );
                assert_eq!(pooled.moves, inline.moves, "case {case} swaps={swap_moves}");
                assert_eq!(pooled.swaps, inline.swaps, "case {case} swaps={swap_moves}");
                assert_eq!(
                    pooled.inter_weight_before.to_bits(),
                    inline.inter_weight_before.to_bits(),
                    "case {case} swaps={swap_moves}"
                );
                assert_eq!(
                    pooled.inter_weight_after.to_bits(),
                    inline.inter_weight_after.to_bits(),
                    "case {case} swaps={swap_moves}"
                );
                assert!(
                    pooled.inter_weight_after <= pooled.inter_weight_before + 1e-9,
                    "case {case} swaps={swap_moves}"
                );
                assert!(pooled.partition.max_community_size() <= cap, "case {case}");
            }
        }
    }
}

#[test]
fn builder_and_incremental_builds_agree_end_to_end() {
    // the same edge stream through GraphBuilder::finalize and through
    // the compat Graph::add_edge must yield identical graphs and
    // bit-identical downstream cuts
    for case in 0..16 {
        let mut rng = case_rng(22, case);
        for g in generator_zoo(&mut rng) {
            let mut incremental = Graph::new(g.num_nodes());
            for e in g.edges() {
                incremental.add_edge(e.u, e.v, e.w).unwrap();
            }
            assert_eq!(g.num_edges(), incremental.num_edges(), "case {case}");
            for v in 0..g.num_nodes() as u32 {
                assert_eq!(g.neighbors(v), incremental.neighbors(v), "case {case} node {v}");
            }
            let a = one_exchange(&g, 7 + case);
            let b = one_exchange(&incremental, 7 + case);
            assert_eq!(
                a.value.to_bits(),
                b.value.to_bits(),
                "case {case}: cut values must be bit-identical"
            );
            assert_eq!(a.cut, b.cut, "case {case}: cut assignments must match");
        }
    }
}
