//! Property-based tests over the core invariants (proptest).

use proptest::prelude::*;
use qaoa2_suite::prelude::*;
use qq_graph::{extract_subgraphs, partition_with_cap};

/// Strategy: a random graph as (node count, edge fraction seedable).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40, 0.05f64..0.8, any::<u64>()).prop_map(|(n, p, seed)| {
        generators::erdos_renyi(n, p, generators::WeightKind::Random01, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cut_value_invariant_under_global_flip(g in arb_graph(), bits in any::<u64>()) {
        let n = g.num_nodes();
        let mut cut = Cut::from_basis_index(n.min(64), bits);
        if cut.len() != n { return Ok(()); }
        let before = cut.value(&g);
        cut.flip_all();
        prop_assert!((cut.value(&g) - before).abs() < 1e-9);
    }

    #[test]
    fn flip_gain_consistent_with_value(g in arb_graph(), bits in any::<u64>(), v in 0u32..40) {
        let n = g.num_nodes();
        if v as usize >= n || n > 64 { return Ok(()); }
        let mut cut = Cut::from_basis_index(n, bits);
        let before = cut.value(&g);
        let gain = cut.flip_gain(&g, v);
        cut.flip_node(v);
        prop_assert!((cut.value(&g) - before - gain).abs() < 1e-9);
    }

    #[test]
    fn partition_is_disjoint_cover_with_cap(g in arb_graph(), cap in 2usize..12) {
        let p = partition_with_cap(&g, cap);
        prop_assert!(p.is_valid());
        prop_assert!(p.max_community_size() <= cap);
        let total: usize = p.communities().iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.num_nodes());
    }

    #[test]
    fn subgraph_edges_never_cross_communities(g in arb_graph(), cap in 2usize..10) {
        let p = partition_with_cap(&g, cap);
        let subs = extract_subgraphs(&g, &p);
        let assignment = p.assignment();
        for (c, sub) in subs.iter().enumerate() {
            for e in sub.graph.edges() {
                let gu = sub.nodes[e.u as usize];
                let gv = sub.nodes[e.v as usize];
                prop_assert_eq!(assignment[gu as usize], c as u32);
                prop_assert_eq!(assignment[gv as usize], c as u32);
            }
        }
    }

    #[test]
    fn merge_identity_holds_for_arbitrary_local_cuts(
        g in arb_graph(),
        cap in 2usize..10,
        seed in any::<u64>(),
    ) {
        // compose(local cuts, coarse cut) evaluated directly must equal the
        // intra + coarse-decomposed inter value — the core QAOA² identity.
        let partition = partition_with_cap(&g, cap);
        let local_cuts: Vec<Cut> = partition
            .communities()
            .iter()
            .enumerate()
            .map(|(i, m)| Cut::from_basis_index(m.len(), seed.rotate_left(i as u32)))
            .collect();
        let coarse = qq_core::build_merge_graph(&g, &partition, &local_cuts);
        let coarse_cut = Cut::from_basis_index(partition.len().min(64), seed / 3);
        if coarse_cut.len() != partition.len() { return Ok(()); }
        let global = qq_core::apply_flips(&g, &partition, &local_cuts, &coarse_cut);

        // direct evaluation
        let direct = global.value(&g);
        // decomposition
        let mut intra = 0.0;
        for (c, members) in partition.communities().iter().enumerate() {
            let (sub, _) = g.induced_subgraph(members);
            intra += local_cuts[c].value(&sub);
        }
        let assignment = partition.assignment();
        let w_inter: f64 = g
            .edges()
            .iter()
            .filter(|e| assignment[e.u as usize] != assignment[e.v as usize])
            .map(|e| e.w)
            .sum();
        let signed: f64 = coarse
            .edges()
            .iter()
            .map(|e| e.w * coarse_cut.spin(e.u) * coarse_cut.spin(e.v))
            .sum();
        prop_assert!((direct - (intra + (w_inter - signed) / 2.0)).abs() < 1e-6);
    }

    #[test]
    fn statevector_norm_preserved_by_random_circuits(
        n in 2usize..8,
        ops in prop::collection::vec((0usize..8, 0usize..8, -3.0f64..3.0), 1..40),
    ) {
        let mut s = StateVector::plus_state(n);
        for (a, b, theta) in ops {
            let (a, b) = (a % n, b % n);
            s.rx(a, theta);
            s.rz(b, -theta);
            if a != b {
                s.rzz(a, b, theta * 0.7);
            }
        }
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn sampling_conserves_shots_and_range(
        n in 1usize..8,
        shots in 1usize..4096,
        seed in any::<u64>(),
    ) {
        let s = StateVector::plus_state(n);
        let counts = sample_counts(s.amplitudes(), shots, seed);
        let total: u32 = counts.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total as usize, shots);
        prop_assert!(counts.iter().all(|&(z, _)| z < (1u64 << n)));
    }

    #[test]
    fn exact_dominates_every_heuristic(g in arb_graph(), seed in any::<u64>()) {
        if g.num_nodes() > 18 { return Ok(()); }
        let exact = exact_maxcut(&g);
        let ls = one_exchange(&g, seed);
        let rnd = randomized_partitioning(&g, 4, seed);
        prop_assert!(exact.value >= ls.value - 1e-9);
        prop_assert!(exact.value >= rnd.value - 1e-9);
    }

    #[test]
    fn gw_bound_dominates_rounding(g in arb_graph(), seed in any::<u64>()) {
        if g.num_nodes() > 24 { return Ok(()); }
        // non-negative weights: rounding can never beat the SDP objective
        let gw = goemans_williamson(&g, &GwConfig { seed, ..GwConfig::default() });
        prop_assert!(gw.best.value <= gw.sdp_bound + 1e-6);
        prop_assert!(gw.mean_value <= gw.best.value + 1e-12);
    }

    #[test]
    fn communicator_reduce_matches_sequential_fold(vals in prop::collection::vec(0i64..1000, 1..6)) {
        let n = vals.len();
        let expected: i64 = vals.iter().sum();
        let outs = run_ranks(n, |mut comm: Communicator<i64>| {
            let v = vals[comm.rank()];
            comm.reduce(0, v, |a, b| a + b)
        });
        prop_assert_eq!(outs[0], Some(expected));
    }
}
