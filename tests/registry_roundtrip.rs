//! Every registered `MaxCutSolver` backend must round-trip through the
//! registry: label lookup → instantiation → solve → valid cut.

use qaoa2_suite::prelude::*;

/// 10-node instance sized so even `exact` and the quantum backends are
/// fast.
fn test_graph() -> Graph {
    generators::erdos_renyi(10, 0.4, generators::WeightKind::Random01, 77)
}

#[test]
fn every_registered_backend_roundtrips() {
    let registry = SolverRegistry::with_default_backends();
    let g = test_graph();
    let exact = exact_maxcut(&g).value;
    assert!(!registry.is_empty());

    for label in registry.labels() {
        // label lookup → instance, and the instance agrees on its label
        let solver = registry
            .create(label)
            .unwrap_or_else(|| panic!("registry lists '{label}' but cannot create it"));
        assert_eq!(solver.label(), label, "factory under '{label}' built a different backend");

        // capability envelope admits the 10-node instance
        if let Some(max_nodes) = solver.capabilities().max_nodes {
            assert!(max_nodes >= 10, "'{label}' cannot even take 10 nodes");
        }

        // solve → structurally valid cut with a consistent value
        let r = solver.solve(&g, 42).unwrap_or_else(|e| panic!("'{label}' failed: {e}"));
        assert_eq!(r.cut.len(), g.num_nodes(), "'{label}' returned a wrong-width cut");
        assert!(
            (r.cut.value(&g) - r.value).abs() < 1e-9,
            "'{label}' reported value {} but the cut evaluates to {}",
            r.value,
            r.cut.value(&g)
        );
        assert!(r.value <= exact + 1e-9, "'{label}' beat the certified optimum");
        assert!(r.value >= 0.0, "'{label}' returned a negative cut value");
    }
}

#[test]
fn registry_solve_matches_direct_backend_solve() {
    let registry = SolverRegistry::with_default_backends();
    let g = test_graph();
    for label in ["local-search", "exact", "random"] {
        let via_registry = registry.solve(label, &g, 7).unwrap();
        let direct = registry.create(label).unwrap().solve(&g, 7).unwrap();
        assert_eq!(via_registry.cut, direct.cut, "'{label}' not deterministic per seed");
    }
}

#[test]
fn registered_custom_backend_roundtrips_too() {
    struct OddEven;
    impl MaxCutSolver for OddEven {
        fn label(&self) -> &str {
            "odd-even"
        }
        fn solve(&self, g: &Graph, _seed: u64) -> Result<CutResult, SolverError> {
            Ok(CutResult::new(Cut::from_fn(g.num_nodes(), |v| v % 2 == 0), g))
        }
    }

    let mut registry = SolverRegistry::with_default_backends();
    registry.register("odd-even", || Box::new(OddEven));
    let g = test_graph();
    let r = registry.solve("odd-even", &g, 0).unwrap();
    assert_eq!(r.cut.len(), 10);
    assert!(registry.labels().contains(&"odd-even"));
}
