//! Cross-thread-count determinism suite.
//!
//! The vendored rayon promises bit-identical floating-point results at
//! any `RAYON_NUM_THREADS` (fixed power-of-two split tree; see
//! `crates/vendor/rayon/src/lib.rs` and DESIGN.md §10). This suite holds
//! it to that: a battery spanning the simulator (flat + blocked), the
//! QAOA landscape evaluation, the full QAOA² driver in `Threads` mode
//! (including one end-to-end run per partition strategy with
//! refinement on, plus per-instance `Auto` selection and a per-level
//! schedule — strategy *choices* fold in alongside the cuts), the
//! large-gated parallel divide (a 51k-node graph through the parallel
//! CSR finalize, snapshot-sweep label propagation, two-phase matching,
//! and score/apply refinement — effective label, community structure,
//! and a derived cut all fold in), and
//! property-harness-style seeded draws is folded
//! into one digest of exact `f64` bit patterns, and the digest is
//! compared across separate processes pinned to 1, 2, and N worker
//! threads.
//!
//! (Separate processes because the pool is global and sized once per
//! process — the only honest way to vary the thread count.)

use qaoa2_suite::prelude::*;
use qq_circuit::{AnsatzParams, CostModel};
use qq_qaoa::executor::build_state_fused;
use qq_qaoa::CostTable;
use qq_sim::BlockedState;

/// FNV-1a over 64-bit words; folds exact bit patterns, so any
/// thread-count-dependent reduction order changes the digest.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        self.0 ^= w;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn f64(&mut self, x: f64) {
        self.word(x.to_bits());
    }

    /// Fold a label (e.g. the strategy a level actually used) as raw
    /// bytes: any platform- or thread-count-dependent strategy choice
    /// changes the digest even when the cut value happens to agree.
    fn label(&mut self, s: &str) {
        self.word(s.len() as u64);
        for b in s.as_bytes() {
            self.word(*b as u64);
        }
    }
}

/// Deterministic quantum-class member for the heterogeneous engine leg
/// of the battery: local search behind a capped QPU envelope.
struct CappedQuantumLocalSearch {
    cap: usize,
}

impl qq_core::MaxCutSolver for CappedQuantumLocalSearch {
    fn label(&self) -> &str {
        "toy-qpu"
    }

    fn solve(&self, g: &Graph, seed: u64) -> Result<qq_graph::CutResult, qq_core::SolverError> {
        self.check_instance(g)?;
        let r = qaoa2_suite::classical::one_exchange(g, seed);
        Ok(qq_graph::CutResult { cut: r.cut, value: r.value })
    }

    fn capabilities(&self) -> qq_core::SolverCaps {
        qq_core::SolverCaps { max_nodes: Some(self.cap), deterministic: true, quantum: true }
    }
}

/// The battery. Sizes are chosen to actually split: 2^16 amplitudes is
/// 16 element-wise chunks (grain 4096) and 4 gate-kernel chunks
/// (`PAR_GRAIN` = 2^14), and the blocked state fans out 16 chunk tasks.
fn battery_digest() -> u64 {
    let mut d = Digest::new();

    // --- qq-sim: flat statevector gate kernels + parallel reductions ---
    let n = 16;
    let mut flat = qq_sim::StateVector::plus_state(n);
    for q in 0..n {
        flat.rx(q, 0.1 + 0.05 * q as f64);
    }
    for q in 0..n - 1 {
        flat.rzz(q, q + 1, 0.2 + 0.03 * q as f64);
    }
    flat.renormalize();
    d.f64(flat.norm_sqr());
    for a in flat.amplitudes() {
        d.f64(a.re);
        d.f64(a.im);
    }

    // --- qq-sim: blocked (distributed-style) storage cross-check ---
    let mut blk = BlockedState::plus_state(n, 12).unwrap();
    for q in 0..n {
        blk.rx(q, 0.1 + 0.05 * q as f64).unwrap();
    }
    for q in 0..n - 1 {
        blk.rzz(q, q + 1, 0.2 + 0.03 * q as f64).unwrap();
    }
    d.f64(blk.norm_sqr());
    let blk_flat = blk.to_statevector();
    for a in blk_flat.amplitudes() {
        d.f64(a.re);
        d.f64(a.im);
    }

    // --- qq-circuit: the fused executor (single-sweep diagonal blocks +
    // one-qubit walls) on both engines — fused kernels are pure
    // per-amplitude functions, so their output must be bit-identical
    // across thread counts and under work stealing ---
    let fg = generators::erdos_renyi(16, 0.25, generators::WeightKind::Random01, 41);
    let fmodel = CostModel::from_maxcut(&fg);
    let fparams = AnsatzParams::new(vec![0.35, 0.6], vec![0.2, 0.45]);
    let fcircuit =
        qq_circuit::Synthesizer::new(qq_circuit::Preference::Depth).qaoa_ansatz(&fmodel, &fparams);
    let fused_flat = qq_circuit::exec::run_statevector(&fcircuit);
    for a in fused_flat.amplitudes() {
        d.f64(a.re);
        d.f64(a.im);
    }
    let fused_blk = qq_circuit::exec::run_blocked(&fcircuit, 12).unwrap().to_statevector();
    for a in fused_blk.amplitudes() {
        d.f64(a.re);
        d.f64(a.im);
    }

    // --- qq-qaoa: landscape evaluation over a (γ, β) grid ---
    let g = generators::erdos_renyi(14, 0.4, generators::WeightKind::Random01, 77);
    let table = CostTable::new(&CostModel::from_maxcut(&g));
    d.f64(table.max_value());
    for gi in 0..4 {
        for bi in 0..4 {
            let gamma = 0.15 + 0.2 * gi as f64;
            let beta = 0.1 + 0.18 * bi as f64;
            let params = AnsatzParams::new(vec![gamma], vec![beta]);
            let state = build_state_fused(&table, &params);
            d.f64(table.expectation(&state));
        }
    }

    // --- qq-core: the full QAOA² driver with thread-parallel fan-out ---
    let big = generators::erdos_renyi(48, 0.15, generators::WeightKind::Random01, 5);
    let cfg = qq_core::Qaoa2Config {
        max_qubits: 8,
        parallelism: qq_core::Parallelism::Threads,
        seed: 9,
        ..Default::default()
    };
    let res = qq_core::solve(&big, &cfg).expect("qaoa2 solve succeeds");
    d.f64(res.cut_value);

    // --- qq-core + qq-hpc: the capability-routed heterogeneous engine
    // path (capped quantum member + classical fallback); the cut AND the
    // routing decisions must be thread-count independent ---
    let het = generators::erdos_renyi(60, 0.12, generators::WeightKind::Random01, 2);
    let cfg = qq_core::Qaoa2Config {
        max_qubits: 10,
        solver: qq_core::SubSolver::Pool(vec![
            qq_core::SubSolver::custom(CappedQuantumLocalSearch { cap: 8 }),
            qq_core::SubSolver::LocalSearch,
        ]),
        coarse_solver: qq_core::SubSolver::LocalSearch,
        parallelism: qq_core::Parallelism::Threads,
        seed: 7,
        ..Default::default()
    };
    let res = qq_core::solve(&het, &cfg).expect("heterogeneous solve succeeds");
    d.f64(res.cut_value);
    for report in &res.engine_reports {
        d.word(report.quantum.tasks as u64);
        d.word(report.classical.tasks as u64);
        d.word(report.fallbacks as u64);
    }

    // --- qq-core: every partition strategy end-to-end, refinement on —
    // partitioner choice (and the boundary polish) must be bit-stable
    // across thread counts and engines ---
    let strat_graph = generators::erdos_renyi(52, 0.14, generators::WeightKind::Random01, 13);
    for strategy in qq_core::PartitionStrategy::builtin() {
        let cfg = qq_core::Qaoa2Config {
            max_qubits: 9,
            solver: qq_core::SubSolver::LocalSearch,
            coarse_solver: qq_core::SubSolver::LocalSearch,
            partition: strategy.clone(),
            refine: qq_core::RefineConfig::full(),
            parallelism: qq_core::Parallelism::Threads,
            seed: 21,
        };
        let res = qq_core::solve(&strat_graph, &cfg).expect("strategy solve succeeds");
        d.f64(res.cut_value);
        for level in &res.levels {
            d.word(level.num_subgraphs as u64);
            d.word(level.communities_before_refine as u64);
            d.word(level.communities_after_refine as u64);
            d.f64(level.inter_weight_fraction);
            d.f64(level.balance);
            d.label(&level.strategy_effective);
            d.word(level.stall_fallback as u64);
        }
    }

    // --- qq-core: per-instance auto-selection end-to-end — both the
    // cut AND every level's strategy *choice* fold into the digest, so
    // a selection that varies by thread count or platform float noise
    // is a determinism failure, not a silent quality change; a
    // per-level schedule rides along the same way ---
    for partition in [
        qq_core::PartitionStrategy::Auto,
        qq_core::PartitionStrategy::scheduled(qq_core::PartitionSchedule::new(
            vec![qq_core::PartitionStrategy::Multilevel],
            qq_core::PartitionStrategy::Auto,
        )),
    ] {
        let cfg = qq_core::Qaoa2Config {
            max_qubits: 9,
            solver: qq_core::SubSolver::LocalSearch,
            coarse_solver: qq_core::SubSolver::LocalSearch,
            partition,
            refine: qq_core::RefineConfig::full(),
            parallelism: qq_core::Parallelism::Threads,
            seed: 33,
        };
        let res = qq_core::solve(&strat_graph, &cfg).expect("adaptive solve succeeds");
        d.f64(res.cut_value);
        for level in &res.levels {
            d.label(&level.strategy_requested);
            d.label(&level.strategy_effective);
            d.word(level.stall_fallback as u64);
            d.word(level.size_gated as u64);
            d.f64(level.inter_weight_fraction);
            d.f64(level.balance);
        }
    }

    // --- qq-core: the merge graph's exact edge list — order, endpoints,
    // and f64 weight bits. The coarse graph is rebuilt from hash-free
    // sorted accumulation (BTreeMap in build_merge_graph); folding every
    // edge pins that order across processes, where HashMap iteration
    // would differ run to run ---
    let mg = generators::erdos_renyi(44, 0.18, generators::WeightKind::Random01, 29);
    let mpart = qq_graph::partition_with_cap(&mg, 9);
    let mlocal: Vec<Cut> = mpart
        .communities()
        .iter()
        .enumerate()
        .map(|(c, members)| {
            let (sub, _) = mg.induced_subgraph(members);
            qaoa2_suite::classical::one_exchange(&sub, 101 + c as u64).cut
        })
        .collect();
    let coarse = qq_core::build_merge_graph(&mg, &mpart, &mlocal);
    d.word(coarse.num_edges() as u64);
    for e in coarse.edges() {
        d.word(e.u as u64);
        d.word(e.v as u64);
        d.f64(e.w);
    }

    // --- qq-core + qq-graph: the full large-gated divide. 51k nodes at
    // mean degree 4 crosses both the large-instance gate (snapshot-sweep
    // label propagation, two-phase matching, score/apply refinement all
    // run on the pool) and `PAR_FINALIZE_MIN_EDGES` (the generator's CSR
    // build takes the parallel finalize path). Folds the effective
    // strategy label, the gate attribution, the complete community
    // structure, the quality metrics' f64 bits, the probe's parallel
    // weight reduction, and a cut derived from the partition — so a
    // single node landing in a different community at some thread count
    // fails the cross-process comparison ---
    let lg =
        generators::erdos_renyi_fast(51_000, 4.0 / 51_000.0, generators::WeightKind::Random01, 99);
    let probe = qq_graph::auto::probe(&lg);
    d.f64(probe.positive_weight_fraction);
    d.word(probe.is_large() as u64);
    // migration-only refinement: the parallel flag/apply sweep runs,
    // while the FM swap sweep — O(n · cap · deg) by construction, ~10
    // debug-minutes at this size — stays with the property battery's
    // pooled-vs-inline parity cases on zoo-sized graphs
    let refine =
        qq_core::RefineConfig { partition_passes: 1, swap_moves: false, polish_cut: false };
    let outcome =
        qq_core::strategy::divide(&lg, 4_000, &qq_core::PartitionStrategy::Auto, 0, &refine, 7)
            .expect("large divide succeeds");
    d.label(&outcome.effective);
    d.word(outcome.size_gated as u64);
    d.word(outcome.communities_before_refine as u64);
    d.word(outcome.communities_after_refine as u64);
    d.f64(outcome.inter_weight_fraction);
    d.f64(outcome.balance);
    let mut membership = vec![0u32; lg.num_nodes()];
    for (c, members) in outcome.partition.communities().iter().enumerate() {
        for &v in members {
            membership[v as usize] = c as u32;
        }
    }
    for &c in &membership {
        d.word(c as u64);
    }
    // cut digest: side = community-index parity — any membership or
    // weight-bit drift moves this f64
    let cut = Cut::from_fn(lg.num_nodes(), |v| membership[v as usize] % 2 == 1);
    d.f64(cut.value(&lg));

    // --- property-harness-style seeded draws ---
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    for case in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0x5eed ^ case);
        let g = generators::erdos_renyi(
            8 + (case as usize % 20),
            0.3,
            generators::WeightKind::Random01,
            rng.gen(),
        );
        let cut = Cut::from_basis_index(g.num_nodes(), rng.gen());
        d.f64(cut.value(&g));
        d.f64(g.total_weight());
    }

    d.0
}

/// Helper entry point for the subprocess runs: prints the digest in a
/// greppable form. `#[ignore]`d so the normal suite doesn't run the
/// battery three extra times; the orchestrating test invokes it with
/// `--ignored --exact`.
#[test]
#[ignore = "run explicitly by bit_identical_across_thread_counts"]
fn digest_helper() {
    println!("DETERMINISM_DIGEST={:016x}", battery_digest());
}

#[test]
fn bit_identical_across_thread_counts() {
    let local = battery_digest();
    // The steal-heavy legs flip QQ_RAYON_FORCE_STEAL: every batch lands
    // on a single deque and workers scan the *others* first, so nearly
    // every job is executed by a thief. Placement must stay semantically
    // invisible — results are combined by chunk index, never by
    // completion order — so the digest must not move.
    for (threads, force_steal) in
        [("1", false), ("2", false), ("4", false), ("2", true), ("4", true)]
    {
        let digest = subprocess_digest(threads, force_steal);
        assert_eq!(
            digest, local,
            "results differ between this process and RAYON_NUM_THREADS={threads} \
             force_steal={force_steal}"
        );
    }
}

/// Run the `digest_helper` test in a fresh process pinned to `threads`
/// workers (optionally in force-steal scheduling mode) and parse the
/// digest off its stdout.
fn subprocess_digest(threads: &str, force_steal: bool) -> u64 {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = std::process::Command::new(&exe);
    cmd.args(["--exact", "digest_helper", "--ignored", "--nocapture"])
        .env("RAYON_NUM_THREADS", threads);
    if force_steal {
        cmd.env("QQ_RAYON_FORCE_STEAL", "1");
    }
    let out = cmd.output().expect("spawn digest helper");
    assert!(out.status.success(), "helper failed at {threads} threads (force_steal={force_steal})");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // libtest may print the digest inline after the test name, so
    // locate the marker anywhere and take the 16 hex digits after it
    let digest = stdout
        .split_once("DETERMINISM_DIGEST=")
        .map(|(_, rest)| &rest[..16])
        .unwrap_or_else(|| panic!("no digest in helper output: {stdout}"));
    u64::from_str_radix(digest, 16).expect("hex digest")
}
