//! Capability-routing integration tests: a heterogeneous pool (capped
//! quantum + unbounded classical) driven through the full QAOA²
//! pipeline on every execution engine.
//!
//! What is locked here:
//! * dispatch follows the capability envelopes — every sub-graph within
//!   the quantum cap goes to the QPU-class backend, everything larger
//!   degrades to the classical member (counted as a fallback), and the
//!   per-class counts in [`EngineReport`] match the partition exactly;
//! * the cut is **bit-for-bit identical** across `Sequential`,
//!   `Threads`, and `Cluster` engines (the determinism contract);
//! * a quantum-only pool still errors `TooLarge` past its cap — the
//!   fallback is a property of having classical members, not a silent
//!   relaxation of the envelope.

use qaoa2_suite::prelude::*;
use qq_graph::{extract_subgraphs, partition_with_cap, CutResult};

/// Deterministic stand-in for a capped quantum device: local search
/// behind a QPU-class envelope. Cheap enough for CI, deterministic per
/// seed so engines must agree bit-for-bit.
struct ToyQpu {
    cap: usize,
}

impl MaxCutSolver for ToyQpu {
    fn label(&self) -> &str {
        "toy-qpu"
    }

    fn solve(&self, g: &Graph, seed: u64) -> Result<CutResult, SolverError> {
        self.check_instance(g)?;
        let r = qaoa2_suite::classical::one_exchange(g, seed);
        Ok(CutResult { cut: r.cut, value: r.value })
    }

    fn capabilities(&self) -> SolverCaps {
        SolverCaps { max_nodes: Some(self.cap), deterministic: true, quantum: true }
    }
}

const QUANTUM_CAP: usize = 8;

fn mixed_pool() -> SubSolver {
    SubSolver::Pool(vec![SubSolver::custom(ToyQpu { cap: QUANTUM_CAP }), SubSolver::LocalSearch])
}

fn mixed_cfg(parallelism: Parallelism) -> Qaoa2Config {
    Qaoa2Config {
        max_qubits: 10,
        solver: mixed_pool(),
        coarse_solver: SubSolver::LocalSearch,
        parallelism,
        seed: 7,
        ..Qaoa2Config::default()
    }
}

/// A graph whose first-level partition yields sub-graphs on both sides
/// of the quantum cap (asserted, so a generator change cannot silently
/// hollow out the test).
fn mixed_size_graph() -> Graph {
    generators::erdos_renyi(60, 0.12, generators::WeightKind::Random01, 2)
}

#[test]
fn mixed_pool_dispatches_per_caps_and_matches_sequential_reference() {
    let g = mixed_size_graph();

    // ground truth for the routing split: the partition the driver will
    // compute at level 0
    let partition = partition_with_cap(&g, 10);
    let sizes: Vec<usize> =
        extract_subgraphs(&g, &partition).iter().map(|s| s.num_nodes()).collect();
    let small = sizes.iter().filter(|&&n| n <= QUANTUM_CAP).count();
    let large = sizes.len() - small;
    assert!(small > 0 && large > 0, "workload must exercise both classes: sizes {sizes:?}");

    let reference = qaoa2_solve(&g, &mixed_cfg(Parallelism::Sequential)).unwrap();
    let level0 = &reference.engine_reports[0];
    assert_eq!(level0.engine, "inline");
    assert_eq!(level0.quantum.tasks, small, "every sub-graph within the cap goes quantum");
    assert_eq!(level0.classical.tasks, large, "every larger sub-graph degrades classically");
    assert_eq!(level0.fallbacks, large, "each classical dispatch here is a quantum-cap fallback");
    assert_eq!(
        level0.per_backend,
        vec![("toy-qpu".to_string(), small), ("local-search".to_string(), large)]
    );
    assert!(level0.qpu_idle_fraction().is_some(), "pool has a quantum member");

    // identical cuts on every engine, bit for bit
    for parallelism in [Parallelism::Threads, Parallelism::Cluster(3)] {
        let res = qaoa2_solve(&g, &mixed_cfg(parallelism)).unwrap();
        assert_eq!(res.cut, reference.cut, "{parallelism:?} diverged from sequential");
        assert_eq!(res.cut_value.to_bits(), reference.cut_value.to_bits());
        // routing is engine-independent
        assert_eq!(res.engine_reports[0].per_backend, level0.per_backend);
        assert_eq!(res.engine_reports[0].fallbacks, level0.fallbacks);
    }
}

#[test]
fn capped_quantum_pool_with_classical_member_never_errors_too_large() {
    // the largest first-level sub-graph (and the coarse recursion input)
    // exceeds the quantum cap; with a classical member present this must
    // degrade, not fail
    let g = mixed_size_graph();
    let res = qaoa2_solve(&g, &mixed_cfg(Parallelism::Threads));
    assert!(res.is_ok(), "classical fallback must absorb over-cap instances: {res:?}");
}

#[test]
fn quantum_only_pool_still_enforces_its_envelope() {
    let g = mixed_size_graph();
    let cfg = Qaoa2Config {
        solver: SubSolver::Pool(vec![SubSolver::custom(ToyQpu { cap: QUANTUM_CAP })]),
        ..mixed_cfg(Parallelism::Sequential)
    };
    let err = qaoa2_solve(&g, &cfg).unwrap_err();
    assert!(
        err.to_string().contains("at most"),
        "expected a TooLarge-derived solver error, got: {err}"
    );
}

#[test]
fn heterogeneous_pool_beats_or_matches_its_classical_member_alone() {
    // sanity: routing through the pool cannot degrade determinism or
    // produce invalid cuts relative to the homogeneous baseline
    let g = mixed_size_graph();
    let pool = qaoa2_solve(&g, &mixed_cfg(Parallelism::Threads)).unwrap();
    assert_eq!(pool.cut.len(), g.num_nodes());
    assert!((pool.cut.value(&g) - pool.cut_value).abs() < 1e-9);
    assert!(pool.cut_value >= g.total_weight() / 2.0 * 0.9);
}
