//! Subprocess harness for the pool's happens-before race detector
//! (`crates/vendor/rayon/src/hb.rs`, DESIGN.md §11).
//!
//! Two properties, both checked in fresh processes because the detector
//! and the pool are configured once per process from the environment:
//!
//! 1. **Clean protocol passes.** A steal-heavy parallel workload run
//!    under `QQ_RAYON_HB_CHECK=1` completes: every chunk-slot write is
//!    ordered before the combiner's read via the channel edge, so the
//!    detector stays silent.
//! 2. **The detector has teeth.** The seeded mutation
//!    `QQ_RAYON_HB_MUTATE=unordered-combine` drops the receive-side
//!    clock join — the exact bug of combining results without the
//!    message that published them — and the process must **abort** with
//!    a report naming the violation and carrying both event trails.
//!
//! Both legs are debug-build-only (the detector compiles to no-ops in
//! release); under `--release` the clean leg still runs (proving the
//! hooks are inert) and the teeth leg is skipped.

use rayon::prelude::*;

/// A workload that actually exercises the detector: enough elements to
/// split into many chunks (grain 4096), a nested reduce, and a `join` —
/// all three stamped paths.
fn workload() -> f64 {
    let xs: Vec<f64> = (0..100_000).map(|i| (i as f64).sin()).collect();
    let sum: f64 = xs.par_iter().sum();
    let max = xs.par_iter().cloned().reduce(|| f64::MIN, f64::max);
    let (a, b) = rayon::join(
        || xs[..50_000].par_iter().map(|x| x * x).sum::<f64>(),
        || xs[50_000..].par_iter().map(|x| x * x).sum::<f64>(),
    );
    sum + max + a + b
}

/// Helper entry point for the subprocess runs. `#[ignore]`d so the
/// normal suite doesn't run it redundantly; the orchestrating tests
/// invoke it with `--ignored --exact`.
#[test]
#[ignore = "run explicitly by the hb_detector subprocess tests"]
fn hb_workload_helper() {
    let v = workload();
    assert!(v.is_finite());
    println!("HB_WORKLOAD_OK={v:.6}");
}

fn run_helper(mutate: Option<&str>, force_steal: bool) -> std::process::Output {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = std::process::Command::new(&exe);
    cmd.args(["--exact", "hb_workload_helper", "--ignored", "--nocapture"])
        .env("RAYON_NUM_THREADS", "4")
        .env("QQ_RAYON_HB_CHECK", "1");
    if let Some(m) = mutate {
        cmd.env("QQ_RAYON_HB_MUTATE", m);
    }
    if force_steal {
        cmd.env("QQ_RAYON_FORCE_STEAL", "1");
    }
    cmd.output().expect("spawn hb workload helper")
}

#[test]
fn clean_protocol_passes_under_hb_check() {
    for force_steal in [false, true] {
        let out = run_helper(None, force_steal);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success() && stdout.contains("HB_WORKLOAD_OK="),
            "hb-checked workload failed (force_steal={force_steal}):\n{}\n{}",
            stdout,
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn unordered_combine_mutation_aborts() {
    if !cfg!(debug_assertions) {
        // Release builds compile the detector away; there is nothing to
        // trip. The clean leg above still proves the hooks are inert.
        return;
    }
    let out = run_helper(Some("unordered-combine"), false);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "mutated run should abort, but exited cleanly:\n{stderr}");
    assert!(
        stderr.contains("happens-before violation"),
        "abort report should name the violation:\n{stderr}"
    );
    assert!(
        stderr.contains("reader thread") && stderr.contains("writer thread"),
        "abort report should carry both event trails:\n{stderr}"
    );
}
