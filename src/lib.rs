//! # qaoa2-suite — umbrella crate
//!
//! Re-exports the whole QAOA-in-QAOA stack behind one dependency, hosts
//! the runnable `examples/` and the cross-crate integration tests in
//! `tests/`. See the README for the tour and DESIGN.md for the system
//! inventory.
//!
//! ```
//! use qaoa2_suite::prelude::*;
//!
//! let g = generators::erdos_renyi(40, 0.15, generators::WeightKind::Uniform, 1);
//! let cfg = Qaoa2Config { max_qubits: 8, solver: SubSolver::LocalSearch, ..Qaoa2Config::default() };
//! let res = qaoa2_solve(&g, &cfg).unwrap();
//! assert_eq!(res.cut.len(), 40);
//! ```

#![forbid(unsafe_code)]

pub use qq_circuit as circuit;
pub use qq_classical as classical;
pub use qq_core as core;
pub use qq_graph as graph;
pub use qq_gw as gw;
pub use qq_hpc as hpc;
pub use qq_opt as opt;
pub use qq_qaoa as qaoa;
pub use qq_sim as sim;

/// The names most programs need.
pub mod prelude {
    pub use qq_circuit::prelude::*;
    pub use qq_classical::{exact_maxcut, one_exchange, randomized_partitioning, CutResult};
    pub use qq_core::{
        solve as qaoa2_solve, BestOf, BoxedSolver, MaxCutSolver, Parallelism, PartitionError,
        PartitionSchedule, PartitionStrategy, Partitioner, Qaoa2Config, Qaoa2Result, RefineConfig,
        Refined, ShardedConfig, ShardedSolver, SolverCaps, SolverError, SolverRegistry, SubSolver,
    };
    pub use qq_graph::{generators, Cut, Graph};
    pub use qq_gw::{goemans_williamson, GwConfig};
    pub use qq_hpc::{
        master_worker, run_ranks, ClusterEngine, Communicator, EngineReport, ExecutionEngine,
        HeterogeneousPool, InlineEngine, SolveJob, ThreadPoolEngine,
    };
    pub use qq_qaoa::{solve as qaoa_solve, ObjectiveMode, QaoaConfig, SolutionPolicy};
    pub use qq_sim::prelude::*;
}
