//! The Fig. 2 distribution scheme: coordinator + worker pools.
//!
//! "A coordinator executed on a dedicated MPI rank handles the
//! partitioning and collection of results." Here: rank 0 owns the task
//! queue and hands tasks to workers on demand (self-scheduling, so
//! heterogeneous task costs balance automatically); workers run the
//! user's closure on real threads and report per-task busy time, letting
//! the harness compute coordination overhead and scaling efficiency —
//! the "almost ideal scaling" claim of §4.

use crate::comm::{run_ranks, Communicator};
use std::time::{Duration, Instant};

/// Coordinator/worker protocol messages.
enum Msg<T, R> {
    /// Worker asks for work.
    Request,
    /// Coordinator assigns task `id`.
    Task(usize, T),
    /// Worker returns the result of task `id` plus its busy time.
    Result(usize, R, Duration),
    /// No more work.
    Stop,
}

/// Per-worker accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tasks completed.
    pub tasks: usize,
    /// Time spent inside the task closure.
    pub busy: Duration,
}

/// Outcome of a master/worker run.
#[derive(Debug)]
pub struct MasterWorkerReport<R> {
    /// Results in task order.
    pub results: Vec<R>,
    /// Stats per worker (index 0 = worker rank 1).
    pub workers: Vec<WorkerStats>,
    /// Wall-clock of the whole distribution.
    pub wall: Duration,
}

impl<R> MasterWorkerReport<R> {
    /// Parallel efficiency: total busy time / (workers × wall). 1.0 would
    /// be ideal scaling with zero coordination overhead.
    pub fn efficiency(&self) -> f64 {
        if self.workers.is_empty() || self.wall.is_zero() {
            return 1.0;
        }
        let busy: Duration = self.workers.iter().map(|w| w.busy).sum();
        busy.as_secs_f64() / (self.workers.len() as f64 * self.wall.as_secs_f64())
    }
}

/// Run `tasks` through `num_workers` worker ranks with self-scheduling.
///
/// `worker` receives `(task_index, &task)` and runs on a worker thread;
/// results are returned in task order. Deterministic in *results* (task
/// indices are explicit); assignment order depends on thread timing, as
/// on a real cluster.
pub fn master_worker<T, R, F>(num_workers: usize, tasks: Vec<T>, worker: F) -> MasterWorkerReport<R>
where
    T: Send + Sync + Clone,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    assert!(num_workers >= 1, "need at least one worker");
    let started = Instant::now();
    let n_tasks = tasks.len();
    let size = num_workers + 1; // + coordinator

    let mut rank_outputs = run_ranks(size, |mut comm: Communicator<Msg<T, R>>| {
        if comm.rank() == 0 {
            // ---- coordinator ----
            let mut next = 0usize;
            let mut results: Vec<Option<R>> = (0..n_tasks).map(|_| None).collect();
            let mut stats = vec![WorkerStats { tasks: 0, busy: Duration::ZERO }; num_workers];
            let mut stopped = 0usize;
            while stopped < num_workers {
                let (src, msg) = comm.recv_any();
                match msg {
                    Msg::Request => {
                        if next < n_tasks {
                            comm.send(src, Msg::Task(next, tasks[next].clone()));
                            next += 1;
                        } else {
                            comm.send(src, Msg::Stop);
                            stopped += 1;
                        }
                    }
                    Msg::Result(id, r, busy) => {
                        results[id] = Some(r);
                        stats[src - 1].tasks += 1;
                        stats[src - 1].busy += busy;
                    }
                    _ => unreachable!("workers only send Request/Result"),
                }
            }
            Some((
                // INVARIANT: the dispatch loop above runs until every
                // task id has a result slot filled.
                results.into_iter().map(|r| r.expect("all tasks completed")).collect::<Vec<R>>(),
                stats,
            ))
        } else {
            // ---- worker ----
            loop {
                comm.send(0, Msg::Request);
                match comm.recv_from(0) {
                    Msg::Task(id, t) => {
                        let t0 = Instant::now();
                        let r = worker(id, &t);
                        comm.send(0, Msg::Result(id, r, t0.elapsed()));
                    }
                    Msg::Stop => break,
                    _ => unreachable!("coordinator only sends Task/Stop"),
                }
            }
            None
        }
    });

    // INVARIANT: rank 0 is the coordinator branch, which returns
    // Some((results, stats)) on every path.
    let (results, workers) =
        rank_outputs.remove(0).expect("coordinator rank returns the collected results");
    MasterWorkerReport { results, workers, wall: started.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_task_order() {
        let tasks: Vec<u64> = (0..50).collect();
        let report = master_worker(3, tasks, |_, &t| t * t);
        let expected: Vec<u64> = (0..50).map(|t| t * t).collect();
        assert_eq!(report.results, expected);
    }

    #[test]
    fn all_tasks_counted_once() {
        let report = master_worker(4, vec![1u32; 37], |_, &t| t);
        let total: usize = report.workers.iter().map(|w| w.tasks).sum();
        assert_eq!(total, 37);
    }

    #[test]
    fn heterogeneous_costs_balance() {
        // tasks with very uneven cost: self-scheduling should give every
        // worker at least one task when there are many more tasks than workers
        let tasks: Vec<u64> = (0..40).map(|i| if i % 10 == 0 { 3000 } else { 50 }).collect();
        let report = master_worker(2, tasks, |_, &micros| {
            std::thread::sleep(Duration::from_micros(micros));
            micros
        });
        assert!(report.workers.iter().all(|w| w.tasks > 0));
    }

    #[test]
    fn empty_task_list() {
        let report = master_worker::<u8, u8, _>(2, Vec::new(), |_, &t| t);
        assert!(report.results.is_empty());
        assert!(report.workers.iter().all(|w| w.tasks == 0));
    }

    #[test]
    fn single_worker_processes_everything() {
        let report = master_worker(1, vec![5u8, 6, 7], |i, &t| (i as u8, t));
        assert_eq!(report.results, vec![(0, 5), (1, 6), (2, 7)]);
        assert_eq!(report.workers[0].tasks, 3);
    }

    #[test]
    fn efficiency_in_unit_range() {
        let report = master_worker(2, vec![200u64; 16], |_, &micros| {
            std::thread::sleep(Duration::from_micros(micros));
        });
        let e = report.efficiency();
        assert!((0.0..=1.05).contains(&e), "efficiency {e}");
    }
}
