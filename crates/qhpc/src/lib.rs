//! # qq-hpc — HPC workflow substrate
//!
//! The paper's workflow layer, rebuilt at laptop scale:
//!
//! * [`scheduler`] — a SLURM-like workload manager as a discrete-event
//!   simulation: jobs with MPMD components, **heterogeneous jobs** whose
//!   components start independently as their resources free (the Fig. 1
//!   idle-time optimization), FIFO + backfill, and per-resource
//!   utilization/idle accounting;
//! * [`comm`] — an MPI-like communicator: ranks on real threads,
//!   point-to-point send/recv over crossbeam channels, and the collective
//!   operations the workflow uses (barrier, broadcast, gather, reduce) —
//!   the `mpi4py` stand-in;
//! * [`coordinator`] — the Fig. 2 distribution scheme: a coordinator rank
//!   hands sub-problems to quantum/classical worker pools and collects
//!   results, with per-worker busy accounting so coordination overhead and
//!   scaling efficiency can be reported like the paper does.

pub mod comm;
pub mod coordinator;
pub mod scheduler;

pub use comm::{run_ranks, Communicator};
pub use coordinator::{master_worker, MasterWorkerReport, WorkerStats};
pub use scheduler::{
    Cluster, Job, JobComponent, JobMode, ResourceKind, ResourceReq, ScheduleOutcome, Scheduler,
};
