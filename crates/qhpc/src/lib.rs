//! # qq-hpc — HPC workflow substrate
//!
//! The paper's workflow layer, rebuilt at laptop scale:
//!
//! * [`scheduler`] — a SLURM-like workload manager as a discrete-event
//!   simulation: jobs with MPMD components, **heterogeneous jobs** whose
//!   components start independently as their resources free (the Fig. 1
//!   idle-time optimization), FIFO + backfill, and per-resource
//!   utilization/idle accounting;
//! * [`comm`] — an MPI-like communicator: ranks on real threads,
//!   point-to-point send/recv over crossbeam channels, and the collective
//!   operations the workflow uses (barrier, broadcast, gather, reduce) —
//!   the `mpi4py` stand-in;
//! * [`coordinator`] — the Fig. 2 distribution scheme: a coordinator rank
//!   hands sub-problems to quantum/classical worker pools and collects
//!   results, with per-worker busy accounting so coordination overhead and
//!   scaling efficiency can be reported like the paper does;
//! * [`engine`] — the capability-routed execution layer: one
//!   [`ExecutionEngine::solve_batch`] API over inline, thread-pool, and
//!   coordinator/worker execution, routing each instance of a
//!   [`HeterogeneousPool`] to QPU- or CPU-class backends by their
//!   `SolverCaps` (classical fallback when every quantum cap is
//!   exceeded), with per-class utilization replayed through the
//!   scheduler.

#![forbid(unsafe_code)]

pub mod comm;
pub mod coordinator;
pub mod engine;
pub mod scheduler;

pub use comm::{run_ranks, Communicator};
pub use coordinator::{master_worker, MasterWorkerReport, WorkerStats};
pub use engine::{
    BatchOutcome, ClassLoad, ClusterEngine, EngineReport, ExecutionEngine, HeterogeneousPool,
    InlineEngine, Route, SolveJob, ThreadPoolEngine, WorkerClass,
};
pub use scheduler::{
    Cluster, Job, JobComponent, JobMode, ResourceKind, ResourceReq, ScheduleOutcome, Scheduler,
};
