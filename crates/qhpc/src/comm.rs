//! MPI-like communicator over threads and channels (the `mpi4py` stand-in).
//!
//! [`run_ranks`] spawns `size` OS threads, each holding a [`Communicator`]
//! with its rank. Point-to-point messages travel over unbounded crossbeam
//! channels; a per-rank stash preserves MPI's tagged-source semantics
//! (`recv_from` buffers out-of-order arrivals). Collectives are built on
//! point-to-point with rank 0 as root, as small MPI implementations do.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::VecDeque;

/// A message envelope: source rank + payload.
type Envelope<T> = (usize, T);

/// One rank's channel pair.
type Channel<T> = (Sender<Envelope<T>>, Receiver<Envelope<T>>);

/// Per-rank communicator handle.
pub struct Communicator<T> {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope<T>>>,
    receiver: Receiver<Envelope<T>>,
    stash: VecDeque<Envelope<T>>,
}

impl<T: Send> Communicator<T> {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send `msg` to rank `to`. Non-blocking (unbounded buffering, like
    /// eager-mode MPI for small messages).
    pub fn send(&self, to: usize, msg: T) {
        assert!(to < self.size, "rank {to} out of range (size {})", self.size);
        self.senders[to]
            .send((self.rank, msg))
            // INVARIANT: every rank's receiver outlives the scope that
            // owns all communicators, so the channel cannot be closed.
            .expect("receiver thread alive for the scope duration");
    }

    /// Receive the next message from any source. Blocks.
    pub fn recv_any(&mut self) -> (usize, T) {
        if let Some(env) = self.stash.pop_front() {
            return env;
        }
        // INVARIANT: each rank holds senders to every other rank for
        // the scope duration, so recv can only block, never disconnect.
        self.receiver.recv().expect("senders alive for the scope duration")
    }

    /// Receive the next message from a specific source, stashing others.
    pub fn recv_from(&mut self, src: usize) -> T {
        // check the stash first
        if let Some(pos) = self.stash.iter().position(|(s, _)| *s == src) {
            // INVARIANT: pos was returned by position() on this stash
            // one line up, with exclusive access in between.
            return self.stash.remove(pos).expect("position just found").1;
        }
        loop {
            // INVARIANT: see recv_any — senders outlive the scope.
            let env = self.receiver.recv().expect("senders alive");
            if env.0 == src {
                return env.1;
            }
            self.stash.push_back(env);
        }
    }
}

impl<T: Send + Clone> Communicator<T> {
    /// Broadcast from `root`: root's value is delivered to every rank
    /// (including returned at the root itself).
    pub fn broadcast(&mut self, root: usize, value: Option<T>) -> T {
        if self.rank == root {
            // INVARIANT: documented precondition panic — the root rank
            // must pass Some(value) to broadcast.
            let v = value.expect("root must supply the broadcast value");
            for r in 0..self.size {
                if r != root {
                    self.send(r, v.clone());
                }
            }
            v
        } else {
            self.recv_from(root)
        }
    }

    /// Gather to `root`: returns `Some(values)` at the root (indexed by
    /// rank), `None` elsewhere.
    pub fn gather(&mut self, root: usize, value: T) -> Option<Vec<T>> {
        if self.rank == root {
            let mut out: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
            out[root] = Some(value);
            for _ in 0..self.size - 1 {
                let (src, v) = self.recv_any();
                out[src] = Some(v);
            }
            // INVARIANT: the loop above received size-1 messages from
            // distinct ranks, so every slot is filled.
            Some(out.into_iter().map(|v| v.expect("all ranks reported")).collect())
        } else {
            self.send(root, value);
            None
        }
    }

    /// Reduce at `root` with a binary fold over rank order.
    pub fn reduce<F: Fn(T, T) -> T>(&mut self, root: usize, value: T, f: F) -> Option<T> {
        self.gather(root, value).map(|vs| {
            let mut it = vs.into_iter();
            // INVARIANT: gather at the root returns one value per rank
            // and size >= 1 is enforced at communicator construction.
            let first = it.next().expect("size >= 1");
            it.fold(first, f)
        })
    }

    /// Barrier: gather-then-broadcast of unit values through rank 0.
    pub fn barrier(&mut self)
    where
        T: Default,
    {
        let _ = self.gather(0, T::default());
        let _ = self.broadcast(0, (self.rank == 0).then(T::default));
    }
}

/// Spawn `size` ranks running `f`; returns each rank's output in rank
/// order. Panics in any rank propagate.
pub fn run_ranks<T, R, F>(size: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(Communicator<T>) -> R + Sync,
{
    assert!(size >= 1, "need at least one rank");
    let channels: Vec<Channel<T>> = (0..size).map(|_| unbounded()).collect();
    let senders: Vec<Sender<Envelope<T>>> = channels.iter().map(|(s, _)| s.clone()).collect();
    let receivers = channels.into_iter().map(|(_, r)| r);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(size);
        for (rank, receiver) in receivers.enumerate() {
            let comm = Communicator {
                rank,
                size,
                senders: senders.clone(),
                receiver,
                stash: VecDeque::new(),
            };
            let f = &f;
            handles.push(scope.spawn(move || f(comm)));
        }
        // INVARIANT: a panicked rank is a test/program failure —
        // re-raise it on the coordinating thread instead of hiding it.
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_roundtrip() {
        let out: Vec<i64> = run_ranks(2, |mut comm: Communicator<i64>| {
            if comm.rank() == 0 {
                comm.send(1, 41);
                comm.recv_from(1)
            } else {
                let v = comm.recv_from(0);
                comm.send(0, v + 1);
                v
            }
        });
        assert_eq!(out, vec![42, 41]);
    }

    #[test]
    fn gather_collects_rank_order() {
        let out = run_ranks(4, |mut comm: Communicator<usize>| comm.gather(0, comm.rank() * 10));
        assert_eq!(out[0], Some(vec![0, 10, 20, 30]));
        assert!(out[1..].iter().all(Option::is_none));
    }

    #[test]
    fn broadcast_reaches_all() {
        let out = run_ranks(3, |mut comm: Communicator<String>| {
            let root_value = (comm.rank() == 1).then(|| "hello".to_string());
            comm.broadcast(1, root_value)
        });
        assert!(out.iter().all(|v| v == "hello"));
    }

    #[test]
    fn reduce_sums() {
        let out = run_ranks(5, |mut comm: Communicator<u64>| {
            comm.reduce(0, comm.rank() as u64 + 1, |a, b| a + b)
        });
        assert_eq!(out[0], Some(15));
    }

    #[test]
    fn barrier_completes() {
        // would deadlock if the barrier were wrong; completion is the test
        let out = run_ranks(4, |mut comm: Communicator<u8>| {
            comm.barrier();
            comm.rank()
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn recv_from_stashes_out_of_order() {
        let out = run_ranks(3, |mut comm: Communicator<&'static str>| match comm.rank() {
            0 => {
                // rank 2's message may arrive first; recv_from(1) must
                // stash it and still return rank 1's message
                let one = comm.recv_from(1);
                let two = comm.recv_from(2);
                format!("{one}-{two}")
            }
            1 => {
                comm.send(0, "one");
                String::new()
            }
            _ => {
                comm.send(0, "two");
                String::new()
            }
        });
        assert_eq!(out[0], "one-two");
    }

    #[test]
    fn single_rank_collectives() {
        let out = run_ranks(1, |mut comm: Communicator<i32>| {
            comm.barrier();
            comm.reduce(0, 7, |a, b| a + b)
        });
        assert_eq!(out[0], Some(7));
    }
}
