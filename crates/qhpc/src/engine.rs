//! The capability-routed execution engine (the paper's Fig. 2 pool,
//! generalized).
//!
//! A QAOA² level produces a batch of sub-graph MaxCut instances. This
//! module owns *where* those instances run and *which* backend solves
//! each one:
//!
//! * [`HeterogeneousPool`] — an ordered set of [`MaxCutSolver`] backends
//!   with their [`SolverCaps`] envelopes. Routing is capability-driven:
//!   quantum backends (the scarce resource) are preferred for every
//!   instance they admit; instances exceeding every quantum cap **fall
//!   back classically** instead of erroring; an instance no member
//!   admits is a [`SolverError::TooLarge`].
//! * [`ExecutionEngine`] — the execution substrate behind one
//!   [`ExecutionEngine::solve_batch`] API: [`InlineEngine`] (caller's
//!   thread), [`ThreadPoolEngine`] (rayon fan-out), [`ClusterEngine`]
//!   (the coordinator/worker workflow of [`crate::coordinator`]).
//! * [`EngineReport`] — per-backend and per-class (QPU vs CPU) dispatch
//!   accounting. For heterogeneous pools, class utilization is obtained
//!   by replaying the measured busy times through the [`Scheduler`] with
//!   [`ResourceReq::quantum`]/[`ResourceReq::cpu`] requests, so engine
//!   runs report the same Fig. 1 metrics as the workload simulation;
//!   classical-only pools take an allocation-light greedy accounting
//!   instead (the engine sits on the orchestrator's hot path — see the
//!   `routing_overhead` bench).
//!
//! **Determinism contract:** routing is a pure function of the pool and
//! the instance, and every job carries its own caller-derived seed, so
//! all engines produce identical cuts for the same batch — wall-clock
//! and utilization fields are the only nondeterministic outputs.

use crate::coordinator::master_worker;
use crate::scheduler::{Cluster, Job, JobComponent, JobMode, ResourceReq, Scheduler};
use qq_graph::{Cut, CutResult, Graph, MaxCutSolver, SolverCaps, SolverError};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared backend handle as pools store it.
pub type PoolMember = Arc<dyn MaxCutSolver>;

/// One sub-graph solve request: the instance plus the seed the caller
/// derived for it (QAOA² derives per-`(level, index)` seeds, which is
/// what keeps results engine-independent).
#[derive(Debug, Clone, Copy)]
pub struct SolveJob<'a> {
    /// The MaxCut instance.
    pub graph: &'a Graph,
    /// Seed for every stochastic component of the solve.
    pub seed: u64,
}

/// Which worker class an instance was routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerClass {
    /// A quantum-capable backend (counts against QPU resources).
    Quantum,
    /// A classical backend (counts against CPU nodes).
    Classical,
}

/// The routing decision for one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Index of the chosen backend in the pool.
    pub backend: usize,
    /// Worker class of that backend.
    pub class: WorkerClass,
    /// True when the pool has quantum members but none admitted the
    /// instance — the run-time classical fallback the paper's hybrid
    /// decision requires (degrade, don't fail).
    pub fallback: bool,
}

/// An ordered set of backends routed by capability.
///
/// Order matters and is part of the determinism contract: among members
/// of the same class that admit an instance, the first registered wins.
pub struct HeterogeneousPool {
    members: Vec<PoolMember>,
    caps: Vec<SolverCaps>,
}

impl HeterogeneousPool {
    /// Pool over `members` (at least one).
    ///
    /// Capability envelopes are snapshotted here; backends must keep
    /// them constant for the pool's lifetime (they are `Sync` and
    /// read-only during solves anyway).
    pub fn new(members: Vec<PoolMember>) -> Self {
        assert!(!members.is_empty(), "HeterogeneousPool needs at least one backend");
        let caps = members.iter().map(|m| m.capabilities()).collect();
        HeterogeneousPool { members, caps }
    }

    /// Single-backend pool (the homogeneous case every plain `SubSolver`
    /// configuration reduces to).
    pub fn single(member: PoolMember) -> Self {
        HeterogeneousPool::new(vec![member])
    }

    /// The member backends, in registration order.
    pub fn members(&self) -> &[PoolMember] {
        &self.members
    }

    /// Number of quantum-class members (the simulated QPU count used for
    /// utilization replay).
    pub fn quantum_members(&self) -> usize {
        self.caps.iter().filter(|c| c.quantum).count()
    }

    /// Route one instance: quantum members that admit it first (in pool
    /// order), then classical members (classical *fallback* when quantum
    /// members exist but all cap out). `TooLarge` only when every member
    /// rejects.
    ///
    /// Admission is judged against the **snapshotted** envelopes — not
    /// per-call `check_instance` — so routing an N-job batch never
    /// recomputes member capabilities on the hot path (and stays
    /// consistent with the class/fallback decisions below, which read
    /// the same snapshot).
    pub fn route(&self, g: &Graph) -> Result<Route, SolverError> {
        let admits = |i: usize| self.caps[i].max_nodes.is_none_or(|max| g.num_nodes() <= max);
        for (i, caps) in self.caps.iter().enumerate() {
            if caps.quantum && admits(i) {
                return Ok(Route { backend: i, class: WorkerClass::Quantum, fallback: false });
            }
        }
        let has_quantum = self.quantum_members() > 0;
        for (i, caps) in self.caps.iter().enumerate() {
            if !caps.quantum && admits(i) {
                return Ok(Route {
                    backend: i,
                    class: WorkerClass::Classical,
                    fallback: has_quantum,
                });
            }
        }
        Err(SolverError::TooLarge {
            nodes: g.num_nodes(),
            max_nodes: self.caps.iter().filter_map(|c| c.max_nodes).max().unwrap_or(0),
        })
    }

    /// Solve one already-routed job (shared by every engine). Empty
    /// graphs short-circuit without touching a backend.
    fn solve_routed(&self, job: &SolveJob<'_>, route: Route) -> Result<TimedCut, SolverError> {
        let t0 = Instant::now();
        let result = if job.graph.num_nodes() == 0 {
            CutResult::new(Cut::new(0), job.graph)
        } else {
            self.members[route.backend].solve(job.graph, job.seed)?
        };
        Ok(TimedCut { result, busy: t0.elapsed() })
    }
}

// A pool is itself a solver: route a single instance by capability and
// solve it. This is what `SubSolver::Pool` builds for callers that want
// the heterogeneous run-time decision outside a batch engine.
impl MaxCutSolver for HeterogeneousPool {
    fn label(&self) -> &str {
        "pool"
    }

    fn solve(&self, g: &Graph, seed: u64) -> Result<CutResult, SolverError> {
        let route = self.route(g)?;
        self.members[route.backend].solve(g, seed)
    }

    fn capabilities(&self) -> SolverCaps {
        // over-cap instances degrade across members (routing itself is
        // deterministic), so the standard degrading-composite envelope
        SolverCaps::union_of(self.caps.iter().copied())
    }
}

/// One solved job plus the time spent inside the backend.
#[derive(Debug, Clone)]
pub struct TimedCut {
    /// The backend's cut.
    pub result: CutResult,
    /// Wall-clock spent in the solve closure.
    pub busy: Duration,
}

/// Dispatch accounting for one worker class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassLoad {
    /// Instances dispatched to this class.
    pub tasks: usize,
    /// Total busy time across those instances.
    pub busy: Duration,
}

/// What one `solve_batch` call did: which backend and class every
/// instance went to, and how the classes were utilized.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Engine that executed the batch (`"inline"`, `"thread-pool"`,
    /// `"cluster"`).
    pub engine: &'static str,
    /// Tasks per pool member, in pool order (label, count).
    pub per_backend: Vec<(String, usize)>,
    /// QPU-class dispatch totals.
    pub quantum: ClassLoad,
    /// CPU-class dispatch totals.
    pub classical: ClassLoad,
    /// Instances that exceeded every quantum cap and degraded to a
    /// classical member.
    pub fallbacks: usize,
    /// Per-class utilization in `[0, 1]` (`"cpu"` / `"qpu"` keys; absent
    /// classes omitted, exactly like
    /// [`crate::scheduler::ScheduleOutcome`]). Heterogeneous pools
    /// replay measured busy times through the [`Scheduler`]; classical
    /// pools use greedy list-schedule accounting.
    pub utilization: BTreeMap<&'static str, f64>,
    /// Makespan of the replayed schedule, in µs-ticks.
    pub makespan_ticks: u64,
    /// Wall-clock of routing + executing the batch — report assembly
    /// (including the utilization replay) excluded, so this is the
    /// number to record as "time spent solving".
    pub batch_wall: Duration,
}

impl EngineReport {
    /// Idle fraction of the QPU class (the Fig. 1 metric); `None` when
    /// the pool has no quantum members.
    pub fn qpu_idle_fraction(&self) -> Option<f64> {
        self.utilization.get("qpu").map(|u| 1.0 - u)
    }
}

/// A batch of solved jobs plus the dispatch report.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One result per job, in job order.
    pub results: Vec<CutResult>,
    /// Dispatch/utilization accounting.
    pub report: EngineReport,
}

/// An execution substrate for batches of routed sub-graph solves.
///
/// Implementations differ only in *where* tasks run; routing, seeding,
/// and reporting are shared, which is what makes every engine produce
/// identical cuts for the same batch.
pub trait ExecutionEngine: Send + Sync {
    /// Stable engine name for reports.
    fn name(&self) -> &'static str;

    /// Worker slots this engine fans out to (sizes the CPU side of the
    /// utilization replay).
    fn workers(&self) -> usize;

    /// Execute pre-routed jobs, one [`TimedCut`] per job in job order.
    /// `routes[i]` is the pool's decision for `jobs[i]`.
    fn run_routed(
        &self,
        pool: &HeterogeneousPool,
        jobs: &[SolveJob<'_>],
        routes: &[Route],
    ) -> Result<Vec<TimedCut>, SolverError>;

    /// Route every job through `pool`, execute, and account: the single
    /// entry point the QAOA² orchestrator calls per level.
    fn solve_batch(
        &self,
        pool: &HeterogeneousPool,
        jobs: &[SolveJob<'_>],
    ) -> Result<BatchOutcome, SolverError> {
        let t0 = Instant::now();
        let routes: Vec<Route> =
            jobs.iter().map(|job| pool.route(job.graph)).collect::<Result<_, _>>()?;
        let timed = self.run_routed(pool, jobs, &routes)?;
        let batch_wall = t0.elapsed();
        debug_assert_eq!(timed.len(), jobs.len());
        let report = build_report(self, pool, &routes, &timed, batch_wall);
        Ok(BatchOutcome { results: timed.into_iter().map(|t| t.result).collect(), report })
    }
}

/// Assemble the [`EngineReport`] for an executed batch.
fn build_report(
    engine: &(impl ExecutionEngine + ?Sized),
    pool: &HeterogeneousPool,
    routes: &[Route],
    timed: &[TimedCut],
    batch_wall: Duration,
) -> EngineReport {
    let mut per_backend: Vec<(String, usize)> =
        pool.members().iter().map(|m| (m.label().to_string(), 0)).collect();
    let mut quantum = ClassLoad::default();
    let mut classical = ClassLoad::default();
    let mut fallbacks = 0usize;
    for (route, t) in routes.iter().zip(timed) {
        per_backend[route.backend].1 += 1;
        let load = match route.class {
            WorkerClass::Quantum => &mut quantum,
            WorkerClass::Classical => &mut classical,
        };
        load.tasks += 1;
        load.busy += t.busy;
        fallbacks += route.fallback as usize;
    }
    let (utilization, makespan_ticks) = if pool.quantum_members() > 0 {
        replay_utilization(pool, engine.workers(), routes, timed)
    } else {
        classical_utilization(engine.workers(), timed)
    };
    EngineReport {
        engine: engine.name(),
        per_backend,
        quantum,
        classical,
        fallbacks,
        utilization,
        makespan_ticks,
        batch_wall,
    }
}

/// µs-ticks for one task; every task costs at least one tick so
/// utilization never divides by a zero makespan.
fn busy_ticks(t: &TimedCut) -> u64 {
    (t.busy.as_micros() as u64).max(1)
}

/// Replay the measured busy times through the discrete-event scheduler:
/// every quantum-routed task requests one QPU, every classical task one
/// CPU node, on a cluster sized by the engine's worker count and the
/// pool's quantum member count. This is what ties engine runs to the
/// same per-class utilization metrics as the Fig. 1 simulation. Only
/// heterogeneous pools pay for it — the homogeneous case takes
/// [`classical_utilization`] instead.
fn replay_utilization(
    pool: &HeterogeneousPool,
    workers: usize,
    routes: &[Route],
    timed: &[TimedCut],
) -> (BTreeMap<&'static str, f64>, u64) {
    let cluster = Cluster { cpu_nodes: workers.max(1), qpus: pool.quantum_members() };
    let jobs: Vec<Job> = routes
        .iter()
        .zip(timed)
        .map(|(route, t)| {
            let req = match route.class {
                WorkerClass::Quantum => ResourceReq::quantum(0, 1),
                WorkerClass::Classical => ResourceReq::cpu(1),
            };
            Job {
                submit: 0,
                mode: JobMode::Heterogeneous,
                components: vec![JobComponent {
                    name: String::new(),
                    req,
                    duration: busy_ticks(t),
                }],
            }
        })
        .collect();
    let outcome = Scheduler::new(cluster, true).run(&jobs);
    (outcome.utilization, outcome.makespan)
}

/// CPU utilization for a classical-only batch: deterministic greedy list
/// scheduling in job order onto `workers` slots (what a self-scheduling
/// pool approximates), allocation-free per job. The engine layer runs
/// per level on the orchestrator's hot path, so the homogeneous common
/// case must not pay for the full discrete-event replay.
fn classical_utilization(workers: usize, timed: &[TimedCut]) -> (BTreeMap<&'static str, f64>, u64) {
    let mut loads = vec![0u64; workers.max(1)];
    let mut busy_total = 0u64;
    for t in timed {
        let ticks = busy_ticks(t);
        busy_total += ticks;
        let min = loads.iter().copied().enumerate().min_by_key(|&(_, l)| l);
        loads[min.expect("≥ 1 worker slot").0] += ticks;
    }
    let makespan = loads.into_iter().max().unwrap_or(0);
    let mut utilization = BTreeMap::new();
    if makespan > 0 {
        utilization.insert("cpu", busy_total as f64 / (workers.max(1) as f64 * makespan as f64));
    }
    (utilization, makespan)
}

/// Run every job on the calling thread, in order — the reference
/// behaviour with deterministic timing.
#[derive(Debug, Clone, Copy, Default)]
pub struct InlineEngine;

impl ExecutionEngine for InlineEngine {
    fn name(&self) -> &'static str {
        "inline"
    }

    fn workers(&self) -> usize {
        1
    }

    fn run_routed(
        &self,
        pool: &HeterogeneousPool,
        jobs: &[SolveJob<'_>],
        routes: &[Route],
    ) -> Result<Vec<TimedCut>, SolverError> {
        jobs.iter().zip(routes).map(|(job, &route)| pool.solve_routed(job, route)).collect()
    }
}

/// Fan jobs out across the rayon pool, one task per job (sub-graph
/// solves are coarse, so per-item tasks beat chunking).
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadPoolEngine;

impl ExecutionEngine for ThreadPoolEngine {
    fn name(&self) -> &'static str {
        "thread-pool"
    }

    fn workers(&self) -> usize {
        rayon::current_num_threads().max(1)
    }

    fn run_routed(
        &self,
        pool: &HeterogeneousPool,
        jobs: &[SolveJob<'_>],
        routes: &[Route],
    ) -> Result<Vec<TimedCut>, SolverError> {
        // REDUCTION: one leaf per job (with_min_len(1)); the collect is
        // keyed by job index, so results land in submission order and no
        // float ever crosses a chunk boundary.
        jobs.par_iter()
            .with_min_len(1)
            .enumerate()
            .map(|(i, job)| pool.solve_routed(job, routes[i]))
            .collect()
    }
}

/// Distribute jobs through the Fig. 2 coordinator/worker workflow: a
/// dedicated coordinator rank plus `workers` worker ranks with
/// self-scheduling.
#[derive(Debug, Clone, Copy)]
pub struct ClusterEngine {
    workers: usize,
}

impl ClusterEngine {
    /// Engine over `workers` worker ranks (at least one).
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "cluster engine needs ≥ 1 worker");
        ClusterEngine { workers }
    }
}

impl ExecutionEngine for ClusterEngine {
    fn name(&self) -> &'static str {
        "cluster"
    }

    fn workers(&self) -> usize {
        self.workers
    }

    fn run_routed(
        &self,
        pool: &HeterogeneousPool,
        jobs: &[SolveJob<'_>],
        routes: &[Route],
    ) -> Result<Vec<TimedCut>, SolverError> {
        let tasks: Vec<usize> = (0..jobs.len()).collect();
        let report = master_worker(self.workers, tasks, |_, &task| {
            pool.solve_routed(&jobs[task], routes[task])
        });
        report.results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_graph::generators::{self, WeightKind};

    /// Deterministic test backend with a configurable envelope.
    struct Toy {
        label: &'static str,
        cap: Option<usize>,
        quantum: bool,
    }

    impl MaxCutSolver for Toy {
        fn label(&self) -> &str {
            self.label
        }

        fn solve(&self, g: &Graph, seed: u64) -> Result<CutResult, SolverError> {
            self.check_instance(g)?;
            Ok(CutResult::new(Cut::from_fn(g.num_nodes(), |v| (v as u64 ^ seed) & 1 == 0), g))
        }

        fn capabilities(&self) -> SolverCaps {
            SolverCaps { max_nodes: self.cap, deterministic: true, quantum: self.quantum }
        }
    }

    fn qpu(cap: usize) -> PoolMember {
        Arc::new(Toy { label: "toy-qpu", cap: Some(cap), quantum: true })
    }

    fn cpu() -> PoolMember {
        Arc::new(Toy { label: "toy-cpu", cap: None, quantum: false })
    }

    fn jobs_over<'a>(graphs: &'a [Graph]) -> Vec<SolveJob<'a>> {
        graphs.iter().enumerate().map(|(i, g)| SolveJob { graph: g, seed: i as u64 }).collect()
    }

    #[test]
    fn routes_quantum_first_with_classical_fallback() {
        let pool = HeterogeneousPool::new(vec![qpu(8), cpu()]);
        let small = generators::ring(6);
        let large = generators::ring(12);
        let r_small = pool.route(&small).unwrap();
        assert_eq!(r_small.class, WorkerClass::Quantum);
        assert!(!r_small.fallback);
        let r_large = pool.route(&large).unwrap();
        assert_eq!(r_large.class, WorkerClass::Classical);
        assert!(r_large.fallback, "exceeding the quantum cap is a fallback, not an error");
    }

    #[test]
    fn quantum_only_pool_errors_past_its_cap() {
        let pool = HeterogeneousPool::new(vec![qpu(8)]);
        let err = pool.route(&generators::ring(12)).unwrap_err();
        assert!(matches!(err, SolverError::TooLarge { nodes: 12, max_nodes: 8 }));
    }

    #[test]
    fn engines_agree_bit_for_bit() {
        let graphs: Vec<Graph> = (0..7)
            .map(|s| generators::erdos_renyi(6 + s % 5, 0.5, WeightKind::Random01, s as u64))
            .collect();
        let jobs = jobs_over(&graphs);
        let pool = HeterogeneousPool::new(vec![qpu(8), cpu()]);
        let inline = InlineEngine.solve_batch(&pool, &jobs).unwrap();
        let pooled = ThreadPoolEngine.solve_batch(&pool, &jobs).unwrap();
        let cluster = ClusterEngine::new(3).solve_batch(&pool, &jobs).unwrap();
        for (a, b) in inline.results.iter().zip(&pooled.results) {
            assert_eq!(a.cut, b.cut);
        }
        for (a, b) in inline.results.iter().zip(&cluster.results) {
            assert_eq!(a.cut, b.cut);
        }
        // routing is engine-independent too
        assert_eq!(inline.report.per_backend, pooled.report.per_backend);
        assert_eq!(inline.report.per_backend, cluster.report.per_backend);
    }

    #[test]
    fn report_accounts_every_task_once() {
        let graphs: Vec<Graph> =
            [4usize, 6, 10, 12, 5].iter().map(|&n| generators::ring(n)).collect();
        let jobs = jobs_over(&graphs);
        let pool = HeterogeneousPool::new(vec![qpu(8), cpu()]);
        let out = InlineEngine.solve_batch(&pool, &jobs).unwrap();
        let r = &out.report;
        assert_eq!(r.engine, "inline");
        assert_eq!(r.quantum.tasks, 3, "rings of 4, 6, 5 fit the 8-node quantum cap");
        assert_eq!(r.classical.tasks, 2, "rings of 10 and 12 degrade classically");
        assert_eq!(r.fallbacks, 2);
        assert_eq!(r.per_backend, vec![("toy-qpu".into(), 3), ("toy-cpu".into(), 2)]);
        assert!(r.qpu_idle_fraction().is_some());
        for (_, u) in r.utilization.iter() {
            assert!((0.0..=1.0 + 1e-9).contains(u));
        }
        assert!(r.makespan_ticks >= 1);
    }

    #[test]
    fn classical_only_pool_has_no_qpu_metrics() {
        let g = [generators::ring(9)];
        let out =
            InlineEngine.solve_batch(&HeterogeneousPool::single(cpu()), &jobs_over(&g)).unwrap();
        assert_eq!(out.report.qpu_idle_fraction(), None);
        assert_eq!(out.report.fallbacks, 0, "no quantum members means no fallbacks");
    }

    #[test]
    fn pool_is_itself_a_solver() {
        let pool = HeterogeneousPool::new(vec![qpu(8), cpu()]);
        assert_eq!(pool.label(), "pool");
        let caps = pool.capabilities();
        assert_eq!(caps.max_nodes, None, "unbounded classical member lifts the cap");
        assert!(caps.quantum);
        let big = generators::ring(20);
        assert_eq!(pool.solve(&big, 1).unwrap().cut.len(), 20);
    }

    #[test]
    fn empty_batch_is_fine() {
        let out = InlineEngine.solve_batch(&HeterogeneousPool::single(cpu()), &[]).unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.report.quantum.tasks + out.report.classical.tasks, 0);
    }

    #[test]
    fn error_propagates_from_every_engine() {
        let graphs = [generators::ring(12)];
        let jobs = jobs_over(&graphs);
        let pool = HeterogeneousPool::single(qpu(8));
        assert!(InlineEngine.solve_batch(&pool, &jobs).is_err());
        assert!(ThreadPoolEngine.solve_batch(&pool, &jobs).is_err());
        assert!(ClusterEngine::new(2).solve_batch(&pool, &jobs).is_err());
    }
}
