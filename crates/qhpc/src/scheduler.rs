//! SLURM-like workload manager (discrete-event simulation).
//!
//! Models what the paper actually uses SLURM for:
//!
//! * **MPMD jobs** ([`JobMode::Monolithic`]) — all components must be
//!   allocated simultaneously (one `srun` with several programs);
//! * **heterogeneous jobs** ([`JobMode::Heterogeneous`]) — components are
//!   co-submitted but each starts as soon as *its* resources are free.
//!   Fig. 1's point: with a scarce quantum device, het jobs let job 2's
//!   QPU component start while job 1's classical component still runs,
//!   cutting QPU idle time.
//!
//! Time is unitless ticks. The scheduler is deterministic: strict FIFO
//! queue order (a component that has not arrived yet still blocks the
//! queue behind it), with optional conservative backfill in the EASY
//! style: the blocked queue head holds a reservation for its earliest
//! possible start, and a later component may start early only if it
//! provably cannot delay that reservation — it finishes before the
//! reserved tick, or the resources it would still hold then are not
//! needed by the head.

use std::collections::BTreeMap;

/// Resource classes a component can request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Classical compute nodes.
    CpuNode,
    /// Quantum processing units (simulated devices).
    Qpu,
}

/// Amounts of each resource a component needs for its whole runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceReq {
    /// Classical nodes.
    pub cpu_nodes: usize,
    /// Quantum devices.
    pub qpus: usize,
}

impl ResourceReq {
    /// Pure-classical request.
    pub fn cpu(cpu_nodes: usize) -> Self {
        ResourceReq { cpu_nodes, qpus: 0 }
    }

    /// Request including quantum devices.
    pub fn quantum(cpu_nodes: usize, qpus: usize) -> Self {
        ResourceReq { cpu_nodes, qpus }
    }
}

/// One program of an MPMD/heterogeneous job.
#[derive(Debug, Clone)]
pub struct JobComponent {
    /// Label for reports ("qaoa-sim", "gw", "coordinator", …).
    pub name: String,
    /// Resources held for the duration.
    pub req: ResourceReq,
    /// Runtime in ticks.
    pub duration: u64,
}

/// How a job's components are co-scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobMode {
    /// All components start together (plain MPMD `srun`).
    Monolithic,
    /// Components start independently (SLURM heterogeneous job).
    Heterogeneous,
}

/// A submitted job.
#[derive(Debug, Clone)]
pub struct Job {
    /// Submission time (ticks).
    pub submit: u64,
    /// Components.
    pub components: Vec<JobComponent>,
    /// Co-scheduling mode.
    pub mode: JobMode,
}

/// Cluster capacity.
#[derive(Debug, Clone, Copy)]
pub struct Cluster {
    /// Classical node count.
    pub cpu_nodes: usize,
    /// Quantum device count.
    pub qpus: usize,
}

/// One scheduled interval in the Gantt record.
#[derive(Debug, Clone, PartialEq)]
pub struct GanttEntry {
    /// Job index (submission order).
    pub job: usize,
    /// Component index within the job.
    pub component: usize,
    /// Component label.
    pub name: String,
    /// Start tick.
    pub start: u64,
    /// End tick.
    pub end: u64,
    /// Resources held.
    pub req: ResourceReq,
}

/// Result of scheduling a batch.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// Per-component intervals.
    pub gantt: Vec<GanttEntry>,
    /// Time the last component finishes.
    pub makespan: u64,
    /// Busy ticks per resource class (summed over units).
    pub busy: BTreeMap<&'static str, u64>,
    /// Utilization per resource class in `[0, 1]` over the makespan.
    pub utilization: BTreeMap<&'static str, f64>,
}

impl ScheduleOutcome {
    /// Idle fraction of the quantum devices — the Fig. 1 metric.
    ///
    /// `None` when the cluster has no QPUs (or nothing was scheduled):
    /// a machine without quantum devices has no idle fraction, and
    /// fabricating `1.0` for it silently corrupts averages over
    /// heterogeneous fleets.
    pub fn qpu_idle_fraction(&self) -> Option<f64> {
        self.utilization.get("qpu").map(|u| 1.0 - u)
    }
}

/// Deterministic discrete-event scheduler.
#[derive(Debug, Clone)]
pub struct Scheduler {
    cluster: Cluster,
    backfill: bool,
}

/// A pending component, flattened from the job list.
#[derive(Debug, Clone)]
struct Pending {
    job: usize,
    component: usize,
    name: String,
    req: ResourceReq,
    duration: u64,
    ready: u64,
    /// For monolithic jobs, all components share a group id and must start
    /// at one time.
    group: Option<usize>,
}

impl Scheduler {
    /// Scheduler over a cluster; `backfill` enables conservative backfill.
    pub fn new(cluster: Cluster, backfill: bool) -> Self {
        assert!(cluster.cpu_nodes > 0 || cluster.qpus > 0, "cluster has no resources");
        Scheduler { cluster, backfill }
    }

    /// Schedule a batch of jobs; panics if any single component exceeds the
    /// cluster capacity (it could never run).
    pub fn run(&self, jobs: &[Job]) -> ScheduleOutcome {
        for (j, job) in jobs.iter().enumerate() {
            let mut total = ResourceReq::default();
            for (c, comp) in job.components.iter().enumerate() {
                assert!(
                    comp.req.cpu_nodes <= self.cluster.cpu_nodes
                        && comp.req.qpus <= self.cluster.qpus,
                    "job {j} component {c} exceeds cluster capacity"
                );
                total.cpu_nodes += comp.req.cpu_nodes;
                total.qpus += comp.req.qpus;
            }
            // monolithic components all hold resources at once, so the
            // *aggregate* must fit too or the job could never start
            assert!(
                job.mode != JobMode::Monolithic
                    || (total.cpu_nodes <= self.cluster.cpu_nodes
                        && total.qpus <= self.cluster.qpus),
                "job {j} monolithic aggregate exceeds cluster capacity"
            );
        }

        // Flatten to pending list in FIFO order.
        let mut pending: Vec<Pending> = Vec::new();
        for (j, job) in jobs.iter().enumerate() {
            let group = matches!(job.mode, JobMode::Monolithic).then_some(j);
            for (c, comp) in job.components.iter().enumerate() {
                pending.push(Pending {
                    job: j,
                    component: c,
                    name: comp.name.clone(),
                    req: comp.req,
                    duration: comp.duration,
                    ready: job.submit,
                    group,
                });
            }
        }

        let mut gantt: Vec<GanttEntry> = Vec::new();
        let mut running: Vec<(u64, ResourceReq)> = Vec::new(); // (end, held)
        let mut free = self.cluster;
        let mut now = 0u64;

        while !pending.is_empty() {
            // Release everything finishing at or before `now`.
            running.retain(|&(end, req)| {
                if end <= now {
                    free.cpu_nodes += req.cpu_nodes;
                    free.qpus += req.qpus;
                    false
                } else {
                    true
                }
            });

            // Try to start components in FIFO (queue) order. The first
            // component that cannot start — whether its resources are
            // busy or it simply has not arrived yet — becomes the
            // *blocked head* and gets a reservation for its earliest
            // possible start. Without backfill the scan stops there
            // (strict FIFO: later-queued work never overtakes the head,
            // not even work that is ready while the head is not).
            // With backfill, later components may start now only if the
            // reservation proves they cannot delay the head.
            let mut started_any = false;
            let mut i = 0;
            let mut reservation: Option<Reservation> = None;
            while i < pending.len() {
                if reservation.is_some() && !self.backfill {
                    break;
                }
                let p = &pending[i];
                let member_idxs: Vec<usize> = match p.group {
                    None => vec![i],
                    Some(gid) => pending
                        .iter()
                        .enumerate()
                        .filter(|(_, q)| q.group == Some(gid))
                        .map(|(k, _)| k)
                        .collect(),
                };
                // monolithic: all same-group components must fit at once
                let mut need = ResourceReq::default();
                for &k in &member_idxs {
                    need.cpu_nodes += pending[k].req.cpu_nodes;
                    need.qpus += pending[k].req.qpus;
                }
                let startable = p.ready <= now && fits(&free, &need);
                let admissible = startable
                    && reservation.as_ref().is_none_or(|res| {
                        backfill_fits_reservation(res, now, &pending, &member_idxs)
                    });
                if admissible {
                    // start the component (or the whole monolithic group)
                    for &k in member_idxs.iter().rev() {
                        let q = pending.remove(k);
                        free.cpu_nodes -= q.req.cpu_nodes;
                        free.qpus -= q.req.qpus;
                        running.push((now + q.duration, q.req));
                        gantt.push(GanttEntry {
                            job: q.job,
                            component: q.component,
                            name: q.name,
                            start: now,
                            end: now + q.duration,
                            req: q.req,
                        });
                    }
                    started_any = true;
                    i = 0; // restart FIFO scan against the new state
                    reservation = None;
                } else {
                    if reservation.is_none() {
                        // this is the blocked head: reserve its earliest start
                        reservation = Some(reserve(&need, p.ready, now, &running, &free));
                    }
                    i += 1;
                }
            }

            if pending.is_empty() {
                break;
            }
            if !started_any {
                // advance to the next event: earliest completion or ready time
                let next_end = running.iter().map(|&(e, _)| e).min();
                let next_ready = pending.iter().map(|p| p.ready).filter(|&r| r > now).min();
                now = match (next_end, next_ready) {
                    (Some(e), Some(r)) => e.min(r),
                    (Some(e), None) => e,
                    (None, Some(r)) => r,
                    (None, None) => unreachable!("pending work with nothing running or arriving"),
                };
            }
        }

        let makespan = gantt.iter().map(|e| e.end).max().unwrap_or(0);
        let mut busy: BTreeMap<&'static str, u64> = BTreeMap::new();
        for e in &gantt {
            *busy.entry("cpu").or_default() += e.req.cpu_nodes as u64 * (e.end - e.start);
            *busy.entry("qpu").or_default() += e.req.qpus as u64 * (e.end - e.start);
        }
        // Utilization only exists for resource classes the cluster has:
        // a `.max(1.0)` denominator guard would fabricate 0.0 for an
        // absent class, which reads as "present but idle". Absent classes
        // are omitted instead (and `qpu_idle_fraction` returns `None`).
        let mut utilization = BTreeMap::new();
        if makespan > 0 {
            if self.cluster.cpu_nodes > 0 {
                utilization.insert(
                    "cpu",
                    busy.get("cpu").copied().unwrap_or(0) as f64
                        / (self.cluster.cpu_nodes as f64 * makespan as f64),
                );
            }
            if self.cluster.qpus > 0 {
                utilization.insert(
                    "qpu",
                    busy.get("qpu").copied().unwrap_or(0) as f64
                        / (self.cluster.qpus as f64 * makespan as f64),
                );
            }
        }
        ScheduleOutcome { gantt, makespan, busy, utilization }
    }
}

fn fits(free: &Cluster, req: &ResourceReq) -> bool {
    free.cpu_nodes >= req.cpu_nodes && free.qpus >= req.qpus
}

/// The blocked FIFO head's claim on the future: the earliest tick it
/// could start given what is running now, and the resources that will be
/// available to it then. Conservative backfill admits a later component
/// only if the head can still start on time afterwards.
#[derive(Debug, Clone)]
struct Reservation {
    /// Earliest tick the head can start.
    start: u64,
    /// Resources available at `start` (current free + everything released
    /// by then), before any backfill.
    avail: Cluster,
    /// What the head needs (group-aggregated for monolithic jobs).
    need: ResourceReq,
}

/// Compute the blocked head's reservation: walk the completion events of
/// `running` from `max(now, ready)` until the head's request fits.
fn reserve(
    need: &ResourceReq,
    ready: u64,
    now: u64,
    running: &[(u64, ResourceReq)],
    free: &Cluster,
) -> Reservation {
    let base = now.max(ready);
    let avail_at = |t: u64| {
        let mut avail = *free;
        for &(end, req) in running {
            if end <= t {
                avail.cpu_nodes += req.cpu_nodes;
                avail.qpus += req.qpus;
            }
        }
        avail
    };
    let mut ends: Vec<u64> = running.iter().map(|&(e, _)| e).filter(|&e| e > base).collect();
    ends.sort_unstable();
    for t in std::iter::once(base).chain(ends) {
        let avail = avail_at(t);
        if fits(&avail, need) {
            return Reservation { start: t, avail, need: *need };
        }
    }
    // Unreachable in practice: once everything running has completed the
    // whole cluster is free, and `run` asserts every component — and
    // every monolithic aggregate — fits the cluster. Kept as a
    // defensive fallback.
    let last = running.iter().map(|&(e, _)| e).max().unwrap_or(base).max(base);
    Reservation { start: last, avail: avail_at(last), need: *need }
}

/// Would starting `member_idxs` of `pending` right `now` still let the
/// reserved head start at `res.start`? True iff the resources the
/// candidate is still holding at that tick leave room for the head's
/// need inside the reservation-time availability.
fn backfill_fits_reservation(
    res: &Reservation,
    now: u64,
    pending: &[Pending],
    member_idxs: &[usize],
) -> bool {
    let mut held = ResourceReq::default();
    for &k in member_idxs {
        let q = &pending[k];
        if now + q.duration > res.start {
            held.cpu_nodes += q.req.cpu_nodes;
            held.qpus += q.req.qpus;
        }
    }
    res.avail.cpu_nodes >= res.need.cpu_nodes + held.cpu_nodes
        && res.avail.qpus >= res.need.qpus + held.qpus
}

/// The paper's Fig. 1 workload: `k` hybrid jobs, each with a classical
/// component (long) and a quantum component (short), on a cluster with one
/// QPU. Returns (monolithic outcome, heterogeneous outcome).
pub fn fig1_hetjob_scenario(
    k: usize,
    classical_ticks: u64,
    quantum_ticks: u64,
    cluster: Cluster,
) -> (ScheduleOutcome, ScheduleOutcome) {
    let build = |mode: JobMode| -> Vec<Job> {
        (0..k)
            .map(|_| Job {
                submit: 0,
                mode,
                components: vec![
                    JobComponent {
                        name: "classical".into(),
                        req: ResourceReq::cpu(1),
                        duration: classical_ticks,
                    },
                    JobComponent {
                        name: "quantum".into(),
                        req: ResourceReq::quantum(1, 1),
                        duration: quantum_ticks,
                    },
                ],
            })
            .collect()
    };
    let sched = Scheduler::new(cluster, true);
    (sched.run(&build(JobMode::Monolithic)), sched.run(&build(JobMode::Heterogeneous)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster { cpu_nodes: 4, qpus: 1 }
    }

    #[test]
    fn single_job_runs_immediately() {
        let sched = Scheduler::new(cluster(), false);
        let out = sched.run(&[Job {
            submit: 0,
            mode: JobMode::Monolithic,
            components: vec![JobComponent {
                name: "a".into(),
                req: ResourceReq::cpu(2),
                duration: 10,
            }],
        }]);
        assert_eq!(out.makespan, 10);
        assert_eq!(out.gantt[0].start, 0);
    }

    #[test]
    fn monolithic_components_start_together() {
        let sched = Scheduler::new(cluster(), false);
        let out = sched.run(&[Job {
            submit: 0,
            mode: JobMode::Monolithic,
            components: vec![
                JobComponent { name: "c".into(), req: ResourceReq::cpu(3), duration: 10 },
                JobComponent { name: "q".into(), req: ResourceReq::quantum(1, 1), duration: 4 },
            ],
        }]);
        assert!(out.gantt.iter().all(|e| e.start == 0));
    }

    #[test]
    fn jobs_queue_when_resources_exhausted() {
        let sched = Scheduler::new(Cluster { cpu_nodes: 1, qpus: 0 }, false);
        let job = |_: usize| Job {
            submit: 0,
            mode: JobMode::Monolithic,
            components: vec![JobComponent {
                name: "x".into(),
                req: ResourceReq::cpu(1),
                duration: 5,
            }],
        };
        let out = sched.run(&[job(0), job(1), job(2)]);
        assert_eq!(out.makespan, 15);
        let mut starts: Vec<u64> = out.gantt.iter().map(|e| e.start).collect();
        starts.sort_unstable();
        assert_eq!(starts, vec![0, 5, 10]);
    }

    #[test]
    fn het_jobs_reduce_qpu_idle_time() {
        // Fig. 1 reproduction: classical 10 ticks, quantum 3 ticks, 1 QPU.
        let (mono, het) = fig1_hetjob_scenario(4, 10, 3, Cluster { cpu_nodes: 8, qpus: 1 });
        let (mono_idle, het_idle) = (
            mono.qpu_idle_fraction().expect("cluster has a QPU"),
            het.qpu_idle_fraction().expect("cluster has a QPU"),
        );
        assert!(het_idle < mono_idle, "het idle {het_idle} !< mono idle {mono_idle}");
        assert!(het.makespan <= mono.makespan);
    }

    #[test]
    fn backfill_improves_utilization() {
        // running job leaves one node free; the queue head needs the whole
        // machine, so only backfill lets the small job use that node now
        let big = Job {
            submit: 0,
            mode: JobMode::Monolithic,
            components: vec![JobComponent {
                name: "big".into(),
                req: ResourceReq::cpu(3),
                duration: 10,
            }],
        };
        let blocker = Job {
            submit: 0,
            mode: JobMode::Monolithic,
            components: vec![JobComponent {
                name: "blk".into(),
                req: ResourceReq::cpu(4),
                duration: 10,
            }],
        };
        let small = Job {
            submit: 0,
            mode: JobMode::Monolithic,
            components: vec![JobComponent {
                name: "small".into(),
                req: ResourceReq::cpu(1),
                duration: 2,
            }],
        };
        let jobs = vec![big, blocker, small];
        let no_bf = Scheduler::new(cluster(), false).run(&jobs);
        let bf = Scheduler::new(cluster(), true).run(&jobs);
        let small_start = |o: &ScheduleOutcome| {
            o.gantt.iter().find(|e| e.name == "small").map(|e| e.start).unwrap()
        };
        assert!(small_start(&bf) < small_start(&no_bf));
    }

    #[test]
    fn submit_times_respected() {
        let sched = Scheduler::new(cluster(), false);
        let out = sched.run(&[Job {
            submit: 7,
            mode: JobMode::Monolithic,
            components: vec![JobComponent {
                name: "x".into(),
                req: ResourceReq::cpu(1),
                duration: 1,
            }],
        }]);
        assert_eq!(out.gantt[0].start, 7);
        assert_eq!(out.makespan, 8);
    }

    /// One single-component job, for the backfill scenarios.
    fn simple(name: &str, submit: u64, cpu: usize, qpus: usize, duration: u64) -> Job {
        Job {
            submit,
            mode: JobMode::Monolithic,
            components: vec![JobComponent {
                name: name.into(),
                req: ResourceReq { cpu_nodes: cpu, qpus },
                duration,
            }],
        }
    }

    fn start_of(out: &ScheduleOutcome, name: &str) -> u64 {
        out.gantt.iter().find(|e| e.name == name).map(|e| e.start).unwrap()
    }

    /// Regression (aggressive backfill): a long small job must not grab
    /// the nodes the blocked head is waiting for. `runner` (2 cpu, ends
    /// t=10) leaves 2 of 4 nodes free; `head` needs all 4, so its
    /// reservation is t=10. `filler` (2 cpu, 20 ticks) fits the free
    /// nodes *now*, but holding them past t=10 would push the head to
    /// t=20 — conservative backfill must refuse it.
    #[test]
    fn backfill_never_delays_blocked_head() {
        let jobs = vec![
            simple("runner", 0, 2, 0, 10),
            simple("head", 0, 4, 0, 5),
            simple("filler", 0, 2, 0, 20),
        ];
        let out = Scheduler::new(cluster(), true).run(&jobs);
        assert_eq!(start_of(&out, "runner"), 0);
        assert_eq!(start_of(&out, "head"), 10, "head starts at its reservation, undelayed");
        assert_eq!(start_of(&out, "filler"), 15, "filler waits for the head instead");
    }

    /// A filler that finishes exactly at the reservation tick is harmless
    /// and must still be backfilled (that is the point of backfill).
    #[test]
    fn backfill_admits_filler_that_finishes_by_reservation() {
        let jobs = vec![
            simple("runner", 0, 2, 0, 10),
            simple("head", 0, 4, 0, 5),
            simple("filler", 0, 2, 0, 10),
        ];
        let out = Scheduler::new(cluster(), true).run(&jobs);
        assert_eq!(start_of(&out, "filler"), 0, "filler fits entirely before the reservation");
        assert_eq!(start_of(&out, "head"), 10);
    }

    /// A filler that runs long past the reservation is also fine when it
    /// holds only resources the head's reservation does not need (here:
    /// the QPU, while the head is purely classical).
    #[test]
    fn backfill_admits_filler_on_resources_head_does_not_need() {
        let jobs = vec![
            simple("runner", 0, 2, 0, 10),
            simple("head", 0, 4, 0, 5),
            simple("filler", 0, 0, 1, 100),
        ];
        let out = Scheduler::new(cluster(), true).run(&jobs);
        assert_eq!(start_of(&out, "filler"), 0, "QPU-only filler cannot delay a CPU-only head");
        assert_eq!(start_of(&out, "head"), 10);
    }

    /// Regression (strict FIFO): without backfill, a head that has not
    /// arrived yet still blocks the queue — a later-queued job must not
    /// overtake it just because it happens to be ready.
    #[test]
    fn strict_fifo_blocks_on_not_yet_ready_head() {
        let jobs = vec![simple("head", 5, 1, 0, 5), simple("late", 0, 1, 0, 5)];
        let out = Scheduler::new(Cluster { cpu_nodes: 1, qpus: 0 }, false).run(&jobs);
        assert_eq!(start_of(&out, "head"), 5, "head starts as soon as it arrives");
        assert_eq!(start_of(&out, "late"), 10, "strict FIFO: `late` never overtakes the head");
        assert_eq!(out.makespan, 15);
    }

    /// With backfill, overtaking a not-yet-arrived head is fine exactly
    /// when it cannot delay the head's arrival-time start.
    #[test]
    fn backfill_may_overtake_sleeping_head_only_harmlessly() {
        let harmless = vec![simple("head", 5, 1, 0, 5), simple("fits", 0, 1, 0, 5)];
        let out = Scheduler::new(Cluster { cpu_nodes: 1, qpus: 0 }, true).run(&harmless);
        assert_eq!(start_of(&out, "fits"), 0, "ends exactly when the head arrives");
        assert_eq!(start_of(&out, "head"), 5);

        let harmful = vec![simple("head", 5, 1, 0, 5), simple("long", 0, 1, 0, 6)];
        let out = Scheduler::new(Cluster { cpu_nodes: 1, qpus: 0 }, true).run(&harmful);
        assert_eq!(start_of(&out, "head"), 5, "6-tick filler would delay the head to t=6");
        assert_eq!(start_of(&out, "long"), 10);
    }

    /// Regression (absent resource classes): a QPU-less cluster reports
    /// no QPU utilization at all instead of a fabricated 0.0 / idle 1.0.
    #[test]
    fn utilization_omits_absent_resource_classes() {
        let out = Scheduler::new(Cluster { cpu_nodes: 2, qpus: 0 }, false)
            .run(&[simple("work", 0, 2, 0, 4)]);
        assert!(out.utilization.contains_key("cpu"));
        assert!(!out.utilization.contains_key("qpu"), "no QPUs -> no qpu utilization entry");
        assert_eq!(out.qpu_idle_fraction(), None);
        assert!((out.utilization["cpu"] - 1.0).abs() < 1e-12);
    }

    /// Components that fit individually but not simultaneously make a
    /// monolithic job unstartable — reject it up front instead of
    /// spinning into the no-progress `unreachable!`.
    #[test]
    #[should_panic(expected = "monolithic aggregate exceeds cluster capacity")]
    fn oversized_monolithic_aggregate_panics() {
        let sched = Scheduler::new(cluster(), false);
        sched.run(&[Job {
            submit: 0,
            mode: JobMode::Monolithic,
            components: vec![
                JobComponent { name: "a".into(), req: ResourceReq::cpu(3), duration: 1 },
                JobComponent { name: "b".into(), req: ResourceReq::cpu(3), duration: 1 },
            ],
        }]);
    }

    /// The same pair of components is fine as a heterogeneous job (they
    /// run one after the other).
    #[test]
    fn heterogeneous_aggregate_may_exceed_capacity() {
        let sched = Scheduler::new(cluster(), false);
        let out = sched.run(&[Job {
            submit: 0,
            mode: JobMode::Heterogeneous,
            components: vec![
                JobComponent { name: "a".into(), req: ResourceReq::cpu(3), duration: 2 },
                JobComponent { name: "b".into(), req: ResourceReq::cpu(3), duration: 2 },
            ],
        }]);
        assert_eq!(out.makespan, 4);
    }

    #[test]
    #[should_panic(expected = "exceeds cluster capacity")]
    fn oversized_component_panics() {
        let sched = Scheduler::new(cluster(), false);
        sched.run(&[Job {
            submit: 0,
            mode: JobMode::Monolithic,
            components: vec![JobComponent {
                name: "x".into(),
                req: ResourceReq::cpu(5),
                duration: 1,
            }],
        }]);
    }

    #[test]
    fn utilization_bounded_by_one() {
        let (mono, het) = fig1_hetjob_scenario(6, 8, 2, Cluster { cpu_nodes: 3, qpus: 1 });
        for out in [mono, het] {
            for (_, u) in out.utilization.iter() {
                assert!((0.0..=1.0 + 1e-9).contains(u));
            }
        }
    }
}
