//! SLURM-like workload manager (discrete-event simulation).
//!
//! Models what the paper actually uses SLURM for:
//!
//! * **MPMD jobs** ([`JobMode::Monolithic`]) — all components must be
//!   allocated simultaneously (one `srun` with several programs);
//! * **heterogeneous jobs** ([`JobMode::Heterogeneous`]) — components are
//!   co-submitted but each starts as soon as *its* resources are free.
//!   Fig. 1's point: with a scarce quantum device, het jobs let job 2's
//!   QPU component start while job 1's classical component still runs,
//!   cutting QPU idle time.
//!
//! Time is unitless ticks. The scheduler is deterministic: FIFO order with
//! optional conservative backfill (a later component may start early only
//! if it does not delay any earlier pending component's earliest start).

use std::collections::BTreeMap;

/// Resource classes a component can request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Classical compute nodes.
    CpuNode,
    /// Quantum processing units (simulated devices).
    Qpu,
}

/// Amounts of each resource a component needs for its whole runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceReq {
    /// Classical nodes.
    pub cpu_nodes: usize,
    /// Quantum devices.
    pub qpus: usize,
}

impl ResourceReq {
    /// Pure-classical request.
    pub fn cpu(cpu_nodes: usize) -> Self {
        ResourceReq { cpu_nodes, qpus: 0 }
    }

    /// Request including quantum devices.
    pub fn quantum(cpu_nodes: usize, qpus: usize) -> Self {
        ResourceReq { cpu_nodes, qpus }
    }
}

/// One program of an MPMD/heterogeneous job.
#[derive(Debug, Clone)]
pub struct JobComponent {
    /// Label for reports ("qaoa-sim", "gw", "coordinator", …).
    pub name: String,
    /// Resources held for the duration.
    pub req: ResourceReq,
    /// Runtime in ticks.
    pub duration: u64,
}

/// How a job's components are co-scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobMode {
    /// All components start together (plain MPMD `srun`).
    Monolithic,
    /// Components start independently (SLURM heterogeneous job).
    Heterogeneous,
}

/// A submitted job.
#[derive(Debug, Clone)]
pub struct Job {
    /// Submission time (ticks).
    pub submit: u64,
    /// Components.
    pub components: Vec<JobComponent>,
    /// Co-scheduling mode.
    pub mode: JobMode,
}

/// Cluster capacity.
#[derive(Debug, Clone, Copy)]
pub struct Cluster {
    /// Classical node count.
    pub cpu_nodes: usize,
    /// Quantum device count.
    pub qpus: usize,
}

/// One scheduled interval in the Gantt record.
#[derive(Debug, Clone, PartialEq)]
pub struct GanttEntry {
    /// Job index (submission order).
    pub job: usize,
    /// Component index within the job.
    pub component: usize,
    /// Component label.
    pub name: String,
    /// Start tick.
    pub start: u64,
    /// End tick.
    pub end: u64,
    /// Resources held.
    pub req: ResourceReq,
}

/// Result of scheduling a batch.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// Per-component intervals.
    pub gantt: Vec<GanttEntry>,
    /// Time the last component finishes.
    pub makespan: u64,
    /// Busy ticks per resource class (summed over units).
    pub busy: BTreeMap<&'static str, u64>,
    /// Utilization per resource class in `[0, 1]` over the makespan.
    pub utilization: BTreeMap<&'static str, f64>,
}

impl ScheduleOutcome {
    /// Idle fraction of the quantum devices — the Fig. 1 metric.
    pub fn qpu_idle_fraction(&self) -> f64 {
        1.0 - self.utilization.get("qpu").copied().unwrap_or(0.0)
    }
}

/// Deterministic discrete-event scheduler.
#[derive(Debug, Clone)]
pub struct Scheduler {
    cluster: Cluster,
    backfill: bool,
}

/// A pending component, flattened from the job list.
#[derive(Debug, Clone)]
struct Pending {
    job: usize,
    component: usize,
    name: String,
    req: ResourceReq,
    duration: u64,
    ready: u64,
    /// For monolithic jobs, all components share a group id and must start
    /// at one time.
    group: Option<usize>,
}

impl Scheduler {
    /// Scheduler over a cluster; `backfill` enables conservative backfill.
    pub fn new(cluster: Cluster, backfill: bool) -> Self {
        assert!(cluster.cpu_nodes > 0 || cluster.qpus > 0, "cluster has no resources");
        Scheduler { cluster, backfill }
    }

    /// Schedule a batch of jobs; panics if any single component exceeds the
    /// cluster capacity (it could never run).
    pub fn run(&self, jobs: &[Job]) -> ScheduleOutcome {
        for (j, job) in jobs.iter().enumerate() {
            for (c, comp) in job.components.iter().enumerate() {
                assert!(
                    comp.req.cpu_nodes <= self.cluster.cpu_nodes
                        && comp.req.qpus <= self.cluster.qpus,
                    "job {j} component {c} exceeds cluster capacity"
                );
            }
        }

        // Flatten to pending list in FIFO order.
        let mut pending: Vec<Pending> = Vec::new();
        for (j, job) in jobs.iter().enumerate() {
            let group = matches!(job.mode, JobMode::Monolithic).then_some(j);
            for (c, comp) in job.components.iter().enumerate() {
                pending.push(Pending {
                    job: j,
                    component: c,
                    name: comp.name.clone(),
                    req: comp.req,
                    duration: comp.duration,
                    ready: job.submit,
                    group,
                });
            }
        }

        let mut gantt: Vec<GanttEntry> = Vec::new();
        let mut running: Vec<(u64, ResourceReq)> = Vec::new(); // (end, held)
        let mut free = self.cluster;
        let mut now = 0u64;

        while !pending.is_empty() {
            // Release everything finishing at or before `now`.
            running.retain(|&(end, req)| {
                if end <= now {
                    free.cpu_nodes += req.cpu_nodes;
                    free.qpus += req.qpus;
                    false
                } else {
                    true
                }
            });

            // Try to start components in FIFO order.
            let mut started_any = false;
            let mut i = 0;
            let mut blocked_head = false;
            while i < pending.len() {
                let can_consider = !blocked_head || self.backfill;
                if !can_consider {
                    break;
                }
                let p = &pending[i];
                if p.ready > now {
                    i += 1;
                    continue;
                }
                let startable = match p.group {
                    None => fits(&free, &p.req),
                    Some(gid) => {
                        // monolithic: all same-group components must fit at once
                        let mut need = ResourceReq::default();
                        for q in pending.iter().filter(|q| q.group == Some(gid)) {
                            need.cpu_nodes += q.req.cpu_nodes;
                            need.qpus += q.req.qpus;
                        }
                        fits(&free, &need)
                    }
                };
                if startable {
                    // start the component (or the whole monolithic group)
                    let group = p.group;
                    let idxs: Vec<usize> = pending
                        .iter()
                        .enumerate()
                        .filter(|(k, q)| if group.is_some() { q.group == group } else { *k == i })
                        .map(|(k, _)| k)
                        .collect();
                    for &k in idxs.iter().rev() {
                        let q = pending.remove(k);
                        free.cpu_nodes -= q.req.cpu_nodes;
                        free.qpus -= q.req.qpus;
                        running.push((now + q.duration, q.req));
                        gantt.push(GanttEntry {
                            job: q.job,
                            component: q.component,
                            name: q.name,
                            start: now,
                            end: now + q.duration,
                            req: q.req,
                        });
                    }
                    started_any = true;
                    i = 0; // restart FIFO scan
                    blocked_head = false;
                } else {
                    if i == 0 || !blocked_head {
                        blocked_head = true;
                    }
                    i += 1;
                }
            }

            if pending.is_empty() {
                break;
            }
            if !started_any {
                // advance to the next event: earliest completion or ready time
                let next_end = running.iter().map(|&(e, _)| e).min();
                let next_ready = pending.iter().map(|p| p.ready).filter(|&r| r > now).min();
                now = match (next_end, next_ready) {
                    (Some(e), Some(r)) => e.min(r),
                    (Some(e), None) => e,
                    (None, Some(r)) => r,
                    (None, None) => unreachable!("pending work with nothing running or arriving"),
                };
            }
        }

        let makespan = gantt.iter().map(|e| e.end).max().unwrap_or(0);
        let mut busy: BTreeMap<&'static str, u64> = BTreeMap::new();
        for e in &gantt {
            *busy.entry("cpu").or_default() += e.req.cpu_nodes as u64 * (e.end - e.start);
            *busy.entry("qpu").or_default() += e.req.qpus as u64 * (e.end - e.start);
        }
        let mut utilization = BTreeMap::new();
        if makespan > 0 {
            utilization.insert(
                "cpu",
                busy.get("cpu").copied().unwrap_or(0) as f64
                    / (self.cluster.cpu_nodes as f64 * makespan as f64).max(1.0),
            );
            utilization.insert(
                "qpu",
                busy.get("qpu").copied().unwrap_or(0) as f64
                    / (self.cluster.qpus as f64 * makespan as f64).max(1.0),
            );
        }
        ScheduleOutcome { gantt, makespan, busy, utilization }
    }
}

fn fits(free: &Cluster, req: &ResourceReq) -> bool {
    free.cpu_nodes >= req.cpu_nodes && free.qpus >= req.qpus
}

/// The paper's Fig. 1 workload: `k` hybrid jobs, each with a classical
/// component (long) and a quantum component (short), on a cluster with one
/// QPU. Returns (monolithic outcome, heterogeneous outcome).
pub fn fig1_hetjob_scenario(
    k: usize,
    classical_ticks: u64,
    quantum_ticks: u64,
    cluster: Cluster,
) -> (ScheduleOutcome, ScheduleOutcome) {
    let build = |mode: JobMode| -> Vec<Job> {
        (0..k)
            .map(|_| Job {
                submit: 0,
                mode,
                components: vec![
                    JobComponent {
                        name: "classical".into(),
                        req: ResourceReq::cpu(1),
                        duration: classical_ticks,
                    },
                    JobComponent {
                        name: "quantum".into(),
                        req: ResourceReq::quantum(1, 1),
                        duration: quantum_ticks,
                    },
                ],
            })
            .collect()
    };
    let sched = Scheduler::new(cluster, true);
    (sched.run(&build(JobMode::Monolithic)), sched.run(&build(JobMode::Heterogeneous)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster { cpu_nodes: 4, qpus: 1 }
    }

    #[test]
    fn single_job_runs_immediately() {
        let sched = Scheduler::new(cluster(), false);
        let out = sched.run(&[Job {
            submit: 0,
            mode: JobMode::Monolithic,
            components: vec![JobComponent {
                name: "a".into(),
                req: ResourceReq::cpu(2),
                duration: 10,
            }],
        }]);
        assert_eq!(out.makespan, 10);
        assert_eq!(out.gantt[0].start, 0);
    }

    #[test]
    fn monolithic_components_start_together() {
        let sched = Scheduler::new(cluster(), false);
        let out = sched.run(&[Job {
            submit: 0,
            mode: JobMode::Monolithic,
            components: vec![
                JobComponent { name: "c".into(), req: ResourceReq::cpu(3), duration: 10 },
                JobComponent { name: "q".into(), req: ResourceReq::quantum(1, 1), duration: 4 },
            ],
        }]);
        assert!(out.gantt.iter().all(|e| e.start == 0));
    }

    #[test]
    fn jobs_queue_when_resources_exhausted() {
        let sched = Scheduler::new(Cluster { cpu_nodes: 1, qpus: 0 }, false);
        let job = |_: usize| Job {
            submit: 0,
            mode: JobMode::Monolithic,
            components: vec![JobComponent {
                name: "x".into(),
                req: ResourceReq::cpu(1),
                duration: 5,
            }],
        };
        let out = sched.run(&[job(0), job(1), job(2)]);
        assert_eq!(out.makespan, 15);
        let mut starts: Vec<u64> = out.gantt.iter().map(|e| e.start).collect();
        starts.sort_unstable();
        assert_eq!(starts, vec![0, 5, 10]);
    }

    #[test]
    fn het_jobs_reduce_qpu_idle_time() {
        // Fig. 1 reproduction: classical 10 ticks, quantum 3 ticks, 1 QPU.
        let (mono, het) = fig1_hetjob_scenario(4, 10, 3, Cluster { cpu_nodes: 8, qpus: 1 });
        assert!(
            het.qpu_idle_fraction() < mono.qpu_idle_fraction(),
            "het idle {} !< mono idle {}",
            het.qpu_idle_fraction(),
            mono.qpu_idle_fraction()
        );
        assert!(het.makespan <= mono.makespan);
    }

    #[test]
    fn backfill_improves_utilization() {
        // running job leaves one node free; the queue head needs the whole
        // machine, so only backfill lets the small job use that node now
        let big = Job {
            submit: 0,
            mode: JobMode::Monolithic,
            components: vec![JobComponent {
                name: "big".into(),
                req: ResourceReq::cpu(3),
                duration: 10,
            }],
        };
        let blocker = Job {
            submit: 0,
            mode: JobMode::Monolithic,
            components: vec![JobComponent {
                name: "blk".into(),
                req: ResourceReq::cpu(4),
                duration: 10,
            }],
        };
        let small = Job {
            submit: 0,
            mode: JobMode::Monolithic,
            components: vec![JobComponent {
                name: "small".into(),
                req: ResourceReq::cpu(1),
                duration: 2,
            }],
        };
        let jobs = vec![big, blocker, small];
        let no_bf = Scheduler::new(cluster(), false).run(&jobs);
        let bf = Scheduler::new(cluster(), true).run(&jobs);
        let small_start = |o: &ScheduleOutcome| {
            o.gantt.iter().find(|e| e.name == "small").map(|e| e.start).unwrap()
        };
        assert!(small_start(&bf) < small_start(&no_bf));
    }

    #[test]
    fn submit_times_respected() {
        let sched = Scheduler::new(cluster(), false);
        let out = sched.run(&[Job {
            submit: 7,
            mode: JobMode::Monolithic,
            components: vec![JobComponent {
                name: "x".into(),
                req: ResourceReq::cpu(1),
                duration: 1,
            }],
        }]);
        assert_eq!(out.gantt[0].start, 7);
        assert_eq!(out.makespan, 8);
    }

    #[test]
    #[should_panic(expected = "exceeds cluster capacity")]
    fn oversized_component_panics() {
        let sched = Scheduler::new(cluster(), false);
        sched.run(&[Job {
            submit: 0,
            mode: JobMode::Monolithic,
            components: vec![JobComponent {
                name: "x".into(),
                req: ResourceReq::cpu(5),
                duration: 1,
            }],
        }]);
    }

    #[test]
    fn utilization_bounded_by_one() {
        let (mono, het) = fig1_hetjob_scenario(6, 8, 2, Cluster { cpu_nodes: 3, qpus: 1 });
        for out in [mono, het] {
            for (_, u) in out.utilization.iter() {
                assert!((0.0..=1.0 + 1e-9).contains(u));
            }
        }
    }
}
