//! Bounded model checking of the work-stealing pool protocol.
//!
//! The vendored rayon's pool (`crates/vendor/rayon/src/pool.rs`) is a
//! lock-per-deque work-stealing executor with epoch/condvar parking.
//! Every shared access happens inside a `Mutex` critical section, so the
//! protocol's entire behavior space is the set of **interleavings of
//! those critical sections** — a finite space for a bounded number of
//! virtual workers and jobs, which this module explores *exhaustively*
//! by depth-first search with state memoization.
//!
//! Fidelity comes from two design choices:
//!
//! 1. **The policy is the real code.** Batch placement, deque scan
//!    order, which deque end each party pops, and the parking discipline
//!    are not mirrored here — the checker calls the same
//!    [`rayon::proto`] functions `pool.rs` executes. Change the policy
//!    and the checker checks the new policy.
//! 2. **Steps are critical sections.** Each transition is exactly one
//!    lock-protected region of `pool.rs` (an epoch read, one deque
//!    pop attempt, one placement group push, the epoch bump+notify, the
//!    park-recheck). For data-race-free lock-based code this granularity
//!    is sound: any real-thread execution is equivalent to some
//!    serialization of its critical sections.
//!
//! Checked properties, at every step and terminal state:
//!
//! * **No lost wake-up** — the system never reaches a state where jobs
//!   are queued, the submitter is done, and every worker is parked
//!   (the epoch/condvar discipline's whole purpose).
//! * **Exactly-once execution** — no job fires twice (double pop /
//!   double steal) and none leaks (stolen but never run).
//! * **Stable combine order** — the `(chunk index, result)` reporting
//!   protocol reconstructs results in chunk order on every schedule, so
//!   stealing can never reach an `f64` reduction.
//!
//! Seeded mutations ([`Mutation`]) break the protocol the ways real
//! regressions would; the checker must catch each one, which is itself
//! asserted in CI — a checker that cannot find the canonical bug is
//! worse than none.

use rayon::proto::{self, DequeEnd, ParkOrder};
use std::collections::BTreeSet;

/// A seeded protocol mutation for validating the checker's teeth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Park with the epoch snapshot taken *after* the deque scan — the
    /// canonical lost-wake-up bug the snapshot-before-scan discipline
    /// prevents.
    ScanBeforeSnapshot,
    /// Submission bumps the epoch but never signals the condvar —
    /// already-parked workers sleep through it.
    NoNotify,
    /// A thief reads the victim's trailing job but forgets to remove it
    /// — the double-execution race the deque locking prevents.
    StealLeave,
}

impl Mutation {
    pub fn parse(s: &str) -> Option<Mutation> {
        match s {
            "scan-before-snapshot" => Some(Mutation::ScanBeforeSnapshot),
            "no-notify" => Some(Mutation::NoNotify),
            "steal-leave" => Some(Mutation::StealLeave),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Mutation::ScanBeforeSnapshot => "scan-before-snapshot",
            Mutation::NoNotify => "no-notify",
            Mutation::StealLeave => "steal-leave",
        }
    }

    /// All mutations, for `--mutate all` / tests.
    pub const ALL: [Mutation; 3] =
        [Mutation::ScanBeforeSnapshot, Mutation::NoNotify, Mutation::StealLeave];
}

/// Checker configuration.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Virtual workers (= deques). 2–3 is exhaustive in well under a
    /// second; the protocol has no per-worker special cases beyond the
    /// scan rotation, so small counts cover the interesting races.
    pub workers: usize,
    /// Jobs per submitted batch — the leaves of one split tree.
    pub leaves: usize,
    /// Batches submitted back-to-back (placement start rotates between
    /// them, as the pool's `next` counter does).
    pub batches: usize,
    /// Exercise the force-steal policy variant instead of the default.
    pub force_steal: bool,
    /// Protocol mutation under test (`None` = the real protocol).
    pub mutation: Option<Mutation>,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig { workers: 2, leaves: 4, batches: 1, force_steal: false, mutation: None }
    }
}

/// A protocol violation, with the schedule that produced it.
#[derive(Debug, Clone)]
pub struct Violation {
    pub kind: ViolationKind,
    /// Human-readable step trace of the violating schedule.
    pub trace: Vec<String>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// Jobs queued, submitter done, every worker parked.
    LostWakeup { pending: Vec<u8> },
    /// A job fired twice.
    DoubleExecution { job: u8 },
    /// A job was never executed although the run terminated cleanly.
    LeakedJob { job: u8 },
    /// The chunk-indexed combine produced the wrong order.
    CombineOrder { got: Vec<u8> },
}

impl ViolationKind {
    pub fn describe(&self) -> String {
        match self {
            ViolationKind::LostWakeup { pending } => format!(
                "lost wake-up: jobs {pending:?} still queued with all workers parked and the \
                 submitter done"
            ),
            ViolationKind::DoubleExecution { job } => {
                format!("double execution: job {job} fired twice")
            }
            ViolationKind::LeakedJob { job } => {
                format!("leaked job: job {job} was queued but never executed")
            }
            ViolationKind::CombineOrder { got } => {
                format!("combine order broken: got {got:?}, expected ascending chunk indices")
            }
        }
    }
}

/// Exploration summary.
#[derive(Debug)]
pub struct Report {
    pub config: ModelConfig,
    /// Distinct states visited.
    pub states: usize,
    /// Terminal states reached (all jobs done, everyone parked).
    pub terminals: usize,
    /// First violation found, if any (exploration stops there).
    pub violation: Option<Violation>,
}

// ------------------------------------------------------------- the model

/// Worker control state — one variant per point *between* critical
/// sections of `pool.rs::worker` / `Inner::find_job`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Wk {
    /// Top of the loop, about to read the epoch (snapshot-before-scan).
    Idle,
    /// Holding `snapshot`, about to try deque `scan[k]`.
    Scan { snapshot: u8, k: u8 },
    /// Mutated variant: scanning with *no* snapshot yet.
    ScanNoSnap { k: u8 },
    /// Mutated variant: scan exhausted, about to read the epoch and park
    /// on it unconditionally (the bug).
    ParkNoSnap,
    /// Scan exhausted; about to re-check the epoch against `snapshot`
    /// and park only if unchanged.
    ParkCheck { snapshot: u8 },
    /// Asleep on the condvar; only a notify can move it (back to
    /// `ParkCheck`, which models the wait-loop recheck).
    Parked { snapshot: u8 },
    /// Holding a popped job, about to execute it.
    Run { job: u8 },
}

/// One submitter step: a placement group push or the epoch bump.
#[derive(Debug, Clone)]
enum SubStep {
    Place { deque: usize, jobs: Vec<u8> },
    Bump,
}

/// Full system state. `Ord`-derived so the visited set is a `BTreeSet`
/// (deterministic exploration, no hash order anywhere in the checker).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct State {
    deques: Vec<Vec<u8>>,
    epoch: u8,
    workers: Vec<Wk>,
    /// Index into the submitter's step list.
    sub_pc: u8,
    /// Executions per job (violation as soon as any hits 2).
    exec_count: Vec<u8>,
    /// Job ids in completion-report (channel send) order.
    arrival: Vec<u8>,
}

/// Exhaustively explore all schedules for `cfg`, sweeping every
/// placement-start rotation.
pub fn check(cfg: &ModelConfig) -> Report {
    assert!(cfg.workers >= 1 && cfg.workers <= 4, "bounded checker: 1–4 workers");
    assert!(cfg.leaves >= 1 && cfg.leaves <= 8, "bounded checker: 1–8 leaves");
    assert!(cfg.batches >= 1 && cfg.batches <= 2, "bounded checker: 1–2 batches");
    let mut states = 0;
    let mut terminals = 0;
    let mut violation = None;
    for start in 0..cfg.workers {
        let mut explorer = Explorer::new(cfg, start);
        let init = explorer.initial();
        explorer.dfs(init, &mut Vec::new());
        states += explorer.visited.len();
        terminals += explorer.terminals;
        if explorer.violation.is_some() {
            violation = explorer.violation;
            break;
        }
    }
    Report { config: cfg.clone(), states, terminals, violation }
}

struct Explorer<'a> {
    cfg: &'a ModelConfig,
    sub_steps: Vec<SubStep>,
    total_jobs: usize,
    visited: BTreeSet<State>,
    terminals: usize,
    violation: Option<Violation>,
}

impl<'a> Explorer<'a> {
    fn new(cfg: &'a ModelConfig, start: usize) -> Self {
        // Submitter step list: for each batch, its placement groups (one
        // critical section per deque touched, exactly as submit_batch
        // locks deques one at a time), then the epoch bump.
        let mut sub_steps = Vec::new();
        let mut next_job: u8 = 0;
        for b in 0..cfg.batches {
            let s = (start + b) % cfg.workers;
            let placement = if cfg.force_steal {
                proto::force_steal_placement(cfg.leaves, cfg.workers, s)
            } else {
                proto::batch_placement(cfg.leaves, cfg.workers, s)
            };
            for (deque, take) in placement {
                let jobs: Vec<u8> = (0..take)
                    .map(|_| {
                        let id = next_job;
                        next_job += 1;
                        id
                    })
                    .collect();
                sub_steps.push(SubStep::Place { deque, jobs });
            }
            sub_steps.push(SubStep::Bump);
        }
        Explorer {
            cfg,
            sub_steps,
            total_jobs: cfg.leaves * cfg.batches,
            visited: BTreeSet::new(),
            terminals: 0,
            violation: None,
        }
    }

    fn initial(&self) -> State {
        State {
            deques: vec![Vec::new(); self.cfg.workers],
            epoch: 0,
            workers: vec![Wk::Idle; self.cfg.workers],
            sub_pc: 0,
            exec_count: vec![0; self.total_jobs],
            arrival: Vec::new(),
        }
    }

    /// The deque-visit order worker `id` uses — the pool's real policy.
    fn scan(&self, id: usize) -> Vec<usize> {
        if self.cfg.force_steal {
            proto::scan_order_force_steal(id, self.cfg.workers).collect()
        } else {
            proto::scan_order(id, self.cfg.workers).collect()
        }
    }

    fn park_order(&self) -> ParkOrder {
        if self.cfg.mutation == Some(Mutation::ScanBeforeSnapshot) {
            ParkOrder::ScanBeforeSnapshot
        } else {
            proto::PARK_ORDER
        }
    }

    /// Depth-first exploration. `trace` is the step log of the current
    /// schedule, kept for violation reports.
    fn dfs(&mut self, state: State, trace: &mut Vec<String>) {
        if self.violation.is_some() || self.visited.contains(&state) {
            return;
        }
        self.visited.insert(state.clone());

        let mut any = false;
        // submitter step
        if (state.sub_pc as usize) < self.sub_steps.len() {
            any = true;
            let (next, desc) = self.submit_step(&state);
            trace.push(desc);
            self.dfs(next, trace);
            trace.pop();
            if self.violation.is_some() {
                return;
            }
        }
        // worker steps
        for w in 0..self.cfg.workers {
            if matches!(state.workers[w], Wk::Parked { .. }) {
                continue;
            }
            any = true;
            let (next, desc) = self.worker_step(&state, w);
            trace.push(desc);
            if let Some(kind) = self.check_step(&next) {
                self.violation = Some(Violation { kind, trace: trace.clone() });
                return;
            }
            self.dfs(next, trace);
            trace.pop();
            if self.violation.is_some() {
                return;
            }
        }

        if !any {
            // Terminal: submitter done, every worker parked.
            self.terminals += 1;
            if let Some(kind) = self.check_terminal(&state) {
                self.violation = Some(Violation { kind, trace: trace.clone() });
            }
        }
    }

    fn submit_step(&self, state: &State) -> (State, String) {
        let mut next = state.clone();
        next.sub_pc += 1;
        match &self.sub_steps[state.sub_pc as usize] {
            SubStep::Place { deque, jobs } => {
                next.deques[*deque].extend_from_slice(jobs);
                (next, format!("submit: place {jobs:?} on deque {deque}"))
            }
            SubStep::Bump => {
                next.epoch += 1;
                if self.cfg.mutation != Some(Mutation::NoNotify) {
                    // notify_all: every parked worker re-enters the
                    // wait-loop recheck
                    for wk in &mut next.workers {
                        if let Wk::Parked { snapshot } = *wk {
                            *wk = Wk::ParkCheck { snapshot };
                        }
                    }
                }
                let desc = format!("submit: bump epoch -> {} + notify", next.epoch);
                (next, desc)
            }
        }
    }

    fn worker_step(&self, state: &State, w: usize) -> (State, String) {
        let mut next = state.clone();
        let scan = self.scan(w);
        let desc;
        next.workers[w] = match state.workers[w] {
            Wk::Idle => match self.park_order() {
                ParkOrder::SnapshotBeforeScan => {
                    desc = format!("w{w}: snapshot epoch {}", state.epoch);
                    Wk::Scan { snapshot: state.epoch, k: 0 }
                }
                ParkOrder::ScanBeforeSnapshot => {
                    desc = format!("w{w}: begin scan (no snapshot)");
                    Wk::ScanNoSnap { k: 0 }
                }
            },
            Wk::Scan { snapshot, k } => {
                let (wk, d) = self.scan_step(&mut next, w, &scan, k as usize, Some(snapshot));
                desc = d;
                wk
            }
            Wk::ScanNoSnap { k } => {
                let (wk, d) = self.scan_step(&mut next, w, &scan, k as usize, None);
                desc = d;
                wk
            }
            Wk::ParkNoSnap => {
                // the bug: read the epoch and park on it in one section —
                // the while-loop condition `epoch == seen` is trivially
                // true for a snapshot taken this instant
                desc = format!("w{w}: snapshot epoch {} and park on it", state.epoch);
                Wk::Parked { snapshot: state.epoch }
            }
            Wk::ParkCheck { snapshot } => {
                if state.epoch != snapshot {
                    desc = format!("w{w}: epoch moved ({} != {snapshot}), retry", state.epoch);
                    Wk::Idle
                } else {
                    desc = format!("w{w}: park (epoch still {snapshot})");
                    Wk::Parked { snapshot }
                }
            }
            Wk::Parked { .. } => unreachable!("parked workers are not scheduled"),
            Wk::Run { job } => {
                next.exec_count[job as usize] += 1;
                next.arrival.push(job);
                desc = format!("w{w}: execute job {job}");
                Wk::Idle
            }
        };
        (next, desc)
    }

    /// One deque-probe critical section: try `scan[k]`, popping the end
    /// the policy prescribes for this (worker, deque) pair.
    fn scan_step(
        &self,
        next: &mut State,
        w: usize,
        scan: &[usize],
        k: usize,
        snapshot: Option<u8>,
    ) -> (Wk, String) {
        let victim = scan[k];
        let popped = match proto::pop_end(w, victim) {
            DequeEnd::Front => {
                if next.deques[victim].is_empty() {
                    None
                } else {
                    Some(next.deques[victim].remove(0))
                }
            }
            DequeEnd::Back => {
                if self.cfg.mutation == Some(Mutation::StealLeave) && victim != w {
                    // the bug: read the trailing job but leave it queued
                    next.deques[victim].last().copied()
                } else {
                    next.deques[victim].pop()
                }
            }
        };
        match popped {
            Some(job) => (Wk::Run { job }, format!("w{w}: pop job {job} from deque {victim}")),
            None => {
                let k = k + 1;
                if k < scan.len() {
                    let wk = match snapshot {
                        Some(snapshot) => Wk::Scan { snapshot, k: k as u8 },
                        None => Wk::ScanNoSnap { k: k as u8 },
                    };
                    (wk, format!("w{w}: deque {victim} empty, next"))
                } else {
                    let wk = match snapshot {
                        Some(snapshot) => Wk::ParkCheck { snapshot },
                        None => Wk::ParkNoSnap,
                    };
                    (wk, format!("w{w}: scan exhausted"))
                }
            }
        }
    }

    /// Per-step safety checks (violations that must be caught the moment
    /// they occur, not at quiescence).
    fn check_step(&self, state: &State) -> Option<ViolationKind> {
        for (job, &count) in state.exec_count.iter().enumerate() {
            if count > 1 {
                return Some(ViolationKind::DoubleExecution { job: job as u8 });
            }
        }
        None
    }

    /// Terminal-state checks: nothing pending, everything ran once, and
    /// the chunk-indexed combine reconstructs ascending order.
    fn check_terminal(&self, state: &State) -> Option<ViolationKind> {
        let pending: Vec<u8> = state.deques.iter().flatten().copied().collect();
        if !pending.is_empty() {
            return Some(ViolationKind::LostWakeup { pending });
        }
        // A submitted batch whose bump was reached must be fully done —
        // with empty deques, an unexecuted job means it vanished.
        for (job, &count) in state.exec_count.iter().enumerate() {
            if count == 0 {
                return Some(ViolationKind::LeakedJob { job: job as u8 });
            }
        }
        // The caller's receive loop slots results by chunk index; the
        // combined sequence is the slot order. Reconstruct it from the
        // arrival order exactly the way `execute_ordered` does.
        let mut slots: Vec<Option<u8>> = vec![None; self.total_jobs];
        for &job in &state.arrival {
            slots[job as usize] = Some(job);
        }
        let combined: Vec<u8> = slots.into_iter().flatten().collect();
        let expect: Vec<u8> = (0..self.total_jobs as u8).collect();
        if combined != expect {
            return Some(ViolationKind::CombineOrder { got: combined });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(workers: usize, leaves: usize) -> ModelConfig {
        ModelConfig { workers, leaves, ..ModelConfig::default() }
    }

    #[test]
    fn protocol_passes_two_workers_four_leaves() {
        let r = check(&cfg(2, 4));
        assert!(r.violation.is_none(), "violation: {:?}", r.violation);
        assert!(r.terminals > 0, "no terminal schedules explored");
        assert!(r.states > 100, "suspiciously small exploration: {}", r.states);
    }

    #[test]
    fn protocol_passes_three_workers() {
        let r = check(&cfg(3, 4));
        assert!(r.violation.is_none(), "violation: {:?}", r.violation);
    }

    #[test]
    fn protocol_passes_under_force_steal_policy() {
        let r = check(&ModelConfig { force_steal: true, ..cfg(2, 4) });
        assert!(r.violation.is_none(), "violation: {:?}", r.violation);
    }

    #[test]
    fn protocol_passes_two_batches() {
        let r = check(&ModelConfig { batches: 2, ..cfg(2, 2) });
        assert!(r.violation.is_none(), "violation: {:?}", r.violation);
    }

    #[test]
    fn scan_before_snapshot_mutation_is_caught_as_lost_wakeup() {
        let r = check(&ModelConfig { mutation: Some(Mutation::ScanBeforeSnapshot), ..cfg(2, 4) });
        let v = r.violation.expect("mutated protocol must violate");
        assert!(
            matches!(v.kind, ViolationKind::LostWakeup { .. }),
            "wrong violation kind: {:?}",
            v.kind
        );
        assert!(!v.trace.is_empty(), "violation carries its schedule");
    }

    #[test]
    fn no_notify_mutation_is_caught() {
        let r = check(&ModelConfig { mutation: Some(Mutation::NoNotify), ..cfg(2, 4) });
        let v = r.violation.expect("mutated protocol must violate");
        assert!(matches!(v.kind, ViolationKind::LostWakeup { .. }));
    }

    #[test]
    fn steal_leave_mutation_is_caught_as_double_execution() {
        let r = check(&ModelConfig { mutation: Some(Mutation::StealLeave), ..cfg(2, 4) });
        let v = r.violation.expect("mutated protocol must violate");
        assert!(
            matches!(v.kind, ViolationKind::DoubleExecution { .. }),
            "wrong violation kind: {:?}",
            v.kind
        );
    }
}
