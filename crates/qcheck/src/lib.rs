//! # qq-check — workspace invariant analyzer + pool-protocol model checker
//!
//! The repo's core guarantee — bit-identical cuts and `f64` digests at
//! any thread count and across processes — rests on invariants that the
//! compiler cannot see: hash-order never escaping into results, every
//! `unsafe` justified, panics on public paths being provable
//! invariants, and a work-stealing pool whose parking protocol never
//! loses a wake-up. This crate checks those invariants mechanically:
//!
//! * [`lint`] — five offline, parser-free lint passes over the
//!   workspace source (determinism, unsafe audit, panic policy,
//!   reduction-order audit, numeric-cast audit), with a shrink-only
//!   [`allowlist`], a machine-readable unsafe inventory written to
//!   `results/unsafe_inventory.json` (each `SAFETY:` justification
//!   content-hashed so silent edits show up in CI diffs), and an
//!   optional machine-readable findings report
//!   (`results/lint_report.json`);
//! * [`model`] — a bounded model checker that exhaustively explores the
//!   interleavings of 2–3 virtual workers plus a submitter over small
//!   split trees, executing the *actual* scheduling policy
//!   (`rayon::proto`) of the vendored work-stealing pool, and asserting
//!   no lost wake-up, exactly-once job execution, and a stable
//!   chunk-indexed combine order; seeded protocol mutations
//!   (`scan-before-snapshot`, `no-notify`, `steal-leave`) demonstrate
//!   the checker catches the bug classes it exists for;
//! * [`snapshot`] — a second bounded checker for the parallel divide's
//!   snapshot-sweep protocol, interleaving 2–3 virtual scorers against
//!   the sequential applier while executing the real policy
//!   (`qq_graph::snapshot`), asserting snapshot isolation, ascending-id
//!   apply order, live-cap re-check, and schedule-independent terminals;
//!   its seeded mutations are `score-against-live`, `unordered-apply`,
//!   and `stale-cap-commit`.
//!
//! The binary (`cargo run -p qq-check -- lint|model`) is CI-gated; see
//! DESIGN.md §11 for the determinism contract as a checkable spec.

#![forbid(unsafe_code)]

pub mod allowlist;
pub mod lint;
pub mod model;
pub mod snapshot;
pub mod source;

use lint::{Finding, UnsafeSite};
use std::path::{Path, PathBuf};

/// Result of a full lint run over a workspace.
#[derive(Debug)]
pub struct LintReport {
    /// Violations: unexempted findings not covered by the allowlist,
    /// plus stale/malformed allowlist entries. Empty = clean.
    pub errors: Vec<allowlist::AllowlistError>,
    /// Findings suppressed by valid allowlist entries.
    pub suppressed: usize,
    /// Files scanned per pass-set.
    pub files_scanned: usize,
    /// The full unsafe inventory (justified and not).
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Every raw finding, before allowlist filtering — the basis of the
    /// machine-readable `results/lint_report.json`.
    pub findings: Vec<Finding>,
}

/// Directories (relative to the workspace root) holding **library**
/// source — the determinism and panic passes run here.
fn library_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = vec![root.join("src")];
    for base in ["crates", "crates/vendor"] {
        let dir = root.join(base);
        if let Ok(entries) = std::fs::read_dir(&dir) {
            let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path().join("src")).collect();
            paths.sort();
            roots.extend(paths.into_iter().filter(|p| p.is_dir()));
        }
    }
    roots
}

/// Directories the unsafe audit additionally covers: integration tests,
/// examples, and benches are part of the trusted computing base too.
fn extra_unsafe_roots(root: &Path) -> Vec<PathBuf> {
    ["tests", "examples", "benches"].iter().map(|d| root.join(d)).collect()
}

/// Run all five lint passes over the workspace at `root`, checking
/// findings against the allowlist at `<root>/qq-check.allow` (a missing
/// file means an empty allowlist).
pub fn run_lint(root: &Path) -> std::io::Result<LintReport> {
    let allow_text = std::fs::read_to_string(root.join("qq-check.allow")).unwrap_or_default();
    let (entries, mut errors) = allowlist::parse(&allow_text);

    let mut findings: Vec<Finding> = Vec::new();
    let mut unsafe_sites: Vec<UnsafeSite> = Vec::new();
    let mut files_scanned = 0;

    let mut seen: Vec<PathBuf> = Vec::new();
    for dir in library_roots(root) {
        for path in source::collect_rs_files(&dir)? {
            if seen.contains(&path) {
                continue;
            }
            seen.push(path.clone());
            let file = source::load(root, &path)?;
            files_scanned += 1;
            findings.extend(lint::determinism(&file));
            findings.extend(lint::panic_policy(&file));
            findings.extend(lint::reduction_order(&file));
            findings.extend(lint::cast_audit(&file));
            let (unjustified, sites) = lint::unsafe_audit(&file);
            findings.extend(unjustified);
            unsafe_sites.extend(sites);
        }
    }
    for dir in extra_unsafe_roots(root) {
        for path in source::collect_rs_files(&dir)? {
            let file = source::load(root, &path)?;
            files_scanned += 1;
            let (unjustified, sites) = lint::unsafe_audit(&file);
            findings.extend(unjustified);
            unsafe_sites.extend(sites);
        }
    }
    unsafe_sites.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));

    let mut sorted_findings = findings.clone();
    sorted_findings.sort_by(|a, b| {
        a.pass.cmp(&b.pass).then_with(|| a.path.cmp(&b.path)).then(a.line.cmp(&b.line))
    });
    let (mut allow_errors, suppressed) = allowlist::check(&findings, &entries);
    errors.append(&mut allow_errors);
    Ok(LintReport { errors, suppressed, files_scanned, unsafe_sites, findings: sorted_findings })
}

/// JSON string escaping for the hand-rolled serializers (the workspace
/// is offline, no serde).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// FNV-1a over a `SAFETY:` justification's text — the content hash the
/// inventory records per site. A silently reworded justification changes
/// the hash, so CI's `git diff --exit-code` on the committed inventory
/// catches edits, not just added/removed sites. (Same FNV-1a the
/// determinism battery uses for its digests; hand-rolled, offline.)
pub fn safety_hash(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Serialize the unsafe inventory as pretty-printed JSON (hand-rolled —
/// the workspace is offline, no serde).
pub fn inventory_json(sites: &[UnsafeSite]) -> String {
    let justified = sites.iter().filter(|s| s.safety.is_some()).count();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"generated_by\": \"qq-check lint\",\n");
    out.push_str(&format!("  \"total\": {},\n", sites.len()));
    out.push_str(&format!("  \"justified\": {justified},\n"));
    out.push_str(&format!("  \"unjustified\": {},\n", sites.len() - justified));
    out.push_str("  \"entries\": [\n");
    for (i, s) in sites.iter().enumerate() {
        let safety = match &s.safety {
            Some(t) => format!("\"{}\"", esc(t)),
            None => "null".to_string(),
        };
        let hash = match &s.safety {
            Some(t) => format!("\"{:016x}\"", safety_hash(t)),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"kind\": \"{}\", \"justified\": {}, \
             \"safety\": {}, \"safety_hash\": {}, \"code\": \"{}\"}}{}\n",
            esc(&s.path),
            s.line,
            s.kind,
            s.safety.is_some(),
            safety,
            hash,
            esc(&s.code),
            if i + 1 == sites.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Serialize a full lint run as machine-readable JSON — the payload of
/// `qq-check lint --json` (`results/lint_report.json`), which CI uploads
/// as an artifact next to the unsafe inventory.
pub fn report_json(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"generated_by\": \"qq-check lint --json\",\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"errors\": {},\n", report.errors.len()));
    out.push_str(&format!("  \"suppressed\": {},\n", report.suppressed));
    out.push_str("  \"findings_by_pass\": {");
    for (i, pass) in lint::Pass::ALL.iter().enumerate() {
        let count = report.findings.iter().filter(|f| f.pass == *pass).count();
        out.push_str(&format!("{}\"{}\": {count}", if i == 0 { "" } else { ", " }, pass.name()));
    }
    out.push_str("},\n");
    out.push_str("  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"pass\": \"{}\", \"file\": \"{}\", \"line\": {}, \"snippet\": \"{}\", \
             \"message\": \"{}\"}}{}\n",
            f.pass.name(),
            esc(&f.path),
            f.line,
            esc(&f.snippet),
            esc(&f.message),
            if i + 1 == report.findings.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"unsafe\": {\n");
    let justified = report.unsafe_sites.iter().filter(|s| s.safety.is_some()).count();
    out.push_str(&format!("    \"total\": {},\n", report.unsafe_sites.len()));
    out.push_str(&format!("    \"justified\": {justified}\n"));
    out.push_str("  }\n}\n");
    out
}
