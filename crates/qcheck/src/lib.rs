//! # qq-check — workspace invariant analyzer + pool-protocol model checker
//!
//! The repo's core guarantee — bit-identical cuts and `f64` digests at
//! any thread count and across processes — rests on invariants that the
//! compiler cannot see: hash-order never escaping into results, every
//! `unsafe` justified, panics on public paths being provable
//! invariants, and a work-stealing pool whose parking protocol never
//! loses a wake-up. This crate checks those invariants mechanically:
//!
//! * [`lint`] — three offline, parser-free lint passes over the
//!   workspace source (determinism, unsafe audit, panic policy), with a
//!   shrink-only [`allowlist`] and a machine-readable unsafe inventory
//!   written to `results/unsafe_inventory.json`;
//! * [`model`] — a bounded model checker that exhaustively explores the
//!   interleavings of 2–3 virtual workers plus a submitter over small
//!   split trees, executing the *actual* scheduling policy
//!   (`rayon::proto`) of the vendored work-stealing pool, and asserting
//!   no lost wake-up, exactly-once job execution, and a stable
//!   chunk-indexed combine order; seeded protocol mutations
//!   (`scan-before-snapshot`, `no-notify`, `steal-leave`) demonstrate
//!   the checker catches the bug classes it exists for.
//!
//! The binary (`cargo run -p qq-check -- lint|model`) is CI-gated; see
//! DESIGN.md §11 for the determinism contract as a checkable spec.

#![forbid(unsafe_code)]

pub mod allowlist;
pub mod lint;
pub mod model;
pub mod source;

use lint::{Finding, UnsafeSite};
use std::path::{Path, PathBuf};

/// Result of a full lint run over a workspace.
#[derive(Debug)]
pub struct LintReport {
    /// Violations: unexempted findings not covered by the allowlist,
    /// plus stale/malformed allowlist entries. Empty = clean.
    pub errors: Vec<allowlist::AllowlistError>,
    /// Findings suppressed by valid allowlist entries.
    pub suppressed: usize,
    /// Files scanned per pass-set.
    pub files_scanned: usize,
    /// The full unsafe inventory (justified and not).
    pub unsafe_sites: Vec<UnsafeSite>,
}

/// Directories (relative to the workspace root) holding **library**
/// source — the determinism and panic passes run here.
fn library_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = vec![root.join("src")];
    for base in ["crates", "crates/vendor"] {
        let dir = root.join(base);
        if let Ok(entries) = std::fs::read_dir(&dir) {
            let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path().join("src")).collect();
            paths.sort();
            roots.extend(paths.into_iter().filter(|p| p.is_dir()));
        }
    }
    roots
}

/// Directories the unsafe audit additionally covers: integration tests,
/// examples, and benches are part of the trusted computing base too.
fn extra_unsafe_roots(root: &Path) -> Vec<PathBuf> {
    ["tests", "examples", "benches"].iter().map(|d| root.join(d)).collect()
}

/// Run all three lint passes over the workspace at `root`, checking
/// findings against the allowlist at `<root>/qq-check.allow` (a missing
/// file means an empty allowlist).
pub fn run_lint(root: &Path) -> std::io::Result<LintReport> {
    let allow_text = std::fs::read_to_string(root.join("qq-check.allow")).unwrap_or_default();
    let (entries, mut errors) = allowlist::parse(&allow_text);

    let mut findings: Vec<Finding> = Vec::new();
    let mut unsafe_sites: Vec<UnsafeSite> = Vec::new();
    let mut files_scanned = 0;

    let mut seen: Vec<PathBuf> = Vec::new();
    for dir in library_roots(root) {
        for path in source::collect_rs_files(&dir)? {
            if seen.contains(&path) {
                continue;
            }
            seen.push(path.clone());
            let file = source::load(root, &path)?;
            files_scanned += 1;
            findings.extend(lint::determinism(&file));
            findings.extend(lint::panic_policy(&file));
            let (unjustified, sites) = lint::unsafe_audit(&file);
            findings.extend(unjustified);
            unsafe_sites.extend(sites);
        }
    }
    for dir in extra_unsafe_roots(root) {
        for path in source::collect_rs_files(&dir)? {
            let file = source::load(root, &path)?;
            files_scanned += 1;
            let (unjustified, sites) = lint::unsafe_audit(&file);
            findings.extend(unjustified);
            unsafe_sites.extend(sites);
        }
    }
    unsafe_sites.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));

    let (mut allow_errors, suppressed) = allowlist::check(&findings, &entries);
    errors.append(&mut allow_errors);
    Ok(LintReport { errors, suppressed, files_scanned, unsafe_sites })
}

/// Serialize the unsafe inventory as pretty-printed JSON (hand-rolled —
/// the workspace is offline, no serde).
pub fn inventory_json(sites: &[UnsafeSite]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let justified = sites.iter().filter(|s| s.safety.is_some()).count();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"generated_by\": \"qq-check lint\",\n");
    out.push_str(&format!("  \"total\": {},\n", sites.len()));
    out.push_str(&format!("  \"justified\": {justified},\n"));
    out.push_str(&format!("  \"unjustified\": {},\n", sites.len() - justified));
    out.push_str("  \"entries\": [\n");
    for (i, s) in sites.iter().enumerate() {
        let safety = match &s.safety {
            Some(t) => format!("\"{}\"", esc(t)),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"kind\": \"{}\", \"justified\": {}, \
             \"safety\": {}, \"code\": \"{}\"}}{}\n",
            esc(&s.path),
            s.line,
            s.kind,
            s.safety.is_some(),
            safety,
            esc(&s.code),
            if i + 1 == sites.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
