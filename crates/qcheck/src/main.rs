//! `qq-check` — CLI entry point for the workspace invariant analyzer
//! and the pool-protocol model checker. See the library docs for what
//! each subcommand verifies.
//!
//! Exit codes are CI-oriented:
//!
//! * `lint`  — 0 iff no unexempted findings and the allowlist is tight.
//! * `model` — 0 iff exhaustive exploration finds **no** violation; with
//!   `--mutate`, 0 iff the seeded bug **is** caught (a checker that
//!   misses its canonical bug must fail the build).

#![forbid(unsafe_code)]

use qq_check::model::{self, ModelConfig, Mutation};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: qq-check <command> [options]

commands:
  lint   [--root PATH]
         Run the determinism / unsafe-audit / panic-policy passes over
         the workspace at PATH (default: .), check findings against
         qq-check.allow, and write results/unsafe_inventory.json.

  model  [--workers N] [--leaves L] [--batches B] [--force-steal]
         [--mutate NAME|all]
         Exhaustively model-check the work-stealing pool's parking and
         stealing protocol (N virtual workers over L-leaf split trees).
         Mutations: scan-before-snapshot, no-notify, steal-leave.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("model") => cmd_model(&args[1..]),
        Some("--help") | Some("-h") | Some("help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            if let Some(cmd) = other {
                eprintln!("qq-check: unknown command `{cmd}`\n");
            }
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage_err("--root needs a value"),
            },
            other => return usage_err(&format!("unknown lint option `{other}`")),
        }
    }

    let report = match qq_check::run_lint(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("qq-check lint: io error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Always (re)write the machine-readable unsafe inventory — CI diffs
    // the committed copy against this output to catch new unsafe blocks.
    let results = root.join("results");
    let inv = qq_check::inventory_json(&report.unsafe_sites);
    let write_ok = std::fs::create_dir_all(&results)
        .and_then(|()| std::fs::write(results.join("unsafe_inventory.json"), inv));
    if let Err(e) = write_ok {
        eprintln!("qq-check lint: cannot write results/unsafe_inventory.json: {e}");
        return ExitCode::FAILURE;
    }

    let justified = report.unsafe_sites.iter().filter(|s| s.safety.is_some()).count();
    eprintln!(
        "qq-check lint: {} files scanned, {} unsafe site(s) ({} justified), {} finding(s) \
         allowlisted",
        report.files_scanned,
        report.unsafe_sites.len(),
        justified,
        report.suppressed
    );

    if report.errors.is_empty() {
        eprintln!("qq-check lint: clean");
        ExitCode::SUCCESS
    } else {
        for err in &report.errors {
            eprintln!("error: {err}");
        }
        eprintln!("qq-check lint: {} error(s)", report.errors.len());
        ExitCode::FAILURE
    }
}

fn cmd_model(args: &[String]) -> ExitCode {
    let mut cfg = ModelConfig::default();
    let mut mutate_all = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<usize, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse()
                .map_err(|_| format!("{name} needs an integer"))
        };
        match a.as_str() {
            "--workers" => match num("--workers") {
                Ok(n) => cfg.workers = n,
                Err(e) => return usage_err(&e),
            },
            "--leaves" => match num("--leaves") {
                Ok(n) => cfg.leaves = n,
                Err(e) => return usage_err(&e),
            },
            "--batches" => match num("--batches") {
                Ok(n) => cfg.batches = n,
                Err(e) => return usage_err(&e),
            },
            "--force-steal" => cfg.force_steal = true,
            "--mutate" => match it.next().map(String::as_str) {
                Some("all") => mutate_all = true,
                Some(name) => match Mutation::parse(name) {
                    Some(m) => cfg.mutation = Some(m),
                    None => return usage_err(&format!("unknown mutation `{name}`")),
                },
                None => return usage_err("--mutate needs a value"),
            },
            other => return usage_err(&format!("unknown model option `{other}`")),
        }
    }

    if mutate_all {
        let mut ok = true;
        for m in Mutation::ALL {
            let mut c = cfg.clone();
            c.mutation = Some(m);
            ok &= run_model(&c);
        }
        return if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    if run_model(&cfg) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Run one model-check configuration; returns true on the expected
/// outcome (clean for the real protocol, caught for a mutated one).
fn run_model(cfg: &ModelConfig) -> bool {
    let report = model::check(cfg);
    let label = match cfg.mutation {
        Some(m) => format!("mutation {}", m.name()),
        None => "protocol".to_string(),
    };
    eprintln!(
        "qq-check model: {label}: {} workers x {} leaves x {} batches{} -> {} states, {} \
         terminal schedules",
        cfg.workers,
        cfg.leaves,
        cfg.batches,
        if cfg.force_steal { " (force-steal)" } else { "" },
        report.states,
        report.terminals
    );
    match (&report.violation, cfg.mutation) {
        (None, None) => {
            eprintln!("qq-check model: no violation in any schedule");
            true
        }
        (Some(v), None) => {
            eprintln!("qq-check model: VIOLATION: {}", v.kind.describe());
            eprintln!("  schedule:");
            for step in &v.trace {
                eprintln!("    {step}");
            }
            false
        }
        (Some(v), Some(m)) => {
            eprintln!(
                "qq-check model: mutation {} caught: {} ({} steps)",
                m.name(),
                v.kind.describe(),
                v.trace.len()
            );
            true
        }
        (None, Some(m)) => {
            eprintln!(
                "qq-check model: mutation {} NOT caught — the checker has lost its teeth",
                m.name()
            );
            false
        }
    }
}

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("qq-check: {msg}\n");
    eprint!("{USAGE}");
    ExitCode::FAILURE
}
