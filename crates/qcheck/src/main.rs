//! `qq-check` — CLI entry point for the workspace invariant analyzer
//! and the protocol model checkers. See the library docs for what each
//! subcommand verifies.
//!
//! Exit codes are CI-oriented:
//!
//! * `lint`  — 0 iff no unexempted findings and the allowlist is tight.
//! * `model` — 0 iff exhaustive exploration finds **no** violation; with
//!   `--mutate`, 0 iff the seeded bug **is** caught (a checker that
//!   misses its canonical bug must fail the build); with `--min-states`,
//!   the explored-state count must also meet the floor (so a refactor
//!   that silently collapses the search space fails loudly).

#![forbid(unsafe_code)]

use qq_check::model::{self, ModelConfig, Mutation};
use qq_check::snapshot::{self, SnapConfig, SnapMutation};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: qq-check <command> [options]

commands:
  lint   [--root PATH] [--json]
         Run the determinism / unsafe-audit / panic-policy /
         reduction-order / cast-audit passes over the workspace at PATH
         (default: .), check findings against qq-check.allow, and write
         results/unsafe_inventory.json. With --json, also write the full
         findings report to results/lint_report.json.

  model  [--protocol pool|snapshot] [--mutate NAME|all] [--min-states N]
         pool options:     [--workers N] [--leaves L] [--batches B]
                           [--force-steal]
         snapshot options: [--scorers N] [--sweeps S]
         Exhaustively model-check a protocol. `pool` (default) explores
         the work-stealing pool's parking/stealing protocol (N virtual
         workers over L-leaf split trees); mutations:
         scan-before-snapshot, no-notify, steal-leave. `snapshot`
         explores the divide path's score-parallel/apply-sequential
         sweep protocol (N virtual scorers against the sequential
         applier over fixed <=6-node instances); mutations:
         score-against-live, unordered-apply, stale-cap-commit.
         --min-states N fails the run if fewer distinct states were
         explored (CI's search-space collapse guard).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("model") => cmd_model(&args[1..]),
        Some("--help") | Some("-h") | Some("help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            if let Some(cmd) = other {
                eprintln!("qq-check: unknown command `{cmd}`\n");
            }
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage_err("--root needs a value"),
            },
            "--json" => json = true,
            other => return usage_err(&format!("unknown lint option `{other}`")),
        }
    }

    let report = match qq_check::run_lint(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("qq-check lint: io error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Always (re)write the machine-readable unsafe inventory — CI diffs
    // the committed copy against this output to catch new unsafe blocks
    // and (via the content hashes) silently edited justifications.
    let results = root.join("results");
    let inv = qq_check::inventory_json(&report.unsafe_sites);
    let write_ok = std::fs::create_dir_all(&results)
        .and_then(|()| std::fs::write(results.join("unsafe_inventory.json"), inv));
    if let Err(e) = write_ok {
        eprintln!("qq-check lint: cannot write results/unsafe_inventory.json: {e}");
        return ExitCode::FAILURE;
    }

    // Machine-readable findings report, on request (CI artifact).
    if json {
        let path = results.join("lint_report.json");
        if let Err(e) = std::fs::write(&path, qq_check::report_json(&report)) {
            eprintln!("qq-check lint: cannot write results/lint_report.json: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("qq-check lint: wrote {}", path.display());
    }

    let justified = report.unsafe_sites.iter().filter(|s| s.safety.is_some()).count();
    eprintln!(
        "qq-check lint: {} files scanned, {} unsafe site(s) ({} justified), {} finding(s) \
         allowlisted",
        report.files_scanned,
        report.unsafe_sites.len(),
        justified,
        report.suppressed
    );

    if report.errors.is_empty() {
        eprintln!("qq-check lint: clean");
        ExitCode::SUCCESS
    } else {
        for err in &report.errors {
            eprintln!("error: {err}");
        }
        eprintln!("qq-check lint: {} error(s)", report.errors.len());
        ExitCode::FAILURE
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Protocol {
    Pool,
    Snapshot,
}

fn cmd_model(args: &[String]) -> ExitCode {
    let mut protocol = Protocol::Pool;
    let mut pool_cfg = ModelConfig::default();
    let mut snap_cfg = SnapConfig::default();
    let mut mutate: Option<String> = None;
    let mut min_states: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<usize, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse()
                .map_err(|_| format!("{name} needs an integer"))
        };
        match a.as_str() {
            "--protocol" => match it.next().map(String::as_str) {
                Some("pool") => protocol = Protocol::Pool,
                Some("snapshot") => protocol = Protocol::Snapshot,
                Some(other) => return usage_err(&format!("unknown protocol `{other}`")),
                None => return usage_err("--protocol needs a value"),
            },
            "--workers" => match num("--workers") {
                Ok(n) => pool_cfg.workers = n,
                Err(e) => return usage_err(&e),
            },
            "--leaves" => match num("--leaves") {
                Ok(n) => pool_cfg.leaves = n,
                Err(e) => return usage_err(&e),
            },
            "--batches" => match num("--batches") {
                Ok(n) => pool_cfg.batches = n,
                Err(e) => return usage_err(&e),
            },
            "--force-steal" => pool_cfg.force_steal = true,
            "--scorers" => match num("--scorers") {
                Ok(n) => snap_cfg.scorers = n,
                Err(e) => return usage_err(&e),
            },
            "--sweeps" => match num("--sweeps") {
                Ok(n) => snap_cfg.sweeps = n as u8,
                Err(e) => return usage_err(&e),
            },
            "--min-states" => match num("--min-states") {
                Ok(n) => min_states = Some(n),
                Err(e) => return usage_err(&e),
            },
            "--mutate" => match it.next() {
                Some(name) => mutate = Some(name.clone()),
                None => return usage_err("--mutate needs a value"),
            },
            other => return usage_err(&format!("unknown model option `{other}`")),
        }
    }

    match protocol {
        Protocol::Pool => match mutate.as_deref() {
            Some("all") => {
                let mut ok = true;
                for m in Mutation::ALL {
                    let mut c = pool_cfg.clone();
                    c.mutation = Some(m);
                    ok &= run_pool_model(&c, min_states);
                }
                if ok {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Some(name) => match Mutation::parse(name) {
                Some(m) => {
                    pool_cfg.mutation = Some(m);
                    bool_exit(run_pool_model(&pool_cfg, min_states))
                }
                None => usage_err(&format!("unknown pool mutation `{name}`")),
            },
            None => bool_exit(run_pool_model(&pool_cfg, min_states)),
        },
        Protocol::Snapshot => match mutate.as_deref() {
            Some("all") => {
                let mut ok = true;
                for m in SnapMutation::ALL {
                    let mut c = snap_cfg.clone();
                    c.mutation = Some(m);
                    ok &= run_snapshot_model(&c, min_states);
                }
                if ok {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Some(name) => match SnapMutation::parse(name) {
                Some(m) => {
                    snap_cfg.mutation = Some(m);
                    bool_exit(run_snapshot_model(&snap_cfg, min_states))
                }
                None => usage_err(&format!("unknown snapshot mutation `{name}`")),
            },
            None => bool_exit(run_snapshot_model(&snap_cfg, min_states)),
        },
    }
}

fn bool_exit(ok: bool) -> ExitCode {
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Shared state-count floor check (CI's search-space collapse guard).
fn states_floor_ok(states: usize, min_states: Option<usize>) -> bool {
    match min_states {
        Some(floor) if states < floor => {
            eprintln!(
                "qq-check model: explored only {states} states, below the --min-states floor \
                 of {floor} — the search space has collapsed"
            );
            false
        }
        _ => true,
    }
}

/// Run one pool-protocol configuration; returns true on the expected
/// outcome (clean for the real protocol, caught for a mutated one).
fn run_pool_model(cfg: &ModelConfig, min_states: Option<usize>) -> bool {
    let report = model::check(cfg);
    let label = match cfg.mutation {
        Some(m) => format!("mutation {}", m.name()),
        None => "protocol".to_string(),
    };
    eprintln!(
        "qq-check model: pool {label}: {} workers x {} leaves x {} batches{} -> {} states, {} \
         terminal schedules",
        cfg.workers,
        cfg.leaves,
        cfg.batches,
        if cfg.force_steal { " (force-steal)" } else { "" },
        report.states,
        report.terminals
    );
    let expected = match (&report.violation, cfg.mutation) {
        (None, None) => {
            eprintln!("qq-check model: no violation in any schedule");
            true
        }
        (Some(v), None) => {
            eprintln!("qq-check model: VIOLATION: {}", v.kind.describe());
            eprintln!("  schedule:");
            for step in &v.trace {
                eprintln!("    {step}");
            }
            false
        }
        (Some(v), Some(m)) => {
            eprintln!(
                "qq-check model: mutation {} caught: {} ({} steps)",
                m.name(),
                v.kind.describe(),
                v.trace.len()
            );
            true
        }
        (None, Some(m)) => {
            eprintln!(
                "qq-check model: mutation {} NOT caught — the checker has lost its teeth",
                m.name()
            );
            false
        }
    };
    // Mutated runs stop exploring at the first violation, so the floor
    // only applies to full (clean-protocol) explorations.
    expected && (cfg.mutation.is_some() || states_floor_ok(report.states, min_states))
}

/// Run one snapshot-protocol configuration; same exit semantics as the
/// pool checker.
fn run_snapshot_model(cfg: &SnapConfig, min_states: Option<usize>) -> bool {
    let report = snapshot::check(cfg);
    let label = match cfg.mutation {
        Some(m) => format!("mutation {}", m.name()),
        None => "protocol".to_string(),
    };
    eprintln!(
        "qq-check model: snapshot {label}: {} scorers x {} sweeps -> {} states, {} terminal \
         schedules",
        cfg.scorers, cfg.sweeps, report.states, report.terminals
    );
    let expected = match (&report.violation, cfg.mutation) {
        (None, None) => {
            eprintln!("qq-check model: no violation in any schedule");
            true
        }
        (Some(v), None) => {
            eprintln!("qq-check model: VIOLATION on {}: {}", v.instance, v.kind.describe());
            eprintln!("  schedule:");
            for step in &v.trace {
                eprintln!("    {step}");
            }
            false
        }
        (Some(v), Some(m)) => {
            eprintln!(
                "qq-check model: mutation {} caught on {}: {} ({} steps)",
                m.name(),
                v.instance,
                v.kind.describe(),
                v.trace.len()
            );
            true
        }
        (None, Some(m)) => {
            eprintln!(
                "qq-check model: mutation {} NOT caught — the checker has lost its teeth",
                m.name()
            );
            false
        }
    };
    expected && (cfg.mutation.is_some() || states_floor_ok(report.states, min_states))
}

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("qq-check: {msg}\n");
    eprint!("{USAGE}");
    ExitCode::FAILURE
}
