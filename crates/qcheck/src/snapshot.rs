//! Bounded model checking of the snapshot-sweep divide protocol.
//!
//! PR 9's parallel divide path (`qq_graph::partitioner::
//! label_propagation_snapshot` and the snapshot refinement sweeps) obeys
//! one rule: **score in parallel against frozen state, apply
//! sequentially in ascending node order against live state**. The rule's
//! decision procedures live in [`qq_graph::snapshot`]; this module
//! exhaustively explores every interleaving of 2–3 virtual scorer
//! workers against the sequential applier over tiny fixed instances
//! (≤ 6 nodes) and checks, at every step and terminal state:
//!
//! * **Snapshot isolation** — a scorer reads the *live* label array
//!   (exactly as the real code reads `label_ref`); every value it
//!   observes must still equal the sweep-start snapshot. The phase
//!   barrier (the applier only runs once every scorer has drained its
//!   chunk) is what makes this hold, and the checker proves the barrier
//!   suffices on every schedule.
//! * **Ascending-id apply order** — commits must be monotonically
//!   increasing in node id within a sweep ([`qq_graph::snapshot::
//!   APPLY_ORDER`]), the one order that is a pure function of the
//!   instance rather than the schedule.
//! * **Live-cap re-check** — after every commit, no community may exceed
//!   the cap ([`qq_graph::snapshot::CAP_CHECK`] makes the applier
//!   re-check running sizes, so two proposals for the same nearly-full
//!   target cannot both land).
//! * **Schedule-independence** — every terminal labeling must equal the
//!   sequential reference execution of the same policy.
//!
//! As with the pool checker ([`crate::model`]), fidelity comes from
//! executing the real policy: scoring calls
//! [`qq_graph::snapshot::propose_label`] and committing calls
//! [`qq_graph::snapshot::commit_label`] — change the tolerance, the
//! tie-break, or the cap discipline in the runtime and the checker
//! checks the new policy. Seeded mutations ([`SnapMutation`]) break the
//! protocol the ways real regressions would (committing while scoring is
//! in flight, unordered commits, trusting frozen sizes), and CI asserts
//! the checker catches each one.

use std::collections::BTreeSet;

/// A seeded protocol mutation for validating the checker's teeth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapMutation {
    /// Drop the phase barrier: the applier starts committing proposals
    /// while other scorers are still reading the live arrays — the
    /// canonical torn-read bug snapshot isolation exists to prevent.
    ScoreAgainstLive,
    /// Commit proposals in descending node order — the winner of any cap
    /// contention becomes an artifact of commit order instead of a pure
    /// function of the instance.
    UnorderedApply,
    /// Check the cap against the frozen sweep-start sizes instead of the
    /// live running sizes — two proposals for the same nearly-full
    /// target both pass and the cap is overshot.
    StaleCapCommit,
}

impl SnapMutation {
    pub fn parse(s: &str) -> Option<SnapMutation> {
        match s {
            "score-against-live" => Some(SnapMutation::ScoreAgainstLive),
            "unordered-apply" => Some(SnapMutation::UnorderedApply),
            "stale-cap-commit" => Some(SnapMutation::StaleCapCommit),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            SnapMutation::ScoreAgainstLive => "score-against-live",
            SnapMutation::UnorderedApply => "unordered-apply",
            SnapMutation::StaleCapCommit => "stale-cap-commit",
        }
    }

    /// All mutations, for `--mutate all` / tests.
    pub const ALL: [SnapMutation; 3] = [
        SnapMutation::ScoreAgainstLive,
        SnapMutation::UnorderedApply,
        SnapMutation::StaleCapCommit,
    ];
}

/// Checker configuration.
#[derive(Debug, Clone)]
pub struct SnapConfig {
    /// Virtual scorer workers (1–3). Each owns one fixed contiguous node
    /// chunk, exactly as the runtime's fixed node-range chunks do; two
    /// scorers already exhibit every read-while-applying race.
    pub scorers: usize,
    /// Sweep budget (1–3). Two sweeps cover the interesting space: a
    /// proposal dropped by the live-cap re-check in sweep one retries —
    /// against a fresh snapshot — in sweep two.
    pub sweeps: u8,
    /// Protocol mutation under test (`None` = the real protocol).
    pub mutation: Option<SnapMutation>,
}

impl Default for SnapConfig {
    fn default() -> Self {
        SnapConfig { scorers: 2, sweeps: 2, mutation: None }
    }
}

/// A protocol violation, with the schedule that produced it.
#[derive(Debug, Clone)]
pub struct SnapViolation {
    pub kind: SnapViolationKind,
    /// Instance the violating schedule ran on.
    pub instance: &'static str,
    /// Human-readable step trace of the violating schedule.
    pub trace: Vec<String>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SnapViolationKind {
    /// A scorer observed a label that no longer matches the sweep-start
    /// snapshot — it saw a partially-applied assignment.
    SnapshotIsolation { scorer: u8, node: u8, observed_at: u8 },
    /// Two commits in one sweep were not in ascending node order.
    ApplyOrder { prev: u8, next: u8 },
    /// A commit pushed a community past the cap.
    CapExceeded { community: u32, size: usize, cap: usize },
    /// A terminal labeling differs from the sequential reference — the
    /// outcome depended on the schedule.
    NonDeterministic { got: Vec<u32>, want: Vec<u32> },
}

impl SnapViolationKind {
    pub fn describe(&self) -> String {
        match self {
            SnapViolationKind::SnapshotIsolation { scorer, node, observed_at } => format!(
                "snapshot isolation broken: scorer {scorer} scoring node {node} observed a \
                 partially-applied label at node {observed_at}"
            ),
            SnapViolationKind::ApplyOrder { prev, next } => format!(
                "apply order broken: node {next} committed after node {prev} (must be ascending)"
            ),
            SnapViolationKind::CapExceeded { community, size, cap } => {
                format!("cap overshot: community {community} reached size {size} with cap {cap}")
            }
            SnapViolationKind::NonDeterministic { got, want } => format!(
                "schedule-dependent outcome: terminal labels {got:?} differ from the sequential \
                 reference {want:?}"
            ),
        }
    }
}

/// Exploration summary (one instance's sub-exploration is summed into
/// the totals; the first violation stops the whole sweep).
#[derive(Debug)]
pub struct SnapReport {
    pub config: SnapConfig,
    /// Distinct states visited, summed over all fixed instances.
    pub states: usize,
    /// Terminal states reached, summed over all fixed instances.
    pub terminals: usize,
    /// First violation found, if any (exploration stops there).
    pub violation: Option<SnapViolation>,
}

// --------------------------------------------------------- the instances

/// A fixed ≤6-node instance: `(name, n, edges, cap)`. Weights are small
/// integers-in-f64 so pulls compare exactly; the *policy* under test is
/// ordering and cap discipline, not float rounding.
struct Instance {
    name: &'static str,
    n: usize,
    edges: &'static [(usize, usize, f64)],
    cap: usize,
}

/// The fixed instance zoo. Between them the three instances exercise:
/// multi-commit sweeps (chain), cap contention between two proposals for
/// the same target (contention), and a second sweep whose proposals only
/// exist because of first-sweep commits (triangle-tail).
const INSTANCES: &[Instance] = &[
    Instance {
        name: "chain-6",
        n: 6,
        edges: &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (4, 5, 1.0)],
        cap: 3,
    },
    Instance { name: "contention-4", n: 4, edges: &[(0, 2, 2.0), (1, 2, 2.0)], cap: 2 },
    Instance {
        name: "triangle-tail-5",
        n: 5,
        edges: &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0), (2, 3, 2.0), (3, 4, 1.0)],
        cap: 2,
    },
];

impl Instance {
    /// Incident `(neighbor, |w|)` lists, mirroring `Graph::neighbors`.
    fn adjacency(&self) -> Vec<Vec<(usize, f64)>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v, w) in self.edges {
            adj[u].push((v, w.abs()));
            adj[v].push((u, w.abs()));
        }
        adj
    }
}

// ------------------------------------------------------------- the model

/// Per-node scoring status within the current sweep.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Prop {
    /// The owning scorer has not reached this node yet.
    NotScored,
    /// Scored; `Some(c)` proposes moving to label `c`.
    Scored(Option<u32>),
}

/// Full system state. `Ord`-derived so the visited set is a `BTreeSet`
/// (deterministic exploration, no hash order anywhere in the checker).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct State {
    /// Live label per node — the array both scorers and applier touch.
    label: Vec<u32>,
    /// Live community sizes.
    size: Vec<usize>,
    /// Ghost state: labels as frozen at the top of the sweep. The real
    /// code has no second array — the snapshot *is* the live array plus
    /// the phase barrier — so the checker carries it to detect barrier
    /// violations.
    snap_label: Vec<u32>,
    /// Ghost state: sizes as frozen at the top of the sweep (what the
    /// score phase's admissibility check is defined against).
    snap_size: Vec<usize>,
    /// Current sweep index.
    sweep: u8,
    /// Each scorer's progress through its fixed node chunk.
    scorer_pc: Vec<u8>,
    /// Scoring status per node.
    proposals: Vec<Prop>,
    /// Applier progress: nodes processed so far this sweep.
    apply_pc: u8,
    /// Node id of the last commit this sweep (apply-order check).
    last_commit: Option<u8>,
    /// Whether any commit landed this sweep (sweep-convergence flag).
    changed: bool,
}

/// Exhaustively check every scorer/applier interleaving of the snapshot
/// protocol (or the mutated variant) over all fixed instances.
pub fn check(config: &SnapConfig) -> SnapReport {
    let mut states = 0;
    let mut terminals = 0;
    for inst in INSTANCES {
        let mut ex = Explorer::new(inst, config);
        let violation = ex.explore();
        states += ex.visited.len();
        terminals += ex.terminals;
        if let Some(kind) = violation {
            return SnapReport {
                config: config.clone(),
                states,
                terminals,
                violation: Some(SnapViolation { kind, instance: inst.name, trace: ex.trace }),
            };
        }
    }
    SnapReport { config: config.clone(), states, terminals, violation: None }
}

struct Explorer<'a> {
    inst: &'a Instance,
    adj: Vec<Vec<(usize, f64)>>,
    /// Fixed contiguous node chunk per scorer (may be fewer chunks than
    /// scorers on tiny instances; surplus scorers are simply idle).
    chunks: Vec<std::ops::Range<usize>>,
    config: &'a SnapConfig,
    /// Sequential reference labeling every terminal must reproduce.
    reference: Vec<u32>,
    visited: BTreeSet<State>,
    terminals: usize,
    /// Step descriptions along the current DFS path; on violation this
    /// holds the offending schedule.
    trace: Vec<String>,
}

impl<'a> Explorer<'a> {
    fn new(inst: &'a Instance, config: &'a SnapConfig) -> Self {
        let adj = inst.adjacency();
        // The runtime chunks by a fixed grain (rayon::DEFAULT_GRAIN);
        // the model uses the same function with a grain that spreads the
        // instance over the configured scorer count.
        let grain = inst.n.div_ceil(config.scorers.max(1));
        let chunks = qq_graph::snapshot::score_chunks(inst.n, grain.max(1));
        let reference = sequential_reference(inst, &adj, config.sweeps);
        Explorer {
            inst,
            adj,
            chunks,
            config,
            reference,
            visited: BTreeSet::new(),
            terminals: 0,
            trace: Vec::new(),
        }
    }

    fn initial(&self) -> State {
        let n = self.inst.n;
        let label: Vec<u32> = (0..n as u32).collect();
        let size = vec![1usize; n];
        State {
            snap_label: label.clone(),
            snap_size: size.clone(),
            label,
            size,
            sweep: 0,
            scorer_pc: vec![0; self.chunks.len()],
            proposals: vec![Prop::NotScored; n],
            apply_pc: 0,
            last_commit: None,
            changed: false,
        }
    }

    fn explore(&mut self) -> Option<SnapViolationKind> {
        let init = self.initial();
        self.dfs(init)
    }

    fn dfs(&mut self, s: State) -> Option<SnapViolationKind> {
        if !self.visited.insert(s.clone()) {
            return None;
        }
        let mut any_step = false;
        // Scorer steps: each scorer with chunk progress left is enabled.
        for w in 0..self.chunks.len() {
            if (s.scorer_pc[w] as usize) < self.chunks[w].len() {
                any_step = true;
                let (next, desc, violation) = self.scorer_step(&s, w);
                self.trace.push(desc);
                if violation.is_some() {
                    return violation;
                }
                let v = self.dfs(next);
                if v.is_some() {
                    return v;
                }
                self.trace.pop();
            }
        }
        // Applier step, when the barrier policy enables it.
        if (s.apply_pc as usize) < self.inst.n && self.applier_enabled(&s) {
            any_step = true;
            let (next, desc, violation) = self.applier_step(&s);
            self.trace.push(desc);
            if violation.is_some() {
                return violation;
            }
            let v = self.dfs(next);
            if v.is_some() {
                return v;
            }
            self.trace.pop();
        }
        if !any_step {
            // All scorers drained and all nodes processed: end of sweep.
            return self.end_of_sweep(&s);
        }
        None
    }

    /// The phase barrier. Correct protocol: the applier may not start
    /// until every scorer has drained its chunk. `score-against-live`
    /// removes the barrier — the applier runs as soon as the next node
    /// in its order has been scored.
    fn applier_enabled(&self, s: &State) -> bool {
        match self.config.mutation {
            Some(SnapMutation::ScoreAgainstLive) => {
                let v = self.apply_target(s);
                s.proposals[v] != Prop::NotScored
            }
            _ => (0..self.chunks.len()).all(|w| s.scorer_pc[w] as usize >= self.chunks[w].len()),
        }
    }

    /// Which node the applier processes next: ascending id, or
    /// descending under `unordered-apply`.
    fn apply_target(&self, s: &State) -> usize {
        match self.config.mutation {
            Some(SnapMutation::UnorderedApply) => self.inst.n - 1 - s.apply_pc as usize,
            _ => s.apply_pc as usize,
        }
    }

    /// One scorer critical section: score the next node of chunk `w`
    /// against the live arrays (exactly what the real code reads), with
    /// the isolation check comparing every observed label to the
    /// sweep-start snapshot.
    fn scorer_step(&self, s: &State, w: usize) -> (State, String, Option<SnapViolationKind>) {
        let v = self.chunks[w].start + s.scorer_pc[w] as usize;
        let desc = format!("scorer{w}: score node {v} (sweep {})", s.sweep);
        // Isolation check over every location this read touches: the
        // node's own label and each neighbor's.
        let mut observed = vec![v];
        observed.extend(self.adj[v].iter().map(|&(u, _)| u));
        for &u in &observed {
            if s.label[u] != s.snap_label[u] {
                return (
                    s.clone(),
                    desc,
                    Some(SnapViolationKind::SnapshotIsolation {
                        scorer: w as u8,
                        node: v as u8,
                        observed_at: u as u8,
                    }),
                );
            }
        }
        // The real scoring decision, from the shared policy module.
        let home = s.label[v];
        let mut buf: Vec<(u32, f64)> = self.adj[v].iter().map(|&(u, w)| (s.label[u], w)).collect();
        let proposal =
            qq_graph::snapshot::propose_label(home, &mut buf, &s.snap_size, self.inst.cap);
        let mut next = s.clone();
        next.scorer_pc[w] += 1;
        next.proposals[v] = Prop::Scored(proposal);
        (next, desc, None)
    }

    /// One applier critical section: process the next node in the apply
    /// order — commit its proposal through the shared policy (live-cap
    /// re-check) or, under `stale-cap-commit`, against the frozen sizes.
    fn applier_step(&self, s: &State) -> (State, String, Option<SnapViolationKind>) {
        let v = self.apply_target(s);
        let mut next = s.clone();
        next.apply_pc += 1;
        let proposal = match &s.proposals[v] {
            Prop::Scored(p) => *p,
            Prop::NotScored => None,
        };
        let Some(c) = proposal else {
            return (next, format!("applier: node {v} no proposal"), None);
        };
        let committed = match self.config.mutation {
            Some(SnapMutation::StaleCapCommit) => {
                // The bug: admission decided on sweep-start sizes.
                if s.snap_size[c as usize] < self.inst.cap {
                    next.size[next.label[v] as usize] -= 1;
                    next.size[c as usize] += 1;
                    next.label[v] = c;
                    true
                } else {
                    false
                }
            }
            _ => qq_graph::snapshot::commit_label(
                v,
                c,
                &mut next.label,
                &mut next.size,
                self.inst.cap,
            ),
        };
        let desc = if committed {
            format!("applier: commit node {v} -> label {c} (sweep {})", s.sweep)
        } else {
            format!("applier: drop node {v} -> label {c}, target full (sweep {})", s.sweep)
        };
        if committed {
            // Cap invariant after every commit.
            if next.size[c as usize] > self.inst.cap {
                return (
                    next.clone(),
                    desc,
                    Some(SnapViolationKind::CapExceeded {
                        community: c,
                        size: next.size[c as usize],
                        cap: self.inst.cap,
                    }),
                );
            }
            // Ascending-order invariant across the sweep's commits.
            if let Some(prev) = s.last_commit {
                if prev as usize > v {
                    return (
                        next.clone(),
                        desc,
                        Some(SnapViolationKind::ApplyOrder { prev, next: v as u8 }),
                    );
                }
            }
            next.last_commit = Some(v as u8);
            next.changed = true;
        }
        (next, desc, None)
    }

    /// All scorers drained and all nodes processed: either roll into the
    /// next sweep (fresh snapshot) or terminate and compare against the
    /// sequential reference.
    fn end_of_sweep(&mut self, s: &State) -> Option<SnapViolationKind> {
        if s.changed && s.sweep + 1 < self.config.sweeps {
            let mut next = s.clone();
            next.sweep += 1;
            next.snap_label = next.label.clone();
            next.snap_size = next.size.clone();
            next.scorer_pc = vec![0; self.chunks.len()];
            next.proposals = vec![Prop::NotScored; self.inst.n];
            next.apply_pc = 0;
            next.last_commit = None;
            next.changed = false;
            self.trace.push(format!("sweep {} -> {}: refreeze snapshot", s.sweep, next.sweep));
            let v = self.dfs(next);
            if v.is_none() {
                self.trace.pop();
            }
            return v;
        }
        self.terminals += 1;
        if s.label != self.reference {
            return Some(SnapViolationKind::NonDeterministic {
                got: s.label.clone(),
                want: self.reference.clone(),
            });
        }
        None
    }
}

/// The sequential reference: the same policy (score everything against
/// the frozen sweep-start state, apply ascending with live-cap re-check)
/// executed with no concurrency at all. Every terminal of the correct
/// protocol must land exactly here.
fn sequential_reference(inst: &Instance, adj: &[Vec<(usize, f64)>], sweeps: u8) -> Vec<u32> {
    let n = inst.n;
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut size = vec![1usize; n];
    for _ in 0..sweeps {
        let snap_label = label.clone();
        let snap_size = size.clone();
        let proposals: Vec<Option<u32>> = (0..n)
            .map(|v| {
                let mut buf: Vec<(u32, f64)> =
                    adj[v].iter().map(|&(u, w)| (snap_label[u], w)).collect();
                qq_graph::snapshot::propose_label(snap_label[v], &mut buf, &snap_size, inst.cap)
            })
            .collect();
        let mut changed = false;
        for (v, proposal) in proposals.into_iter().enumerate() {
            if let Some(c) = proposal {
                changed |= qq_graph::snapshot::commit_label(v, c, &mut label, &mut size, inst.cap);
            }
        }
        if !changed {
            break;
        }
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_protocol_is_clean() {
        for scorers in [1usize, 2, 3] {
            let report = check(&SnapConfig { scorers, sweeps: 2, mutation: None });
            assert!(
                report.violation.is_none(),
                "clean protocol flagged at {scorers} scorers: {:?}",
                report.violation
            );
            // Scorers commute under the correct barrier, so memoization
            // collapses most interleavings — the floor guards against
            // the exploration degenerating to a single path, not
            // against confluence.
            let floor = if scorers > 1 { 100 } else { 60 };
            assert!(
                report.states >= floor,
                "suspiciously small exploration at {scorers} scorers: {}",
                report.states
            );
            assert!(report.terminals > 0);
        }
    }

    #[test]
    fn every_mutation_is_caught() {
        for m in SnapMutation::ALL {
            let report = check(&SnapConfig { scorers: 2, sweeps: 2, mutation: Some(m) });
            assert!(report.violation.is_some(), "mutation {} escaped the checker", m.name());
        }
    }

    #[test]
    fn mutations_trip_their_own_property() {
        let kind = |m: SnapMutation| {
            check(&SnapConfig { scorers: 2, sweeps: 2, mutation: Some(m) })
                .violation
                .expect("caught")
                .kind
        };
        assert!(matches!(
            kind(SnapMutation::ScoreAgainstLive),
            SnapViolationKind::SnapshotIsolation { .. }
        ));
        assert!(matches!(kind(SnapMutation::UnorderedApply), SnapViolationKind::ApplyOrder { .. }));
        assert!(matches!(
            kind(SnapMutation::StaleCapCommit),
            SnapViolationKind::CapExceeded { .. }
        ));
    }

    #[test]
    fn violation_carries_a_trace() {
        let report = check(&SnapConfig {
            scorers: 2,
            sweeps: 2,
            mutation: Some(SnapMutation::ScoreAgainstLive),
        });
        let v = report.violation.expect("caught");
        assert!(!v.trace.is_empty(), "violating schedule must be reported");
    }
}
