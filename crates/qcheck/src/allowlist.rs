//! The grandfathered-findings allowlist — a ratchet that can only
//! tighten.
//!
//! Format (`qq-check.allow` at the workspace root): one entry per line,
//!
//! ```text
//! <pass>\t<path>\t<count>\t<snippet>
//! ```
//!
//! where `snippet` is the trimmed code of the flagged line (the key is
//! content-based, so entries survive line-number drift) and `count` is
//! the number of identical findings the entry covers. `#` starts a
//! comment.
//!
//! Shrink-only enforcement: a finding not covered by an entry fails the
//! run (the list cannot *grow*), and an entry matching fewer findings
//! than its `count` — or none at all — also fails with instructions to
//! shrink or delete it (fixed findings cannot silently leave dead
//! grandfather rights behind).

use crate::lint::{Finding, Pass};
use std::collections::BTreeMap;

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct Entry {
    pub pass: Pass,
    pub path: String,
    pub count: usize,
    pub snippet: String,
}

/// A violation of the allowlist contract (each fails the lint run).
#[derive(Debug, Clone)]
pub enum AllowlistError {
    /// Finding with no covering entry — the list may not grow.
    Uncovered(Finding),
    /// Entry covering more findings than exist — must shrink.
    Stale { entry: Entry, actual: usize },
    /// Unparseable line.
    Malformed { line: usize, text: String },
}

/// Parse the allowlist file contents.
pub fn parse(text: &str) -> (Vec<Entry>, Vec<AllowlistError>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = raw.splitn(4, '\t').collect();
        let parsed = (|| {
            let [pass, path, count, snippet] = parts.as_slice() else { return None };
            Some(Entry {
                pass: Pass::parse(pass.trim())?,
                path: path.trim().to_string(),
                count: count.trim().parse().ok()?,
                snippet: snippet.trim().to_string(),
            })
        })();
        match parsed {
            Some(e) if e.count > 0 => entries.push(e),
            _ => errors.push(AllowlistError::Malformed { line: idx + 1, text: raw.to_string() }),
        }
    }
    (entries, errors)
}

/// Check `findings` against `entries`: returns the violations (empty =
/// clean) and the number of findings suppressed by the allowlist.
pub fn check(findings: &[Finding], entries: &[Entry]) -> (Vec<AllowlistError>, usize) {
    // group findings by (pass, path, snippet)
    let mut groups: BTreeMap<(&'static str, &str, &str), Vec<&Finding>> = BTreeMap::new();
    for f in findings {
        groups.entry((f.pass.name(), f.path.as_str(), f.snippet.as_str())).or_default().push(f);
    }
    let mut errors = Vec::new();
    let mut suppressed = 0;
    let mut used = vec![false; entries.len()];
    for (key, group) in &groups {
        let entry = entries.iter().position(|e| {
            (e.pass.name(), e.path.as_str(), e.snippet.as_str()) == (key.0, key.1, key.2)
        });
        match entry {
            None => {
                for f in group {
                    errors.push(AllowlistError::Uncovered((*f).clone()));
                }
            }
            Some(i) => {
                used[i] = true;
                let allowed = entries[i].count;
                if group.len() > allowed {
                    for f in &group[allowed..] {
                        errors.push(AllowlistError::Uncovered((*f).clone()));
                    }
                } else if group.len() < allowed {
                    errors.push(AllowlistError::Stale {
                        entry: entries[i].clone(),
                        actual: group.len(),
                    });
                }
                suppressed += group.len().min(allowed);
            }
        }
    }
    for (i, entry) in entries.iter().enumerate() {
        if !used[i] {
            errors.push(AllowlistError::Stale { entry: entry.clone(), actual: 0 });
        }
    }
    (errors, suppressed)
}

impl std::fmt::Display for AllowlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllowlistError::Uncovered(finding) => write!(
                f,
                "{}:{}: [{}] {}\n    {}",
                finding.path,
                finding.line,
                finding.pass.name(),
                finding.message,
                finding.snippet
            ),
            AllowlistError::Stale { entry, actual } => write!(
                f,
                "allowlist entry is stale ({} finding(s) remain, {} allowed) — shrink or delete \
                 it:\n    {}\t{}\t{}\t{}",
                actual,
                entry.count,
                entry.pass.name(),
                entry.path,
                entry.count,
                entry.snippet
            ),
            AllowlistError::Malformed { line, text } => {
                write!(f, "qq-check.allow:{line}: malformed entry: {text}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(pass: Pass, path: &str, snippet: &str) -> Finding {
        Finding {
            pass,
            path: path.to_string(),
            line: 1,
            snippet: snippet.to_string(),
            message: String::new(),
        }
    }

    #[test]
    fn covered_findings_are_suppressed() {
        let (entries, errs) = parse("panic\tsrc/a.rs\t2\tx.unwrap();");
        assert!(errs.is_empty());
        let findings = vec![
            finding(Pass::PanicPolicy, "src/a.rs", "x.unwrap();"),
            finding(Pass::PanicPolicy, "src/a.rs", "x.unwrap();"),
        ];
        let (errors, suppressed) = check(&findings, &entries);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(suppressed, 2);
    }

    #[test]
    fn the_list_cannot_grow() {
        let findings = vec![finding(Pass::PanicPolicy, "src/a.rs", "x.unwrap();")];
        let (errors, suppressed) = check(&findings, &[]);
        assert_eq!(errors.len(), 1);
        assert!(matches!(errors[0], AllowlistError::Uncovered(_)));
        assert_eq!(suppressed, 0);
    }

    #[test]
    fn excess_findings_over_count_fail() {
        let (entries, _) = parse("panic\tsrc/a.rs\t1\tx.unwrap();");
        let findings = vec![
            finding(Pass::PanicPolicy, "src/a.rs", "x.unwrap();"),
            finding(Pass::PanicPolicy, "src/a.rs", "x.unwrap();"),
        ];
        let (errors, suppressed) = check(&findings, &entries);
        assert_eq!(errors.len(), 1);
        assert!(matches!(errors[0], AllowlistError::Uncovered(_)));
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn stale_entries_force_shrink() {
        // entry allows 2, only 1 remains -> must shrink
        let (entries, _) = parse("panic\tsrc/a.rs\t2\tx.unwrap();");
        let findings = vec![finding(Pass::PanicPolicy, "src/a.rs", "x.unwrap();")];
        let (errors, _) = check(&findings, &entries);
        assert_eq!(errors.len(), 1);
        assert!(matches!(errors[0], AllowlistError::Stale { actual: 1, .. }));
    }

    #[test]
    fn fully_fixed_entries_force_delete() {
        let (entries, _) = parse("determinism\tsrc/b.rs\t1\tfor k in m.keys() {");
        let (errors, _) = check(&[], &entries);
        assert_eq!(errors.len(), 1);
        assert!(matches!(errors[0], AllowlistError::Stale { actual: 0, .. }));
    }

    #[test]
    fn malformed_lines_are_errors_not_silently_skipped() {
        let (entries, errs) = parse("not a valid entry\npanic\tsrc/a.rs\t0\tx");
        assert!(entries.is_empty());
        assert_eq!(errs.len(), 2, "bad format and zero count both fail");
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let (entries, errs) = parse("# header\n\n  \n");
        assert!(entries.is_empty());
        assert!(errs.is_empty());
    }
}
