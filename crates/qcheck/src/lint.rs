//! The three workspace lint passes.
//!
//! * [`determinism`] — iteration over `HashMap`/`HashSet` is
//!   order-nondeterministic (the hasher is randomly seeded per process);
//!   any such iteration whose order can reach a result, an edge list, or
//!   a report breaks the repo's bit-identical-cuts contract. Every
//!   iteration site must therefore be a *sorted drain* (the collected
//!   entries are sorted before use, detected in the statement's
//!   lookahead window), carry an explicit `// DETERMINISM: <why order
//!   cannot escape>` tag, or be grandfathered in the allowlist.
//! * [`unsafe_audit`] — every `unsafe` occurrence must carry a
//!   `// SAFETY:` comment; the pass also produces the machine-readable
//!   inventory behind `results/unsafe_inventory.json`, so a new
//!   unjustified block is a CI failure, not a review hope.
//! * [`panic_policy`] — `unwrap`/`expect`/`panic!` inside `pub fn`
//!   bodies are crash surfaces of the library API; each needs an
//!   `// INVARIANT: <why this cannot fire>` tag.
//! * [`reduction_order`] — every parallel `f64` combine site
//!   (`par_iter`/`par_chunks` chains ending in `sum`/`reduce`/`fold`/
//!   `collect`, plus any raw `thread::spawn` outside the vendored pool)
//!   must carry a `// REDUCTION:` justification naming the fixed
//!   chunk-order argument that makes its float accumulation order
//!   schedule-independent.
//! * [`cast_audit`] — `as` casts between node/edge-count widths
//!   (`usize`/`u32`/`u64`, `f64`-to-integer) on the CSR storage path
//!   silently truncate above 2³² nodes; each needs a `// CAST: <why the
//!   value fits>` tag.
//!
//! All passes skip `#[cfg(test)]` modules. The scanner is token-level
//! (no parser — see [`crate::source`]); the known over-approximations
//! are documented on each pass and are resolved by tagging or by the
//! shrink-only allowlist ([`crate::allowlist`]).

use crate::source::{contains_word, find_word, test_region_mask, Line, SourceFile};

/// Which lint pass produced a finding. The allowlist keys on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pass {
    Determinism,
    UnsafeAudit,
    PanicPolicy,
    ReductionOrder,
    CastAudit,
}

impl Pass {
    /// Stable name used in reports and the allowlist file.
    pub fn name(self) -> &'static str {
        match self {
            Pass::Determinism => "determinism",
            Pass::UnsafeAudit => "unsafe",
            Pass::PanicPolicy => "panic",
            Pass::ReductionOrder => "reduction",
            Pass::CastAudit => "cast",
        }
    }

    /// Parse an allowlist pass name.
    pub fn parse(s: &str) -> Option<Pass> {
        match s {
            "determinism" => Some(Pass::Determinism),
            "unsafe" => Some(Pass::UnsafeAudit),
            "panic" => Some(Pass::PanicPolicy),
            "reduction" => Some(Pass::ReductionOrder),
            "cast" => Some(Pass::CastAudit),
            _ => None,
        }
    }

    /// Every pass, in report order.
    pub const ALL: [Pass; 5] = [
        Pass::Determinism,
        Pass::UnsafeAudit,
        Pass::PanicPolicy,
        Pass::ReductionOrder,
        Pass::CastAudit,
    ];
}

/// One lint finding (before allowlist filtering).
#[derive(Debug, Clone)]
pub struct Finding {
    pub pass: Pass,
    pub path: String,
    /// 1-indexed.
    pub line: usize,
    /// Trimmed code of the offending line — the allowlist key, so
    /// entries survive line-number drift.
    pub snippet: String,
    pub message: String,
}

/// One `unsafe` site, justified or not — the inventory entry.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub path: String,
    /// 1-indexed.
    pub line: usize,
    /// `block` | `fn` | `impl` | `trait`.
    pub kind: &'static str,
    /// The `SAFETY:` justification text, when present.
    pub safety: Option<String>,
    /// Trimmed code of the line.
    pub code: String,
}

/// How many lines above a flagged site a justification tag may sit.
const TAG_LOOKBACK: usize = 6;
/// How many lines below a flagged iteration the sorting of its drained
/// entries may appear (the `collect(); entries.sort…` idiom).
const SORT_LOOKAHEAD: usize = 3;
/// How far above an `unsafe` keyword its `SAFETY:` comment may sit.
const SAFETY_LOOKBACK: usize = 12;

/// True if `tag` appears in the comment channel on `line` or within
/// `lookback` lines above it.
fn tagged(lines: &[Line], line: usize, tag: &str, lookback: usize) -> bool {
    let lo = line.saturating_sub(lookback);
    lines[lo..=line].iter().any(|l| l.comment.contains(tag))
}

// ---------------------------------------------------------------- pass 1

/// Iterating method names that expose hash-order.
const ITER_METHODS: [&str; 8] =
    ["drain", "iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "retain"];

/// Determinism pass: find identifiers bound to `HashMap`/`HashSet` in
/// this file, then flag every hash-order iteration over them.
///
/// Over-approximations (by design — the scanner is token-level):
/// identifier tracking is file-scoped, so a same-named deterministic
/// collection elsewhere in the file is also flagged; resolve with a
/// `DETERMINISM:` tag, a `BTreeMap`, or a rename.
pub fn determinism(file: &SourceFile) -> Vec<Finding> {
    let lines = &file.lines;
    let in_test = test_region_mask(lines);
    // 1. collect hash-typed binding names
    let mut idents: Vec<String> = Vec::new();
    for line in lines {
        let code = &line.code;
        if !(code.contains("HashMap") || code.contains("HashSet")) {
            continue;
        }
        // `let [mut] NAME :` / `let [mut] NAME =` on the same line
        if let Some(let_pos) = find_word(code, "let", 0) {
            let rest = &code[let_pos + 3..];
            let rest = rest.trim_start();
            let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
            let name: String =
                rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
            if !name.is_empty() && !idents.contains(&name) {
                idents.push(name);
            }
        }
        // `NAME: HashMap<…>` (field / param / static) — name before `:`
        if let Some(colon) = code.find(':') {
            let before = code[..colon].trim_end();
            let name: String = before
                .chars()
                .rev()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            let after = &code[colon..];
            if !name.is_empty()
                && (after.contains("HashMap") || after.contains("HashSet"))
                && !name.chars().next().is_some_and(|c| c.is_ascii_digit())
                && !idents.contains(&name)
            {
                idents.push(name);
            }
        }
    }
    if idents.is_empty() {
        return Vec::new();
    }
    // 2. flag iterations
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        let code = &line.code;
        let mut hit: Option<String> = None;
        'idents: for name in &idents {
            // method-style iteration: NAME.iter(), NAME[i].drain(), …
            let mut from = 0;
            while let Some(at) = find_word(code, name, from) {
                let mut after = &code[at + name.len()..];
                // skip one or more index expressions (`dq[cb]`,
                // `grid[i][j]`) — a collection of hash maps is still a
                // hash-order source
                while let Some(close) = balanced_index(after) {
                    after = &after[close..];
                }
                if let Some(rest) = after.strip_prefix('.') {
                    for m in ITER_METHODS {
                        if rest.starts_with(m)
                            && rest[m.len()..].trim_start().starts_with('(')
                            && !is_ident_continues(rest, m.len())
                        {
                            hit = Some(format!("{name}.{m}()"));
                            break 'idents;
                        }
                    }
                }
                from = at + 1;
            }
            // for-loop style: `in NAME`, `in &NAME`, `in &mut NAME`
            if let Some(in_pos) = find_word(code, "in", 0) {
                let rest = code[in_pos + 2..].trim_start();
                let rest = rest.strip_prefix("&mut ").or(rest.strip_prefix('&')).unwrap_or(rest);
                let target: String =
                    rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
                if target == *name {
                    hit = Some(format!("for … in {name}"));
                    break 'idents;
                }
            }
        }
        let Some(what) = hit else { continue };
        if tagged(lines, idx, "DETERMINISM:", TAG_LOOKBACK) {
            continue;
        }
        // sorted-drain idiom: the drained entries are sorted within the
        // lookahead window, so hash order cannot escape
        let hi = (idx + SORT_LOOKAHEAD).min(lines.len() - 1);
        if lines[idx..=hi].iter().any(|l| l.code.contains(".sort")) {
            continue;
        }
        findings.push(Finding {
            pass: Pass::Determinism,
            path: file.rel_path.clone(),
            line: idx + 1,
            snippet: line.code.trim().to_string(),
            message: format!(
                "hash-order iteration ({what}) — sort the drained entries, switch to BTreeMap, \
                 or add a `// DETERMINISM: <why order cannot escape>` tag"
            ),
        });
    }
    findings
}

fn is_ident_continues(rest: &str, len: usize) -> bool {
    rest[len..].chars().next().is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// If `s` starts with a balanced `[...]` group, return the byte offset
/// just past its closing bracket.
fn balanced_index(s: &str) -> Option<usize> {
    if !s.starts_with('[') {
        return None;
    }
    let mut depth = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
    }
    None
}

// ---------------------------------------------------------------- pass 2

/// Unsafe audit: inventory every `unsafe` keyword (blocks, fns, impls,
/// traits) with its `SAFETY:` justification; return findings for
/// unjustified sites alongside the full inventory.
pub fn unsafe_audit(file: &SourceFile) -> (Vec<Finding>, Vec<UnsafeSite>) {
    let lines = &file.lines;
    let mut findings = Vec::new();
    let mut sites = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        let mut from = 0;
        while let Some(at) = find_word(code, "unsafe", from) {
            from = at + 6;
            let rest = code[at + 6..].trim_start();
            let kind = if rest.starts_with("fn") {
                "fn"
            } else if rest.starts_with("impl") {
                "impl"
            } else if rest.starts_with("trait") {
                "trait"
            } else {
                "block"
            };
            let safety = safety_text(lines, idx);
            if safety.is_none() {
                findings.push(Finding {
                    pass: Pass::UnsafeAudit,
                    path: file.rel_path.clone(),
                    line: idx + 1,
                    snippet: line.code.trim().to_string(),
                    message: format!(
                        "`unsafe` {kind} without a `// SAFETY:` justification within \
                         {SAFETY_LOOKBACK} lines"
                    ),
                });
            }
            sites.push(UnsafeSite {
                path: file.rel_path.clone(),
                line: idx + 1,
                kind,
                safety,
                code: line.code.trim().to_string(),
            });
        }
    }
    (findings, sites)
}

/// Extract the `SAFETY:` comment text covering `line`: same line, or the
/// nearest one within the lookback window above, joined with its
/// continuation comment lines.
fn safety_text(lines: &[Line], line: usize) -> Option<String> {
    let lo = line.saturating_sub(SAFETY_LOOKBACK);
    let start = (lo..=line).rev().find(|&i| lines[i].comment.contains("SAFETY:"))?;
    let first = &lines[start].comment;
    let mut text = first[first.find("SAFETY:").expect("just matched") + 7..].trim().to_string();
    for l in &lines[start + 1..=line] {
        let cont = l.comment.trim();
        if cont.is_empty() {
            break;
        }
        text.push(' ');
        text.push_str(cont);
    }
    Some(text)
}

// ---------------------------------------------------------------- pass 3

/// Panic-policy pass: flag `unwrap` / `expect` / `panic!` inside
/// `pub fn` bodies (outside `#[cfg(test)]` modules) that lack an
/// `// INVARIANT:` tag.
///
/// Over-approximations: a `pub fn` on a private type is treated as
/// public (token scanner has no type visibility); panics in *private*
/// fns reachable from public ones are NOT flagged — the pass audits the
/// direct API surface, the tier above is the test suite's job.
pub fn panic_policy(file: &SourceFile) -> Vec<Finding> {
    let lines = &file.lines;
    let in_test = test_region_mask(lines);
    let in_pub_fn = pub_fn_mask(lines);
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] || !in_pub_fn[idx] {
            continue;
        }
        let code = &line.code;
        let mut what = None;
        if code.contains(".unwrap()") {
            what = Some("unwrap");
        } else if code.contains(".expect(") {
            what = Some("expect");
        } else if contains_word(code, "panic!") || code.contains("panic!(") {
            what = Some("panic!");
        }
        let Some(what) = what else { continue };
        if tagged(lines, idx, "INVARIANT:", TAG_LOOKBACK) {
            continue;
        }
        findings.push(Finding {
            pass: Pass::PanicPolicy,
            path: file.rel_path.clone(),
            line: idx + 1,
            snippet: line.code.trim().to_string(),
            message: format!(
                "`{what}` on a public library path — add an `// INVARIANT: <why this cannot \
                 fire>` tag or return an error"
            ),
        });
    }
    findings
}

/// Per-line "inside a `pub fn` body" mask via brace tracking. A pending
/// `pub fn` signature (possibly spanning lines) attaches to the next
/// `{` at its nesting level; `;` cancels it (trait method declaration).
fn pub_fn_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth: i64 = 0;
    let mut regions: Vec<i64> = Vec::new();
    let mut pending = false;
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        if is_pub_fn_signature(code) {
            pending = true;
        }
        let mut entered = false;
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending {
                        regions.push(depth - 1);
                        pending = false;
                        entered = true;
                    }
                }
                '}' => {
                    depth -= 1;
                    while let Some(&open) = regions.last() {
                        if depth <= open {
                            regions.pop();
                        } else {
                            break;
                        }
                    }
                }
                ';' if pending && regions.is_empty() => pending = false,
                _ => {}
            }
        }
        if !regions.is_empty() || entered {
            mask[idx] = true;
        }
    }
    mask
}

/// `pub fn` / `pub async fn` / `pub const fn` / `pub unsafe fn` —
/// `pub(crate)` & co. are *not* public API and are skipped.
fn is_pub_fn_signature(code: &str) -> bool {
    let Some(at) = find_word(code, "pub", 0) else { return false };
    let rest = code[at + 3..].trim_start();
    if rest.starts_with('(') {
        return false; // pub(crate) / pub(super) / pub(in …)
    }
    let mut rest = rest;
    loop {
        rest = rest.trim_start();
        if rest.starts_with("fn")
            && !rest[2..].chars().next().is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            return true;
        }
        let mut advanced = false;
        for q in ["const", "async", "unsafe", "extern"] {
            if rest.starts_with(q) {
                rest = &rest[q.len()..];
                advanced = true;
                break;
            }
        }
        if rest.trim_start().starts_with('"') {
            // extern "C"
            let r = rest.trim_start();
            if let Some(close) = r[1..].find('"') {
                rest = &r[close + 2..];
                advanced = true;
            }
        }
        if !advanced {
            return false;
        }
    }
}

// ---------------------------------------------------------------- pass 4

/// How many lines below a parallel-iterator entry its statement may
/// extend (the combine terminal must appear within this window).
const REDUCTION_LOOKAHEAD: usize = 60;

/// Chain terminals that combine per-chunk values into one result — the
/// places where `f64` accumulation order becomes schedule-dependent
/// unless the chunking is fixed.
const COMBINE_TERMINALS: [&str; 4] = ["sum", "reduce", "fold", "collect"];

/// Reduction-order pass: every parallel combine site in workspace code
/// must justify its ordering with a `// REDUCTION:` tag naming the fixed
/// chunk-order argument (a `node_ranges`/`score_chunks` fan-out, a
/// `with_min_len` grain over a fixed split, an index-keyed collect, …).
///
/// The vendored pool itself (`crates/vendor/`) is exempt — it *is* the
/// fixed-split-tree implementation the tags point at, and its own
/// ordering is pinned by the `model` checker rather than a lint. Raw
/// `thread::spawn` outside the vendor tree is flagged unconditionally:
/// ad-hoc threads bypass the deterministic executor entirely.
///
/// Over-approximations (by design): the statement extent is lexical
/// (bracket-depth tracking, no parser), so a `collect` inside a nested
/// sequential closure of a parallel chain is attributed to the parallel
/// site — the tag then documents the whole statement's ordering, which
/// is the audit's intent anyway.
pub fn reduction_order(file: &SourceFile) -> Vec<Finding> {
    if file.rel_path.starts_with("crates/vendor/") {
        return Vec::new();
    }
    let lines = &file.lines;
    let in_test = test_region_mask(lines);
    let mut findings = Vec::new();
    let mut covered_until = 0usize; // avoid double-flagging one statement
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        let code = &line.code;
        // Raw thread spawns: always a finding (tag or allowlist to keep).
        if code.contains("thread::spawn") && !tagged(lines, idx, "REDUCTION:", TAG_LOOKBACK) {
            findings.push(Finding {
                pass: Pass::ReductionOrder,
                path: file.rel_path.clone(),
                line: idx + 1,
                snippet: code.trim().to_string(),
                message: "raw `thread::spawn` outside the vendored pool — route the work \
                          through the deterministic executor or add a `// REDUCTION: <why \
                          ordering cannot escape>` tag"
                    .to_string(),
            });
        }
        if idx < covered_until {
            continue;
        }
        if !(code.contains("par_iter") || code.contains("par_chunks")) {
            continue;
        }
        let end = statement_extent(lines, idx, REDUCTION_LOOKAHEAD);
        let combined = lines[idx..=end].iter().any(|l| {
            COMBINE_TERMINALS
                .iter()
                .any(|t| l.code.contains(&format!(".{t}(")) || l.code.contains(&format!(".{t}::<")))
        });
        if !combined {
            continue;
        }
        covered_until = end + 1;
        if tagged(lines, idx, "REDUCTION:", TAG_LOOKBACK) {
            continue;
        }
        findings.push(Finding {
            pass: Pass::ReductionOrder,
            path: file.rel_path.clone(),
            line: idx + 1,
            snippet: code.trim().to_string(),
            message: "parallel combine without a `// REDUCTION:` justification — name the \
                      fixed chunk-order argument (fixed split tree, node_ranges fan-out, \
                      index-keyed collect) that makes the f64 order schedule-independent"
                .to_string(),
        });
    }
    findings
}

/// Last line index of the statement beginning at `start`: track bracket
/// depth forward until it returns to ≤ 0 on a line whose code contains
/// the terminating `;` (or the window runs out). Purely lexical — good
/// enough to capture a chain's trailing combine call.
fn statement_extent(lines: &[Line], start: usize, window: usize) -> usize {
    let hi = (start + window).min(lines.len() - 1);
    let mut depth: i64 = 0;
    for (idx, line) in lines.iter().enumerate().take(hi + 1).skip(start) {
        for c in line.code.chars() {
            match c {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => depth -= 1,
                _ => {}
            }
        }
        if depth <= 0 && line.code.contains(';') {
            return idx;
        }
    }
    hi
}

// ---------------------------------------------------------------- pass 5

/// Files on the CSR storage path (PR 8) — the only place raw node/edge
/// indices cross width boundaries in bulk. Everything downstream
/// consumes the validated `Graph`.
const CAST_SCOPE: [&str; 3] =
    ["crates/qgraph/src/graph.rs", "crates/qgraph/src/io.rs", "crates/qgraph/src/generators.rs"];

/// Cast targets that narrow a count to the 32-bit node width.
const NARROWING_TARGETS: [&str; 2] = ["u32", "NodeId"];
/// Integer targets a float expression may be truncated into.
const FLOAT_TRUNC_TARGETS: [&str; 5] = ["usize", "u32", "u64", "i64", "NodeId"];

/// Numeric-cast pass over the CSR path: flag `as` casts between
/// node/edge-count widths — narrowing to `u32`/`NodeId` (silent
/// truncation above 2³² nodes) and `f64`-to-integer truncation (the
/// capacity-estimate idiom) — unless covered by a `// CAST: <why the
/// value fits>` tag.
///
/// Widening casts to `usize`/`u64` from integer expressions are *not*
/// flagged: on the 64-bit targets this workspace supports they are
/// value-preserving, and flagging every `e.u as usize` index would bury
/// the real risks. One tag within the lookback window covers the casts
/// next to it, matching the other passes' tag discipline.
pub fn cast_audit(file: &SourceFile) -> Vec<Finding> {
    if !CAST_SCOPE.contains(&file.rel_path.as_str()) {
        return Vec::new();
    }
    let lines = &file.lines;
    let in_test = test_region_mask(lines);
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        let code = &line.code;
        let mut what: Option<String> = None;
        let mut from = 0;
        while let Some(at) = find_word(code, "as", from) {
            from = at + 2;
            let target: String = code[at + 2..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if target.is_empty() {
                continue;
            }
            if NARROWING_TARGETS.contains(&target.as_str()) {
                what = Some(format!("narrowing `as {target}`"));
                break;
            }
            if FLOAT_TRUNC_TARGETS.contains(&target.as_str()) && float_expr_before(&code[..at]) {
                what = Some(format!("float-to-integer `as {target}`"));
                break;
            }
        }
        let Some(what) = what else { continue };
        if tagged(lines, idx, "CAST:", TAG_LOOKBACK) {
            continue;
        }
        findings.push(Finding {
            pass: Pass::CastAudit,
            path: file.rel_path.clone(),
            line: idx + 1,
            snippet: code.trim().to_string(),
            message: format!(
                "{what} on the CSR path — add a `// CAST: <why the value fits the target \
                 width>` tag or validate before converting"
            ),
        });
    }
    findings
}

/// Heuristic: does the code left of a cast contain a float expression on
/// this line (a `1.5`-style literal or an `f64` token)? Keeps the pass
/// from flagging plain integer widenings.
fn float_expr_before(before: &str) -> bool {
    if contains_word(before, "f64") || contains_word(before, "f32") {
        return true;
    }
    let bytes = before.as_bytes();
    bytes.windows(3).any(|w| w[0].is_ascii_digit() && w[1] == b'.' && w[2].is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::strip;

    fn file(text: &str) -> SourceFile {
        SourceFile { rel_path: "src/fixture.rs".to_string(), lines: strip(text) }
    }

    // ---- determinism pass

    #[test]
    fn hashmap_iteration_is_flagged() {
        let f = file("let mut m: HashMap<u32, f64> = HashMap::new();\nfor (k, v) in m.iter() { use_it(k, v); }\n");
        let fs = determinism(&f);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].line, 2);
    }

    #[test]
    fn indexed_hashmap_drain_is_flagged() {
        let f = file("let mut dq: Vec<HashMap<u32, f64>> = Vec::new();\nlet row: Vec<_> = dq[cb].drain().collect();\n");
        assert_eq!(determinism(&f).len(), 1);
    }

    #[test]
    fn sorted_drain_idiom_is_exempt() {
        let f = file(
            "let mut m: HashMap<u32, f64> = HashMap::new();\nlet mut v: Vec<_> = m.into_iter().collect();\nv.sort_by_key(|e| e.0);\n",
        );
        assert!(determinism(&f).is_empty());
    }

    #[test]
    fn determinism_tag_is_exempt() {
        let f = file(
            "let mut m: HashMap<u32, f64> = HashMap::new();\n// DETERMINISM: order feeds a commutative sum only\nlet s: f64 = m.values().sum();\n",
        );
        assert!(determinism(&f).is_empty());
    }

    #[test]
    fn keyed_access_is_not_iteration() {
        let f = file("let mut m: HashMap<u32, f64> = HashMap::new();\nlet x = m.get(&3);\nm.insert(1, 2.0);\n");
        assert!(determinism(&f).is_empty());
    }

    #[test]
    fn btreemap_is_not_tracked() {
        let f = file("let mut m: BTreeMap<u32, f64> = BTreeMap::new();\nfor (k, v) in m.iter() { use_it(k, v); }\n");
        assert!(determinism(&f).is_empty());
    }

    #[test]
    fn test_module_iteration_is_skipped() {
        let f = file(
            "struct S { m: HashMap<u32, u32> }\n#[cfg(test)]\nmod tests {\n    fn t() { for k in m.keys() {} }\n}\n",
        );
        assert!(determinism(&f).is_empty());
    }

    // ---- unsafe audit

    #[test]
    fn unjustified_unsafe_block_is_flagged_and_inventoried() {
        let f = file("fn f() {\n    unsafe { do_it() };\n}\n");
        let (fs, sites) = unsafe_audit(&f);
        assert_eq!(fs.len(), 1);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].kind, "block");
        assert!(sites[0].safety.is_none());
    }

    #[test]
    fn safety_comment_justifies_and_is_extracted() {
        let f = file("// SAFETY: the pointer is valid for the call\nunsafe { do_it() };\n");
        let (fs, sites) = unsafe_audit(&f);
        assert!(fs.is_empty());
        assert_eq!(sites[0].safety.as_deref(), Some("the pointer is valid for the call"));
    }

    #[test]
    fn unsafe_in_string_is_not_a_site() {
        let f = file("let s = \"unsafe code\";\n");
        let (fs, sites) = unsafe_audit(&f);
        assert!(fs.is_empty());
        assert!(sites.is_empty());
    }

    #[test]
    fn unsafe_impl_kind_is_classified() {
        let f = file("// SAFETY: raw pointer use is confined to disjoint chunks\nunsafe impl Send for P {}\n");
        let (_, sites) = unsafe_audit(&f);
        assert_eq!(sites[0].kind, "impl");
    }

    // ---- panic policy

    #[test]
    fn unwrap_in_pub_fn_is_flagged() {
        let f = file("pub fn f() {\n    x.unwrap();\n}\n");
        assert_eq!(panic_policy(&f).len(), 1);
    }

    #[test]
    fn invariant_tag_is_exempt() {
        let f =
            file("pub fn f() {\n    // INVARIANT: x is Some by construction\n    x.unwrap();\n}\n");
        assert!(panic_policy(&f).is_empty());
    }

    #[test]
    fn private_fn_is_not_flagged() {
        let f = file("fn f() {\n    x.unwrap();\n}\npub(crate) fn g() {\n    y.unwrap();\n}\n");
        assert!(panic_policy(&f).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let f = file("pub fn f() {\n    x.unwrap_or(0);\n    y.unwrap_or_else(g);\n}\n");
        assert!(panic_policy(&f).is_empty());
    }

    #[test]
    fn panic_macro_is_flagged() {
        let f = file("pub fn f() {\n    panic!(\"boom\");\n}\n");
        assert_eq!(panic_policy(&f).len(), 1);
    }

    #[test]
    fn nested_private_fn_inherits_pub_region() {
        // a closure / nested item inside a pub fn stays on the public path
        let f = file("pub fn f() {\n    let c = || x.unwrap();\n    c();\n}\n");
        assert_eq!(panic_policy(&f).len(), 1);
    }

    #[test]
    fn pub_fn_after_private_region_is_flagged() {
        let f = file("fn f() { x.unwrap(); }\npub fn g() {\n    y.unwrap();\n}\n");
        let fs = panic_policy(&f);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].line, 3);
    }

    // ---- reduction-order pass

    #[test]
    fn untagged_parallel_sum_is_flagged() {
        let f = file("let s: f64 = v.par_iter().map(|x| x * x).sum();\n");
        let fs = reduction_order(&f);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].pass, Pass::ReductionOrder);
    }

    #[test]
    fn multiline_parallel_collect_is_flagged_once() {
        let f = file(
            "let out: Vec<f64> = chunks\n    .into_par_iter()\n    .map(|c| {\n        work(c)\n    })\n    .collect();\n",
        );
        assert_eq!(reduction_order(&f).len(), 1);
    }

    #[test]
    fn reduction_tag_is_exempt() {
        let f = file(
            "// REDUCTION: fixed node_ranges chunks; combine is index-keyed\nlet s: f64 = v.par_iter().sum();\n",
        );
        assert!(reduction_order(&f).is_empty());
    }

    #[test]
    fn parallel_for_each_without_combine_is_not_flagged() {
        let f = file("v.par_iter_mut().for_each(|x| *x += 1.0);\n");
        assert!(reduction_order(&f).is_empty());
    }

    #[test]
    fn vendored_pool_is_exempt() {
        let f = SourceFile {
            rel_path: "crates/vendor/rayon/src/iter.rs".to_string(),
            lines: strip("let s: f64 = v.par_iter().sum();\n"),
        };
        assert!(reduction_order(&f).is_empty());
    }

    #[test]
    fn raw_thread_spawn_is_flagged() {
        let f = file("let h = std::thread::spawn(move || work());\n");
        let fs = reduction_order(&f);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("thread::spawn"));
    }

    #[test]
    fn test_module_parallel_sum_is_skipped() {
        let f = file(
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let s: f64 = v.par_iter().sum(); }\n}\n",
        );
        assert!(reduction_order(&f).is_empty());
    }

    // ---- cast-audit pass

    fn csr_file(text: &str) -> SourceFile {
        SourceFile { rel_path: "crates/qgraph/src/graph.rs".to_string(), lines: strip(text) }
    }

    #[test]
    fn narrowing_cast_on_csr_path_is_flagged() {
        let f = csr_file("let id = v as u32;\n");
        let fs = cast_audit(&f);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("narrowing"));
    }

    #[test]
    fn nodeid_cast_is_flagged() {
        let f = csr_file("let id = v as NodeId;\n");
        assert_eq!(cast_audit(&f).len(), 1);
    }

    #[test]
    fn float_truncation_is_flagged() {
        let f = csr_file("let cap = (expected * 1.1) as usize;\n");
        let fs = cast_audit(&f);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("float-to-integer"));
    }

    #[test]
    fn integer_widening_is_not_flagged() {
        let f = csr_file("let i = e.u as usize;\nlet j = idx as u64;\n");
        assert!(cast_audit(&f).is_empty());
    }

    #[test]
    fn cast_tag_is_exempt() {
        let f =
            csr_file("// CAST: node count validated <= u32::MAX at ingest\nlet id = v as u32;\n");
        assert!(cast_audit(&f).is_empty());
    }

    #[test]
    fn files_off_the_csr_path_are_not_in_scope() {
        let f = file("let id = v as u32;\n");
        assert!(cast_audit(&f).is_empty());
    }
}
