//! Source loading and lexical stripping for the lint passes.
//!
//! The lints are deliberately parser-free (this workspace builds fully
//! offline — no syn, no rustc internals): a character-level state
//! machine separates each line into its **code** part (with string and
//! character literal *contents* blanked out, so `"unsafe"` in a string
//! can never trip the unsafe audit) and its **comment** part (where the
//! `SAFETY:` / `DETERMINISM:` / `INVARIANT:` justification tags live).
//! That is exactly the fidelity a token-level audit needs: keyword and
//! method-call patterns are matched against code text only, tags against
//! comment text only.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One source line, split into code and comment channels.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code with comments removed and literal contents blanked. Quotes
    /// themselves are kept so token shapes stay recognizable.
    pub code: String,
    /// Concatenated comment text of the line (without `//`/`/*`
    /// markers), where justification tags are searched.
    pub comment: String,
}

/// A loaded and lexically split source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// 0-indexed lines; report line numbers as `index + 1`.
    pub lines: Vec<Line>,
}

/// Lexer state for [`strip`].
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Split `text` into per-line code/comment channels.
pub fn strip(text: &str) -> Vec<Line> {
    let mut lines: Vec<Line> = vec![Line::default()];
    let mut state = State::Code;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            lines.push(Line::default());
            i += 1;
            continue;
        }
        // INVARIANT: `lines` starts non-empty and only grows.
        let cur = lines.last_mut().expect("at least one line");
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    // raw string? look back for r / br and count hashes
                    cur.code.push('"');
                    state = State::Str;
                    i += 1;
                    continue;
                }
                if c == 'r' || c == 'b' {
                    // r"..", r#".."#, br".." — consume the prefix and
                    // enter raw-string mode with the hash count
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    if c == 'r' || j > i + 1 {
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            cur.code.extend(&chars[i..=j]);
                            state = State::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                    }
                    cur.code.push(c);
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // char literal vs lifetime: a literal is '\..' or
                    // 'X' (single char then closing quote); anything
                    // else is a lifetime tick.
                    let is_literal = match chars.get(i + 1) {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    cur.code.push('\'');
                    i += 1;
                    if is_literal {
                        state = State::Char;
                    }
                    continue;
                }
                cur.code.push(c);
                i += 1;
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2; // skip escaped char (blanked anyway)
                    cur.code.push(' ');
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for h in 0..hashes {
                        if chars.get(i + 1 + h as usize) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        cur.code.push('"');
                        for _ in 0..hashes {
                            cur.code.push('#');
                        }
                        state = State::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                cur.code.push(' ');
                i += 1;
            }
            State::Char => {
                if c == '\\' {
                    cur.code.push(' ');
                    i += 2;
                } else if c == '\'' {
                    cur.code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    lines
}

/// Load one file and strip it. `root` is the workspace root the relative
/// path is reported against.
pub fn load(root: &Path, path: &Path) -> io::Result<SourceFile> {
    let text = fs::read_to_string(path)?;
    let rel = path.strip_prefix(root).unwrap_or(path);
    let rel_path =
        rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/");
    Ok(SourceFile { rel_path, lines: strip(&text) })
}

/// Recursively collect `.rs` files under `dir`, skipping `target` and
/// hidden directories. Output is sorted for deterministic reports.
pub fn collect_rs_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> =
            fs::read_dir(&d)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
        entries.sort();
        for p in entries {
            let name = p.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
            if p.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(p);
            } else if name.ends_with(".rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Per-line "inside a `#[cfg(test)]` module" mask, used by the lint
/// passes to skip test code: test-only iteration or unwraps are not on
/// any production path.
pub fn test_region_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth: i64 = 0;
    // (closing depth, still inside) — regions end when depth returns to
    // the value recorded at the opening brace
    let mut regions: Vec<i64> = Vec::new();
    let mut pending_cfg_test = false;
    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        let opens_test_mod = pending_cfg_test && contains_word(code, "mod");
        let mut entered = false;
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if opens_test_mod && !entered {
                        regions.push(depth - 1);
                        entered = true;
                        pending_cfg_test = false;
                    }
                }
                '}' => {
                    depth -= 1;
                    if let Some(&open) = regions.last() {
                        if depth <= open {
                            regions.pop();
                        }
                    }
                }
                _ => {}
            }
        }
        // `#[cfg(test)] use ...;` or attribute lines: keep pending until
        // a mod brace or a semicolon-terminated item consumes it
        if pending_cfg_test && !opens_test_mod && code.contains(';') {
            pending_cfg_test = false;
        }
        if !regions.is_empty() || entered {
            mask[idx] = true;
        }
        // the attribute line itself is test-only too
        if code.contains("#[cfg(test)]") {
            mask[idx] = true;
        }
    }
    mask
}

/// True when `word` appears in `code` delimited by non-identifier chars.
pub fn contains_word(code: &str, word: &str) -> bool {
    find_word(code, word, 0).is_some()
}

/// Find `word` in `code` at or after `from`, delimited by
/// non-identifier characters on both sides.
pub fn find_word(code: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut start = from;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1] as char);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_char(bytes[end] as char);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(text: &str) -> Vec<String> {
        strip(text).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn string_contents_are_blanked() {
        let lines = strip(r#"let x = "unsafe { HashMap }"; y.drain();"#);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].code.contains("y.drain()"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let lines = strip(r##"let x = r#"unsafe "quoted" unsafe"#; z();"##);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("z()"));
    }

    #[test]
    fn comments_go_to_the_comment_channel() {
        let lines = strip("foo(); // SAFETY: fine\nbar(); /* block */ baz();");
        assert!(lines[0].comment.contains("SAFETY: fine"));
        assert!(!lines[0].code.contains("SAFETY"));
        assert!(lines[1].code.contains("bar()"));
        assert!(lines[1].code.contains("baz()"));
        assert!(lines[1].comment.contains("block"));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let lines = strip("/* a /* b */ still comment */ code();");
        assert!(lines[0].code.contains("code()"));
        assert!(!lines[0].code.contains("still"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let c = codes("fn f<'a>(x: &'a str) -> &'a str { 'l': loop { break 'l; } }");
        assert!(c[0].contains("&'a str"));
    }

    #[test]
    fn char_literal_with_quote_content_is_blanked() {
        let c = codes(r#"let q = '"'; x.iter();"#);
        assert!(c[0].contains("x.iter()"));
    }

    #[test]
    fn test_region_mask_covers_cfg_test_mod() {
        let text = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\npub fn h() {}\n";
        let lines = strip(text);
        let mask = test_region_mask(&lines);
        assert!(!mask[0], "code before the test mod is not masked");
        assert!(mask[1], "the #[cfg(test)] attribute line is masked");
        assert!(mask[2], "the mod header is masked");
        assert!(mask[3], "the body is masked");
        assert!(!mask[5], "code after the test mod is not masked");
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(contains_word("let x = drain();", "drain"));
        assert!(!contains_word("let x = undrained();", "drain"));
        assert!(!contains_word("let drainx = 1;", "drain"));
    }
}
