//! Round-trip test of the allowlist ratchet on fixture workspaces.
//!
//! The allowlist's contract is "shrink-only": an entry may suppress
//! exactly as many findings as it names, no more, no fewer. This suite
//! drives `run_lint` over throwaway workspaces to pin all three edges of
//! that contract:
//!
//! * a **new finding** with no covering entry fails the lint (the list
//!   cannot grow silently);
//! * a **stale entry** — covering more findings than exist, or a finding
//!   that has been fixed entirely — also fails (no dead grandfather
//!   rights);
//! * a **legitimate shrink** — fixing one of N grandfathered findings
//!   and decrementing the entry's count in the same change — passes.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// Build a throwaway workspace containing `files` (workspace-relative
/// path → contents) and return its root.
fn fixture(files: &[(&str, &str)]) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let root = std::env::temp_dir().join(format!(
        "qq-check-ratchet-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    for (rel, contents) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("fixture paths have parents"))
            .expect("create fixture dirs");
        std::fs::write(&path, contents).expect("write fixture file");
    }
    root
}

/// A library file with one untagged parallel f64 combine per function —
/// the reduction-order pass flags each, with identical snippets, so one
/// allowlist entry can cover both.
const TWO_FINDINGS: &str = "pub fn a(xs: &[f64]) -> f64 {
    let total: f64 = xs.par_iter().sum();
    total
}
pub fn b(xs: &[f64]) -> f64 {
    let total: f64 = xs.par_iter().sum();
    total
}
";

const ONE_FINDING: &str = "pub fn a(xs: &[f64]) -> f64 {
    let total: f64 = xs.par_iter().sum();
    total
}
pub fn b(xs: &[f64]) -> f64 {
    // REDUCTION: fixed split tree; chunk order is the slice order.
    let total: f64 = xs.par_iter().sum();
    total
}
";

fn lint(root: &PathBuf) -> qq_check::LintReport {
    let report = qq_check::run_lint(root).expect("lint runs on the fixture");
    std::fs::remove_dir_all(root).ok();
    report
}

#[test]
fn new_finding_without_entry_fails() {
    let root = fixture(&[("src/lib.rs", TWO_FINDINGS)]);
    let report = lint(&root);
    assert_eq!(report.suppressed, 0);
    assert_eq!(report.errors.len(), 2, "both uncovered findings fail: {:?}", report.errors);
    let msg = report.errors[0].to_string();
    assert!(msg.contains("[reduction]"), "error names the pass: {msg}");
}

#[test]
fn exact_entry_suppresses_exactly() {
    let root = fixture(&[
        ("src/lib.rs", TWO_FINDINGS),
        ("qq-check.allow", "reduction\tsrc/lib.rs\t2\tlet total: f64 = xs.par_iter().sum();\n"),
    ]);
    let report = lint(&root);
    assert!(report.errors.is_empty(), "exact entry is clean: {:?}", report.errors);
    assert_eq!(report.suppressed, 2);
}

#[test]
fn overcounted_entry_is_stale() {
    // Entry says 3, only 2 findings exist — someone fixed one without
    // shrinking the entry. The ratchet must fail.
    let root = fixture(&[
        ("src/lib.rs", TWO_FINDINGS),
        ("qq-check.allow", "reduction\tsrc/lib.rs\t3\tlet total: f64 = xs.par_iter().sum();\n"),
    ]);
    let report = lint(&root);
    assert_eq!(report.errors.len(), 1, "stale over-count fails: {:?}", report.errors);
    let msg = report.errors[0].to_string();
    assert!(msg.contains("stale"), "error calls the entry stale: {msg}");
}

#[test]
fn entry_for_fixed_finding_is_stale() {
    // All findings fixed, entry left behind — fails until deleted.
    let root = fixture(&[
        ("src/lib.rs", "pub fn a() -> i32 { 1 }\n"),
        ("qq-check.allow", "reduction\tsrc/lib.rs\t2\tlet total: f64 = xs.par_iter().sum();\n"),
    ]);
    let report = lint(&root);
    assert_eq!(report.errors.len(), 1, "orphaned entry fails: {:?}", report.errors);
    assert!(report.errors[0].to_string().contains("stale"));
}

#[test]
fn legitimate_shrink_passes() {
    // One of the two grandfathered findings is fixed (tagged) and the
    // entry's count drops from 2 to 1 in the same change: clean.
    let root = fixture(&[
        ("src/lib.rs", ONE_FINDING),
        ("qq-check.allow", "reduction\tsrc/lib.rs\t1\tlet total: f64 = xs.par_iter().sum();\n"),
    ]);
    let report = lint(&root);
    assert!(report.errors.is_empty(), "shrunk entry is clean: {:?}", report.errors);
    assert_eq!(report.suppressed, 1);
}

#[test]
fn malformed_entry_fails() {
    let root = fixture(&[
        ("src/lib.rs", "pub fn a() -> i32 { 1 }\n"),
        ("qq-check.allow", "reduction\tsrc/lib.rs\tzero\tlet total: f64 = xs.par_iter().sum();\n"),
    ]);
    let report = lint(&root);
    assert_eq!(report.errors.len(), 1, "malformed entry fails: {:?}", report.errors);
}
