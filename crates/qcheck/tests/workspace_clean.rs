//! The workspace must stay lint-clean: `cargo test` enforces the same
//! invariants `qq-check lint` gates in CI, so a new hash-order
//! iteration, unjustified unsafe block, or untagged public-path panic
//! fails the test suite even before the lint job runs.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/qcheck -> crates -> root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("qq-check sits two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_lint_clean() {
    let report = qq_check::run_lint(&workspace_root()).expect("lint run succeeds");
    assert!(
        report.files_scanned > 50,
        "scanned only {} files — roots broken?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.errors.iter().map(|e| e.to_string()).collect();
    assert!(rendered.is_empty(), "workspace lint violations:\n{}", rendered.join("\n"));
}

#[test]
fn unsafe_inventory_is_committed_and_current() {
    let root = workspace_root();
    let report = qq_check::run_lint(&root).expect("lint run succeeds");
    assert!(!report.unsafe_sites.is_empty(), "the pool's unsafe blocks should be inventoried");
    let fresh = qq_check::inventory_json(&report.unsafe_sites);
    let committed = std::fs::read_to_string(root.join("results/unsafe_inventory.json"))
        .expect("results/unsafe_inventory.json is committed — run `cargo run -p qq-check -- lint`");
    assert_eq!(
        committed, fresh,
        "results/unsafe_inventory.json is stale — regenerate with `cargo run -p qq-check -- lint`"
    );
}

#[test]
fn every_unsafe_site_is_justified() {
    let report = qq_check::run_lint(&workspace_root()).expect("lint run succeeds");
    let unjustified: Vec<String> = report
        .unsafe_sites
        .iter()
        .filter(|s| s.safety.is_none())
        .map(|s| format!("{}:{}", s.path, s.line))
        .collect();
    assert!(unjustified.is_empty(), "unsafe without SAFETY comment: {unjustified:?}");
}
