//! Modularity and Clauset–Newman–Moore (CNM) greedy agglomeration.
//!
//! QAOA² divides the input graph with NetworkX's
//! `greedy_modularity_communities`; this module is that algorithm: start
//! from singletons, repeatedly merge the community pair with the largest
//! modularity gain `ΔQ`, stop when no merge improves modularity (or when a
//! requested community count is reached).
//!
//! `ΔQ` bookkeeping follows the standard CNM update rules with a lazily
//! invalidated max-heap, so the merge loop runs in
//! `O(E log²) `-ish time — comfortably fast for the paper's 2500-node
//! instances.

use crate::graph::{Graph, NodeId};
use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};

/// Modularity `Q` of a node partition.
///
/// `Q = Σ_c [ L_c/m − (d_c/2m)² ]` with `L_c` the intra-community weight,
/// `d_c` the summed weighted degree and `m` the total edge weight.
/// Returns 0 for empty graphs.
pub fn modularity(g: &Graph, communities: &[Vec<NodeId>]) -> f64 {
    let m = g.total_weight();
    if m == 0.0 {
        return 0.0;
    }
    let mut comm_of = vec![usize::MAX; g.num_nodes()];
    for (c, members) in communities.iter().enumerate() {
        for &v in members {
            comm_of[v as usize] = c;
        }
    }
    let mut intra = vec![0.0; communities.len()];
    for e in g.edges() {
        if comm_of[e.u as usize] == comm_of[e.v as usize] {
            intra[comm_of[e.u as usize]] += e.w;
        }
    }
    let mut degree = vec![0.0; communities.len()];
    for v in 0..g.num_nodes() as NodeId {
        let c = comm_of[v as usize];
        if c != usize::MAX {
            degree[c] += g.weighted_degree(v);
        }
    }
    let two_m = 2.0 * m;
    (0..communities.len()).map(|c| intra[c] / m - (degree[c] / two_m).powi(2)).sum()
}

/// Max-heap entry; compared by `dq` with deterministic index tie-breaks so
/// runs are reproducible.
#[derive(Debug, Clone, Copy)]
struct MergeCandidate {
    dq: f64,
    a: u32,
    b: u32,
}

impl PartialEq for MergeCandidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for MergeCandidate {}
impl PartialOrd for MergeCandidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeCandidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dq
            .total_cmp(&other.dq)
            .then_with(|| other.a.cmp(&self.a))
            .then_with(|| other.b.cmp(&self.b))
    }
}

/// CNM greedy modularity maximization.
///
/// Merges community pairs by best `ΔQ` until either no merge has
/// `ΔQ > 0` or only `min_communities` remain. Returns communities as
/// sorted node-id lists, largest community first (ties broken by first
/// node id so output order is deterministic).
///
/// Graphs with non-positive total weight (possible for QAOA² merge graphs)
/// are returned as singletons — modularity is meaningless there and the
/// caller is expected to fall back to structural bisection.
pub fn greedy_modularity_communities(g: &Graph, min_communities: usize) -> Vec<Vec<NodeId>> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let m = g.total_weight();
    if m <= 0.0 || g.num_edges() == 0 {
        return (0..n as NodeId).map(|v| vec![v]).collect();
    }
    let two_m = 2.0 * m;

    // Community state. `None` = absorbed into another community.
    let mut members: Vec<Option<Vec<NodeId>>> = (0..n as NodeId).map(|v| Some(vec![v])).collect();
    // a_i = d_i / 2m
    let mut a: Vec<f64> = (0..n as NodeId).map(|v| g.weighted_degree(v) / two_m).collect();
    // dq[i][j] for adjacent communities: gain of merging i and j.
    let mut dq: Vec<HashMap<u32, f64>> = vec![HashMap::new(); n];
    let mut heap = BinaryHeap::with_capacity(g.num_edges() * 2);

    for e in g.edges() {
        let gain = e.w / m - 2.0 * a[e.u as usize] * a[e.v as usize];
        dq[e.u as usize].insert(e.v, gain);
        dq[e.v as usize].insert(e.u, gain);
        heap.push(MergeCandidate { dq: gain, a: e.u, b: e.v });
    }

    let mut live = n;
    while live > min_communities.max(1) {
        // Pop until a still-valid candidate emerges.
        let cand = loop {
            match heap.pop() {
                None => break None,
                Some(c) => {
                    if members[c.a as usize].is_none() || members[c.b as usize].is_none() {
                        continue;
                    }
                    match dq[c.a as usize].get(&c.b) {
                        Some(&cur) if cur.to_bits() == c.dq.to_bits() => break Some(c),
                        _ => continue,
                    }
                }
            }
        };
        let Some(cand) = cand else { break };
        if cand.dq <= 0.0 {
            break;
        }

        // Merge b into a.
        let (ca, cb) = (cand.a as usize, cand.b as usize);
        // INVARIANT: the candidate was validated against `live`
        // communities above; both slots hold Some.
        let moved = members[cb].take().expect("validated live");
        members[ca].as_mut().expect("validated live").extend(moved);
        live -= 1;

        // Recompute ΔQ rows for the merged community.
        // DETERMINISM: drain order cannot escape — each (k, dq_bk)
        // entry updates the disjoint row slots dq[ca][k] / dq[k][ca]
        // independently, and `touched` is sorted before use below.
        let neighbors_b: Vec<(u32, f64)> = dq[cb].drain().collect();
        dq[ca].remove(&(cb as u32));
        let a_a = a[ca];
        let a_b = a[cb];
        // Neighbors whose ΔQ was refreshed through b (both-adjacent or
        // b-only); a-only neighbors get their correction in a second pass.
        let mut touched: Vec<u32> = Vec::with_capacity(neighbors_b.len());
        for (k, dq_bk) in neighbors_b {
            let k_us = k as usize;
            dq[k_us].remove(&(cb as u32));
            if k_us == ca {
                continue;
            }
            let new = match dq[ca].entry(k) {
                Entry::Occupied(mut o) => {
                    // k adjacent to both a and b
                    let v = *o.get() + dq_bk;
                    o.insert(v);
                    v
                }
                Entry::Vacant(vac) => {
                    // k adjacent to b only
                    let v = dq_bk - 2.0 * a_a * a[k_us];
                    vac.insert(v);
                    v
                }
            };
            dq[k_us].insert(ca as u32, new);
            touched.push(k);
            heap.push(MergeCandidate { dq: new, a: ca as u32, b: k });
        }
        touched.sort_unstable();
        // k adjacent to a only: ΔQ decreases by 2·a_b·a_k.
        // DETERMINISM: key order cannot escape — the loop applies an
        // independent in-place correction per key, and heap extraction
        // order is fixed by MergeCandidate's total Ord, not push order.
        let keys: Vec<u32> = dq[ca].keys().copied().collect();
        for k in keys {
            if touched.binary_search(&k).is_ok() {
                continue;
            }
            let k_us = k as usize;
            // INVARIANT: k came from dq[ca].keys() and no entry is
            // removed inside this loop.
            let av = dq[ca].get_mut(&k).expect("key just listed");
            let v = *av - 2.0 * a_b * a[k_us];
            *av = v;
            dq[k_us].insert(ca as u32, v);
            heap.push(MergeCandidate { dq: v, a: ca as u32, b: k });
        }
        a[ca] += a_b;
        a[cb] = 0.0;
    }

    let mut out: Vec<Vec<NodeId>> = members.into_iter().flatten().collect();
    for c in &mut out {
        c.sort_unstable();
    }
    out.sort_by(|x, y| y.len().cmp(&x.len()).then_with(|| x[0].cmp(&y[0])));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn modularity_of_single_community_is_zero_for_regular_split() {
        let g = generators::ring(6);
        let all: Vec<NodeId> = (0..6).collect();
        // all nodes in one community: Q = L/m - (2m/2m)^2 = 1 - 1 = 0
        assert!((modularity(&g, &[all])).abs() < 1e-12);
    }

    #[test]
    fn modularity_hand_computed_value() {
        // two triangles joined by one edge; split at the bridge.
        // m = 7; intra = 3 + 3; degrees: each triangle has 2+2+3+... -> d_c = 7.
        let g = generators::barbell(3);
        assert_eq!(g.num_edges(), 7);
        let comms = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let q = modularity(&g, &comms);
        let expected = 2.0 * (3.0 / 7.0 - (7.0 / 14.0_f64).powi(2));
        assert!((q - expected).abs() < 1e-12, "q={q} expected={expected}");
    }

    #[test]
    fn cnm_recovers_barbell_bells() {
        let g = generators::barbell(5);
        let comms = greedy_modularity_communities(&g, 1);
        assert_eq!(comms.len(), 2);
        assert_eq!(comms[0], vec![0, 1, 2, 3, 4]);
        assert_eq!(comms[1], vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn cnm_recovers_planted_partition() {
        let g = generators::planted_partition(3, 8, 0.9, 0.02, 5);
        let comms = greedy_modularity_communities(&g, 1);
        // should find exactly the three blocks
        assert_eq!(comms.len(), 3, "got {comms:?}");
        for c in &comms {
            let block = c[0] / 8;
            assert!(c.iter().all(|&v| v / 8 == block), "mixed community {c:?}");
        }
    }

    #[test]
    fn cnm_improves_modularity_over_singletons() {
        let g = generators::erdos_renyi(40, 0.15, generators::WeightKind::Uniform, 9);
        let singletons: Vec<Vec<NodeId>> = (0..40).map(|v| vec![v]).collect();
        let comms = greedy_modularity_communities(&g, 1);
        assert!(modularity(&g, &comms) >= modularity(&g, &singletons));
    }

    #[test]
    fn cnm_respects_min_communities() {
        let g = generators::complete(12);
        let comms = greedy_modularity_communities(&g, 4);
        assert!(comms.len() >= 4);
    }

    #[test]
    fn cnm_covers_all_nodes_exactly_once() {
        let g = generators::erdos_renyi(60, 0.1, generators::WeightKind::Random01, 13);
        let comms = greedy_modularity_communities(&g, 1);
        let mut seen = [false; 60];
        for c in &comms {
            for &v in c {
                assert!(!seen[v as usize], "node {v} appears twice");
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cnm_handles_edgeless_graph() {
        let g = Graph::new(5);
        let comms = greedy_modularity_communities(&g, 1);
        assert_eq!(comms.len(), 5);
    }

    #[test]
    fn cnm_handles_empty_graph() {
        let g = Graph::new(0);
        assert!(greedy_modularity_communities(&g, 1).is_empty());
    }

    #[test]
    fn cnm_deterministic() {
        let g = generators::erdos_renyi(50, 0.2, generators::WeightKind::Uniform, 21);
        let a = greedy_modularity_communities(&g, 1);
        let b = greedy_modularity_communities(&g, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn cnm_negative_total_weight_falls_back_to_singletons() {
        let g = Graph::from_edges(3, [(0, 1, -1.0), (1, 2, -0.5)]).unwrap();
        let comms = greedy_modularity_communities(&g, 1);
        assert_eq!(comms.len(), 3);
    }
}
