//! Weighted undirected graph representation on CSR storage.
//!
//! The graph is stored twice: as a flat edge list (the natural shape for cut
//! evaluation, Hamiltonian construction and SDP assembly) and as a
//! **compressed sparse row** adjacency — one flat `(neighbor, weight)` array
//! plus per-node offsets — the natural shape for traversals, modularity
//! bookkeeping, and million-node instances. Both views are built once and
//! kept consistent: [`GraphBuilder`] is the scalable construction path
//! (append edges in O(1), one sort-based finalize), while
//! [`Graph::add_edge`] remains for small incremental builds.
//!
//! ## Memory layout
//!
//! For `n` nodes and `m` edges the finalized graph owns exactly three
//! allocations:
//!
//! * `edges`: `m × 16` bytes (`Edge { u: u32, v: u32, w: f64 }`), in
//!   insertion order with canonical `u < v` orientation;
//! * `adj`: `2m × 16` bytes (`(NodeId, f64)` pairs, each edge appearing
//!   once per endpoint), sorted by neighbor id within each node's slice;
//! * `offsets`: `(n + 1) × 8` bytes, with node `v`'s neighbors at
//!   `adj[offsets[v]..offsets[v + 1]]`.
//!
//! Total: `48m + 8n + O(1)` bytes — 24 bytes per edge-endpoint plus the
//! offset array, well under the suite's 48 bytes/endpoint ceiling
//! (`BENCH_large.json`). There are no per-node heap allocations, so a
//! 10⁷-node instance costs ten million *entries*, not ten million `Vec`s.

use std::fmt;

/// Node identifier. Graphs in this suite stay well below `u32::MAX` nodes,
/// and the narrower index keeps edge lists compact (see the perf-book advice
/// on smaller integers for hot types).
pub type NodeId = u32;

/// A weighted undirected edge. Stored with `u < v` canonical orientation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: NodeId,
    /// Larger endpoint.
    pub v: NodeId,
    /// Edge weight `w_uv = w_vu`. May be negative in QAOA² merge graphs.
    pub w: f64,
}

/// Errors for graph construction and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An endpoint index is out of range.
    NodeOutOfRange { node: NodeId, num_nodes: usize },
    /// A self-loop was supplied; MaxCut never benefits from them and the
    /// Ising mapping has no `Z_i Z_i` term, so they are rejected outright.
    SelfLoop { node: NodeId },
    /// The same unordered pair appeared twice.
    DuplicateEdge { u: NodeId, v: NodeId },
    /// Parse failure in [`crate::io`].
    Parse { line: usize, message: String },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range for graph with {num_nodes} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop on node {node} rejected"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Streaming construction for [`Graph`]: append edges freely (O(1) each,
/// range and self-loop checked immediately), then [`GraphBuilder::finalize`]
/// sorts, detects duplicates, and assembles the CSR adjacency in one
/// `O(m log m)` pass. This is the path every generator, reader, and
/// contraction uses — unlike [`Graph::add_edge`] there is no per-insert
/// duplicate scan or adjacency splice, so hubs and million-edge streams
/// stay linear.
///
/// ```
/// use qq_graph::graph::GraphBuilder;
///
/// let mut b = GraphBuilder::with_capacity(4, 3);
/// b.add_edge(2, 0, 1.0).unwrap();
/// b.add_edge(1, 3, 0.5).unwrap();
/// b.add_edge(0, 1, 2.0).unwrap();
/// let g = b.finalize().unwrap();
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.neighbors(0), &[(1, 2.0), (2, 1.0)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Start a builder for a graph on `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder { num_nodes, edges: Vec::new() }
    }

    /// Start a builder with room for `edge_capacity` edges — the
    /// capacity hint streaming readers take from the Gset header, so
    /// ingestion performs one allocation instead of a doubling series.
    pub fn with_capacity(num_nodes: usize, edge_capacity: usize) -> Self {
        GraphBuilder { num_nodes, edges: Vec::with_capacity(edge_capacity) }
    }

    /// Reserve room for `additional` further edges.
    pub fn reserve(&mut self, additional: usize) {
        self.edges.reserve(additional);
    }

    /// Number of nodes the finalized graph will have.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Edges appended so far.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Append one undirected edge. O(1): range and self-loop violations
    /// error immediately; duplicate pairs are detected by
    /// [`GraphBuilder::finalize`]'s sort (no per-insert scan).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: f64) -> crate::Result<()> {
        let n = self.num_nodes;
        if (u as usize) >= n {
            return Err(GraphError::NodeOutOfRange { node: u, num_nodes: n });
        }
        if (v as usize) >= n {
            return Err(GraphError::NodeOutOfRange { node: v, num_nodes: n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push(Edge { u: a, v: b, w });
        Ok(())
    }

    /// Assemble the CSR graph: count degrees, scatter both endpoints of
    /// every edge, sort each node's slice by neighbor id, and reject
    /// duplicate unordered pairs (adjacent after the sort). `O(m log d)`
    /// overall for maximum degree `d`; edge insertion order is preserved
    /// in [`Graph::edges`].
    ///
    /// Above [`PAR_FINALIZE_MIN_EDGES`] the degree count, endpoint
    /// scatter, and per-slice sorts run on the worker pool in
    /// [`PAR_FINALIZE_RANGES`] fixed chunks. Chunk layout depends only on
    /// the input size — never the thread count — and the two paths write
    /// identical bytes (scatter order within a node's slice is erased by
    /// the sort), so which path runs is invisible to callers and to the
    /// determinism digest.
    pub fn finalize(self) -> crate::Result<Graph> {
        let GraphBuilder { num_nodes, edges } = self;
        if edges.len() >= PAR_FINALIZE_MIN_EDGES {
            return finalize_parallel(num_nodes, edges);
        }
        let mut offsets = vec![0usize; num_nodes + 1];
        for e in &edges {
            offsets[e.u as usize + 1] += 1;
            offsets[e.v as usize + 1] += 1;
        }
        for i in 0..num_nodes {
            offsets[i + 1] += offsets[i];
        }
        // CAST: literal zero placeholder — trivially in NodeId range.
        let mut adj = vec![(0 as NodeId, 0.0f64); 2 * edges.len()];
        let mut cursor = offsets.clone();
        for e in &edges {
            adj[cursor[e.u as usize]] = (e.v, e.w);
            cursor[e.u as usize] += 1;
            adj[cursor[e.v as usize]] = (e.u, e.w);
            cursor[e.v as usize] += 1;
        }
        for v in 0..num_nodes {
            let slice = &mut adj[offsets[v]..offsets[v + 1]];
            slice.sort_unstable_by_key(|&(u, _)| u);
            if let Some(pair) = slice.windows(2).find(|p| p[0].0 == p[1].0) {
                let other = pair[0].0;
                // CAST: v < num_nodes, which stays below u32::MAX by the
                // NodeId contract (every edge endpoint was range-checked
                // at add_edge).
                let v = v as NodeId;
                return Err(GraphError::DuplicateEdge { u: v.min(other), v: v.max(other) });
            }
        }
        Ok(Graph { num_nodes, edges, offsets, adj })
    }
}

/// Edge count above which [`GraphBuilder::finalize`] assembles the CSR
/// arrays on the worker pool. A pure size gate (never thread-count
/// dependent) chosen so the 10⁵-node bench smoke leg already exercises
/// the parallel path while unit-test graphs skip its setup cost.
pub const PAR_FINALIZE_MIN_EDGES: usize = 1 << 16;

/// Fixed fan-out of the parallel finalize: the edge list is cut into this
/// many histogram chunks and the node space into this many contiguous
/// ranges. A constant keeps chunk boundaries identical at any
/// `RAYON_NUM_THREADS`, and bounds the transient per-chunk degree
/// histograms to `PAR_FINALIZE_RANGES × 4(n+1)` bytes.
const PAR_FINALIZE_RANGES: usize = 8;

/// Pool-parallel CSR assembly. Three phases:
///
/// 1. **Degree count** — per-chunk `u32` histograms over fixed edge
///    chunks, summed element-wise in chunk order (integer adds, so the
///    result equals the sequential count exactly).
/// 2. **Scatter + sort** — the node space is split at offset boundaries
///    into contiguous ranges of roughly equal endpoint count; each range
///    owns a disjoint `&mut` sub-slice of `adj` (no locks, no unsafe),
///    scans the full edge list, scatters the endpoints that land in its
///    range, then sorts each node slice by neighbor id. Scanning `m`
///    edges per range costs `PAR_FINALIZE_RANGES × m` reads total, but
///    the skipped-endpoint test is two compares while the writes — the
///    cache-missing part — stay partitioned and local.
/// 3. **Duplicate check** — each range reports its first duplicate in
///    ascending node order; taking the first report in range order
///    reproduces the sequential path's error exactly.
fn finalize_parallel(num_nodes: usize, edges: Vec<Edge>) -> crate::Result<Graph> {
    use rayon::prelude::*;

    let hist_chunk = edges.len().div_ceil(PAR_FINALIZE_RANGES).max(1);
    // REDUCTION: fixed par_chunks(hist_chunk) — a pure function of the
    // edge count; integer histograms merge index-wise, no floats cross
    // chunks.
    let counts = edges
        .par_chunks(hist_chunk)
        .map(|chunk| {
            let mut counts = vec![0u32; num_nodes + 1];
            for e in chunk {
                counts[e.u as usize + 1] += 1;
                counts[e.v as usize + 1] += 1;
            }
            counts
        })
        .reduce(
            || vec![0u32; num_nodes + 1],
            |mut acc, part| {
                for (a, p) in acc.iter_mut().zip(&part) {
                    *a += *p;
                }
                acc
            },
        );
    let mut offsets = vec![0usize; num_nodes + 1];
    for i in 0..num_nodes {
        offsets[i + 1] = offsets[i] + counts[i + 1] as usize;
    }
    drop(counts);

    // Node-range boundaries balanced by endpoint count, derived from the
    // offsets alone (deterministic). Monotone by construction.
    let total = 2 * edges.len();
    let mut bounds = Vec::with_capacity(PAR_FINALIZE_RANGES + 1);
    bounds.push(0usize);
    for i in 1..PAR_FINALIZE_RANGES {
        let target = total * i / PAR_FINALIZE_RANGES;
        let node = offsets.partition_point(|&o| o < target).min(num_nodes);
        bounds.push(node.max(*bounds.last().unwrap_or(&0)));
    }
    bounds.push(num_nodes);

    // (lo, hi, the disjoint &mut adj sub-slice covering those nodes)
    type ScatterTask<'a> = (usize, usize, &'a mut [(NodeId, f64)]);
    // CAST: literal zero placeholder — trivially in NodeId range.
    let mut adj = vec![(0 as NodeId, 0.0f64); total];
    let mut tasks: Vec<ScatterTask> = Vec::with_capacity(PAR_FINALIZE_RANGES);
    let mut rest: &mut [(NodeId, f64)] = &mut adj;
    for pair in bounds.windows(2) {
        let (lo, hi) = (pair[0], pair[1]);
        let (head, tail) = std::mem::take(&mut rest).split_at_mut(offsets[hi] - offsets[lo]);
        rest = tail;
        tasks.push((lo, hi, head));
    }

    // REDUCTION: fixed per-node-range tasks (one leaf each); the collect
    // is keyed by task index and carries no floats.
    let first_dup = tasks
        .into_par_iter()
        .with_min_len(1)
        .map(|(lo, hi, slice)| {
            let base = offsets[lo];
            let mut cursor: Vec<usize> = offsets[lo..hi].to_vec();
            for e in &edges {
                let (u, v) = (e.u as usize, e.v as usize);
                if u >= lo && u < hi {
                    slice[cursor[u - lo] - base] = (e.v, e.w);
                    cursor[u - lo] += 1;
                }
                if v >= lo && v < hi {
                    slice[cursor[v - lo] - base] = (e.u, e.w);
                    cursor[v - lo] += 1;
                }
            }
            for node in lo..hi {
                let s = &mut slice[offsets[node] - base..offsets[node + 1] - base];
                s.sort_unstable_by_key(|&(u, _)| u);
                if let Some(pair) = s.windows(2).find(|p| p[0].0 == p[1].0) {
                    let other = pair[0].0;
                    // CAST: node < num_nodes ≤ NodeId range (add_edge
                    // range-checked every endpoint).
                    let node = node as NodeId;
                    return Some((node.min(other), node.max(other)));
                }
            }
            None
        })
        .collect::<Vec<_>>()
        .into_iter()
        .flatten()
        .next();
    if let Some((u, v)) = first_dup {
        return Err(GraphError::DuplicateEdge { u, v });
    }
    Ok(Graph { num_nodes, edges, offsets, adj })
}

/// A weighted undirected graph with `0..n` contiguous node ids on CSR
/// storage (see the module docs for the exact layout). Neighbor slices
/// are always sorted by neighbor id — a documented invariant traversals
/// and binary-search lookups rely on.
#[derive(Debug, Clone)]
pub struct Graph {
    num_nodes: usize,
    edges: Vec<Edge>,
    /// Node `v`'s neighbors live at `adj[offsets[v]..offsets[v + 1]]`.
    offsets: Vec<usize>,
    /// Flat `(neighbor, weight)` pairs; every edge appears twice, and
    /// each node's slice is sorted ascending by neighbor id.
    adj: Vec<(NodeId, f64)>,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new(0)
    }
}

impl Graph {
    /// Create an edgeless graph on `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Graph { num_nodes, edges: Vec::new(), offsets: vec![0; num_nodes + 1], adj: Vec::new() }
    }

    /// Start a [`GraphBuilder`] on `num_nodes` nodes — the scalable
    /// construction path for anything beyond a handful of edges.
    pub fn builder(num_nodes: usize) -> GraphBuilder {
        GraphBuilder::new(num_nodes)
    }

    /// Create a graph from an iterator of `(u, v, w)` triples.
    ///
    /// Duplicate unordered pairs and self-loops are rejected.
    pub fn from_edges<I>(num_nodes: usize, iter: I) -> crate::Result<Self>
    where
        I: IntoIterator<Item = (NodeId, NodeId, f64)>,
    {
        let iter = iter.into_iter();
        let mut b = GraphBuilder::with_capacity(num_nodes, iter.size_hint().0);
        for (u, v, w) in iter {
            b.add_edge(u, v, w)?;
        }
        b.finalize()
    }

    /// Add one undirected edge to an already-built graph.
    ///
    /// Kept for small incremental builds and test fixtures: the
    /// duplicate check is an `O(log d)` binary search on the sorted
    /// neighbor slice (no linear hub scan), but splicing the CSR arrays
    /// costs `O(n + m)` per call — bulk construction belongs in
    /// [`GraphBuilder`], which is linear overall.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: f64) -> crate::Result<()> {
        let n = self.num_nodes;
        if (u as usize) >= n {
            return Err(GraphError::NodeOutOfRange { node: u, num_nodes: n });
        }
        if (v as usize) >= n {
            return Err(GraphError::NodeOutOfRange { node: v, num_nodes: n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if self.neighbor_index(u, v).is_ok() {
            return Err(GraphError::DuplicateEdge { u: u.min(v), v: u.max(v) });
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push(Edge { u: a, v: b, w });
        // Splice both endpoints into the sorted CSR slices: compute both
        // global insertion points on the pre-insert arrays, insert at the
        // later position first so the earlier index stays valid.
        // INVARIANT: the duplicate check above guarantees v is absent from
        // u's slice (and vice versa), so binary search returns Err here.
        let pos_u = self.offsets[u as usize] + self.neighbor_index(u, v).unwrap_err();
        // INVARIANT: same absence guarantee, mirrored orientation.
        let pos_v = self.offsets[v as usize] + self.neighbor_index(v, u).unwrap_err();
        // u's slice receives entry (v, w) at pos_u; v's slice receives
        // (u, w) at pos_v. When both land on the same slice boundary the
        // position ties break by owner id — the lower node's slice comes
        // first in the flat array, so its entry must be inserted second.
        let op_u = (pos_u, u as usize, (v, w));
        let op_v = (pos_v, v as usize, (u, w));
        let (first, second) =
            if (op_u.0, op_u.1) > (op_v.0, op_v.1) { (op_u, op_v) } else { (op_v, op_u) };
        self.adj.insert(first.0, first.2);
        self.adj.insert(second.0, second.2);
        for node in [u, v] {
            for o in &mut self.offsets[node as usize + 1..] {
                *o += 1;
            }
        }
        Ok(())
    }

    /// Position of `v` within `u`'s sorted neighbor slice (`Ok`) or the
    /// insertion point that keeps the slice sorted (`Err`).
    fn neighbor_index(&self, u: NodeId, v: NodeId) -> std::result::Result<usize, usize> {
        self.neighbors(u).binary_search_by_key(&v, |&(x, _)| x)
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Flat edge list (canonical `u < v` orientation, insertion order).
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Neighbors of `v` as `(neighbor, weight)` pairs, sorted ascending
    /// by neighbor id.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, f64)] {
        &self.adj[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of `v` (neighbor count, not weighted).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Weighted degree of `v`: `Σ_u w_vu`.
    pub fn weighted_degree(&self, v: NodeId) -> f64 {
        self.neighbors(v).iter().map(|&(_, w)| w).sum()
    }

    /// Sum of all edge weights (each edge counted once).
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.w).sum()
    }

    /// True if every edge weight equals 1 (the paper's "unweighted" case).
    pub fn is_unit_weighted(&self) -> bool {
        self.edges.iter().all(|e| e.w == 1.0)
    }

    /// Edge density: `|E| / (n choose 2)`; 0 for graphs with < 2 nodes.
    pub fn density(&self) -> f64 {
        if self.num_nodes < 2 {
            return 0.0;
        }
        let max = self.num_nodes as f64 * (self.num_nodes as f64 - 1.0) / 2.0;
        self.edges.len() as f64 / max
    }

    /// Weight of the edge `(u, v)` if present. `O(log d)` binary search
    /// on the sorted neighbor slice.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        if (u as usize) >= self.num_nodes {
            return None;
        }
        self.neighbor_index(u, v).ok().map(|i| self.adj[self.offsets[u as usize] + i].1)
    }

    /// Bytes of heap memory the graph's three arrays occupy (capacity,
    /// not length — what the allocator actually holds). The
    /// `BENCH_large.json` memory-ceiling number is this divided by
    /// `2 · num_edges()` (bytes per edge-endpoint).
    pub fn memory_bytes(&self) -> usize {
        self.edges.capacity() * std::mem::size_of::<Edge>()
            + self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.adj.capacity() * std::mem::size_of::<(NodeId, f64)>()
    }

    /// Connected components as lists of node ids (each sorted ascending).
    pub fn connected_components(&self) -> Vec<Vec<NodeId>> {
        let n = self.num_nodes;
        let mut seen = vec![false; n];
        let mut comps = Vec::new();
        let mut stack = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            seen[start] = true;
            // CAST: start < num_nodes ≤ NodeId range.
            stack.push(start as NodeId);
            let mut comp = Vec::new();
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &(u, _) in self.neighbors(v) {
                    if !seen[u as usize] {
                        seen[u as usize] = true;
                        stack.push(u);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// Induced subgraph on `nodes` (need not be sorted). Returns the new
    /// graph plus the mapping `local id -> original id`. One linear pass
    /// through the parent edge list into a [`GraphBuilder`].
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut local_of = vec![u32::MAX; self.num_nodes];
        for (i, &v) in nodes.iter().enumerate() {
            // CAST: i indexes the subgraph's node list, whose length is
            // at most num_nodes ≤ NodeId range.
            local_of[v as usize] = i as u32;
        }
        let mut b = GraphBuilder::new(nodes.len());
        for e in &self.edges {
            let lu = local_of[e.u as usize];
            let lv = local_of[e.v as usize];
            if lu != u32::MAX && lv != u32::MAX {
                // INVARIANT: local ids are a bijection onto 0..nodes.len()
                // and parent edges are unique, so induced edges are too.
                b.add_edge(lu, lv, e.w).expect("induced edges are unique and in range");
            }
        }
        // INVARIANT: induced edges inherit uniqueness from the parent,
        // so finalize's duplicate scan cannot fire.
        let g = b.finalize().expect("induced edges are unique");
        (g, nodes.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]).unwrap()
    }

    #[test]
    fn basic_construction() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.total_weight(), 6.0);
        assert!((g.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        assert_eq!(g.add_edge(1, 1, 1.0), Err(GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = Graph::new(2);
        assert_eq!(
            g.add_edge(0, 5, 1.0),
            Err(GraphError::NodeOutOfRange { node: 5, num_nodes: 2 })
        );
    }

    #[test]
    fn rejects_duplicate_edge_either_orientation() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0).unwrap();
        assert_eq!(g.add_edge(1, 0, 2.0), Err(GraphError::DuplicateEdge { u: 0, v: 1 }));
    }

    #[test]
    fn edge_weight_lookup() {
        let g = triangle();
        assert_eq!(g.edge_weight(2, 1), Some(2.0));
        assert_eq!(g.edge_weight(1, 2), Some(2.0));
        assert_eq!(g.edge_weight(0, 0), None);
        assert_eq!(g.edge_weight(7, 0), None);
    }

    #[test]
    fn weighted_degree_sums_incident_weights() {
        let g = triangle();
        assert_eq!(g.weighted_degree(0), 4.0);
        assert_eq!(g.weighted_degree(2), 5.0);
    }

    #[test]
    fn canonical_edge_orientation() {
        let g = Graph::from_edges(3, [(2, 0, 1.0)]).unwrap();
        let e = g.edges()[0];
        assert!(e.u < e.v);
    }

    #[test]
    fn connected_components_split() {
        // two disjoint edges + isolated node
        let g = Graph::from_edges(5, [(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let comps = g.connected_components();
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn induced_subgraph_remaps_ids() {
        let g = triangle();
        let (sub, map) = g.induced_subgraph(&[2, 0]);
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.num_edges(), 1);
        // edge (0,2,w=3) survives, remapped to local (1,0) -> canonical (0,1)
        assert_eq!(sub.edges()[0].w, 3.0);
        assert_eq!(map, vec![2, 0]);
    }

    #[test]
    fn unit_weight_detection() {
        let g = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        assert!(g.is_unit_weighted());
        let h = triangle();
        assert!(!h.is_unit_weighted());
    }

    #[test]
    fn neighbors_are_sorted_by_id() {
        // edges inserted in scrambled order; CSR slices must come out
        // sorted — the invariant binary-search lookups rely on
        let g = Graph::from_edges(5, [(3, 1, 1.0), (1, 0, 2.0), (4, 1, 3.0), (1, 2, 4.0)]).unwrap();
        assert_eq!(g.neighbors(1), &[(0, 2.0), (2, 4.0), (3, 1.0), (4, 3.0)]);
        assert_eq!(g.degree(1), 4);
        assert_eq!(g.neighbors(0), &[(1, 2.0)]);
    }

    #[test]
    fn builder_defers_duplicate_detection_to_finalize() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 0, 2.0).unwrap(); // accepted now…
        assert_eq!(b.num_edges(), 2);
        // …rejected at finalize, canonical orientation in the error
        assert_eq!(b.finalize().unwrap_err(), GraphError::DuplicateEdge { u: 0, v: 1 });
    }

    #[test]
    fn builder_validates_range_and_self_loops_eagerly() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(
            b.add_edge(0, 3, 1.0),
            Err(GraphError::NodeOutOfRange { node: 3, num_nodes: 3 })
        );
        assert_eq!(b.add_edge(2, 2, 1.0), Err(GraphError::SelfLoop { node: 2 }));
    }

    #[test]
    fn builder_matches_incremental_construction() {
        let edges = [(0u32, 4u32, 1.5), (2, 1, -2.0), (3, 4, 0.25), (0, 1, 7.0)];
        let mut incremental = Graph::new(5);
        for &(u, v, w) in &edges {
            incremental.add_edge(u, v, w).unwrap();
        }
        let built = Graph::from_edges(5, edges).unwrap();
        assert_eq!(incremental.num_edges(), built.num_edges());
        for (a, b) in incremental.edges().iter().zip(built.edges()) {
            assert_eq!((a.u, a.v, a.w), (b.u, b.v, b.w));
        }
        for v in 0..5 {
            assert_eq!(incremental.neighbors(v), built.neighbors(v), "node {v}");
        }
    }

    #[test]
    fn add_edge_after_build_keeps_csr_consistent() {
        let mut g = Graph::from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        g.add_edge(1, 2, 5.0).unwrap();
        g.add_edge(3, 0, 2.0).unwrap();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[(1, 1.0), (3, 2.0)]);
        assert_eq!(g.neighbors(1), &[(0, 1.0), (2, 5.0)]);
        assert_eq!(g.neighbors(2), &[(1, 5.0), (3, 1.0)]);
        assert_eq!(g.neighbors(3), &[(0, 2.0), (2, 1.0)]);
        assert_eq!(g.edge_weight(3, 0), Some(2.0));
    }

    #[test]
    fn builder_capacity_hint_preallocates() {
        let mut b = GraphBuilder::with_capacity(10, 64);
        b.add_edge(0, 1, 1.0).unwrap();
        let g = b.finalize().unwrap();
        assert_eq!(g.num_edges(), 1);
        // capacity-based accounting includes the hint's slack
        assert!(g.memory_bytes() >= 64 * std::mem::size_of::<Edge>());
    }

    #[test]
    fn memory_bytes_tracks_the_three_arrays() {
        let g = triangle();
        let expected = g.edges().len() * 16 // Edge
            + 4 * 8 // offsets: n + 1 usizes
            + 2 * g.num_edges() * 16; // adj pairs
                                      // capacities may exceed lengths; the floor is the exact layout
        assert!(g.memory_bytes() >= expected);
        // an edgeless graph still owns its offset array
        assert!(Graph::new(100).memory_bytes() >= 101 * 8);
    }

    #[test]
    fn duplicate_on_a_hub_is_found_by_binary_search() {
        // star-shaped hub: the duplicate check must not degrade to a
        // linear scan (pinned here only behaviorally — the complexity
        // claim lives in the binary search over the sorted slice)
        let mut g = Graph::new(1000);
        for v in 1..1000 {
            g.add_edge(0, v, 1.0).unwrap();
        }
        assert_eq!(g.add_edge(517, 0, 1.0), Err(GraphError::DuplicateEdge { u: 0, v: 517 }));
        assert_eq!(g.degree(0), 999);
    }
}
