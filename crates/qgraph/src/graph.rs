//! Weighted undirected graph representation.
//!
//! The graph is stored twice: as a flat edge list (the natural shape for cut
//! evaluation, Hamiltonian construction and SDP assembly) and as adjacency
//! lists (the natural shape for traversals and modularity bookkeeping). Both
//! views are built once and kept consistent; the struct is immutable after
//! construction apart from [`Graph::add_edge`] during building.

use std::fmt;

/// Node identifier. Graphs in this suite stay well below `u32::MAX` nodes,
/// and the narrower index keeps edge lists compact (see the perf-book advice
/// on smaller integers for hot types).
pub type NodeId = u32;

/// A weighted undirected edge. Stored with `u < v` canonical orientation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: NodeId,
    /// Larger endpoint.
    pub v: NodeId,
    /// Edge weight `w_uv = w_vu`. May be negative in QAOA² merge graphs.
    pub w: f64,
}

/// Errors for graph construction and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An endpoint index is out of range.
    NodeOutOfRange { node: NodeId, num_nodes: usize },
    /// A self-loop was supplied; MaxCut never benefits from them and the
    /// Ising mapping has no `Z_i Z_i` term, so they are rejected outright.
    SelfLoop { node: NodeId },
    /// The same unordered pair appeared twice.
    DuplicateEdge { u: NodeId, v: NodeId },
    /// Parse failure in [`crate::io`].
    Parse { line: usize, message: String },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range for graph with {num_nodes} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop on node {node} rejected"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A weighted undirected graph with `0..n` contiguous node ids.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    num_nodes: usize,
    edges: Vec<Edge>,
    /// `adj[v]` lists `(neighbor, weight)` pairs; every edge appears twice.
    adj: Vec<Vec<(NodeId, f64)>>,
}

impl Graph {
    /// Create an edgeless graph on `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Graph { num_nodes, edges: Vec::new(), adj: vec![Vec::new(); num_nodes] }
    }

    /// Create a graph from an iterator of `(u, v, w)` triples.
    ///
    /// Duplicate unordered pairs and self-loops are rejected.
    pub fn from_edges<I>(num_nodes: usize, iter: I) -> crate::Result<Self>
    where
        I: IntoIterator<Item = (NodeId, NodeId, f64)>,
    {
        let mut g = Graph::new(num_nodes);
        for (u, v, w) in iter {
            g.add_edge(u, v, w)?;
        }
        Ok(g)
    }

    /// Add one undirected edge. `O(deg)` duplicate check against the
    /// adjacency list — fine for construction-time use.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: f64) -> crate::Result<()> {
        let n = self.num_nodes;
        if (u as usize) >= n {
            return Err(GraphError::NodeOutOfRange { node: u, num_nodes: n });
        }
        if (v as usize) >= n {
            return Err(GraphError::NodeOutOfRange { node: v, num_nodes: n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if self.adj[u as usize].iter().any(|&(x, _)| x == v) {
            return Err(GraphError::DuplicateEdge { u: u.min(v), v: u.max(v) });
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push(Edge { u: a, v: b, w });
        self.adj[u as usize].push((v, w));
        self.adj[v as usize].push((u, w));
        Ok(())
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Flat edge list (canonical `u < v` orientation).
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Neighbors of `v` as `(neighbor, weight)` pairs.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, f64)] {
        &self.adj[v as usize]
    }

    /// Degree of `v` (neighbor count, not weighted).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    /// Weighted degree of `v`: `Σ_u w_vu`.
    pub fn weighted_degree(&self, v: NodeId) -> f64 {
        self.adj[v as usize].iter().map(|&(_, w)| w).sum()
    }

    /// Sum of all edge weights (each edge counted once).
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.w).sum()
    }

    /// True if every edge weight equals 1 (the paper's "unweighted" case).
    pub fn is_unit_weighted(&self) -> bool {
        self.edges.iter().all(|e| e.w == 1.0)
    }

    /// Edge density: `|E| / (n choose 2)`; 0 for graphs with < 2 nodes.
    pub fn density(&self) -> f64 {
        if self.num_nodes < 2 {
            return 0.0;
        }
        let max = self.num_nodes as f64 * (self.num_nodes as f64 - 1.0) / 2.0;
        self.edges.len() as f64 / max
    }

    /// Weight of the edge `(u, v)` if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.adj.get(u as usize)?.iter().find_map(|&(x, w)| (x == v).then_some(w))
    }

    /// Connected components as lists of node ids (each sorted ascending).
    pub fn connected_components(&self) -> Vec<Vec<NodeId>> {
        let n = self.num_nodes;
        let mut seen = vec![false; n];
        let mut comps = Vec::new();
        let mut stack = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            seen[start] = true;
            stack.push(start as NodeId);
            let mut comp = Vec::new();
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &(u, _) in self.neighbors(v) {
                    if !seen[u as usize] {
                        seen[u as usize] = true;
                        stack.push(u);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// Induced subgraph on `nodes` (need not be sorted). Returns the new
    /// graph plus the mapping `local id -> original id`.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut local_of = vec![u32::MAX; self.num_nodes];
        for (i, &v) in nodes.iter().enumerate() {
            local_of[v as usize] = i as u32;
        }
        let mut g = Graph::new(nodes.len());
        for e in &self.edges {
            let lu = local_of[e.u as usize];
            let lv = local_of[e.v as usize];
            if lu != u32::MAX && lv != u32::MAX {
                // INVARIANT: local ids are a bijection onto 0..nodes.len()
                // and parent edges are unique, so induced edges are too.
                g.add_edge(lu, lv, e.w).expect("induced edges are unique and in range");
            }
        }
        (g, nodes.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]).unwrap()
    }

    #[test]
    fn basic_construction() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.total_weight(), 6.0);
        assert!((g.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        assert_eq!(g.add_edge(1, 1, 1.0), Err(GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = Graph::new(2);
        assert_eq!(
            g.add_edge(0, 5, 1.0),
            Err(GraphError::NodeOutOfRange { node: 5, num_nodes: 2 })
        );
    }

    #[test]
    fn rejects_duplicate_edge_either_orientation() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0).unwrap();
        assert_eq!(g.add_edge(1, 0, 2.0), Err(GraphError::DuplicateEdge { u: 0, v: 1 }));
    }

    #[test]
    fn edge_weight_lookup() {
        let g = triangle();
        assert_eq!(g.edge_weight(2, 1), Some(2.0));
        assert_eq!(g.edge_weight(1, 2), Some(2.0));
        assert_eq!(g.edge_weight(0, 0), None);
    }

    #[test]
    fn weighted_degree_sums_incident_weights() {
        let g = triangle();
        assert_eq!(g.weighted_degree(0), 4.0);
        assert_eq!(g.weighted_degree(2), 5.0);
    }

    #[test]
    fn canonical_edge_orientation() {
        let g = Graph::from_edges(3, [(2, 0, 1.0)]).unwrap();
        let e = g.edges()[0];
        assert!(e.u < e.v);
    }

    #[test]
    fn connected_components_split() {
        // two disjoint edges + isolated node
        let g = Graph::from_edges(5, [(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let comps = g.connected_components();
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn induced_subgraph_remaps_ids() {
        let g = triangle();
        let (sub, map) = g.induced_subgraph(&[2, 0]);
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.num_edges(), 1);
        // edge (0,2,w=3) survives, remapped to local (1,0) -> canonical (0,1)
        assert_eq!(sub.edges()[0].w, 3.0);
        assert_eq!(map, vec![2, 0]);
    }

    #[test]
    fn unit_weight_detection() {
        let g = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        assert!(g.is_unit_weighted());
        let h = triangle();
        assert!(!h.is_unit_weighted());
    }
}
