//! Cut (bipartition) bookkeeping.
//!
//! A cut assigns every node to one of two sides; its value is the total
//! weight of edges whose endpoints disagree — exactly the quantity the
//! MaxCut Hamiltonian `H_C = ½ Σ w_ij (1 − Z_i Z_j)` measures on a
//! computational-basis state. Side assignment is stored as a packed bitset:
//! QAOA bit strings for up to 33 qubits and QAOA² parent solutions for
//! thousands of nodes share this one type.

use crate::graph::{Graph, NodeId};

/// A bipartition of `n` nodes, packed 64 nodes per word.
///
/// Convention: `get(v) == true` ⇔ node `v` is on side "1" ⇔ spin `s_v = −1`
/// in the Ising picture (matching the paper's "if a node in the merge graph
/// is −1, flip all nodes of that sub-graph").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cut {
    bits: Vec<u64>,
    len: usize,
}

impl Cut {
    /// All-zero cut (every node on side 0).
    pub fn new(len: usize) -> Self {
        Cut { bits: vec![0; len.div_ceil(64)], len }
    }

    /// Build from a predicate over node ids.
    pub fn from_fn(len: usize, mut f: impl FnMut(NodeId) -> bool) -> Self {
        let mut c = Cut::new(len);
        for v in 0..len {
            if f(v as NodeId) {
                c.set(v as NodeId, true);
            }
        }
        c
    }

    /// Build from a basis-state index, qubit `i` ↦ node `i`.
    ///
    /// This is the bridge from simulator measurement outcomes to cuts:
    /// the basis index's bit `i` (little-endian) gives node `i`'s side.
    pub fn from_basis_index(len: usize, index: u64) -> Self {
        assert!(len <= 64, "basis-index cuts limited to 64 nodes");
        let mut c = Cut::new(len);
        if len > 0 {
            let mask = if len == 64 { u64::MAX } else { (1u64 << len) - 1 };
            c.bits[0] = index & mask;
        }
        c
    }

    /// Build from a slice of booleans.
    pub fn from_bools(sides: &[bool]) -> Self {
        Cut::from_fn(sides.len(), |v| sides[v as usize])
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the cut covers zero nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Side of node `v`.
    #[inline]
    pub fn get(&self, v: NodeId) -> bool {
        debug_assert!((v as usize) < self.len);
        (self.bits[v as usize / 64] >> (v % 64)) & 1 == 1
    }

    /// Assign node `v` to a side.
    #[inline]
    pub fn set(&mut self, v: NodeId, side: bool) {
        debug_assert!((v as usize) < self.len);
        let (word, bit) = (v as usize / 64, v % 64);
        if side {
            self.bits[word] |= 1 << bit;
        } else {
            self.bits[word] &= !(1 << bit);
        }
    }

    /// Move node `v` to the opposite side.
    #[inline]
    pub fn flip_node(&mut self, v: NodeId) {
        debug_assert!((v as usize) < self.len);
        self.bits[v as usize / 64] ^= 1 << (v % 64);
    }

    /// Swap both sides globally. Cut value is invariant under this.
    pub fn flip_all(&mut self) {
        for w in &mut self.bits {
            *w = !*w;
        }
        // clear padding bits so Eq/Hash stay canonical
        let spare = self.bits.len() * 64 - self.len;
        if spare > 0 {
            let last = self.bits.len() - 1;
            self.bits[last] &= u64::MAX >> spare;
        }
    }

    /// Number of nodes on side 1.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Ising spin of node `v`: side 0 ↦ +1, side 1 ↦ −1.
    #[inline]
    pub fn spin(&self, v: NodeId) -> f64 {
        if self.get(v) {
            -1.0
        } else {
            1.0
        }
    }

    /// Cut value on `g`: `Σ_{(u,v)∈E, side(u)≠side(v)} w_uv`.
    ///
    /// Works for negative weights too (QAOA² merge graphs).
    pub fn value(&self, g: &Graph) -> f64 {
        debug_assert_eq!(self.len, g.num_nodes());
        let mut total = 0.0;
        for e in g.edges() {
            if self.get(e.u) != self.get(e.v) {
                total += e.w;
            }
        }
        total
    }

    /// The change in cut value if node `v` were flipped (positive = improves).
    pub fn flip_gain(&self, g: &Graph, v: NodeId) -> f64 {
        let side = self.get(v);
        let mut gain = 0.0;
        for &(u, w) in g.neighbors(v) {
            if self.get(u) == side {
                gain += w; // edge becomes cut
            } else {
                gain -= w; // edge leaves the cut
            }
        }
        gain
    }

    /// Render as a bit string, node 0 first (e.g. `"0110"`).
    pub fn to_bitstring(&self) -> String {
        (0..self.len as NodeId).map(|v| if self.get(v) { '1' } else { '0' }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn path4() -> Graph {
        // 0 - 1 - 2 - 3 with weights 1, 2, 3
        Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]).unwrap()
    }

    #[test]
    fn value_counts_crossing_edges() {
        let g = path4();
        let c = Cut::from_bools(&[false, true, false, true]);
        assert_eq!(c.value(&g), 6.0); // all edges cross
        let c2 = Cut::from_bools(&[false, false, true, true]);
        assert_eq!(c2.value(&g), 2.0); // only middle edge crosses
    }

    #[test]
    fn global_flip_preserves_value() {
        let g = path4();
        let mut c = Cut::from_bools(&[true, false, false, true]);
        let before = c.value(&g);
        c.flip_all();
        assert_eq!(c.value(&g), before);
    }

    #[test]
    fn from_basis_index_is_little_endian() {
        let c = Cut::from_basis_index(4, 0b0110);
        assert!(!c.get(0));
        assert!(c.get(1));
        assert!(c.get(2));
        assert!(!c.get(3));
        assert_eq!(c.to_bitstring(), "0110");
    }

    #[test]
    fn from_basis_index_masks_out_of_range_bits() {
        let c = Cut::from_basis_index(2, 0b1111);
        assert_eq!(c.count_ones(), 2);
    }

    #[test]
    fn flip_gain_matches_recomputation() {
        let g = path4();
        let mut c = Cut::from_bools(&[false, false, true, false]);
        for v in 0..4 {
            let before = c.value(&g);
            let predicted = c.flip_gain(&g, v);
            c.flip_node(v);
            let after = c.value(&g);
            assert!((after - before - predicted).abs() < 1e-12, "node {v}");
            c.flip_node(v); // restore
        }
    }

    #[test]
    fn flip_all_clears_padding() {
        let mut a = Cut::new(3);
        a.flip_all();
        a.flip_all();
        assert_eq!(a, Cut::new(3));
    }

    #[test]
    fn spins_match_sides() {
        let c = Cut::from_bools(&[true, false]);
        assert_eq!(c.spin(0), -1.0);
        assert_eq!(c.spin(1), 1.0);
    }

    #[test]
    fn count_ones_across_word_boundary() {
        let c = Cut::from_fn(130, |v| v % 2 == 0);
        assert_eq!(c.count_ones(), 65);
    }

    #[test]
    fn negative_weights_supported() {
        let g = Graph::from_edges(2, [(0, 1, -2.5)]).unwrap();
        let c = Cut::from_bools(&[false, true]);
        assert_eq!(c.value(&g), -2.5);
    }
}
