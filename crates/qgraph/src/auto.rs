//! Per-instance partition-strategy auto-selection.
//!
//! No single divide strategy wins everywhere: greedy modularity and
//! heavy-edge matching excel on sparse community-structured graphs but
//! stall to singletons on the negative-weight merge graphs the QAOA²
//! recursion produces; node-order chunks are unbeatable on structure-
//! free dense graphs but trap avoidable weight on clustered ones. This
//! module makes the choice *per instance* from cheap probes, mirroring
//! the heterogeneous-dispatch argument of Patwardhan et al. (Hybrid
//! Quantum-HPC Solutions for Max-Cut): [`probe`] summarizes an
//! instance (density, weight signs) in one `O(n + m)` scan,
//! [`candidates`] orders the strategy portfolio on that summary
//! (excluding a strategy only when the probe *proves* it degrades to
//! the chunk fallback), and [`AutoScore`] supplies the structural
//! tie-break — the [`crate::inter_weight_fraction`] the merge stage
//! would have to recover, then balance. Running every surviving
//! candidate is itself cheap (µs against the ms-scale sub-graph
//! solves downstream), so selection can afford to evaluate real
//! partitions rather than trust a static heuristic.
//!
//! This module owns the *building blocks*: probes, the gated
//! portfolio, and the structural score. The canonical `Auto` strategy
//! lives one layer up (`qq_core::PartitionStrategy::Auto`), where the
//! merge machinery and a classical solver are available: there the
//! surviving candidates are scored by a one-level **lookahead** — the
//! cut value a cheap classical compose actually achieves on each
//! candidate partition — with the structural score as tie-break, and
//! the chosen label is surfaced in every level report.

use crate::graph::Graph;
use crate::partition::{inter_weight_fraction, Partition};
use crate::partitioner::{
    BalancedChunks, BfsGrow, BoxedPartitioner, GreedyModularity, LabelPropagation, Multilevel,
    Spectral,
};

/// Cheap per-instance summary driving candidate gating: one scan over
/// nodes and edges, no partitioning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceProbe {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Edge density `|E| / (n choose 2)` (0 below 2 nodes).
    pub density: f64,
    /// Fraction of the total absolute edge weight carried by
    /// positive-weight edges (`1.0` for edgeless graphs by
    /// convention). Merge graphs produced by the QAOA² recursion sit
    /// well below 1 — the regime where modularity and positive-edge
    /// matching stall.
    pub positive_weight_fraction: f64,
}

/// Above either of these sizes an instance is "large": the portfolio
/// drops the superlinear strategies — CNM greedy modularity (quadratic
/// merge scans) and spectral bisection (power iteration per recursion
/// level) — leaving the `O(m)`-per-pass ones (label propagation,
/// multilevel HEM, BFS growth, chunks). The divide layer additionally
/// skips its classical lookahead there and attributes the gate in
/// `DivideOutcome::size_gated` / `LevelStats::size_gated`, matching the
/// non-silent stall-fallback convention.
pub const LARGE_INSTANCE_NODES: usize = 50_000;

/// Edge-count half of the large-instance gate (see
/// [`LARGE_INSTANCE_NODES`]); dense mid-size graphs hit this one first.
pub const LARGE_INSTANCE_EDGES: usize = 500_000;

impl InstanceProbe {
    /// True when the instance crosses the large-instance gate and the
    /// candidate portfolio is restricted to `O(m)`-per-pass strategies.
    pub fn is_large(&self) -> bool {
        self.nodes > LARGE_INSTANCE_NODES || self.edges > LARGE_INSTANCE_EDGES
    }
}

/// Below this positive-weight share the instance is treated as a
/// (coarse) merge graph: the portfolio is reordered to lead with the
/// absolute-weight strategies that stay effective there.
const POSITIVE_FRACTION_FLOOR: f64 = 0.75;

/// Above this density modularity has little community structure to
/// find (cliques and near-cliques collapse to the bisection
/// fallback); the portfolio leads with coarsening and spectral
/// bisection instead.
const DENSE_DENSITY: f64 = 0.4;

/// Summarize `g` for candidate gating.
///
/// The weight scan is a chunk-ordered parallel reduction on the worker
/// pool: per-chunk `(positive, total)` partials accumulate in edge
/// order and combine in chunk order. Chunk boundaries depend only on
/// the edge count (vendored rayon's fixed split tree), so the
/// fraction's bits are identical at any `RAYON_NUM_THREADS`.
pub fn probe(g: &Graph) -> InstanceProbe {
    use rayon::prelude::*;
    // REDUCTION: fixed par_chunks(DEFAULT_GRAIN) over the edge list;
    // per-chunk pair-sums combine in chunk-index order.
    let (positive, total) = g
        .edges()
        .par_chunks(rayon::DEFAULT_GRAIN)
        .map(|chunk| {
            let (mut positive, mut total) = (0.0f64, 0.0f64);
            for e in chunk {
                let a = e.w.abs();
                total += a;
                if e.w > 0.0 {
                    positive += a;
                }
            }
            (positive, total)
        })
        .reduce(|| (0.0, 0.0), |a, b| (a.0 + b.0, a.1 + b.1));
    InstanceProbe {
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        density: g.density(),
        positive_weight_fraction: if total == 0.0 { 1.0 } else { positive / total },
    }
}

/// The candidate portfolio for an instance, in preference order (ties
/// in the selection score resolve to the earlier candidate).
///
/// The probes are used two ways:
///
/// * **Exclusion only when provable.** With *zero* positive edge
///   weight, CNM merges nothing and heavy-edge matching finds no
///   admissible pair — both provably degrade to the chunk fallback,
///   which is already in the portfolio, so running them would be pure
///   waste. Any nonzero positive weight keeps them in: partial
///   structure is exactly what the scored evaluation is for.
/// * **Ordering otherwise.** Negative-heavy (merge-graph regime) and
///   very dense instances lead with the strategies that historically
///   win there, so score ties resolve toward the probe's prediction.
///
/// Always contains [`BalancedChunks`], so selection can never come up
/// empty-handed. Past the large-instance gate
/// ([`InstanceProbe::is_large`]) the superlinear strategies are removed
/// from whatever the probe branches produced — a million-node graph
/// must never enter a quadratic merge scan, however community-shaped
/// its probe looks.
pub fn candidates(probe: &InstanceProbe) -> Vec<BoxedPartitioner> {
    let mut portfolio = portfolio_for(probe);
    if probe.is_large() {
        portfolio.retain(|c| !matches!(c.label(), "greedy-modularity" | "spectral"));
    }
    portfolio
}

fn portfolio_for(probe: &InstanceProbe) -> Vec<BoxedPartitioner> {
    if probe.positive_weight_fraction == 0.0 {
        vec![
            Box::new(LabelPropagation),
            Box::new(Spectral),
            Box::new(BfsGrow),
            Box::new(BalancedChunks),
        ]
    } else if probe.positive_weight_fraction < POSITIVE_FRACTION_FLOOR {
        vec![
            Box::new(LabelPropagation),
            Box::new(Spectral),
            Box::new(BfsGrow),
            Box::new(BalancedChunks),
            Box::new(Multilevel),
            Box::new(GreedyModularity),
        ]
    } else if probe.density > DENSE_DENSITY {
        vec![
            Box::new(Multilevel),
            Box::new(Spectral),
            Box::new(LabelPropagation),
            Box::new(BalancedChunks),
            Box::new(GreedyModularity),
            Box::new(BfsGrow),
        ]
    } else {
        vec![
            Box::new(GreedyModularity),
            Box::new(Multilevel),
            Box::new(LabelPropagation),
            Box::new(Spectral),
            Box::new(BfsGrow),
            Box::new(BalancedChunks),
        ]
    }
}

/// Selection score of a candidate partition: primarily the share of
/// absolute edge weight the merge stage would have to recover, then
/// balance. Lower is better on both axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoScore {
    /// [`crate::inter_weight_fraction`] of the candidate partition.
    pub inter_weight_fraction: f64,
    /// [`Partition::balance`] of the candidate partition.
    pub balance: f64,
}

impl AutoScore {
    /// Score `p` on `g`.
    pub fn of(g: &Graph, p: &Partition) -> AutoScore {
        AutoScore { inter_weight_fraction: inter_weight_fraction(g, p), balance: p.balance() }
    }

    /// Strictly better than `other` (1e-12 tolerance, so float noise
    /// cannot flip a selection between platforms).
    pub fn better_than(&self, other: &AutoScore) -> bool {
        if self.inter_weight_fraction < other.inter_weight_fraction - 1e-12 {
            return true;
        }
        if self.inter_weight_fraction > other.inter_weight_fraction + 1e-12 {
            return false;
        }
        self.balance < other.balance - 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{self, WeightKind};

    #[test]
    fn probe_reads_signs_and_density() {
        let g = Graph::from_edges(4, [(0, 1, 3.0), (1, 2, -1.0), (2, 3, 0.5)]).unwrap();
        let p = probe(&g);
        assert_eq!(p.nodes, 4);
        assert_eq!(p.edges, 3);
        assert!((p.density - 0.5).abs() < 1e-12);
        assert!((p.positive_weight_fraction - 3.5 / 4.5).abs() < 1e-12);
        // edgeless: positive fraction is 1 by convention
        assert_eq!(probe(&Graph::new(3)).positive_weight_fraction, 1.0);
    }

    #[test]
    fn negative_weight_instances_drop_positive_structure_strategies() {
        let g = Graph::from_edges(6, [(0, 1, -2.0), (2, 3, -2.0), (4, 5, -2.0)]).unwrap();
        let labels: Vec<String> =
            candidates(&probe(&g)).iter().map(|c| c.label().to_string()).collect();
        assert!(!labels.contains(&"greedy-modularity".to_string()), "{labels:?}");
        assert!(!labels.contains(&"multilevel".to_string()), "{labels:?}");
        assert!(labels.contains(&"label-propagation".to_string()), "{labels:?}");
        assert!(labels.contains(&"balanced-chunks".to_string()), "{labels:?}");
    }

    #[test]
    fn chunks_are_always_a_candidate() {
        for g in [
            generators::complete(12),
            generators::erdos_renyi(30, 0.1, WeightKind::Random01, 3),
            Graph::from_edges(4, [(0, 1, -1.0), (2, 3, -1.0)]).unwrap(),
            Graph::new(5),
        ] {
            let labels: Vec<String> =
                candidates(&probe(&g)).iter().map(|c| c.label().to_string()).collect();
            assert!(labels.contains(&"balanced-chunks".to_string()), "{labels:?}");
        }
    }

    #[test]
    fn every_candidate_is_a_valid_capped_partitioner() {
        use crate::partitioner::Partitioner;
        for (g, cap) in [
            (generators::erdos_renyi(50, 0.12, WeightKind::Random01, 7), 8),
            (generators::complete(17), 5),
            (generators::planted_partition(4, 6, 0.9, 0.02, 3), 6),
            (Graph::from_edges(6, [(0, 1, -3.0), (2, 3, -3.0), (4, 5, -3.0)]).unwrap(), 2),
            (Graph::new(9), 4),
        ] {
            for candidate in candidates(&probe(&g)) {
                let p = candidate.partition(&g, cap).unwrap();
                assert!(p.is_valid(), "{} on {} nodes", candidate.label(), g.num_nodes());
                assert!(p.max_community_size() <= cap, "{} cap {cap}", candidate.label());
            }
        }
    }

    #[test]
    fn chunk_candidate_never_stalls_past_cap_one() {
        use crate::partitioner::Partitioner;
        // the portfolio's progress guarantee: whatever the probes gate
        // away, balanced chunks survive and contract whenever cap ≥ 2
        // (a partition with as many communities as nodes would trip the
        // divide guard's singleton-stall fallback)
        for g in [Graph::new(7), generators::ring(9), generators::complete(6)] {
            let p = BalancedChunks.partition(&g, 2).unwrap();
            assert!(p.len() < g.num_nodes(), "{} nodes", g.num_nodes());
        }
    }

    #[test]
    fn large_instances_drop_superlinear_strategies() {
        // synthetic probes on both sides of the gate: the node- and the
        // edge-triggered variants must both shed CNM and spectral while
        // keeping the O(m) portfolio intact
        let small = InstanceProbe {
            nodes: 1_000,
            edges: 5_000,
            density: 0.01,
            positive_weight_fraction: 1.0,
        };
        assert!(!small.is_large());
        let labels = |p: &InstanceProbe| -> Vec<String> {
            candidates(p).iter().map(|c| c.label().to_string()).collect()
        };
        assert!(labels(&small).contains(&"greedy-modularity".to_string()));
        for large in [
            InstanceProbe { nodes: super::LARGE_INSTANCE_NODES + 1, ..small },
            InstanceProbe { edges: super::LARGE_INSTANCE_EDGES + 1, ..small },
            // dense branch would normally lead with spectral
            InstanceProbe { nodes: super::LARGE_INSTANCE_NODES + 1, density: 0.9, ..small },
            // negative-heavy branch would normally include spectral
            InstanceProbe {
                nodes: super::LARGE_INSTANCE_NODES + 1,
                positive_weight_fraction: 0.1,
                ..small
            },
        ] {
            assert!(large.is_large());
            let l = labels(&large);
            assert!(!l.contains(&"greedy-modularity".to_string()), "{l:?}");
            assert!(!l.contains(&"spectral".to_string()), "{l:?}");
            assert!(l.contains(&"label-propagation".to_string()), "{l:?}");
            assert!(l.contains(&"balanced-chunks".to_string()), "{l:?}");
        }
    }

    #[test]
    fn score_ordering_is_strict_with_tolerance() {
        let a = AutoScore { inter_weight_fraction: 0.4, balance: 1.2 };
        let b = AutoScore { inter_weight_fraction: 0.4 + 1e-14, balance: 2.0 };
        // inter fractions are equal within tolerance → balance decides
        assert!(a.better_than(&b));
        assert!(!b.better_than(&a));
        let c = AutoScore { inter_weight_fraction: 0.3, balance: 9.0 };
        assert!(c.better_than(&a), "inter fraction dominates balance");
    }
}
