//! # qq-graph — graph substrate for QAOA-in-QAOA
//!
//! Weighted undirected graphs, the workload generators used throughout the
//! paper (Erdős–Rényi with uniform or `U[0,1]` weights), cut bookkeeping,
//! modularity, and the Clauset–Newman–Moore greedy-modularity partitioner
//! that QAOA² uses to cap sub-graph sizes at the qubit budget.
//!
//! The types here are deliberately simulator-agnostic: `qq-qaoa`, `qq-gw`
//! and `qq-classical` all consume [`Graph`] and produce [`Cut`] values, so
//! solvers are interchangeable inside the QAOA² divide-and-conquer loop.
//!
//! ## Quick example
//!
//! ```
//! use qq_graph::{generators, Cut};
//!
//! let g = generators::erdos_renyi(12, 0.4, generators::WeightKind::Uniform, 7);
//! // put even nodes on one side, odd on the other
//! let cut = Cut::from_fn(g.num_nodes(), |v| v % 2 == 0);
//! assert!(cut.value(&g) > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod auto;
pub mod cut;
pub mod generators;
pub mod graph;
pub mod io;
pub mod modularity;
pub mod partition;
pub mod partitioner;
pub mod refine;
pub mod snapshot;
pub mod solver;

pub use auto::{AutoScore, InstanceProbe};
pub use cut::Cut;
pub use graph::{Edge, Graph, GraphBuilder, GraphError, NodeId};
pub use modularity::{greedy_modularity_communities, modularity};
pub use partition::{
    boundary_nodes, extract_subgraphs, inter_weight_fraction, partition_with_cap, Partition,
    Subgraph,
};
pub use partitioner::{
    guard_strategy_output, partition_for_divide, BalancedChunks, BfsGrow, BoxedPartitioner,
    DividedPartition, GreedyModularity, LabelPropagation, Multilevel, PartitionError, Partitioner,
    Spectral,
};
pub use refine::{refine_partition, refine_partition_with, RefineOptions, RefineOutcome, Refined};
pub use solver::{BestOf, BoxedSolver, CutResult, MaxCutSolver, SolverCaps, SolverError};

/// Convenient result alias for fallible graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;
