//! Workload generators.
//!
//! The paper's evaluation uses Erdős–Rényi `G(n, p)` graphs, either
//! unweighted or with weights drawn uniformly from `[0, 1]`, generated with
//! NetworkX. [`erdos_renyi`] mirrors that (seeded, so every experiment cell
//! is reproducible). The remaining generators provide structured instances
//! for tests and for the community-detection substrate (planted partitions
//! exercise the CNM partitioner; rings/complete graphs have known MaxCut
//! optima).
//!
//! For million-node instances the pair loop of [`erdos_renyi`] is
//! unusable (`O(n²)` Bernoulli draws). [`erdos_renyi_fast`] is the
//! Batagelj–Brandes geometric-skip sampler — `O(n + m)`, one draw per
//! *edge* rather than per *pair* — and [`barabasi_albert`] /
//! [`grid_2d`] cover the power-law and lattice shapes the large-divide
//! bench (`BENCH_large.json`) measures. All of them stream into
//! [`GraphBuilder`], so generation never pays per-insert duplicate scans.

use crate::graph::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How edge weights are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightKind {
    /// All weights 1 — the paper's "unweighted" instances.
    Uniform,
    /// Weights i.i.d. uniform in `[0, 1)` — the paper's "weighted" instances.
    Random01,
}

impl WeightKind {
    #[inline]
    fn draw(self, rng: &mut StdRng) -> f64 {
        match self {
            WeightKind::Uniform => 1.0,
            WeightKind::Random01 => rng.gen::<f64>(),
        }
    }
}

/// Erdős–Rényi `G(n, p)`: every unordered pair becomes an edge
/// independently with probability `p`.
///
/// `seed` fixes both the topology and (for [`WeightKind::Random01`]) the
/// weights, matching how the paper creates one weighted and one unweighted
/// instance per `(n, p)` grid point. One Bernoulli draw per *pair* —
/// `O(n²)` regardless of density, so this is the small-instance
/// generator; use [`erdos_renyi_fast`] beyond ~10⁴ nodes.
pub fn erdos_renyi(n: usize, p: f64, weights: WeightKind, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "edge probability must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    // CAST: capacity *hint* only — truncating the 1.1x headroom estimate
    // can never lose edges, just cost a reallocation.
    let mut b = GraphBuilder::with_capacity(n, (expected_edges(n, p) * 1.1) as usize);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            if rng.gen::<f64>() < p {
                let w = weights.draw(&mut rng);
                // INVARIANT: u < v < n by loop bounds; each pair visited once.
                b.add_edge(u, v, w).expect("generator produces unique in-range edges");
            }
        }
    }
    // INVARIANT: each unordered pair is visited at most once above.
    b.finalize().expect("generator produces unique edges")
}

/// Erdős–Rényi `G(n, p)` in `O(n + m)` via geometric skips
/// (Batagelj & Brandes, "Efficient generation of large random networks").
///
/// Instead of one Bernoulli draw per pair, each draw produces the gap to
/// the *next* present edge (`skip = ⌊ln(1−r)/ln(1−p)⌋`), walking the
/// column-major pair order `(0,1), (0,2), (1,2), (0,3), …`. The edge
/// *set* for a given seed differs from [`erdos_renyi`]'s (different draw
/// sequence) but the distribution is identical — both are `G(n, p)`.
/// This is the generator the 10⁵–10⁷-node bench instances come from.
pub fn erdos_renyi_fast(n: usize, p: f64, weights: WeightKind, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "edge probability must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    // CAST: capacity *hint* only — truncating the 1.1x headroom estimate
    // can never lose edges, just cost a reallocation.
    let mut b = GraphBuilder::with_capacity(n, (expected_edges(n, p) * 1.1) as usize);
    if p == 0.0 || n < 2 {
        // INVARIANT: no edges appended, nothing to deduplicate.
        return b.finalize().expect("empty edge set is trivially unique");
    }
    if p >= 1.0 {
        return complete_weighted(n, weights, seed);
    }
    let lp = (1.0 - p).ln();
    // pairs in column order: v = 1..n, u = 0..v
    let mut v: usize = 1;
    let mut u: i64 = -1;
    while v < n {
        let r: f64 = rng.gen();
        // log(1-r) is finite: r < 1 by construction of the f64 sampler
        // CAST: floor() makes the truncation explicit; the geometric
        // skip is non-negative and bounded by the remaining pair count.
        let skip = ((1.0 - r).ln() / lp).floor() as i64;
        u += 1 + skip.max(0);
        while u >= v as i64 && v < n {
            u -= v as i64;
            v += 1;
        }
        if v < n {
            let w = weights.draw(&mut rng);
            // INVARIANT: 0 <= u < v < n, and the skip walk visits each
            // pair at most once, so edges are unique and in range.
            b.add_edge(u as NodeId, v as NodeId, w).expect("skip walk yields unique pairs");
        }
    }
    // INVARIANT: the strictly increasing skip walk never revisits a pair.
    b.finalize().expect("skip walk yields unique pairs")
}

/// `K_n` with weights drawn per [`WeightKind`] — the `p = 1` degenerate
/// case of the fast ER sampler.
fn complete_weighted(n: usize, weights: WeightKind, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * (n.saturating_sub(1)) / 2);
    for v in 1..n as NodeId {
        for u in 0..v {
            let w = weights.draw(&mut rng);
            // INVARIANT: u < v < n by loop bounds; each pair visited once.
            b.add_edge(u, v, w).expect("complete graph pairs are unique");
        }
    }
    // INVARIANT: each unordered pair appended exactly once above.
    b.finalize().expect("complete graph pairs are unique")
}

/// Barabási–Albert preferential attachment: `attach` edges from each new
/// node to existing nodes chosen proportionally to degree (via the
/// repeated-endpoints list, so sampling is `O(1)` per draw). Produces the
/// power-law hubs that made the old `add_edge` duplicate scan quadratic —
/// and that the builder's sort-based dedup handles in `O(m log m)`.
///
/// Unit weights; `n > attach ≥ 1`. Total edges: `(n − attach) · attach`.
pub fn barabasi_albert(n: usize, attach: usize, seed: u64) -> Graph {
    assert!(attach >= 1, "attachment count must be positive");
    assert!(n > attach, "need more nodes than the attachment count");
    let mut rng = StdRng::seed_from_u64(seed);
    let m_total = (n - attach) * attach;
    let mut b = GraphBuilder::with_capacity(n, m_total);
    // every node id appears once per incident edge — sampling an index
    // uniformly from this list is degree-proportional sampling
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * m_total);
    // the first arrival wires to the `attach` founding nodes outright
    let mut targets: Vec<NodeId> = (0..attach as NodeId).collect();
    for v in attach..n {
        for &t in &targets {
            // INVARIANT: targets are distinct existing nodes < v < n, so
            // each (v, t) edge is unique and in range.
            b.add_edge(v as NodeId, t, 1.0).expect("targets are distinct and in range");
            endpoints.push(v as NodeId);
            endpoints.push(t);
        }
        targets.clear();
        while targets.len() < attach {
            let pick = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&pick) {
                targets.push(pick);
            }
        }
    }
    // INVARIANT: per-arrival targets are deduplicated before wiring.
    b.finalize().expect("preferential attachment yields unique edges")
}

/// 2D grid lattice: `rows × cols` nodes, unit-weight edges between
/// horizontal and vertical neighbors. Node `(r, c)` has id `r·cols + c`.
/// Bipartite, so the MaxCut optimum is all `2·rows·cols − rows − cols`
/// edges — a useful known-optimum shape at any scale.
pub fn grid_2d(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let m = if rows == 0 || cols == 0 { 0 } else { 2 * n - rows - cols };
    let mut b = GraphBuilder::with_capacity(n, m);
    for r in 0..rows {
        for c in 0..cols {
            let id = (r * cols + c) as NodeId;
            if c + 1 < cols {
                // INVARIANT: id + 1 stays on row r, so both ends < n and
                // each horizontal edge is generated exactly once.
                b.add_edge(id, id + 1, 1.0).expect("grid edges are unique");
            }
            if r + 1 < rows {
                // INVARIANT: id + cols is the node below, < n; each
                // vertical edge generated exactly once.
                b.add_edge(id, id + cols as NodeId, 1.0).expect("grid edges are unique");
            }
        }
    }
    // INVARIANT: the row/col sweep visits every lattice edge once.
    b.finalize().expect("grid edges are unique")
}

/// Complete graph `K_n` with unit weights. MaxCut optimum is
/// `⌊n/2⌋·⌈n/2⌉` (balanced bipartition).
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            // INVARIANT: u < v < n by loop bounds; each pair visited once.
            b.add_edge(u, v, 1.0).expect("complete graph pairs are unique");
        }
    }
    // INVARIANT: each unordered pair appended exactly once.
    b.finalize().expect("complete graph pairs are unique")
}

/// Cycle `C_n` with unit weights. MaxCut optimum is `n` for even `n`,
/// `n − 1` for odd `n`.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let mut b = GraphBuilder::with_capacity(n, n);
    for v in 0..n as NodeId {
        // INVARIANT: n >= 3 asserted above, so v and v+1 mod n are
        // distinct in-range nodes and each ring edge is unique.
        b.add_edge(v, ((v as usize + 1) % n) as NodeId, 1.0).expect("ring edges are unique");
    }
    // INVARIANT: n >= 3 keeps all n cycle edges distinct.
    b.finalize().expect("ring edges are unique")
}

/// Star graph: node 0 joined to all others. MaxCut optimum is `n − 1`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star needs at least 2 nodes");
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for v in 1..n as NodeId {
        // INVARIANT: 0 < v < n by the loop bounds; spokes are unique.
        b.add_edge(0, v, 1.0).expect("star spokes are unique");
    }
    // INVARIANT: one spoke per non-center node, all distinct.
    b.finalize().expect("star spokes are unique")
}

/// Planted-partition graph: `k` blocks of `block_size` nodes; intra-block
/// pairs connect with probability `p_in`, inter-block with `p_out`.
///
/// With `p_in ≫ p_out` the blocks are the modularity-optimal communities,
/// which makes this the reference workload for the CNM partitioner tests
/// and the QAOA² divide step.
pub fn planted_partition(k: usize, block_size: usize, p_in: f64, p_out: f64, seed: u64) -> Graph {
    let n = k * block_size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            let same = (u as usize / block_size) == (v as usize / block_size);
            let p = if same { p_in } else { p_out };
            if rng.gen::<f64>() < p {
                // INVARIANT: u < v < n by loop bounds; each pair once.
                b.add_edge(u, v, 1.0).expect("each pair visited once");
            }
        }
    }
    // INVARIANT: the pair loop appends each unordered pair at most once.
    b.finalize().expect("each pair visited once")
}

/// Two cliques of size `b` joined by a single bridge edge ("barbell").
/// Greedy modularity must recover the two cliques.
pub fn barbell(b: usize) -> Graph {
    assert!(b >= 2, "barbell bells need at least 2 nodes");
    let n = 2 * b;
    let mut builder = GraphBuilder::with_capacity(n, b * (b - 1) + 1);
    for side in 0..2 {
        let off = (side * b) as NodeId;
        for u in 0..b as NodeId {
            for v in (u + 1)..b as NodeId {
                // INVARIANT: off + v < 2b = n and u < v keep clique
                // edges unique and in range.
                builder.add_edge(off + u, off + v, 1.0).expect("clique edges are unique");
            }
        }
    }
    // INVARIANT: b >= 2, so b-1 != b and both < 2b; the bridge joins
    // different cliques so it duplicates no clique edge.
    builder.add_edge((b - 1) as NodeId, b as NodeId, 1.0).expect("bridge edge is unique");
    // INVARIANT: cliques are disjoint and the bridge crosses them.
    builder.finalize().expect("barbell edges are unique")
}

/// Expected edge count of `G(n, p)`, for sanity checks and workload sizing.
pub fn expected_edges(n: usize, p: f64) -> f64 {
    n as f64 * (n as f64 - 1.0) / 2.0 * p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_is_reproducible() {
        let a = erdos_renyi(20, 0.3, WeightKind::Random01, 42);
        let b = erdos_renyi(20, 0.3, WeightKind::Random01, 42);
        assert_eq!(a.num_edges(), b.num_edges());
        for (ea, eb) in a.edges().iter().zip(b.edges()) {
            assert_eq!((ea.u, ea.v), (eb.u, eb.v));
            assert_eq!(ea.w, eb.w);
        }
    }

    #[test]
    fn er_seeds_differ() {
        let a = erdos_renyi(30, 0.3, WeightKind::Uniform, 1);
        let b = erdos_renyi(30, 0.3, WeightKind::Uniform, 2);
        // overwhelmingly likely to differ in edge count or topology
        let same = a.num_edges() == b.num_edges()
            && a.edges().iter().zip(b.edges()).all(|(x, y)| (x.u, x.v) == (y.u, y.v));
        assert!(!same);
    }

    #[test]
    fn er_extreme_probabilities() {
        let empty = erdos_renyi(10, 0.0, WeightKind::Uniform, 0);
        assert_eq!(empty.num_edges(), 0);
        let full = erdos_renyi(10, 1.0, WeightKind::Uniform, 0);
        assert_eq!(full.num_edges(), 45);
    }

    #[test]
    fn er_edge_count_near_expectation() {
        let n = 200;
        let p = 0.1;
        let g = erdos_renyi(n, p, WeightKind::Uniform, 7);
        let expected = expected_edges(n, p);
        // 5 sigma of Binomial(n(n-1)/2, p)
        let sigma = (expected * (1.0 - p)).sqrt();
        assert!((g.num_edges() as f64 - expected).abs() < 5.0 * sigma);
    }

    #[test]
    fn weighted_er_weights_in_unit_interval() {
        let g = erdos_renyi(25, 0.4, WeightKind::Random01, 3);
        assert!(g.edges().iter().all(|e| (0.0..1.0).contains(&e.w)));
    }

    #[test]
    fn fast_er_is_reproducible() {
        let a = erdos_renyi_fast(500, 0.01, WeightKind::Random01, 42);
        let b = erdos_renyi_fast(500, 0.01, WeightKind::Random01, 42);
        assert_eq!(a.num_edges(), b.num_edges());
        for (ea, eb) in a.edges().iter().zip(b.edges()) {
            assert_eq!((ea.u, ea.v, ea.w), (eb.u, eb.v, eb.w));
        }
    }

    #[test]
    fn fast_er_edge_count_near_expectation() {
        let n = 2000;
        let p = 0.005;
        let g = erdos_renyi_fast(n, p, WeightKind::Uniform, 11);
        let expected = expected_edges(n, p);
        let sigma = (expected * (1.0 - p)).sqrt();
        assert!(
            (g.num_edges() as f64 - expected).abs() < 5.0 * sigma,
            "m={} expected={expected}",
            g.num_edges()
        );
    }

    #[test]
    fn fast_er_extremes_match_dense_cases() {
        assert_eq!(erdos_renyi_fast(50, 0.0, WeightKind::Uniform, 0).num_edges(), 0);
        let full = erdos_renyi_fast(50, 1.0, WeightKind::Uniform, 0);
        assert_eq!(full.num_edges(), 50 * 49 / 2);
        // degenerate sizes
        assert_eq!(erdos_renyi_fast(0, 0.5, WeightKind::Uniform, 0).num_nodes(), 0);
        assert_eq!(erdos_renyi_fast(1, 0.5, WeightKind::Uniform, 0).num_edges(), 0);
    }

    #[test]
    fn fast_er_weighted_draws_in_unit_interval() {
        let g = erdos_renyi_fast(300, 0.02, WeightKind::Random01, 5);
        assert!(g.num_edges() > 0);
        assert!(g.edges().iter().all(|e| (0.0..1.0).contains(&e.w)));
    }

    #[test]
    fn barabasi_albert_shape() {
        let g = barabasi_albert(200, 3, 9);
        assert_eq!(g.num_nodes(), 200);
        assert_eq!(g.num_edges(), (200 - 3) * 3);
        // founding nodes accumulate degree; a hub must beat the minimum
        let max_deg = (0..200).map(|v| g.degree(v)).max().unwrap_or(0);
        assert!(max_deg > 3 * 4, "no hub emerged: max degree {max_deg}");
        assert!(g.is_unit_weighted());
    }

    #[test]
    fn barabasi_albert_is_reproducible() {
        let a = barabasi_albert(100, 2, 3);
        let b = barabasi_albert(100, 2, 3);
        assert_eq!(a.num_edges(), b.num_edges());
        for (ea, eb) in a.edges().iter().zip(b.edges()) {
            assert_eq!((ea.u, ea.v), (eb.u, eb.v));
        }
    }

    #[test]
    fn grid_shape_and_degrees() {
        let g = grid_2d(4, 5);
        assert_eq!(g.num_nodes(), 20);
        assert_eq!(g.num_edges(), 2 * 20 - 4 - 5);
        // corners have degree 2, interior degree 4
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(6), 4); // (1,1)
                                    // bipartite: the checkerboard 2-coloring cuts every edge
        let cut = crate::Cut::from_fn(20, |v| (v / 5 + v % 5) % 2 == 0);
        assert_eq!(cut.value(&g), g.num_edges() as f64);
    }

    #[test]
    fn grid_degenerate_sizes() {
        assert_eq!(grid_2d(0, 7).num_nodes(), 0);
        let line = grid_2d(1, 6);
        assert_eq!(line.num_edges(), 5);
    }

    #[test]
    fn complete_graph_shape() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.is_unit_weighted());
    }

    #[test]
    fn ring_shape() {
        let g = ring(5);
        assert_eq!(g.num_edges(), 5);
        assert!((0..5).all(|v| g.degree(v) == 2));
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 6);
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4);
        assert_eq!(g.num_nodes(), 8);
        // 2 * C(4,2) + bridge
        assert_eq!(g.num_edges(), 13);
    }

    #[test]
    fn planted_partition_denser_inside() {
        let g = planted_partition(3, 10, 0.9, 0.05, 11);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for e in g.edges() {
            if e.u / 10 == e.v / 10 {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > inter, "intra={intra} inter={inter}");
    }
}
