//! Workload generators.
//!
//! The paper's evaluation uses Erdős–Rényi `G(n, p)` graphs, either
//! unweighted or with weights drawn uniformly from `[0, 1]`, generated with
//! NetworkX. [`erdos_renyi`] mirrors that (seeded, so every experiment cell
//! is reproducible). The remaining generators provide structured instances
//! for tests and for the community-detection substrate (planted partitions
//! exercise the CNM partitioner; rings/complete graphs have known MaxCut
//! optima).

use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How edge weights are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightKind {
    /// All weights 1 — the paper's "unweighted" instances.
    Uniform,
    /// Weights i.i.d. uniform in `[0, 1)` — the paper's "weighted" instances.
    Random01,
}

/// Erdős–Rényi `G(n, p)`: every unordered pair becomes an edge
/// independently with probability `p`.
///
/// `seed` fixes both the topology and (for [`WeightKind::Random01`]) the
/// weights, matching how the paper creates one weighted and one unweighted
/// instance per `(n, p)` grid point.
pub fn erdos_renyi(n: usize, p: f64, weights: WeightKind, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "edge probability must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            if rng.gen::<f64>() < p {
                let w = match weights {
                    WeightKind::Uniform => 1.0,
                    WeightKind::Random01 => rng.gen::<f64>(),
                };
                // INVARIANT: u < v < n by loop bounds; each pair visited once.
                g.add_edge(u, v, w).expect("generator produces unique in-range edges");
            }
        }
    }
    g
}

/// Complete graph `K_n` with unit weights. MaxCut optimum is
/// `⌊n/2⌋·⌈n/2⌉` (balanced bipartition).
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            // INVARIANT: u < v < n by loop bounds; each pair visited once.
            g.add_edge(u, v, 1.0).unwrap();
        }
    }
    g
}

/// Cycle `C_n` with unit weights. MaxCut optimum is `n` for even `n`,
/// `n − 1` for odd `n`.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let mut g = Graph::new(n);
    for v in 0..n as NodeId {
        // INVARIANT: n >= 3 asserted above, so v and v+1 mod n are
        // distinct in-range nodes and each ring edge is unique.
        g.add_edge(v, ((v as usize + 1) % n) as NodeId, 1.0).unwrap();
    }
    g
}

/// Star graph: node 0 joined to all others. MaxCut optimum is `n − 1`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star needs at least 2 nodes");
    let mut g = Graph::new(n);
    for v in 1..n as NodeId {
        // INVARIANT: 0 < v < n by the loop bounds; spokes are unique.
        g.add_edge(0, v, 1.0).unwrap();
    }
    g
}

/// Planted-partition graph: `k` blocks of `block_size` nodes; intra-block
/// pairs connect with probability `p_in`, inter-block with `p_out`.
///
/// With `p_in ≫ p_out` the blocks are the modularity-optimal communities,
/// which makes this the reference workload for the CNM partitioner tests
/// and the QAOA² divide step.
pub fn planted_partition(k: usize, block_size: usize, p_in: f64, p_out: f64, seed: u64) -> Graph {
    let n = k * block_size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            let same = (u as usize / block_size) == (v as usize / block_size);
            let p = if same { p_in } else { p_out };
            if rng.gen::<f64>() < p {
                // INVARIANT: u < v < n by loop bounds; each pair once.
                g.add_edge(u, v, 1.0).unwrap();
            }
        }
    }
    g
}

/// Two cliques of size `b` joined by a single bridge edge ("barbell").
/// Greedy modularity must recover the two cliques.
pub fn barbell(b: usize) -> Graph {
    assert!(b >= 2, "barbell bells need at least 2 nodes");
    let n = 2 * b;
    let mut g = Graph::new(n);
    for side in 0..2 {
        let off = (side * b) as NodeId;
        for u in 0..b as NodeId {
            for v in (u + 1)..b as NodeId {
                // INVARIANT: off + v < 2b = n and u < v keep clique
                // edges unique and in range.
                g.add_edge(off + u, off + v, 1.0).unwrap();
            }
        }
    }
    // INVARIANT: b >= 2, so b-1 != b and both < 2b; the bridge joins
    // different cliques so it duplicates no clique edge.
    g.add_edge((b - 1) as NodeId, b as NodeId, 1.0).unwrap();
    g
}

/// Expected edge count of `G(n, p)`, for sanity checks and workload sizing.
pub fn expected_edges(n: usize, p: f64) -> f64 {
    n as f64 * (n as f64 - 1.0) / 2.0 * p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_is_reproducible() {
        let a = erdos_renyi(20, 0.3, WeightKind::Random01, 42);
        let b = erdos_renyi(20, 0.3, WeightKind::Random01, 42);
        assert_eq!(a.num_edges(), b.num_edges());
        for (ea, eb) in a.edges().iter().zip(b.edges()) {
            assert_eq!((ea.u, ea.v), (eb.u, eb.v));
            assert_eq!(ea.w, eb.w);
        }
    }

    #[test]
    fn er_seeds_differ() {
        let a = erdos_renyi(30, 0.3, WeightKind::Uniform, 1);
        let b = erdos_renyi(30, 0.3, WeightKind::Uniform, 2);
        // overwhelmingly likely to differ in edge count or topology
        let same = a.num_edges() == b.num_edges()
            && a.edges().iter().zip(b.edges()).all(|(x, y)| (x.u, x.v) == (y.u, y.v));
        assert!(!same);
    }

    #[test]
    fn er_extreme_probabilities() {
        let empty = erdos_renyi(10, 0.0, WeightKind::Uniform, 0);
        assert_eq!(empty.num_edges(), 0);
        let full = erdos_renyi(10, 1.0, WeightKind::Uniform, 0);
        assert_eq!(full.num_edges(), 45);
    }

    #[test]
    fn er_edge_count_near_expectation() {
        let n = 200;
        let p = 0.1;
        let g = erdos_renyi(n, p, WeightKind::Uniform, 7);
        let expected = expected_edges(n, p);
        // 5 sigma of Binomial(n(n-1)/2, p)
        let sigma = (expected * (1.0 - p)).sqrt();
        assert!((g.num_edges() as f64 - expected).abs() < 5.0 * sigma);
    }

    #[test]
    fn weighted_er_weights_in_unit_interval() {
        let g = erdos_renyi(25, 0.4, WeightKind::Random01, 3);
        assert!(g.edges().iter().all(|e| (0.0..1.0).contains(&e.w)));
    }

    #[test]
    fn complete_graph_shape() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.is_unit_weighted());
    }

    #[test]
    fn ring_shape() {
        let g = ring(5);
        assert_eq!(g.num_edges(), 5);
        assert!((0..5).all(|v| g.degree(v) == 2));
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 6);
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4);
        assert_eq!(g.num_nodes(), 8);
        // 2 * C(4,2) + bridge
        assert_eq!(g.num_edges(), 13);
    }

    #[test]
    fn planted_partition_denser_inside() {
        let g = planted_partition(3, 10, 0.9, 0.05, 11);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for e in g.edges() {
            if e.u / 10 == e.v / 10 {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > inter, "intra={intra} inter={inter}");
    }
}
