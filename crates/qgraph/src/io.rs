//! Plain-text edge-list serialization.
//!
//! Format (whitespace separated, `#` comments allowed):
//!
//! ```text
//! # header: num_nodes num_edges
//! 5 3
//! 0 1 1.0
//! 1 2 0.75
//! 3 4 1.0
//! ```
//!
//! This is the interchange format the experiment binaries use to persist
//! generated workloads next to their result CSVs, so any table cell can be
//! re-run on the exact same instance.

use crate::graph::{Graph, GraphError};
use std::io::{BufRead, Write};

/// Write `g` as an edge list.
pub fn write_edge_list<W: Write>(g: &Graph, mut out: W) -> std::io::Result<()> {
    writeln!(out, "{} {}", g.num_nodes(), g.num_edges())?;
    for e in g.edges() {
        writeln!(out, "{} {} {}", e.u, e.v, e.w)?;
    }
    Ok(())
}

/// Read a graph previously written by [`write_edge_list`].
pub fn read_edge_list<R: BufRead>(input: R) -> crate::Result<Graph> {
    let mut lines =
        input.lines().map(|l| l.unwrap_or_default()).enumerate().map(|(i, l)| (i + 1, l)).filter(
            |(_, l)| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with('#')
            },
        );

    let (line_no, header) =
        lines.next().ok_or(GraphError::Parse { line: 0, message: "empty input".into() })?;
    let mut parts = header.split_whitespace();
    let n: usize = parse_field(&mut parts, line_no, "num_nodes")?;
    let m: usize = parse_field(&mut parts, line_no, "num_edges")?;

    let mut g = Graph::new(n);
    let mut count = 0usize;
    for (line_no, line) in lines {
        let mut parts = line.split_whitespace();
        let u: u32 = parse_field(&mut parts, line_no, "u")?;
        let v: u32 = parse_field(&mut parts, line_no, "v")?;
        let w: f64 = parse_field(&mut parts, line_no, "w")?;
        g.add_edge(u, v, w)?;
        count += 1;
    }
    if count != m {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("header promised {m} edges, found {count}"),
        });
    }
    Ok(g)
}

fn parse_field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    what: &str,
) -> crate::Result<T> {
    let tok = parts
        .next()
        .ok_or_else(|| GraphError::Parse { line, message: format!("missing field `{what}`") })?;
    tok.parse()
        .map_err(|_| GraphError::Parse { line, message: format!("cannot parse `{tok}` as {what}") })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{self, WeightKind};
    use std::io::BufReader;

    #[test]
    fn roundtrip() {
        let g = generators::erdos_renyi(15, 0.3, WeightKind::Random01, 77);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(g.num_nodes(), h.num_nodes());
        assert_eq!(g.num_edges(), h.num_edges());
        for (a, b) in g.edges().iter().zip(h.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert!((a.w - b.w).abs() < 1e-12);
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# a graph\n\n3 1\n# the only edge\n0 2 1.5\n";
        let g = read_edge_list(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.edge_weight(0, 2), Some(1.5));
    }

    #[test]
    fn wrong_edge_count_rejected() {
        let text = "2 2\n0 1 1.0\n";
        assert!(read_edge_list(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn malformed_field_rejected() {
        let text = "2 1\n0 x 1.0\n";
        let err = read_edge_list(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(read_edge_list(BufReader::new("".as_bytes())).is_err());
    }
}
