//! Plain-text edge-list serialization.
//!
//! Native format (whitespace separated, `#` comments allowed):
//!
//! ```text
//! # header: num_nodes num_edges
//! 5 3
//! 0 1 1.0
//! 1 2 0.75
//! 3 4 1.0
//! ```
//!
//! [`read_edge_list`] also accepts **Gset-style** inputs — the format
//! the published MaxCut benchmark instances (G1…G81) ship in: the same
//! `n m` header, **1-based** node indices, and an *optional* integer
//! weight column (missing weights default to `1`):
//!
//! ```text
//! 5 3
//! 1 2
//! 2 3 -1
//! 4 5 1
//! ```
//!
//! [`read_edge_list`] detects the base: any index `0` means 0-based;
//! any index `n` means 1-based. A file using neither extreme parses
//! identically under both conventions up to node relabeling, and is
//! read as 0-based (the native convention) — real Gset instances always
//! touch node `n`, but when the provenance is known, [`read_gset`]
//! fixes the base explicitly and sidesteps the heuristic entirely.
//!
//! This is the interchange format the experiment binaries use to persist
//! generated workloads next to their result CSVs, so any table cell can be
//! re-run on the exact same instance — and the door through which
//! published instances enter without preprocessing.
//!
//! ## Streaming
//!
//! Both readers are single-pass over the input with one reused line
//! buffer — no per-line `String` and no `Vec` of raw lines.
//! [`read_gset`]'s fixed base lets every edge go straight into a
//! [`GraphBuilder`] sized from the header, so a million-edge file costs
//! one allocation for the edge array plus the CSR finalize.
//! [`read_edge_list`] must see the whole file before it can resolve the
//! index base (a whole-file property), so it buffers *compact* 32-byte
//! raw records — still a single pass over the text, and ~25× smaller
//! than the graph text it replaces. Header edge counts are treated as
//! hints, capped before preallocation, so a corrupt header cannot
//! trigger an absurd reservation.

use crate::graph::{Graph, GraphBuilder, GraphError};
use std::io::{BufRead, Write};

/// Upper bound on the edge capacity reserved from a header hint (2²⁶
/// edges ≈ 1 GiB of `Edge`s). Real counts above this still load — the
/// vector grows normally — but a lying header can't force the
/// allocation up front.
const EDGE_CAPACITY_HINT_CAP: usize = 1 << 26;

/// Write `g` as an edge list (native 0-based format).
pub fn write_edge_list<W: Write>(g: &Graph, mut out: W) -> std::io::Result<()> {
    writeln!(out, "{} {}", g.num_nodes(), g.num_edges())?;
    for e in g.edges() {
        writeln!(out, "{} {} {}", e.u, e.v, e.w)?;
    }
    Ok(())
}

/// Write `g` Gset-style: `n m` header, 1-based indices, weight column
/// (integral weights print without a fractional part, as published Gset
/// files do).
pub fn write_gset<W: Write>(g: &Graph, mut out: W) -> std::io::Result<()> {
    writeln!(out, "{} {}", g.num_nodes(), g.num_edges())?;
    for e in g.edges() {
        if e.w.fract() == 0.0 && e.w.abs() < 1e15 {
            writeln!(out, "{} {} {}", e.u + 1, e.v + 1, e.w as i64)?;
        } else {
            writeln!(out, "{} {} {}", e.u + 1, e.v + 1, e.w)?;
        }
    }
    Ok(())
}

/// Read a graph written by [`write_edge_list`] or a Gset-style instance,
/// detecting the index base (see module docs for the tie-break). When
/// the file is *known* to be Gset-shaped, prefer [`read_gset`] — the
/// explicit base never depends on which node indices happen to appear,
/// and the fixed base streams straight into the builder with no raw
/// record buffering.
pub fn read_edge_list<R: BufRead>(input: R) -> crate::Result<Graph> {
    let mut lines = LineReader::new(input);
    let (n, m) = parse_header(&mut lines)?;
    let mut raw: Vec<RawEdge> = Vec::with_capacity(m.min(EDGE_CAPACITY_HINT_CAP));
    while lines.next_content_line()? {
        raw.push(parse_edge(lines.content(), lines.line_no())?);
    }
    check_edge_count(raw.len(), m)?;
    let touches_zero = raw.iter().any(|e| e.u == 0 || e.v == 0);
    let touches_n = raw.iter().any(|e| e.u == n as u64 || e.v == n as u64);
    let offset = match (touches_zero, touches_n) {
        (false, true) => 1, // 1-based (Gset): node n exists, node 0 cannot
        _ => 0,             // native 0-based; mixing 0 and n fails below
    };
    if offset == 0 {
        // the native format always carries a weight column: a missing
        // weight there is a truncated line, not a unit-weight edge
        if let Some(e) = raw.iter().find(|e| !e.has_w) {
            return Err(GraphError::Parse {
                line: e.line as usize,
                message: "missing field `w`".into(),
            });
        }
    }
    let mut b = GraphBuilder::with_capacity(n, raw.len());
    for e in &raw {
        add_mapped_edge(&mut b, e, offset, n)?;
    }
    b.finalize()
}

/// Read a Gset-style instance (`n m` header, **1-based** indices,
/// optional weights). Unlike [`read_edge_list`]'s auto-detection, the
/// base is fixed, so files whose highest node happens to be isolated —
/// where both conventions are self-consistent — still load with the
/// intended labels; [`write_gset`] → `read_gset` round-trips exactly.
///
/// This is the large-instance ingestion path: truly single-pass, each
/// parsed edge appended directly to a [`GraphBuilder`] preallocated
/// from the header's edge count.
pub fn read_gset<R: BufRead>(input: R) -> crate::Result<Graph> {
    let mut lines = LineReader::new(input);
    let (n, m) = parse_header(&mut lines)?;
    let mut b = GraphBuilder::with_capacity(n, m.min(EDGE_CAPACITY_HINT_CAP));
    let mut count = 0usize;
    while lines.next_content_line()? {
        let e = parse_edge(lines.content(), lines.line_no())?;
        add_mapped_edge(&mut b, &e, 1, n)?;
        count += 1;
    }
    check_edge_count(count, m)?;
    b.finalize()
}

/// One parsed edge line, compact enough to buffer millions of
/// (32 bytes each): `read_edge_list` holds these until the whole file
/// has been seen and the index base is decidable.
struct RawEdge {
    u: u64,
    v: u64,
    /// Weight column value; meaningful only when `has_w` (Gset shorthand
    /// omits the column for unit weight).
    w: f64,
    line: u32,
    has_w: bool,
}

/// Single-pass line scanner with one reused buffer: no per-line `String`
/// allocation, comments and blank lines skipped, 1-based line numbers
/// tracked across skips (parse errors pin exact line numbers).
struct LineReader<R> {
    input: R,
    buf: String,
    line_no: usize,
}

impl<R: BufRead> LineReader<R> {
    fn new(input: R) -> Self {
        LineReader { input, buf: String::with_capacity(128), line_no: 0 }
    }

    /// Advance to the next non-blank, non-comment line. Returns `false`
    /// at end of input; on `true` the line is in [`LineReader::content`].
    fn next_content_line(&mut self) -> crate::Result<bool> {
        loop {
            self.buf.clear();
            self.line_no += 1;
            let read = self.input.read_line(&mut self.buf).map_err(|e| GraphError::Parse {
                line: self.line_no,
                message: format!("read failed: {e}"),
            })?;
            if read == 0 {
                return Ok(false);
            }
            let t = self.buf.trim();
            if !t.is_empty() && !t.starts_with('#') {
                return Ok(true);
            }
        }
    }

    fn content(&self) -> &str {
        self.buf.trim()
    }

    fn line_no(&self) -> usize {
        self.line_no
    }
}

fn parse_header<R: BufRead>(lines: &mut LineReader<R>) -> crate::Result<(usize, usize)> {
    if !lines.next_content_line()? {
        return Err(GraphError::Parse { line: 0, message: "empty input".into() });
    }
    let line_no = lines.line_no();
    let mut parts = lines.content().split_whitespace();
    let n: usize = parse_field(&mut parts, line_no, "num_nodes")?;
    let m: usize = parse_field(&mut parts, line_no, "num_edges")?;
    if n > u32::MAX as usize {
        return Err(GraphError::Parse {
            line: line_no,
            message: format!("num_nodes {n} exceeds the u32 node-id range"),
        });
    }
    Ok((n, m))
}

fn parse_edge(content: &str, line_no: usize) -> crate::Result<RawEdge> {
    let mut parts = content.split_whitespace();
    let u: u64 = parse_field(&mut parts, line_no, "u")?;
    let v: u64 = parse_field(&mut parts, line_no, "v")?;
    // Gset files may omit the weight column entirely
    let (w, has_w) = match parts.next() {
        Some(tok) => (
            tok.parse().map_err(|_| GraphError::Parse {
                line: line_no,
                message: format!("cannot parse `{tok}` as w"),
            })?,
            true,
        ),
        None => (1.0, false),
    };
    // CAST: explicitly clamped to u32::MAX on the line number just
    // before the narrowing (diagnostic field only).
    Ok(RawEdge { u, v, w, line: line_no.min(u32::MAX as usize) as u32, has_w })
}

/// Shift a raw edge by the resolved index base, range-check both ends,
/// and append it to the builder (weightless lines get unit weight).
fn add_mapped_edge(b: &mut GraphBuilder, e: &RawEdge, offset: u64, n: usize) -> crate::Result<()> {
    let line_no = e.line as usize;
    let map = |x: u64, what: &str| -> crate::Result<u32> {
        // CAST: x is range-checked against n (the declared node count,
        // ≤ NodeId range) on the same expression before the narrowing.
        x.checked_sub(offset).filter(|&x| x < n as u64).map(|x| x as u32).ok_or_else(|| {
            GraphError::Parse {
                line: line_no,
                message: format!("node index {x} out of range for {n} nodes ({what})"),
            }
        })
    };
    b.add_edge(map(e.u, "u")?, map(e.v, "v")?, e.w)
}

fn check_edge_count(found: usize, promised: usize) -> crate::Result<()> {
    if found != promised {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("header promised {promised} edges, found {found}"),
        });
    }
    Ok(())
}

fn parse_field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    what: &str,
) -> crate::Result<T> {
    let tok = parts
        .next()
        .ok_or_else(|| GraphError::Parse { line, message: format!("missing field `{what}`") })?;
    tok.parse()
        .map_err(|_| GraphError::Parse { line, message: format!("cannot parse `{tok}` as {what}") })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{self, WeightKind};
    use std::io::BufReader;

    #[test]
    fn roundtrip() {
        let g = generators::erdos_renyi(15, 0.3, WeightKind::Random01, 77);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(g.num_nodes(), h.num_nodes());
        assert_eq!(g.num_edges(), h.num_edges());
        for (a, b) in g.edges().iter().zip(h.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert!((a.w - b.w).abs() < 1e-12);
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# a graph\n\n3 1\n# the only edge\n0 2 1.5\n";
        let g = read_edge_list(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.edge_weight(0, 2), Some(1.5));
    }

    #[test]
    fn wrong_edge_count_rejected() {
        let text = "2 2\n0 1 1.0\n";
        assert!(read_edge_list(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn malformed_field_rejected() {
        let text = "2 1\n0 x 1.0\n";
        let err = read_edge_list(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(read_edge_list(BufReader::new("".as_bytes())).is_err());
    }

    #[test]
    fn gset_style_weighted_input_loads() {
        // 1-based indices, integer (possibly negative) weights
        let text = "5 4\n1 2 1\n2 3 -1\n4 5 2\n1 5 1\n";
        let g = read_edge_list(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        assert_eq!(g.edge_weight(1, 2), Some(-1.0));
        assert_eq!(g.edge_weight(3, 4), Some(2.0));
        assert_eq!(g.edge_weight(0, 4), Some(1.0));
    }

    #[test]
    fn gset_style_weightless_input_defaults_to_unit_weights() {
        let text = "4 3\n1 2\n2 4\n3 4\n";
        let g = read_edge_list(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_weight(1, 3), Some(1.0));
        assert_eq!(g.total_weight(), 3.0);
    }

    #[test]
    fn native_format_still_requires_the_weight_column() {
        // a 0-based file with a truncated line is corrupt, not unit-weight
        let text = "4 2\n0 1 1.0\n2 3\n";
        let err = read_edge_list(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 3, .. }), "{err:?}");
    }

    fn assert_same_graph(g: &Graph, h: &Graph) {
        assert_eq!(g.num_nodes(), h.num_nodes());
        assert_eq!(g.num_edges(), h.num_edges());
        for (a, b) in g.edges().iter().zip(h.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert!((a.w - b.w).abs() < 1e-12);
        }
    }

    #[test]
    fn gset_roundtrip() {
        let g = generators::erdos_renyi(20, 0.25, WeightKind::Uniform, 5);
        let mut buf = Vec::new();
        write_gset(&g, &mut buf).unwrap();
        // the emitted file is genuinely Gset-shaped: 1-based, no node 0
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.lines().skip(1).all(|l| !l.split_whitespace().any(|t| t == "0")));
        // both the explicit and the auto-detecting reader recover it
        assert_same_graph(&g, &read_gset(BufReader::new(buf.as_slice())).unwrap());
        assert_same_graph(&g, &read_edge_list(BufReader::new(buf.as_slice())).unwrap());
    }

    #[test]
    fn gset_roundtrip_with_isolated_highest_node() {
        // node n never appears in the edge list, so the auto-detecting
        // reader cannot tell the bases apart — the explicit read_gset
        // entry point is what keeps this round-trip exact
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 3, 2.0).unwrap();
        let mut buf = Vec::new();
        write_gset(&g, &mut buf).unwrap();
        assert_same_graph(&g, &read_gset(BufReader::new(buf.as_slice())).unwrap());
    }

    #[test]
    fn zero_based_files_without_node_zero_still_load_zero_based() {
        // touches neither 0 nor n: both conventions are consistent and
        // the native 0-based reading wins (documented tie-break)
        let text = "5 1\n1 3 2.0\n";
        let g = read_edge_list(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.edge_weight(1, 3), Some(2.0));
    }

    #[test]
    fn mixing_index_zero_and_index_n_is_rejected() {
        // index 0 forces 0-based, so index n is out of range
        let text = "5 2\n0 1 1.0\n2 5 1.0\n";
        let err = read_edge_list(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 3, .. }), "{err:?}");
    }

    #[test]
    fn gset_duplicate_edge_is_rejected() {
        let text = "3 2\n1 2 1\n2 1 1\n";
        let err = read_gset(BufReader::new(text.as_bytes())).unwrap_err();
        assert_eq!(err, GraphError::DuplicateEdge { u: 0, v: 1 });
    }

    #[test]
    fn node_count_beyond_u32_rejected() {
        let text = format!("{} 0\n", 1u64 << 33);
        let err = read_edge_list(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }), "{err:?}");
    }

    #[test]
    fn large_gset_roundtrip_at_1e5_nodes() {
        // satellite acceptance: write_gset → read_gset preserves a
        // 10⁵-node instance exactly (the streaming reader's capacity
        // hint comes from this header)
        let n = 100_000;
        let g = generators::erdos_renyi_fast(n, 8.0e-5, WeightKind::Uniform, 4242);
        assert!(g.num_edges() > 300_000, "m={}", g.num_edges());
        let mut buf = Vec::new();
        write_gset(&g, &mut buf).unwrap();
        let h = read_gset(BufReader::new(buf.as_slice())).unwrap();
        assert_same_graph(&g, &h);
        // spot-check CSR equivalence on a few nodes
        for v in [0u32, 1, 77_777, (n - 1) as u32] {
            assert_eq!(g.neighbors(v), h.neighbors(v));
        }
    }
}
