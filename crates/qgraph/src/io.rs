//! Plain-text edge-list serialization.
//!
//! Native format (whitespace separated, `#` comments allowed):
//!
//! ```text
//! # header: num_nodes num_edges
//! 5 3
//! 0 1 1.0
//! 1 2 0.75
//! 3 4 1.0
//! ```
//!
//! [`read_edge_list`] also accepts **Gset-style** inputs — the format
//! the published MaxCut benchmark instances (G1…G81) ship in: the same
//! `n m` header, **1-based** node indices, and an *optional* integer
//! weight column (missing weights default to `1`):
//!
//! ```text
//! 5 3
//! 1 2
//! 2 3 -1
//! 4 5 1
//! ```
//!
//! [`read_edge_list`] detects the base: any index `0` means 0-based;
//! any index `n` means 1-based. A file using neither extreme parses
//! identically under both conventions up to node relabeling, and is
//! read as 0-based (the native convention) — real Gset instances always
//! touch node `n`, but when the provenance is known, [`read_gset`]
//! fixes the base explicitly and sidesteps the heuristic entirely.
//!
//! This is the interchange format the experiment binaries use to persist
//! generated workloads next to their result CSVs, so any table cell can be
//! re-run on the exact same instance — and the door through which
//! published instances enter without preprocessing.

use crate::graph::{Graph, GraphError};
use std::io::{BufRead, Write};

/// Write `g` as an edge list (native 0-based format).
pub fn write_edge_list<W: Write>(g: &Graph, mut out: W) -> std::io::Result<()> {
    writeln!(out, "{} {}", g.num_nodes(), g.num_edges())?;
    for e in g.edges() {
        writeln!(out, "{} {} {}", e.u, e.v, e.w)?;
    }
    Ok(())
}

/// Write `g` Gset-style: `n m` header, 1-based indices, weight column
/// (integral weights print without a fractional part, as published Gset
/// files do).
pub fn write_gset<W: Write>(g: &Graph, mut out: W) -> std::io::Result<()> {
    writeln!(out, "{} {}", g.num_nodes(), g.num_edges())?;
    for e in g.edges() {
        if e.w.fract() == 0.0 && e.w.abs() < 1e15 {
            writeln!(out, "{} {} {}", e.u + 1, e.v + 1, e.w as i64)?;
        } else {
            writeln!(out, "{} {} {}", e.u + 1, e.v + 1, e.w)?;
        }
    }
    Ok(())
}

/// Read a graph written by [`write_edge_list`] or a Gset-style instance,
/// detecting the index base (see module docs for the tie-break). When
/// the file is *known* to be Gset-shaped, prefer [`read_gset`] — the
/// explicit base never depends on which node indices happen to appear.
pub fn read_edge_list<R: BufRead>(input: R) -> crate::Result<Graph> {
    let (n, raw) = parse_edge_lines(input)?;
    let touches_zero = raw.iter().any(|&(_, u, v, _)| u == 0 || v == 0);
    let touches_n = raw.iter().any(|&(_, u, v, _)| u == n as u64 || v == n as u64);
    let offset = match (touches_zero, touches_n) {
        (false, true) => 1, // 1-based (Gset): node n exists, node 0 cannot
        _ => 0,             // native 0-based; mixing 0 and n fails below
    };
    if offset == 0 {
        // the native format always carries a weight column: a missing
        // weight there is a truncated line, not a unit-weight edge
        if let Some(&(line, ..)) = raw.iter().find(|&&(_, _, _, w)| w.is_none()) {
            return Err(GraphError::Parse { line, message: "missing field `w`".into() });
        }
    }
    build_graph(n, raw, offset)
}

/// Read a Gset-style instance (`n m` header, **1-based** indices,
/// optional weights). Unlike [`read_edge_list`]'s auto-detection, the
/// base is fixed, so files whose highest node happens to be isolated —
/// where both conventions are self-consistent — still load with the
/// intended labels; [`write_gset`] → `read_gset` round-trips exactly.
pub fn read_gset<R: BufRead>(input: R) -> crate::Result<Graph> {
    let (n, raw) = parse_edge_lines(input)?;
    build_graph(n, raw, 1)
}

/// Shared front half of the readers: header + raw `(line, u, v, w)`
/// records (the index base is a whole-file property, so edges cannot be
/// inserted until every line is seen), with the edge count checked
/// against the header. `w` is `None` when the weight column is absent —
/// legal Gset shorthand for unit weight, an error in the native format.
type RawEdges = Vec<(usize, u64, u64, Option<f64>)>;

fn parse_edge_lines<R: BufRead>(input: R) -> crate::Result<(usize, RawEdges)> {
    let mut lines =
        input.lines().map(|l| l.unwrap_or_default()).enumerate().map(|(i, l)| (i + 1, l)).filter(
            |(_, l)| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with('#')
            },
        );

    let (line_no, header) =
        lines.next().ok_or(GraphError::Parse { line: 0, message: "empty input".into() })?;
    let mut parts = header.split_whitespace();
    let n: usize = parse_field(&mut parts, line_no, "num_nodes")?;
    let m: usize = parse_field(&mut parts, line_no, "num_edges")?;

    let mut raw: RawEdges = Vec::new();
    for (line_no, line) in lines {
        let mut parts = line.split_whitespace();
        let u: u64 = parse_field(&mut parts, line_no, "u")?;
        let v: u64 = parse_field(&mut parts, line_no, "v")?;
        // Gset files may omit the weight column entirely
        let w: Option<f64> = match parts.next() {
            Some(tok) => Some(tok.parse().map_err(|_| GraphError::Parse {
                line: line_no,
                message: format!("cannot parse `{tok}` as w"),
            })?),
            None => None,
        };
        raw.push((line_no, u, v, w));
    }
    if raw.len() != m {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("header promised {m} edges, found {}", raw.len()),
        });
    }
    Ok((n, raw))
}

fn build_graph(n: usize, raw: RawEdges, offset: u64) -> crate::Result<Graph> {
    let mut g = Graph::new(n);
    for (line_no, u, v, w) in raw {
        let map = |x: u64, what: &str| -> crate::Result<u32> {
            x.checked_sub(offset).filter(|&x| x < n as u64).map(|x| x as u32).ok_or_else(|| {
                GraphError::Parse {
                    line: line_no,
                    message: format!("node index {x} out of range for {n} nodes ({what})"),
                }
            })
        };
        g.add_edge(map(u, "u")?, map(v, "v")?, w.unwrap_or(1.0))?;
    }
    Ok(g)
}

fn parse_field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    what: &str,
) -> crate::Result<T> {
    let tok = parts
        .next()
        .ok_or_else(|| GraphError::Parse { line, message: format!("missing field `{what}`") })?;
    tok.parse()
        .map_err(|_| GraphError::Parse { line, message: format!("cannot parse `{tok}` as {what}") })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{self, WeightKind};
    use std::io::BufReader;

    #[test]
    fn roundtrip() {
        let g = generators::erdos_renyi(15, 0.3, WeightKind::Random01, 77);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(g.num_nodes(), h.num_nodes());
        assert_eq!(g.num_edges(), h.num_edges());
        for (a, b) in g.edges().iter().zip(h.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert!((a.w - b.w).abs() < 1e-12);
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# a graph\n\n3 1\n# the only edge\n0 2 1.5\n";
        let g = read_edge_list(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.edge_weight(0, 2), Some(1.5));
    }

    #[test]
    fn wrong_edge_count_rejected() {
        let text = "2 2\n0 1 1.0\n";
        assert!(read_edge_list(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn malformed_field_rejected() {
        let text = "2 1\n0 x 1.0\n";
        let err = read_edge_list(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(read_edge_list(BufReader::new("".as_bytes())).is_err());
    }

    #[test]
    fn gset_style_weighted_input_loads() {
        // 1-based indices, integer (possibly negative) weights
        let text = "5 4\n1 2 1\n2 3 -1\n4 5 2\n1 5 1\n";
        let g = read_edge_list(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        assert_eq!(g.edge_weight(1, 2), Some(-1.0));
        assert_eq!(g.edge_weight(3, 4), Some(2.0));
        assert_eq!(g.edge_weight(0, 4), Some(1.0));
    }

    #[test]
    fn gset_style_weightless_input_defaults_to_unit_weights() {
        let text = "4 3\n1 2\n2 4\n3 4\n";
        let g = read_edge_list(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_weight(1, 3), Some(1.0));
        assert_eq!(g.total_weight(), 3.0);
    }

    #[test]
    fn native_format_still_requires_the_weight_column() {
        // a 0-based file with a truncated line is corrupt, not unit-weight
        let text = "4 2\n0 1 1.0\n2 3\n";
        let err = read_edge_list(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 3, .. }), "{err:?}");
    }

    fn assert_same_graph(g: &Graph, h: &Graph) {
        assert_eq!(g.num_nodes(), h.num_nodes());
        assert_eq!(g.num_edges(), h.num_edges());
        for (a, b) in g.edges().iter().zip(h.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert!((a.w - b.w).abs() < 1e-12);
        }
    }

    #[test]
    fn gset_roundtrip() {
        let g = generators::erdos_renyi(20, 0.25, WeightKind::Uniform, 5);
        let mut buf = Vec::new();
        write_gset(&g, &mut buf).unwrap();
        // the emitted file is genuinely Gset-shaped: 1-based, no node 0
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.lines().skip(1).all(|l| !l.split_whitespace().any(|t| t == "0")));
        // both the explicit and the auto-detecting reader recover it
        assert_same_graph(&g, &read_gset(BufReader::new(buf.as_slice())).unwrap());
        assert_same_graph(&g, &read_edge_list(BufReader::new(buf.as_slice())).unwrap());
    }

    #[test]
    fn gset_roundtrip_with_isolated_highest_node() {
        // node n never appears in the edge list, so the auto-detecting
        // reader cannot tell the bases apart — the explicit read_gset
        // entry point is what keeps this round-trip exact
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 3, 2.0).unwrap();
        let mut buf = Vec::new();
        write_gset(&g, &mut buf).unwrap();
        assert_same_graph(&g, &read_gset(BufReader::new(buf.as_slice())).unwrap());
    }

    #[test]
    fn zero_based_files_without_node_zero_still_load_zero_based() {
        // touches neither 0 nor n: both conventions are consistent and
        // the native 0-based reading wins (documented tie-break)
        let text = "5 1\n1 3 2.0\n";
        let g = read_edge_list(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.edge_weight(1, 3), Some(2.0));
    }

    #[test]
    fn mixing_index_zero_and_index_n_is_rejected() {
        // index 0 forces 0-based, so index n is out of range
        let text = "5 2\n0 1 1.0\n2 5 1.0\n";
        let err = read_edge_list(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 3, .. }), "{err:?}");
    }
}
