//! Size-capped graph partitioning for the QAOA² divide step.
//!
//! The paper partitions the input with greedy modularity and then — because
//! every sub-graph must fit on an `n`-qubit device — recursively re-divides
//! any community larger than the qubit budget. [`partition_with_cap`]
//! implements exactly that, with a balanced-bisection fallback for
//! communities that greedy modularity refuses to split (cliques, very dense
//! blobs, or merge graphs with non-positive total weight). It is one
//! strategy of several: the pluggable strategy layer lives in
//! [`crate::partitioner`] (trait + built-ins) and [`crate::refine`]
//! (boundary refinement); this module owns the [`Partition`] type, its
//! quality metrics, and the CNM strategy's engine.

use crate::graph::{Graph, NodeId};
use crate::modularity::greedy_modularity_communities;

/// A disjoint cover of the node set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    communities: Vec<Vec<NodeId>>,
    num_nodes: usize,
}

impl Partition {
    /// Wrap raw communities. Panics in debug builds if they are not a
    /// disjoint cover of `0..num_nodes`. For communities from an
    /// external or otherwise untrusted source, use
    /// [`Partition::try_new`] instead — this constructor is for
    /// internal callers whose output is correct by construction.
    pub fn new(num_nodes: usize, communities: Vec<Vec<NodeId>>) -> Self {
        let p = Partition { communities, num_nodes };
        debug_assert!(p.is_valid(), "communities must partition the node set");
        p
    }

    /// Wrap raw communities, rejecting any set that is not a disjoint
    /// cover of `0..num_nodes`. This is the constructor for communities
    /// that cross a trust boundary (custom [`crate::Partitioner`]
    /// implementations, deserialized data): unlike [`Partition::new`],
    /// the check runs in every build profile and surfaces as an error
    /// instead of undefined downstream behaviour.
    pub fn try_new(
        num_nodes: usize,
        communities: Vec<Vec<NodeId>>,
    ) -> Result<Self, crate::partitioner::PartitionError> {
        let mut seen = vec![false; num_nodes];
        for c in &communities {
            for &v in c {
                let Some(slot) = seen.get_mut(v as usize) else {
                    return Err(crate::partitioner::PartitionError::InvalidPartition {
                        reason: format!("node {v} out of range for {num_nodes} nodes"),
                    });
                };
                if *slot {
                    return Err(crate::partitioner::PartitionError::InvalidPartition {
                        reason: format!("node {v} appears in more than one community"),
                    });
                }
                *slot = true;
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(crate::partitioner::PartitionError::InvalidPartition {
                reason: format!("node {missing} is not covered by any community"),
            });
        }
        Ok(Partition { communities, num_nodes })
    }

    /// Wrap raw communities with **no** validation at all — not even the
    /// debug assertion. Only for tests that need to construct invalid
    /// partitions on purpose (e.g. to exercise the validators).
    #[doc(hidden)]
    pub fn new_unchecked(num_nodes: usize, communities: Vec<Vec<NodeId>>) -> Self {
        Partition { communities, num_nodes }
    }

    /// Communities as sorted node-id lists.
    pub fn communities(&self) -> &[Vec<NodeId>] {
        &self.communities
    }

    /// Consume the partition, yielding the raw communities (for
    /// revalidation or transformation).
    pub fn into_communities(self) -> Vec<Vec<NodeId>> {
        self.communities
    }

    /// Number of communities.
    pub fn len(&self) -> usize {
        self.communities.len()
    }

    /// True when there are no communities (empty graph).
    pub fn is_empty(&self) -> bool {
        self.communities.is_empty()
    }

    /// Size of the largest community.
    pub fn max_community_size(&self) -> usize {
        self.communities.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Balance: largest community size divided by the mean community
    /// size (`1.0` = perfectly balanced, higher = more skewed; `1.0`
    /// for empty partitions by convention). A strategy with balance 3
    /// puts three times the mean load on its largest sub-circuit.
    ///
    /// Total on every input, including degenerate ones — the value is
    /// folded into the cross-process determinism digest, so it must
    /// never be NaN or ∞: the empty graph, the empty community list,
    /// and a single all-node community all report `1.0`.
    pub fn balance(&self) -> f64 {
        if self.num_nodes == 0 || self.communities.is_empty() {
            return 1.0;
        }
        let mean = self.num_nodes as f64 / self.communities.len() as f64;
        let balance = self.max_community_size() as f64 / mean;
        // a partition of only-empty communities on a non-empty node
        // range is invalid, but metrics on untrusted input must stay
        // finite rather than poisoning downstream digests
        if balance.is_finite() {
            balance
        } else {
            1.0
        }
    }

    /// `assignment()[v]` = index of the community containing node `v`.
    pub fn assignment(&self) -> Vec<u32> {
        let mut a = vec![u32::MAX; self.num_nodes];
        for (c, members) in self.communities.iter().enumerate() {
            for &v in members {
                a[v as usize] = c as u32;
            }
        }
        a
    }

    /// Check the partition is a disjoint cover of the node set.
    pub fn is_valid(&self) -> bool {
        let mut seen = vec![false; self.num_nodes];
        for c in &self.communities {
            for &v in c {
                let Some(slot) = seen.get_mut(v as usize) else { return false };
                if *slot {
                    return false;
                }
                *slot = true;
            }
        }
        seen.iter().all(|&s| s)
    }
}

/// One sub-problem of the divide step: the induced sub-graph plus the
/// mapping from its local node ids back to the parent graph.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// Induced sub-graph with contiguous local ids.
    pub graph: Graph,
    /// `nodes[local] = global` id in the parent graph.
    pub nodes: Vec<NodeId>,
}

impl Subgraph {
    /// Number of local nodes (= qubits needed to solve it with QAOA).
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }
}

/// Fraction of the graph's edge weight that crosses community
/// boundaries: `Σ|w| over inter-community edges / Σ|w| over all edges`
/// (`0.0` for edgeless graphs). Absolute values keep the metric in
/// `[0, 1]` even on QAOA² merge graphs with negative weights.
///
/// This is the quantity the QAOA² merge stage must recover at community
/// granularity — the partition-quality headline number in
/// `LevelStats`.
///
/// Total on degenerate inputs: edgeless graphs, all-zero weights, and
/// single-community partitions all report `0.0`, and the result is
/// guaranteed finite — it is folded into the cross-process determinism
/// digest, where a NaN from a `0/0` would silently poison every
/// comparison downstream.
///
/// Computed as a chunk-ordered parallel reduction over the edge list
/// (per-chunk `(inter, total)` partials combined in chunk order), so the
/// folded bits are identical at any `RAYON_NUM_THREADS` — this also
/// parallelizes the structural `AutoScore` ranking built on top of it.
pub fn inter_weight_fraction(g: &Graph, partition: &Partition) -> f64 {
    use rayon::prelude::*;
    let assignment = partition.assignment();
    // REDUCTION: fixed par_chunks(DEFAULT_GRAIN) over the edge list;
    // per-chunk pair-sums combine in chunk-index order.
    let (inter, total) = g
        .edges()
        .par_chunks(rayon::DEFAULT_GRAIN)
        .map(|chunk| {
            let (mut inter, mut total) = (0.0f64, 0.0f64);
            for e in chunk {
                total += e.w.abs();
                if assignment[e.u as usize] != assignment[e.v as usize] {
                    inter += e.w.abs();
                }
            }
            (inter, total)
        })
        .reduce(|| (0.0, 0.0), |a, b| (a.0 + b.0, a.1 + b.1));
    if total == 0.0 {
        return 0.0;
    }
    let fraction = inter / total;
    if fraction.is_finite() {
        fraction
    } else {
        0.0
    }
}

/// Node ids with at least one neighbor in a different community — the
/// candidate set for boundary-restricted local search (the post-merge
/// cut polish) and for KL-style refinement.
pub fn boundary_nodes(g: &Graph, partition: &Partition) -> Vec<NodeId> {
    let assignment = partition.assignment();
    let mut boundary = vec![false; g.num_nodes()];
    for e in g.edges() {
        if assignment[e.u as usize] != assignment[e.v as usize] {
            boundary[e.u as usize] = true;
            boundary[e.v as usize] = true;
        }
    }
    (0..g.num_nodes() as NodeId).filter(|&v| boundary[v as usize]).collect()
}

/// Extract the induced sub-graph of every community.
pub fn extract_subgraphs(g: &Graph, partition: &Partition) -> Vec<Subgraph> {
    partition
        .communities()
        .iter()
        .map(|c| {
            let (graph, nodes) = g.induced_subgraph(c);
            Subgraph { graph, nodes }
        })
        .collect()
}

/// Greedy-modularity partition with every community capped at `cap` nodes.
///
/// Mirrors the paper's procedure: CNM first; any oversized community is
/// re-partitioned recursively; if CNM cannot split a piece (single
/// community or no positive-ΔQ merge structure), fall back to balanced
/// bisection in node order, which always terminates.
pub fn partition_with_cap(g: &Graph, cap: usize) -> Partition {
    assert!(cap >= 1, "community cap must be at least 1");
    let mut result: Vec<Vec<NodeId>> = Vec::new();
    let initial = greedy_modularity_communities(g, 1);
    let mut work: Vec<Vec<NodeId>> = initial;
    while let Some(community) = work.pop() {
        if community.len() <= cap {
            result.push(community);
            continue;
        }
        let (sub, map) = g.induced_subgraph(&community);
        let split = greedy_modularity_communities(&sub, 2);
        let pieces: Vec<Vec<NodeId>> = if split.len() >= 2 {
            split
                .into_iter()
                .map(|c| c.into_iter().map(|local| map[local as usize]).collect())
                .collect()
        } else {
            bisect(&community)
        };
        work.extend(pieces);
    }
    result.sort_by(|x, y| y.len().cmp(&x.len()).then_with(|| x[0].cmp(&y[0])));
    Partition::new(g.num_nodes(), result)
}

/// Split a node list into two halves (node-id order). Used as the fallback
/// when modularity cannot find sub-structure.
fn bisect(nodes: &[NodeId]) -> Vec<Vec<NodeId>> {
    let mid = nodes.len() / 2;
    vec![nodes[..mid].to_vec(), nodes[mid..].to_vec()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{self, WeightKind};

    #[test]
    fn partition_respects_cap() {
        let g = generators::erdos_renyi(60, 0.15, WeightKind::Uniform, 3);
        for cap in [4, 8, 16] {
            let p = partition_with_cap(&g, cap);
            assert!(
                p.max_community_size() <= cap,
                "cap {cap} violated: {}",
                p.max_community_size()
            );
            assert!(p.is_valid());
        }
    }

    #[test]
    fn partition_of_clique_uses_bisection() {
        let g = generators::complete(16);
        let p = partition_with_cap(&g, 5);
        assert!(p.max_community_size() <= 5);
        assert!(p.is_valid());
    }

    #[test]
    fn partition_cap_one_gives_singletons() {
        let g = generators::ring(7);
        let p = partition_with_cap(&g, 1);
        assert_eq!(p.len(), 7);
    }

    #[test]
    fn partition_preserves_planted_blocks_when_cap_allows() {
        let g = generators::planted_partition(4, 6, 0.9, 0.02, 8);
        let p = partition_with_cap(&g, 6);
        assert_eq!(p.len(), 4);
        for c in p.communities() {
            let block = c[0] / 6;
            assert!(c.iter().all(|&v| v / 6 == block));
        }
    }

    #[test]
    fn extract_subgraphs_preserves_edges() {
        let g = generators::barbell(4);
        let p = partition_with_cap(&g, 4);
        let subs = extract_subgraphs(&g, &p);
        // the two bells are K4: 6 edges each; bridge edge is inter-community
        let total_sub_edges: usize = subs.iter().map(|s| s.graph.num_edges()).sum();
        assert_eq!(total_sub_edges, 12);
    }

    #[test]
    fn assignment_roundtrip() {
        let g = generators::erdos_renyi(30, 0.2, WeightKind::Uniform, 5);
        let p = partition_with_cap(&g, 10);
        let a = p.assignment();
        for (c, members) in p.communities().iter().enumerate() {
            for &v in members {
                assert_eq!(a[v as usize], c as u32);
            }
        }
    }

    #[test]
    fn empty_graph_partition() {
        let g = Graph::new(0);
        let p = partition_with_cap(&g, 4);
        assert!(p.is_empty());
        assert!(p.is_valid());
    }

    #[test]
    fn invalid_partition_detected() {
        let p = Partition { communities: vec![vec![0, 1], vec![1]], num_nodes: 2 };
        assert!(!p.is_valid());
        let q = Partition { communities: vec![vec![0]], num_nodes: 2 };
        assert!(!q.is_valid());
    }

    #[test]
    fn try_new_accepts_valid_and_names_each_failure() {
        use crate::partitioner::PartitionError;
        let ok = Partition::try_new(3, vec![vec![0, 2], vec![1]]).unwrap();
        assert_eq!(ok.len(), 2);
        let dup = Partition::try_new(2, vec![vec![0, 1], vec![1]]).unwrap_err();
        assert!(
            matches!(&dup, PartitionError::InvalidPartition { reason } if reason.contains("more than one")),
            "{dup:?}"
        );
        let missing = Partition::try_new(2, vec![vec![0]]).unwrap_err();
        assert!(
            matches!(&missing, PartitionError::InvalidPartition { reason } if reason.contains("not covered")),
            "{missing:?}"
        );
        let oob = Partition::try_new(2, vec![vec![0, 1, 5]]).unwrap_err();
        assert!(
            matches!(&oob, PartitionError::InvalidPartition { reason } if reason.contains("out of range")),
            "{oob:?}"
        );
    }

    #[test]
    fn into_communities_roundtrips_through_try_new() {
        let g = generators::erdos_renyi(20, 0.25, WeightKind::Uniform, 2);
        let p = partition_with_cap(&g, 6);
        let q = Partition::try_new(20, p.clone().into_communities()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn balance_is_max_over_mean() {
        let p = Partition::new(6, vec![vec![0, 1, 2, 3], vec![4], vec![5]]);
        // mean = 2, max = 4
        assert!((p.balance() - 2.0).abs() < 1e-12);
        let uniform = Partition::new(4, vec![vec![0, 1], vec![2, 3]]);
        assert!((uniform.balance() - 1.0).abs() < 1e-12);
        assert_eq!(Partition::new(0, vec![]).balance(), 1.0);
    }

    #[test]
    fn inter_weight_fraction_counts_crossing_weight() {
        // barbell: only the bridge edge crosses the two bells
        let g = generators::barbell(4);
        let p = Partition::new(8, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]);
        assert!((inter_weight_fraction(&g, &p) - 1.0 / 13.0).abs() < 1e-12);
        // everything in one community: nothing crosses
        let one = Partition::new(8, vec![(0..8).collect()]);
        assert_eq!(inter_weight_fraction(&g, &one), 0.0);
        // edgeless graph: defined as 0
        let empty = Graph::new(3);
        let singletons = Partition::new(3, vec![vec![0], vec![1], vec![2]]);
        assert_eq!(inter_weight_fraction(&empty, &singletons), 0.0);
    }

    #[test]
    fn metrics_are_finite_on_degenerate_inputs() {
        // empty graph / empty partition
        let empty = Graph::new(0);
        let none = Partition::new(0, vec![]);
        assert_eq!(none.balance(), 1.0);
        assert_eq!(inter_weight_fraction(&empty, &none), 0.0);
        // single community covering everything: nothing crosses
        let g = generators::ring(5);
        let one = Partition::new(5, vec![(0..5).collect()]);
        assert_eq!(one.balance(), 1.0);
        assert_eq!(inter_weight_fraction(&g, &one), 0.0);
        // all-zero weights: total |w| = 0 must not become 0/0 = NaN
        let zero = Graph::from_edges(4, [(0, 1, 0.0), (1, 2, 0.0), (2, 3, 0.0)]).unwrap();
        let halves = Partition::new(4, vec![vec![0, 1], vec![2, 3]]);
        let f = inter_weight_fraction(&zero, &halves);
        assert_eq!(f, 0.0);
        assert!(f.is_finite());
        assert!(halves.balance().is_finite());
        // isolated nodes as singletons alongside a block
        let iso = Graph::from_edges(5, [(0, 1, 2.0)]).unwrap();
        let mixed = Partition::new(5, vec![vec![0, 1], vec![2], vec![3], vec![4]]);
        assert!(mixed.balance().is_finite());
        assert_eq!(inter_weight_fraction(&iso, &mixed), 0.0);
    }

    #[test]
    fn boundary_nodes_are_exactly_the_crossing_endpoints() {
        let g = generators::barbell(3);
        let p = Partition::new(6, vec![vec![0, 1, 2], vec![3, 4, 5]]);
        // bridge is (2, 3): only its endpoints are boundary
        assert_eq!(boundary_nodes(&g, &p), vec![2, 3]);
    }

    use crate::graph::Graph;
}
