//! Size-capped graph partitioning for the QAOA² divide step.
//!
//! The paper partitions the input with greedy modularity and then — because
//! every sub-graph must fit on an `n`-qubit device — recursively re-divides
//! any community larger than the qubit budget. [`partition_with_cap`]
//! implements exactly that, with a balanced-bisection fallback for
//! communities that greedy modularity refuses to split (cliques, very dense
//! blobs, or merge graphs with non-positive total weight).

use crate::graph::{Graph, NodeId};
use crate::modularity::greedy_modularity_communities;

/// A disjoint cover of the node set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    communities: Vec<Vec<NodeId>>,
    num_nodes: usize,
}

impl Partition {
    /// Wrap raw communities. Panics in debug builds if they are not a
    /// disjoint cover of `0..num_nodes`.
    pub fn new(num_nodes: usize, communities: Vec<Vec<NodeId>>) -> Self {
        let p = Partition { communities, num_nodes };
        debug_assert!(p.is_valid(), "communities must partition the node set");
        p
    }

    /// Communities as sorted node-id lists.
    pub fn communities(&self) -> &[Vec<NodeId>] {
        &self.communities
    }

    /// Number of communities.
    pub fn len(&self) -> usize {
        self.communities.len()
    }

    /// True when there are no communities (empty graph).
    pub fn is_empty(&self) -> bool {
        self.communities.is_empty()
    }

    /// Size of the largest community.
    pub fn max_community_size(&self) -> usize {
        self.communities.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// `assignment()[v]` = index of the community containing node `v`.
    pub fn assignment(&self) -> Vec<u32> {
        let mut a = vec![u32::MAX; self.num_nodes];
        for (c, members) in self.communities.iter().enumerate() {
            for &v in members {
                a[v as usize] = c as u32;
            }
        }
        a
    }

    /// Check the partition is a disjoint cover of the node set.
    pub fn is_valid(&self) -> bool {
        let mut seen = vec![false; self.num_nodes];
        for c in &self.communities {
            for &v in c {
                let Some(slot) = seen.get_mut(v as usize) else { return false };
                if *slot {
                    return false;
                }
                *slot = true;
            }
        }
        seen.iter().all(|&s| s)
    }
}

/// One sub-problem of the divide step: the induced sub-graph plus the
/// mapping from its local node ids back to the parent graph.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// Induced sub-graph with contiguous local ids.
    pub graph: Graph,
    /// `nodes[local] = global` id in the parent graph.
    pub nodes: Vec<NodeId>,
}

impl Subgraph {
    /// Number of local nodes (= qubits needed to solve it with QAOA).
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }
}

/// Extract the induced sub-graph of every community.
pub fn extract_subgraphs(g: &Graph, partition: &Partition) -> Vec<Subgraph> {
    partition
        .communities()
        .iter()
        .map(|c| {
            let (graph, nodes) = g.induced_subgraph(c);
            Subgraph { graph, nodes }
        })
        .collect()
}

/// Greedy-modularity partition with every community capped at `cap` nodes.
///
/// Mirrors the paper's procedure: CNM first; any oversized community is
/// re-partitioned recursively; if CNM cannot split a piece (single
/// community or no positive-ΔQ merge structure), fall back to balanced
/// bisection in node order, which always terminates.
pub fn partition_with_cap(g: &Graph, cap: usize) -> Partition {
    assert!(cap >= 1, "community cap must be at least 1");
    let mut result: Vec<Vec<NodeId>> = Vec::new();
    let initial = greedy_modularity_communities(g, 1);
    let mut work: Vec<Vec<NodeId>> = initial;
    while let Some(community) = work.pop() {
        if community.len() <= cap {
            result.push(community);
            continue;
        }
        let (sub, map) = g.induced_subgraph(&community);
        let split = greedy_modularity_communities(&sub, 2);
        let pieces: Vec<Vec<NodeId>> = if split.len() >= 2 {
            split
                .into_iter()
                .map(|c| c.into_iter().map(|local| map[local as usize]).collect())
                .collect()
        } else {
            bisect(&community)
        };
        work.extend(pieces);
    }
    result.sort_by(|x, y| y.len().cmp(&x.len()).then_with(|| x[0].cmp(&y[0])));
    Partition::new(g.num_nodes(), result)
}

/// Split a node list into two halves (node-id order). Used as the fallback
/// when modularity cannot find sub-structure.
fn bisect(nodes: &[NodeId]) -> Vec<Vec<NodeId>> {
    let mid = nodes.len() / 2;
    vec![nodes[..mid].to_vec(), nodes[mid..].to_vec()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{self, WeightKind};

    #[test]
    fn partition_respects_cap() {
        let g = generators::erdos_renyi(60, 0.15, WeightKind::Uniform, 3);
        for cap in [4, 8, 16] {
            let p = partition_with_cap(&g, cap);
            assert!(
                p.max_community_size() <= cap,
                "cap {cap} violated: {}",
                p.max_community_size()
            );
            assert!(p.is_valid());
        }
    }

    #[test]
    fn partition_of_clique_uses_bisection() {
        let g = generators::complete(16);
        let p = partition_with_cap(&g, 5);
        assert!(p.max_community_size() <= 5);
        assert!(p.is_valid());
    }

    #[test]
    fn partition_cap_one_gives_singletons() {
        let g = generators::ring(7);
        let p = partition_with_cap(&g, 1);
        assert_eq!(p.len(), 7);
    }

    #[test]
    fn partition_preserves_planted_blocks_when_cap_allows() {
        let g = generators::planted_partition(4, 6, 0.9, 0.02, 8);
        let p = partition_with_cap(&g, 6);
        assert_eq!(p.len(), 4);
        for c in p.communities() {
            let block = c[0] / 6;
            assert!(c.iter().all(|&v| v / 6 == block));
        }
    }

    #[test]
    fn extract_subgraphs_preserves_edges() {
        let g = generators::barbell(4);
        let p = partition_with_cap(&g, 4);
        let subs = extract_subgraphs(&g, &p);
        // the two bells are K4: 6 edges each; bridge edge is inter-community
        let total_sub_edges: usize = subs.iter().map(|s| s.graph.num_edges()).sum();
        assert_eq!(total_sub_edges, 12);
    }

    #[test]
    fn assignment_roundtrip() {
        let g = generators::erdos_renyi(30, 0.2, WeightKind::Uniform, 5);
        let p = partition_with_cap(&g, 10);
        let a = p.assignment();
        for (c, members) in p.communities().iter().enumerate() {
            for &v in members {
                assert_eq!(a[v as usize], c as u32);
            }
        }
    }

    #[test]
    fn empty_graph_partition() {
        let g = Graph::new(0);
        let p = partition_with_cap(&g, 4);
        assert!(p.is_empty());
        assert!(p.is_valid());
    }

    #[test]
    fn invalid_partition_detected() {
        let p = Partition { communities: vec![vec![0, 1], vec![1]], num_nodes: 2 };
        assert!(!p.is_valid());
        let q = Partition { communities: vec![vec![0]], num_nodes: 2 };
        assert!(!q.is_valid());
    }

    use crate::graph::Graph;
}
