//! The snapshot-sweep **policy**, factored out of the parallel divide
//! path so that the runtime and the `qq-check` bounded model checker
//! execute the *same* decisions from the *same* code — exactly the way
//! `rayon::proto` shares the pool's scheduling policy with the pool
//! model checker (DESIGN.md §9.1, §11).
//!
//! Every parallel divide phase follows one design rule: **score in
//! parallel over frozen state, apply sequentially in node order**. The
//! load-bearing pieces of that rule live here as pure functions and
//! policy constants:
//!
//! * [`propose_label`] — the label-propagation scoring decision: given a
//!   node's home label and its incident `(label, |w|)` list, pick the
//!   strongest admissible pull (sorted-by-label run accumulation, the
//!   `1e-12` tolerance, smaller-label-id tie-break, strict improvement
//!   over the home pull). The parallel score phase evaluates this
//!   against the sweep-start snapshot of labels and sizes.
//! * [`commit_label`] — the sequential apply decision: re-check the
//!   target community's **live** size against the cap and commit only if
//!   it still fits. Two nodes proposing the same nearly-full target can
//!   therefore never overshoot the cap; the loser retries next sweep.
//! * [`SCORE_SOURCE`] / [`APPLY_ORDER`] / [`CAP_CHECK`] — the protocol
//!   constants the implementation is written against and the model
//!   checker reads as its defaults. The mutated variants exist so
//!   `qq-check model --protocol snapshot --mutate …` can demonstrate the
//!   checker catches each bug class; the runtime never executes them.
//! * [`score_chunks`] — the fixed node-range chunking every score phase
//!   fans out over: a pure function of `(n, grain)`, never of the thread
//!   count, so chunk boundaries — and every float accumulation order
//!   downstream — are identical at any `RAYON_NUM_THREADS`.
//!
//! Everything in this module is a pure function of its arguments: no
//! clocks, no randomness, no global state. That is what makes the model
//! checker's exploration exhaustive rather than probabilistic.

/// What the score phase reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreSource {
    /// Correct: scorers evaluate against the frozen sweep-start
    /// snapshot; the applier does not run until every scorer is done
    /// (the phase barrier), so no scorer can observe a partially-applied
    /// assignment.
    FrozenSnapshot,
    /// The canonical bug: proposals are committed while scoring is still
    /// in flight, so a scorer can read a half-applied assignment and the
    /// result depends on the schedule. Exists for
    /// `--mutate score-against-live`; the runtime never executes this.
    LiveAssignment,
}

/// The source the runtime implements (`label_propagation_snapshot` runs
/// a full parallel score phase before its apply loop; the model checker
/// reads this constant as its default).
pub const SCORE_SOURCE: ScoreSource = ScoreSource::FrozenSnapshot;

/// The order the sequential apply phase commits proposals in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOrder {
    /// Correct: ascending node id — the one order that is a pure
    /// function of the instance, independent of chunking and scheduling.
    AscendingId,
    /// The canonical bug: commit in arrival (or any other) order, which
    /// makes the winner of a cap contention a scheduling artifact.
    /// Exists for `--mutate unordered-apply`; the runtime never executes
    /// this.
    Unordered,
}

/// The order the runtime implements.
pub const APPLY_ORDER: ApplyOrder = ApplyOrder::AscendingId;

/// How the apply phase checks the cap before committing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapCheck {
    /// Correct: re-check against the **live** running sizes, so two
    /// proposals targeting the same nearly-full community cannot both
    /// land.
    LiveRecheck,
    /// The canonical bug: trust the frozen sweep-start sizes the scorer
    /// already checked — double-admission overshoots the cap. Exists for
    /// `--mutate stale-cap-commit`; the runtime never executes this.
    FrozenSizes,
}

/// The cap discipline the runtime implements.
pub const CAP_CHECK: CapCheck = CapCheck::LiveRecheck;

/// Pull-comparison tolerance shared by every label-propagation path: a
/// candidate must beat the incumbent by more than this to win, and ties
/// within it break to the smaller label id.
pub const PULL_TOLERANCE: f64 = 1e-12;

/// The label-propagation scoring decision for one node.
///
/// `incident` holds one `(label, |w|)` entry per incident edge (the
/// caller takes the absolute weight); it is sorted by label in place and
/// the per-label pulls accumulate over each sorted run left to right, so
/// the f64 addition order is a pure function of the multiset of entries
/// — never of chunking or thread count. Among labels other than `home`
/// whose community is below `cap` (by the sizes given — the *frozen*
/// snapshot in the parallel score phase), the strongest pull wins, ties
/// within [`PULL_TOLERANCE`] breaking to the smaller label id. Returns
/// the winning label only if its pull strictly beats the home pull by
/// more than the tolerance.
pub fn propose_label(
    home: u32,
    incident: &mut [(u32, f64)],
    size: &[usize],
    cap: usize,
) -> Option<u32> {
    incident.sort_by_key(|&(c, _)| c);
    let mut home_pull = 0.0f64;
    let mut best: Option<(f64, u32)> = None;
    let mut i = 0;
    while i < incident.len() {
        let c = incident[i].0;
        let mut pull = 0.0f64;
        while i < incident.len() && incident[i].0 == c {
            pull += incident[i].1;
            i += 1;
        }
        if c == home {
            home_pull = pull;
        } else if size[c as usize] < cap {
            let better = match best {
                None => true,
                Some((ba, bc)) => {
                    pull > ba + PULL_TOLERANCE || (pull >= ba - PULL_TOLERANCE && c < bc)
                }
            };
            if better {
                best = Some((pull, c));
            }
        }
    }
    match best {
        Some((pull, c)) if pull > home_pull + PULL_TOLERANCE => Some(c),
        _ => None,
    }
}

/// The sequential apply decision for one proposal: move node `v` to
/// label `c` iff `c`'s **live** size is still below the cap
/// ([`CapCheck::LiveRecheck`]). Returns whether the move was applied.
///
/// The caller commits proposals in ascending node id
/// ([`ApplyOrder::AscendingId`]); this function holds the other half of
/// the contract — a proposal whose target filled up earlier in the same
/// apply phase is dropped, and the node retries next sweep.
pub fn commit_label(v: usize, c: u32, label: &mut [u32], size: &mut [usize], cap: usize) -> bool {
    if size[c as usize] < cap {
        size[label[v] as usize] -= 1;
        size[c as usize] += 1;
        label[v] = c;
        true
    } else {
        false
    }
}

/// Fixed node-index ranges of `grain` nodes each — the chunk unit every
/// parallel score phase fans out over. Depending only on `(n, grain)`
/// (never the thread count) keeps chunk boundaries, and therefore every
/// float accumulation order downstream, identical at any
/// `RAYON_NUM_THREADS`. The model checker uses the same function with a
/// tiny grain to give each virtual scorer its node range.
pub fn score_chunks(n: usize, grain: usize) -> Vec<std::ops::Range<usize>> {
    assert!(grain > 0, "score chunks need a positive grain");
    (0..n.div_ceil(grain))
        .map(|i| {
            let lo = i * grain;
            lo..(lo + grain).min(n)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propose_prefers_strongest_admissible_pull() {
        // node's neighbors: 2.0 toward label 5, 1.0 toward label 3
        let mut inc = vec![(5u32, 2.0), (3u32, 1.0)];
        let size = vec![1usize; 8];
        assert_eq!(propose_label(0, &mut inc, &size, 4), Some(5));
    }

    #[test]
    fn propose_ties_break_to_smaller_label() {
        let mut inc = vec![(5u32, 1.5), (3u32, 1.5)];
        let size = vec![1usize; 8];
        assert_eq!(propose_label(0, &mut inc, &size, 4), Some(3));
    }

    #[test]
    fn propose_skips_full_communities() {
        let mut inc = vec![(5u32, 2.0), (3u32, 1.0)];
        let mut size = vec![1usize; 8];
        size[5] = 4; // full at cap 4
        assert_eq!(propose_label(0, &mut inc, &size, 4), Some(3));
    }

    #[test]
    fn propose_requires_strict_improvement_over_home() {
        let mut inc = vec![(0u32, 2.0), (5u32, 2.0)];
        let size = vec![1usize; 8];
        assert_eq!(propose_label(0, &mut inc, &size, 4), None, "equal pull must not move");
    }

    #[test]
    fn commit_rechecks_live_cap() {
        let mut label = vec![0u32, 1, 2];
        let mut size = vec![1usize, 1, 1];
        assert!(commit_label(0, 2, &mut label, &mut size, 2));
        assert_eq!((label[0], size[0], size[2]), (2, 0, 2));
        // second proposal for the now-full label 2 is dropped
        assert!(!commit_label(1, 2, &mut label, &mut size, 2));
        assert_eq!((label[1], size[1], size[2]), (1, 1, 2));
    }

    #[test]
    fn score_chunks_cover_exactly_once() {
        for n in [0usize, 1, 5, 17, 64] {
            for grain in [1usize, 3, 16, 100] {
                let chunks = score_chunks(n, grain);
                let mut covered = 0;
                let mut next = 0;
                for r in &chunks {
                    assert_eq!(r.start, next, "contiguous");
                    assert!(r.end <= n);
                    covered += r.len();
                    next = r.end;
                }
                assert_eq!(covered, n);
            }
        }
    }
}
