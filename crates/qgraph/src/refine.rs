//! Kernighan–Lin-style boundary refinement for partitions.
//!
//! A partition is only as good as the edge weight it keeps *inside*
//! communities: everything crossing the boundary is deferred to the
//! QAOA² merge stage, which can only repair it at community
//! granularity. [`refine_partition`] runs a greedy node-migration
//! sweep in the KL/FM tradition: every boundary node is considered for
//! moving to a neighboring community, the move that most reduces the
//! total **absolute** inter-community edge weight is applied, gains
//! are updated incrementally, and sweeps repeat until no improving
//! move exists or the pass budget is exhausted. Absolute rather than
//! signed weight because QAOA² refines at every recursion level and
//! merge graphs carry negative weights: a strong coupling is worth
//! keeping inside a community whatever its sign (the local solver can
//! exploit it directly; crossing the boundary defers it to the coarse
//! solve), and minimizing the signed sum would *reward* pushing heavy
//! negative edges across the boundary.
//!
//! Invariants (property-tested in `tests/properties.rs`):
//!
//! * the inter-community weight never increases — only strictly
//!   improving moves are applied;
//! * the community cap is never violated — a move into a full
//!   community is inadmissible;
//! * the result is always a valid partition (communities emptied by
//!   migration are dropped).
//!
//! [`Refined`] packages the sweep as a [`Partitioner`] wrapper so any
//! strategy — including external ones — composes with refinement, the
//! classic multilevel coarsen → refine pipeline being
//! `Refined::new(Multilevel, passes)`.

use crate::graph::{Graph, NodeId};
use crate::partition::Partition;
use crate::partitioner::{PartitionError, Partitioner};

/// What a refinement sweep did.
#[derive(Debug, Clone)]
pub struct RefineOutcome {
    /// The refined partition (empty communities dropped).
    pub partition: Partition,
    /// Number of node migrations applied.
    pub moves: usize,
    /// Total absolute inter-community edge weight before refinement.
    pub inter_weight_before: f64,
    /// Total absolute inter-community edge weight after refinement
    /// (`≤ inter_weight_before` always).
    pub inter_weight_after: f64,
}

/// Migrate boundary nodes between communities to reduce the total
/// absolute inter-community edge weight, holding every community to `cap`
/// nodes. Runs at most `max_passes` sweeps (a pass visits every node
/// once, in ascending id order); passes stop early once a full sweep
/// applies no move. Deterministic: fixed visit order, ties broken
/// toward the smaller community index.
pub fn refine_partition(
    g: &Graph,
    partition: &Partition,
    cap: usize,
    max_passes: usize,
) -> RefineOutcome {
    let n = g.num_nodes();
    let mut comm: Vec<u32> = partition.assignment();
    let k = partition.len();
    let mut sizes: Vec<usize> = partition.communities().iter().map(Vec::len).collect();
    let inter_weight_before = inter_weight(g, &comm);
    let mut inter = inter_weight_before;
    let mut moves = 0usize;

    // scratch: per-community incident weight of the node under
    // consideration, rebuilt from its neighbor list each visit (degrees
    // are small; a dense k-vector with a touched-list stays O(deg))
    let mut link = vec![0.0f64; k];
    let mut touched: Vec<u32> = Vec::new();

    for _ in 0..max_passes {
        let mut moved_this_pass = false;
        for v in 0..n as NodeId {
            let home = comm[v as usize];
            touched.clear();
            for &(u, w) in g.neighbors(v) {
                let c = comm[u as usize];
                if link[c as usize] == 0.0 && !touched.contains(&c) {
                    touched.push(c);
                }
                link[c as usize] += w.abs();
            }
            // only boundary nodes (≥ 1 neighbor elsewhere) can gain
            let mut best: Option<(f64, u32)> = None;
            for &c in &touched {
                if c == home || sizes[c as usize] >= cap {
                    continue;
                }
                // moving v home→c: edges to home become inter (+link[home]),
                // edges to c become intra (−link[c])
                let delta = link[home as usize] - link[c as usize];
                let better = match best {
                    None => delta < -1e-12,
                    Some((bd, bc)) => delta < bd - 1e-12 || (delta <= bd + 1e-12 && c < bc),
                };
                if better && delta < -1e-12 {
                    best = Some((delta, c));
                }
            }
            if let Some((delta, target)) = best {
                sizes[home as usize] -= 1;
                sizes[target as usize] += 1;
                comm[v as usize] = target;
                inter += delta;
                moves += 1;
                moved_this_pass = true;
            }
            for &c in &touched {
                link[c as usize] = 0.0;
            }
        }
        if !moved_this_pass {
            break;
        }
    }

    // rebuild communities in their original index order, dropping any
    // emptied by migration
    let mut communities: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for v in 0..n as NodeId {
        communities[comm[v as usize] as usize].push(v);
    }
    communities.retain(|c| !c.is_empty());
    RefineOutcome {
        partition: Partition::new(n, communities),
        moves,
        inter_weight_before,
        inter_weight_after: inter,
    }
}

/// Total absolute weight of edges whose endpoints live in different
/// communities of `assignment`.
fn inter_weight(g: &Graph, assignment: &[u32]) -> f64 {
    g.edges()
        .iter()
        .filter(|e| assignment[e.u as usize] != assignment[e.v as usize])
        .map(|e| e.w.abs())
        .sum()
}

/// A [`Partitioner`] wrapper adding a refinement sweep to any inner
/// strategy: `Refined::new(Multilevel, 2)` is the multilevel
/// coarsen-then-refine pipeline, `Refined::new(GreedyModularity, 2)`
/// polishes the paper's CNM divide.
#[derive(Debug, Clone)]
pub struct Refined<P> {
    inner: P,
    passes: usize,
    label: String,
}

impl<P: Partitioner> Refined<P> {
    /// Wrap `inner`, refining its output with up to `passes` sweeps.
    pub fn new(inner: P, passes: usize) -> Self {
        let label = format!("refined-{}", inner.label());
        Refined { inner, passes, label }
    }
}

impl<P: Partitioner> Partitioner for Refined<P> {
    /// `refined-<inner label>`, so benches and reports can still
    /// attribute results to the underlying strategy.
    fn label(&self) -> &str {
        &self.label
    }

    fn partition(&self, g: &Graph, cap: usize) -> Result<Partition, PartitionError> {
        let base = self.inner.partition(g, cap)?;
        Ok(refine_partition(g, &base, cap, self.passes).partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{self, WeightKind};
    use crate::partitioner::{BalancedChunks, GreedyModularity, Multilevel};

    #[test]
    fn refinement_never_increases_inter_weight() {
        for seed in 0..6 {
            let g = generators::erdos_renyi(40, 0.15, WeightKind::Random01, seed);
            let base = BalancedChunks.partition(&g, 8).unwrap();
            let out = refine_partition(&g, &base, 8, 4);
            assert!(out.inter_weight_after <= out.inter_weight_before + 1e-9, "seed {seed}");
            // the reported delta matches a from-scratch recomputation
            let recomputed = inter_weight(&g, &out.partition.assignment());
            assert!((recomputed - out.inter_weight_after).abs() < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn refinement_respects_cap_and_validity() {
        for seed in 0..6 {
            let g = generators::erdos_renyi(36, 0.2, WeightKind::Uniform, 100 + seed);
            let base = BalancedChunks.partition(&g, 6).unwrap();
            let out = refine_partition(&g, &base, 6, 8);
            assert!(out.partition.is_valid(), "seed {seed}");
            assert!(out.partition.max_community_size() <= 6, "seed {seed}");
        }
    }

    #[test]
    fn refinement_repairs_an_adversarial_split() {
        // planted blocks deliberately rotated across community
        // boundaries, with slack under the cap so moves are admissible:
        // refinement must claw back trapped weight
        let g = generators::planted_partition(4, 6, 0.95, 0.02, 3);
        let rotated: Vec<Vec<crate::NodeId>> = (0..4)
            .map(|c| (0..6).map(|i| ((c * 6 + 3 + i) % 24) as crate::NodeId).collect())
            .collect();
        let base = Partition::try_new(24, rotated).unwrap();
        let out = refine_partition(&g, &base, 8, 10);
        assert!(
            out.inter_weight_after < out.inter_weight_before,
            "no improvement on a repairable instance"
        );
        assert!(out.moves > 0);
    }

    #[test]
    fn refined_wrapper_composes_with_any_strategy() {
        let g = generators::erdos_renyi(44, 0.12, WeightKind::Random01, 9);
        for cap in [6, 11] {
            for p in [
                Box::new(Refined::new(GreedyModularity, 2)) as Box<dyn Partitioner>,
                Box::new(Refined::new(Multilevel, 2)),
                Box::new(Refined::new(BalancedChunks, 2)),
            ] {
                let refined = p.partition(&g, cap).unwrap();
                assert!(refined.is_valid());
                assert!(refined.max_community_size() <= cap);
            }
        }
    }

    #[test]
    fn zero_passes_is_identity() {
        let g = generators::erdos_renyi(30, 0.2, WeightKind::Uniform, 5);
        let base = GreedyModularity.partition(&g, 7).unwrap();
        let out = refine_partition(&g, &base, 7, 0);
        assert_eq!(out.partition, base);
        assert_eq!(out.moves, 0);
        assert_eq!(out.inter_weight_before, out.inter_weight_after);
    }

    #[test]
    fn emptied_communities_are_dropped() {
        // a singleton whose node strictly prefers its neighbor's
        // community: the move empties the singleton community
        let g = crate::graph::Graph::from_edges(3, [(0, 1, 5.0), (1, 2, 5.0)]).unwrap();
        let base = Partition::new(3, vec![vec![0], vec![1], vec![2]]);
        let out = refine_partition(&g, &base, 2, 4);
        assert!(out.partition.is_valid());
        assert!(out.partition.len() < 3);
        assert!(out.partition.communities().iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn negative_couplings_stay_inside_communities() {
        // QAOA² merge graphs carry negative weights. Node 1 couples to
        // its home community with −10 and to the other community with
        // +0.5: a *signed* objective would move it (delta −10.5), but
        // the absolute objective must keep the heavy coupling intra —
        // exporting |10| to the boundary is what the merge stage would
        // have to recover.
        let g =
            crate::graph::Graph::from_edges(4, [(0, 1, -10.0), (1, 2, 0.5), (2, 3, 1.0)]).unwrap();
        let base = Partition::new(4, vec![vec![0, 1], vec![2, 3]]);
        let out = refine_partition(&g, &base, 3, 4);
        let a = out.partition.assignment();
        assert_eq!(a[0], a[1], "the -10 coupling crossed the boundary");
        assert!(out.inter_weight_after <= out.inter_weight_before + 1e-12);
    }

    #[test]
    fn refined_labels_name_the_inner_strategy() {
        assert_eq!(Refined::new(Multilevel, 2).label(), "refined-multilevel");
        assert_eq!(Refined::new(GreedyModularity, 1).label(), "refined-greedy-modularity");
    }

    #[test]
    fn refinement_is_deterministic() {
        let g = generators::erdos_renyi(50, 0.12, WeightKind::Random01, 23);
        let base = BalancedChunks.partition(&g, 9).unwrap();
        let a = refine_partition(&g, &base, 9, 3);
        let b = refine_partition(&g, &base, 9, 3);
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.moves, b.moves);
    }
}
