//! Kernighan–Lin-style boundary refinement for partitions.
//!
//! A partition is only as good as the edge weight it keeps *inside*
//! communities: everything crossing the boundary is deferred to the
//! QAOA² merge stage, which can only repair it at community
//! granularity. [`refine_partition`] runs a greedy node-migration
//! sweep in the KL/FM tradition: every boundary node is considered for
//! moving to a neighboring community, the move that most reduces the
//! total **absolute** inter-community edge weight is applied, gains
//! are updated incrementally, and sweeps repeat until no improving
//! move exists or the pass budget is exhausted. Absolute rather than
//! signed weight because QAOA² refines at every recursion level and
//! merge graphs carry negative weights: a strong coupling is worth
//! keeping inside a community whatever its sign (the local solver can
//! exploit it directly; crossing the boundary defers it to the coarse
//! solve), and minimizing the signed sum would *reward* pushing heavy
//! negative edges across the boundary.
//!
//! Migration alone has a blind spot: a partition whose communities are
//! all *at the cap* admits no migration at all (every target is full),
//! however much weight is trapped on the boundary. The
//! Fiduccia–Mattheyses-style **swap** sweep
//! ([`RefineOptions::swap_moves`]) covers it by exchanging a pair of
//! nodes between two communities — sizes are preserved, so fully
//! packed partitions stay refinable.
//!
//! Invariants (property-tested in `tests/properties.rs`):
//!
//! * the inter-community weight never increases — only strictly
//!   improving moves are applied;
//! * the community cap is never violated — a move into a full
//!   community is inadmissible, and swaps preserve sizes;
//! * the result is always a valid partition (communities emptied by
//!   migration are dropped).
//!
//! [`Refined`] packages the sweep as a [`Partitioner`] wrapper so any
//! strategy — including external ones — composes with refinement, the
//! classic multilevel coarsen → refine pipeline being
//! `Refined::new(Multilevel, passes)`.

use crate::graph::{Graph, NodeId};
use crate::partition::Partition;
use crate::partitioner::{PartitionError, Partitioner};

/// What a refinement sweep did.
#[derive(Debug, Clone)]
pub struct RefineOutcome {
    /// The refined partition (empty communities dropped).
    pub partition: Partition,
    /// Number of node migrations applied.
    pub moves: usize,
    /// Number of FM pair swaps applied (0 when
    /// [`RefineOptions::swap_moves`] is off).
    pub swaps: usize,
    /// Total absolute inter-community edge weight before refinement.
    pub inter_weight_before: f64,
    /// Total absolute inter-community edge weight after refinement
    /// (`≤ inter_weight_before` always).
    pub inter_weight_after: f64,
}

/// How a refinement run behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineOptions {
    /// Sweep budget: a pass visits every node once in ascending id
    /// order; passes stop early once a full pass changes nothing.
    pub max_passes: usize,
    /// After each migration sweep, also run an FM-style **swap** sweep:
    /// exchange a boundary node with the best strictly-improving
    /// partner in an adjacent community. Swaps preserve community
    /// sizes, so they improve fully-packed (at-cap) partitions that
    /// migration alone cannot touch.
    pub swap_moves: bool,
}

impl RefineOptions {
    /// Migration-only refinement with `max_passes` sweeps (the
    /// behaviour of [`refine_partition`]).
    pub fn migration_only(max_passes: usize) -> Self {
        RefineOptions { max_passes, swap_moves: false }
    }

    /// Migration + FM swap sweeps with `max_passes` passes.
    pub fn with_swaps(max_passes: usize) -> Self {
        RefineOptions { max_passes, swap_moves: true }
    }
}

/// Migrate boundary nodes between communities to reduce the total
/// absolute inter-community edge weight, holding every community to `cap`
/// nodes. Runs at most `max_passes` sweeps (a pass visits every node
/// once, in ascending id order); passes stop early once a full sweep
/// applies no move. Deterministic: fixed visit order, ties broken
/// toward the smaller community index.
///
/// Equivalent to [`refine_partition_with`] at
/// [`RefineOptions::migration_only`].
pub fn refine_partition(
    g: &Graph,
    partition: &Partition,
    cap: usize,
    max_passes: usize,
) -> RefineOutcome {
    refine_partition_with(g, partition, cap, RefineOptions::migration_only(max_passes))
}

/// [`refine_partition`] with explicit [`RefineOptions`]: each pass runs
/// the migration sweep and, when `swap_moves` is set, an FM-style swap
/// sweep over the same node order. Passes stop early once a full pass
/// neither migrates nor swaps.
pub fn refine_partition_with(
    g: &Graph,
    partition: &Partition,
    cap: usize,
    opts: RefineOptions,
) -> RefineOutcome {
    if g.num_nodes() > crate::auto::LARGE_INSTANCE_NODES
        || g.num_edges() > crate::auto::LARGE_INSTANCE_EDGES
    {
        return refine_partition_snapshot_with(g, partition, cap, opts);
    }
    let n = g.num_nodes();
    let mut comm: Vec<u32> = partition.assignment();
    let k = partition.len();
    let mut sizes: Vec<usize> = partition.communities().iter().map(Vec::len).collect();
    let inter_weight_before = inter_weight(g, &comm);
    let mut inter = inter_weight_before;
    let mut moves = 0usize;
    let mut swaps = 0usize;

    // scratch: per-community incident weight of the node under
    // consideration, rebuilt from its neighbor list each visit (degrees
    // are small; a dense k-vector with a touched-list stays O(deg))
    let mut link = vec![0.0f64; k];
    let mut touched: Vec<u32> = Vec::new();

    for _ in 0..opts.max_passes {
        let mut moved_this_pass = false;
        for v in 0..n as NodeId {
            if migrate_visit(g, v, &mut comm, &mut sizes, cap, &mut inter, &mut link, &mut touched)
            {
                moves += 1;
                moved_this_pass = true;
            }
        }
        if opts.swap_moves {
            let swapped = swap_sweep(g, &mut comm, &sizes, &mut inter);
            swaps += swapped;
            moved_this_pass |= swapped > 0;
        }
        if !moved_this_pass {
            break;
        }
    }

    finish_refine(n, k, comm, moves, swaps, inter_weight_before, inter)
}

/// Two-phase refinement for instances above the large-instance gate —
/// the pool-parallel replacement [`refine_partition_with`] dispatches
/// to, public (but hidden) so the property battery can pin its
/// parallel-vs-sequential bit-identity on small zoo graphs too.
///
/// Each pass splits every sweep into **score** and **apply** phases:
///
/// * **Score (parallel).** Every boundary node evaluates its best
///   migration (or swap partner) against a *frozen* snapshot of the
///   assignment and community sizes from the start of the sweep, over
///   fixed node-range chunks, and the strictly-improving candidates are
///   collected in ascending node order.
/// * **Apply (sequential).** Each flagged node re-evaluates its move
///   against the *live* state — the exact per-node visit the sequential
///   sweep runs — and applies it only if it still strictly improves.
///   Live re-evaluation keeps the running `inter` balance exact, so the
///   never-increases invariant holds by construction; its cost is
///   bounded by the (typically small) flagged set, not by `n`.
///
/// The apply order stays sequential because cap accounting and the
/// swap member-list surgery are running state: parallel commits would
/// make the winner of two conflicting moves a scheduling artifact. A
/// node the frozen scan missed (one whose move only becomes improving
/// after an earlier move in the same pass) is picked up by the next
/// pass's scan instead of the same pass — which is why this path only
/// replaces the sequential sweep above the gate, where cascades are
/// rare and the `O(n)` scoring dominates.
#[doc(hidden)]
pub fn refine_partition_snapshot_with(
    g: &Graph,
    partition: &Partition,
    cap: usize,
    opts: RefineOptions,
) -> RefineOutcome {
    let n = g.num_nodes();
    let mut comm: Vec<u32> = partition.assignment();
    let k = partition.len();
    let mut sizes: Vec<usize> = partition.communities().iter().map(Vec::len).collect();
    let inter_weight_before = inter_weight(g, &comm);
    let mut inter = inter_weight_before;
    let mut moves = 0usize;
    let mut swaps = 0usize;
    let mut link = vec![0.0f64; k];
    let mut touched: Vec<u32> = Vec::new();

    for _ in 0..opts.max_passes {
        let mut moved_this_pass = false;
        for v in flag_migrations(g, &comm, &sizes, cap) {
            if migrate_visit(g, v, &mut comm, &mut sizes, cap, &mut inter, &mut link, &mut touched)
            {
                moves += 1;
                moved_this_pass = true;
            }
        }
        if opts.swap_moves {
            let swapped = swap_sweep_snapshot(g, &mut comm, &sizes, &mut inter);
            swaps += swapped;
            moved_this_pass |= swapped > 0;
        }
        if !moved_this_pass {
            break;
        }
    }

    finish_refine(n, k, comm, moves, swaps, inter_weight_before, inter)
}

/// Parallel score phase of the migration sweep: boundary nodes whose
/// best move strictly improves the *frozen* assignment, in ascending
/// node order. Pulls accumulate over the neighbor list stable-sorted by
/// community, over fixed node-range chunks — bit-identical at any
/// thread count.
fn flag_migrations(g: &Graph, comm: &[u32], sizes: &[usize], cap: usize) -> Vec<NodeId> {
    use rayon::prelude::*;
    // REDUCTION: fixed node_ranges(n) chunks; per-node pulls accumulate
    // over label-sorted runs inside each chunk and the collect is keyed
    // by chunk index, so the f64 order is schedule-independent.
    crate::partitioner::node_ranges(g.num_nodes())
        .into_par_iter()
        .with_min_len(1)
        .map(|r| {
            let mut buf: Vec<(u32, f64)> = Vec::new();
            let mut runs: Vec<(u32, f64)> = Vec::new();
            let mut flagged: Vec<NodeId> = Vec::new();
            for v in r {
                let home = comm[v];
                buf.clear();
                for &(u, w) in g.neighbors(v as NodeId) {
                    buf.push((comm[u as usize], w.abs()));
                }
                buf.sort_by_key(|&(c, _)| c);
                runs.clear();
                let mut i = 0;
                while i < buf.len() {
                    let c = buf[i].0;
                    let mut pull = 0.0f64;
                    while i < buf.len() && buf[i].0 == c {
                        pull += buf[i].1;
                        i += 1;
                    }
                    runs.push((c, pull));
                }
                let home_pull =
                    runs.iter().find(|&&(c, _)| c == home).map_or(0.0, |&(_, pull)| pull);
                let improves = runs.iter().any(|&(c, pull)| {
                    c != home && sizes[c as usize] < cap && home_pull - pull < -1e-12
                });
                if improves {
                    flagged.push(v as NodeId);
                }
            }
            flagged
        })
        .collect::<Vec<_>>()
        .into_iter()
        .flatten()
        .collect()
}

/// One live migration visit of node `v` — the sequential sweep's exact
/// per-node body, shared by the sequential path and the snapshot path's
/// apply phase. Returns whether a move was applied.
#[allow(clippy::too_many_arguments)]
fn migrate_visit(
    g: &Graph,
    v: NodeId,
    comm: &mut [u32],
    sizes: &mut [usize],
    cap: usize,
    inter: &mut f64,
    link: &mut [f64],
    touched: &mut Vec<u32>,
) -> bool {
    let home = comm[v as usize];
    touched.clear();
    for &(u, w) in g.neighbors(v) {
        let c = comm[u as usize];
        if link[c as usize] == 0.0 && !touched.contains(&c) {
            touched.push(c);
        }
        link[c as usize] += w.abs();
    }
    // only boundary nodes (≥ 1 neighbor elsewhere) can gain
    let mut best: Option<(f64, u32)> = None;
    for &c in touched.iter() {
        if c == home || sizes[c as usize] >= cap {
            continue;
        }
        // moving v home→c: edges to home become inter (+link[home]),
        // edges to c become intra (−link[c])
        let delta = link[home as usize] - link[c as usize];
        let better = match best {
            None => delta < -1e-12,
            Some((bd, bc)) => delta < bd - 1e-12 || (delta <= bd + 1e-12 && c < bc),
        };
        if better && delta < -1e-12 {
            best = Some((delta, c));
        }
    }
    let moved = if let Some((delta, target)) = best {
        sizes[home as usize] -= 1;
        sizes[target as usize] += 1;
        comm[v as usize] = target;
        *inter += delta;
        true
    } else {
        false
    };
    for &c in touched.iter() {
        link[c as usize] = 0.0;
    }
    moved
}

/// Shared tail of both refinement paths: rebuild communities in their
/// original index order, dropping any emptied by migration.
fn finish_refine(
    n: usize,
    k: usize,
    comm: Vec<u32>,
    moves: usize,
    swaps: usize,
    inter_weight_before: f64,
    inter_weight_after: f64,
) -> RefineOutcome {
    let mut communities: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for v in 0..n as NodeId {
        communities[comm[v as usize] as usize].push(v);
    }
    communities.retain(|c| !c.is_empty());
    RefineOutcome {
        partition: Partition::new(n, communities),
        moves,
        swaps,
        inter_weight_before,
        inter_weight_after,
    }
}

/// One FM-style swap sweep: every node `v` (ascending id) is offered
/// the best strictly-improving exchange with a partner in an adjacent
/// community. Sizes are untouched, so at-cap communities — where
/// migration is inadmissible by definition — stay refinable.
///
/// For `v ∈ A` and partner `u ∈ B`, swapping changes the total
/// absolute inter weight by
///
/// ```text
/// Δ = (link_v[A] − link_v[B]) + (link_u[B] − link_u[A]) + 2|w_vu|
/// ```
///
/// — the two single-move deltas, corrected for the `(v, u)` edge which
/// both deltas double-count as becoming intra when it in fact stays
/// inter. Only `Δ < 0` swaps are applied; ties break to the smaller
/// (community, partner) pair, keeping the sweep deterministic.
///
/// Returns the number of swaps applied. `O(Σ_v Σ_{u ∈ adj comms} deg(u))`
/// worst case — quadratic-ish, but refinement runs on level graphs
/// whose size the solve itself already bounds.
fn swap_sweep(g: &Graph, comm: &mut [u32], sizes: &[usize], inter: &mut f64) -> usize {
    let n = comm.len();
    let k = sizes.len();
    let mut swaps = 0usize;
    // member lists, rebuilt once per sweep and maintained across swaps
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for v in 0..n as NodeId {
        members[comm[v as usize] as usize].push(v);
    }
    let mut scratch = SwapScratch::new(k);
    for v in 0..n as NodeId {
        if swap_visit(g, v, comm, &mut members, inter, &mut scratch) {
            swaps += 1;
        }
    }
    swaps
}

/// Two-phase variant of [`swap_sweep`] used by the snapshot refinement
/// path: a parallel score phase flags every node with a strictly
/// improving swap against the *frozen* sweep-start assignment, then the
/// flagged nodes re-evaluate and apply against live state in ascending
/// node order (the exact [`swap_visit`] the sequential sweep runs).
/// The frozen scorer accumulates per-community pulls over sorted runs
/// instead of a dense `k`-vector, so the parallel chunks carry no
/// `O(k)` scratch.
fn swap_sweep_snapshot(g: &Graph, comm: &mut [u32], sizes: &[usize], inter: &mut f64) -> usize {
    use rayon::prelude::*;
    let n = comm.len();
    let k = sizes.len();
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for v in 0..n as NodeId {
        members[comm[v as usize] as usize].push(v);
    }
    let frozen: &[u32] = comm;
    let members_ref = &members;
    // REDUCTION: fixed node_ranges(n) chunks with an index-keyed collect
    // — identical chunk boundaries (hence f64 order) at any thread count.
    let flagged: Vec<NodeId> = crate::partitioner::node_ranges(n)
        .into_par_iter()
        .with_min_len(1)
        .map(|r| {
            let mut buf: Vec<(u32, f64)> = Vec::new();
            let mut runs: Vec<(u32, f64)> = Vec::new();
            let mut flagged: Vec<NodeId> = Vec::new();
            for v in r {
                let home = frozen[v];
                buf.clear();
                for &(u, w) in g.neighbors(v as NodeId) {
                    buf.push((frozen[u as usize], w.abs()));
                }
                buf.sort_by_key(|&(c, _)| c);
                runs.clear();
                let mut i = 0;
                while i < buf.len() {
                    let c = buf[i].0;
                    let mut pull = 0.0f64;
                    while i < buf.len() && buf[i].0 == c {
                        pull += buf[i].1;
                        i += 1;
                    }
                    runs.push((c, pull));
                }
                let home_pull =
                    runs.iter().find(|&&(c, _)| c == home).map_or(0.0, |&(_, pull)| pull);
                let improves = runs.iter().any(|&(c, link_c)| {
                    if c == home {
                        return false;
                    }
                    let mig_v = home_pull - link_c;
                    members_ref[c as usize].iter().any(|&u| {
                        let (mut lc, mut lh, mut w_vu) = (0.0f64, 0.0f64, 0.0f64);
                        for &(x, w) in g.neighbors(u) {
                            if x == v as NodeId {
                                w_vu = w.abs();
                            }
                            let cx = frozen[x as usize];
                            if cx == c {
                                lc += w.abs();
                            } else if cx == home {
                                lh += w.abs();
                            }
                        }
                        mig_v + (lc - lh) + 2.0 * w_vu < -1e-12
                    })
                });
                if improves {
                    flagged.push(v as NodeId);
                }
            }
            flagged
        })
        .collect::<Vec<_>>()
        .into_iter()
        .flatten()
        .collect();
    let mut swaps = 0usize;
    let mut scratch = SwapScratch::new(k);
    for v in flagged {
        if swap_visit(g, v, comm, &mut members, inter, &mut scratch) {
            swaps += 1;
        }
    }
    swaps
}

/// Dense per-community scratch for the live swap visit.
struct SwapScratch {
    link: Vec<f64>,
    touched: Vec<u32>,
    partner_link: Vec<f64>,
    partner_touched: Vec<u32>,
}

impl SwapScratch {
    fn new(k: usize) -> Self {
        SwapScratch {
            link: vec![0.0f64; k],
            touched: Vec::new(),
            partner_link: vec![0.0f64; k],
            partner_touched: Vec::new(),
        }
    }
}

/// One live swap visit of node `v` — the sequential sweep's exact
/// per-node body, shared by [`swap_sweep`] and the snapshot path's
/// apply phase. Maintains `comm` and the member lists across applied
/// swaps; returns whether a swap was applied.
fn swap_visit(
    g: &Graph,
    v: NodeId,
    comm: &mut [u32],
    members: &mut [Vec<NodeId>],
    inter: &mut f64,
    scratch: &mut SwapScratch,
) -> bool {
    let SwapScratch { link, touched, partner_link, partner_touched } = scratch;
    let home = comm[v as usize];
    touched.clear();
    for &(u, w) in g.neighbors(v) {
        let c = comm[u as usize];
        if link[c as usize] == 0.0 && !touched.contains(&c) {
            touched.push(c);
        }
        link[c as usize] += w.abs();
    }
    let mut best: Option<(f64, u32, NodeId)> = None;
    for &c in touched.iter() {
        if c == home {
            continue;
        }
        let mig_v = link[home as usize] - link[c as usize];
        for &u in &members[c as usize] {
            partner_touched.clear();
            let mut w_vu = 0.0f64;
            for &(x, w) in g.neighbors(u) {
                if x == v {
                    w_vu = w.abs();
                }
                let cx = comm[x as usize];
                if partner_link[cx as usize] == 0.0 && !partner_touched.contains(&cx) {
                    partner_touched.push(cx);
                }
                partner_link[cx as usize] += w.abs();
            }
            let mig_u = partner_link[c as usize] - partner_link[home as usize];
            let delta = mig_v + mig_u + 2.0 * w_vu;
            for &cx in partner_touched.iter() {
                partner_link[cx as usize] = 0.0;
            }
            let better = match best {
                None => delta < -1e-12,
                Some((bd, bc, bu)) => {
                    delta < bd - 1e-12 || (delta <= bd + 1e-12 && (c, u) < (bc, bu))
                }
            };
            if better && delta < -1e-12 {
                best = Some((delta, c, u));
            }
        }
    }
    let swapped = if let Some((delta, target, partner)) = best {
        comm[v as usize] = target;
        comm[partner as usize] = home;
        // INVARIANT: `members` mirrors `comm` across swaps, so v is in
        // its home list and the partner in the target list.
        let vi = members[home as usize].iter().position(|&x| x == v).expect("v in home");
        members[home as usize][vi] = partner;
        let ui = members[target as usize].iter().position(|&x| x == partner).expect("u in target");
        members[target as usize][ui] = v;
        *inter += delta;
        true
    } else {
        false
    };
    for &c in touched.iter() {
        link[c as usize] = 0.0;
    }
    swapped
}

/// Total absolute weight of edges whose endpoints live in different
/// communities of `assignment`. A chunk-ordered parallel reduction:
/// per-chunk sums accumulate in edge order and combine in chunk order,
/// so the bits are identical at any thread count (and, for graphs under
/// one grain, identical to the plain sequential fold).
fn inter_weight(g: &Graph, assignment: &[u32]) -> f64 {
    use rayon::prelude::*;
    // REDUCTION: fixed par_chunks(DEFAULT_GRAIN) over the edge list;
    // per-chunk sums run left to right and combine in chunk-index order.
    g.edges()
        .par_chunks(rayon::DEFAULT_GRAIN)
        .map(|chunk| {
            chunk
                .iter()
                .filter(|e| assignment[e.u as usize] != assignment[e.v as usize])
                .map(|e| e.w.abs())
                .sum::<f64>()
        })
        .reduce(|| 0.0, |a, b| a + b)
}

/// A [`Partitioner`] wrapper adding a refinement sweep to any inner
/// strategy: `Refined::new(Multilevel, 2)` is the multilevel
/// coarsen-then-refine pipeline, `Refined::new(GreedyModularity, 2)`
/// polishes the paper's CNM divide.
#[derive(Debug, Clone)]
pub struct Refined<P> {
    inner: P,
    opts: RefineOptions,
    label: String,
}

impl<P: Partitioner> Refined<P> {
    /// Wrap `inner`, refining its output with up to `passes`
    /// migration-only sweeps.
    pub fn new(inner: P, passes: usize) -> Self {
        Refined::with_options(inner, RefineOptions::migration_only(passes))
    }

    /// Wrap `inner` with explicit [`RefineOptions`] (e.g.
    /// [`RefineOptions::with_swaps`] so at-cap partitions stay
    /// refinable).
    pub fn with_options(inner: P, opts: RefineOptions) -> Self {
        let label = format!("refined-{}", inner.label());
        Refined { inner, opts, label }
    }
}

impl<P: Partitioner> Partitioner for Refined<P> {
    /// `refined-<inner label>`, so benches and reports can still
    /// attribute results to the underlying strategy.
    fn label(&self) -> &str {
        &self.label
    }

    fn partition(&self, g: &Graph, cap: usize) -> Result<Partition, PartitionError> {
        let base = self.inner.partition(g, cap)?;
        Ok(refine_partition_with(g, &base, cap, self.opts).partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{self, WeightKind};
    use crate::partitioner::{BalancedChunks, GreedyModularity, Multilevel};

    #[test]
    fn refinement_never_increases_inter_weight() {
        for seed in 0..6 {
            let g = generators::erdos_renyi(40, 0.15, WeightKind::Random01, seed);
            let base = BalancedChunks.partition(&g, 8).unwrap();
            let out = refine_partition(&g, &base, 8, 4);
            assert!(out.inter_weight_after <= out.inter_weight_before + 1e-9, "seed {seed}");
            // the reported delta matches a from-scratch recomputation
            let recomputed = inter_weight(&g, &out.partition.assignment());
            assert!((recomputed - out.inter_weight_after).abs() < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn refinement_respects_cap_and_validity() {
        for seed in 0..6 {
            let g = generators::erdos_renyi(36, 0.2, WeightKind::Uniform, 100 + seed);
            let base = BalancedChunks.partition(&g, 6).unwrap();
            let out = refine_partition(&g, &base, 6, 8);
            assert!(out.partition.is_valid(), "seed {seed}");
            assert!(out.partition.max_community_size() <= 6, "seed {seed}");
        }
    }

    #[test]
    fn refinement_repairs_an_adversarial_split() {
        // planted blocks deliberately rotated across community
        // boundaries, with slack under the cap so moves are admissible:
        // refinement must claw back trapped weight
        let g = generators::planted_partition(4, 6, 0.95, 0.02, 3);
        let rotated: Vec<Vec<crate::NodeId>> = (0..4)
            .map(|c| (0..6).map(|i| ((c * 6 + 3 + i) % 24) as crate::NodeId).collect())
            .collect();
        let base = Partition::try_new(24, rotated).unwrap();
        let out = refine_partition(&g, &base, 8, 10);
        assert!(
            out.inter_weight_after < out.inter_weight_before,
            "no improvement on a repairable instance"
        );
        assert!(out.moves > 0);
    }

    #[test]
    fn refined_wrapper_composes_with_any_strategy() {
        let g = generators::erdos_renyi(44, 0.12, WeightKind::Random01, 9);
        for cap in [6, 11] {
            for p in [
                Box::new(Refined::new(GreedyModularity, 2)) as Box<dyn Partitioner>,
                Box::new(Refined::new(Multilevel, 2)),
                Box::new(Refined::new(BalancedChunks, 2)),
            ] {
                let refined = p.partition(&g, cap).unwrap();
                assert!(refined.is_valid());
                assert!(refined.max_community_size() <= cap);
            }
        }
    }

    #[test]
    fn zero_passes_is_identity() {
        let g = generators::erdos_renyi(30, 0.2, WeightKind::Uniform, 5);
        let base = GreedyModularity.partition(&g, 7).unwrap();
        let out = refine_partition(&g, &base, 7, 0);
        assert_eq!(out.partition, base);
        assert_eq!(out.moves, 0);
        assert_eq!(out.inter_weight_before, out.inter_weight_after);
    }

    #[test]
    fn emptied_communities_are_dropped() {
        // a singleton whose node strictly prefers its neighbor's
        // community: the move empties the singleton community
        let g = crate::graph::Graph::from_edges(3, [(0, 1, 5.0), (1, 2, 5.0)]).unwrap();
        let base = Partition::new(3, vec![vec![0], vec![1], vec![2]]);
        let out = refine_partition(&g, &base, 2, 4);
        assert!(out.partition.is_valid());
        assert!(out.partition.len() < 3);
        assert!(out.partition.communities().iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn negative_couplings_stay_inside_communities() {
        // QAOA² merge graphs carry negative weights. Node 1 couples to
        // its home community with −10 and to the other community with
        // +0.5: a *signed* objective would move it (delta −10.5), but
        // the absolute objective must keep the heavy coupling intra —
        // exporting |10| to the boundary is what the merge stage would
        // have to recover.
        let g =
            crate::graph::Graph::from_edges(4, [(0, 1, -10.0), (1, 2, 0.5), (2, 3, 1.0)]).unwrap();
        let base = Partition::new(4, vec![vec![0, 1], vec![2, 3]]);
        let out = refine_partition(&g, &base, 3, 4);
        let a = out.partition.assignment();
        assert_eq!(a[0], a[1], "the -10 coupling crossed the boundary");
        assert!(out.inter_weight_after <= out.inter_weight_before + 1e-12);
    }

    #[test]
    fn at_cap_partition_is_a_noop_for_migration_only_refinement() {
        // optimal grouping is {0,2},{1,3}, but both communities of the
        // start partition are at cap 2: every migration target is full,
        // so migration-only refinement must change nothing at all
        let g =
            Graph::from_edges(4, [(0, 2, 10.0), (1, 3, 10.0), (0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let base = Partition::new(4, vec![vec![0, 1], vec![2, 3]]);
        let out = refine_partition(&g, &base, 2, 8);
        assert_eq!(out.partition, base, "migration moved a node into a full community");
        assert_eq!(out.moves, 0);
        assert_eq!(out.swaps, 0);
        assert_eq!(out.inter_weight_before, out.inter_weight_after);
    }

    #[test]
    fn fm_swaps_strictly_improve_the_at_cap_instance() {
        // same instance: swapping 1 ↔ 2 reaches the optimal grouping
        // while keeping both communities exactly at the cap
        let g =
            Graph::from_edges(4, [(0, 2, 10.0), (1, 3, 10.0), (0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let base = Partition::new(4, vec![vec![0, 1], vec![2, 3]]);
        let out = refine_partition_with(&g, &base, 2, RefineOptions::with_swaps(8));
        assert!(out.swaps > 0, "no swap applied on a swap-improvable instance");
        assert!(
            out.inter_weight_after < out.inter_weight_before - 1.0,
            "{} not strictly below {}",
            out.inter_weight_after,
            out.inter_weight_before
        );
        let a = out.partition.assignment();
        assert_eq!(a[0], a[2], "heavy pair (0,2) still split");
        assert_eq!(a[1], a[3], "heavy pair (1,3) still split");
        assert_eq!(out.partition.max_community_size(), 2, "swap changed community sizes");
        // the reported total matches a from-scratch recomputation
        let recomputed = inter_weight(&g, &a);
        assert!((recomputed - out.inter_weight_after).abs() < 1e-9);
    }

    #[test]
    fn swaps_with_adjacent_partners_count_the_shared_edge_once() {
        // v and its partner are adjacent: the naive sum of the two
        // migration deltas double-counts the shared edge as becoming
        // intra; the 2|w_vu| correction must keep the bookkeeping exact
        let g =
            Graph::from_edges(4, [(0, 1, 1.0), (2, 3, 1.0), (0, 2, 6.0), (1, 3, 6.0), (1, 2, 2.0)])
                .unwrap();
        let base = Partition::new(4, vec![vec![0, 1], vec![2, 3]]);
        let out = refine_partition_with(&g, &base, 2, RefineOptions::with_swaps(6));
        let recomputed = inter_weight(&g, &out.partition.assignment());
        assert!(
            (recomputed - out.inter_weight_after).abs() < 1e-9,
            "incremental {} vs recomputed {recomputed}",
            out.inter_weight_after
        );
        assert!(out.inter_weight_after <= out.inter_weight_before + 1e-12);
    }

    #[test]
    fn swap_refinement_holds_invariants_on_random_instances() {
        for seed in 0..8 {
            let g = generators::erdos_renyi(36, 0.18, WeightKind::Random01, 300 + seed);
            // chunks of exactly cap nodes: fully packed, migration inert
            let base = BalancedChunks.partition(&g, 6).unwrap();
            let migration = refine_partition(&g, &base, 6, 6);
            let swapped = refine_partition_with(&g, &base, 6, RefineOptions::with_swaps(6));
            assert!(swapped.partition.is_valid(), "seed {seed}");
            assert!(swapped.partition.max_community_size() <= 6, "seed {seed}");
            assert!(
                swapped.inter_weight_after <= migration.inter_weight_after + 1e-9,
                "seed {seed}: swaps lost to migration-only"
            );
            let recomputed = inter_weight(&g, &swapped.partition.assignment());
            assert!((recomputed - swapped.inter_weight_after).abs() < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn swap_refinement_is_deterministic() {
        let g = generators::erdos_renyi(44, 0.15, WeightKind::Random01, 77);
        let base = BalancedChunks.partition(&g, 8).unwrap();
        let a = refine_partition_with(&g, &base, 8, RefineOptions::with_swaps(4));
        let b = refine_partition_with(&g, &base, 8, RefineOptions::with_swaps(4));
        assert_eq!(a.partition, b.partition);
        assert_eq!((a.moves, a.swaps), (b.moves, b.swaps));
    }

    #[test]
    fn refined_labels_name_the_inner_strategy() {
        assert_eq!(Refined::new(Multilevel, 2).label(), "refined-multilevel");
        assert_eq!(Refined::new(GreedyModularity, 1).label(), "refined-greedy-modularity");
    }

    #[test]
    fn refinement_is_deterministic() {
        let g = generators::erdos_renyi(50, 0.12, WeightKind::Random01, 23);
        let base = BalancedChunks.partition(&g, 9).unwrap();
        let a = refine_partition(&g, &base, 9, 3);
        let b = refine_partition(&g, &base, 9, 3);
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.moves, b.moves);
    }
}
