//! The pluggable partition-strategy layer for the QAOA² divide step.
//!
//! The divide step controls QAOA² quality: every unit of edge weight
//! trapped *between* communities is exactly what the merge stage must
//! later recover on the coarse graph, so *how* a graph is split across
//! sub-circuits matters as much as how each sub-circuit is solved.
//! Mirroring the solver backend layer ([`crate::solver::MaxCutSolver`]),
//! dividing is therefore a trait, not a hard-coded function: every
//! strategy implements [`Partitioner`], and the orchestrator dispatches
//! through [`partition_for_divide`], which adds the uniform guards every
//! strategy needs (output validation, cap enforcement, and the
//! singleton-stall fallback that keeps the recursion contracting).
//!
//! Built-in strategies:
//!
//! * [`GreedyModularity`] — the paper's procedure (CNM communities,
//!   recursively re-divided to the cap); the default.
//! * [`BalancedChunks`] — node-order chunks of `cap` nodes: the
//!   structure-free baseline, and the fallback every other strategy
//!   degrades to when it cannot make progress.
//! * [`BfsGrow`] — breadth-first region growing from the lowest
//!   unassigned node id: connected, cache/locality-friendly communities
//!   without any modularity machinery.
//! * [`Multilevel`] — heavy-edge-matching coarsening in the METIS /
//!   multilevel tradition (Angone et al., arXiv:2309.08815): repeatedly
//!   contract the heaviest admissible matching until no merge fits the
//!   cap; the surviving super-nodes are the communities.
//! * [`LabelPropagation`] — deterministic, cap-aware label-propagation
//!   sweeps over **absolute** edge weights: robust on the
//!   negative-weight merge graphs the QAOA² recursion produces, where
//!   modularity and positive-edge matching stall to singletons.
//! * [`Spectral`] — recursive Fiedler-vector bisection via power
//!   iteration on the absolute-weight Laplacian (no external linear
//!   algebra); median splits guarantee contraction to the cap.
//!
//! Any of them (or an external [`Partitioner`]) can be wrapped in
//! [`crate::refine::Refined`] for a Kernighan–Lin/Fiduccia–Mattheyses
//! boundary pass that migrates (and optionally swaps) nodes between
//! communities to shrink the inter-community weight while respecting
//! the cap. Per-instance strategy selection lives in [`crate::auto`].

use crate::graph::{Graph, NodeId};
use crate::partition::Partition;
use crate::snapshot;
use std::fmt;

/// Why a partition could not be produced (or was rejected).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The community cap is zero — no node fits anywhere.
    InvalidCap,
    /// The returned communities are not a disjoint cover of the node
    /// set (duplicate, missing, or out-of-range node).
    InvalidPartition {
        /// What the validator found.
        reason: String,
    },
    /// A community exceeds the requested cap.
    CapExceeded {
        /// Size of the offending community.
        size: usize,
        /// The cap it violated.
        cap: usize,
    },
    /// A custom strategy failed for its own reasons.
    Backend(String),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::InvalidCap => write!(f, "community cap must be at least 1"),
            PartitionError::InvalidPartition { reason } => {
                write!(f, "communities do not partition the node set: {reason}")
            }
            PartitionError::CapExceeded { size, cap } => {
                write!(f, "community of {size} nodes exceeds the cap of {cap}")
            }
            PartitionError::Backend(m) => write!(f, "partitioner failed: {m}"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// A divide strategy: split `g` into communities of at most `cap` nodes.
///
/// Implementations must be deterministic (same graph + cap → same
/// partition) — partitioning sits upstream of every seeded solve, so a
/// nondeterministic divide would break the suite's reproducibility
/// contract. `Send + Sync` so orchestrators can share one strategy
/// across levels and worker threads.
///
/// Implementations should return a valid, cap-respecting partition, but
/// the orchestrator does not *trust* them to: outputs flow through
/// [`partition_for_divide`], which re-validates via
/// [`Partition::try_new`] and enforces the cap — essential for external
/// strategies plugged in through `qq_core::PartitionStrategy::Custom`.
pub trait Partitioner: Send + Sync {
    /// Short stable label for reports, benches, and CLI selection
    /// (e.g. `"greedy-modularity"`, `"multilevel"`).
    fn label(&self) -> &str;

    /// Split `g` into communities of at most `cap` nodes.
    fn partition(&self, g: &Graph, cap: usize) -> Result<Partition, PartitionError>;
}

/// Boxed, dynamically typed strategy handle.
pub type BoxedPartitioner = Box<dyn Partitioner>;

// Boxed and shared handles are themselves partitioners, mirroring the
// solver layer, so orchestration code accepts either without special
// cases.
impl Partitioner for BoxedPartitioner {
    fn label(&self) -> &str {
        self.as_ref().label()
    }

    fn partition(&self, g: &Graph, cap: usize) -> Result<Partition, PartitionError> {
        self.as_ref().partition(g, cap)
    }
}

impl Partitioner for std::sync::Arc<dyn Partitioner> {
    fn label(&self) -> &str {
        self.as_ref().label()
    }

    fn partition(&self, g: &Graph, cap: usize) -> Result<Partition, PartitionError> {
        self.as_ref().partition(g, cap)
    }
}

/// The paper's divide: CNM greedy modularity with oversized communities
/// recursively re-divided ([`crate::partition::partition_with_cap`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyModularity;

impl Partitioner for GreedyModularity {
    fn label(&self) -> &str {
        "greedy-modularity"
    }

    fn partition(&self, g: &Graph, cap: usize) -> Result<Partition, PartitionError> {
        if cap == 0 {
            return Err(PartitionError::InvalidCap);
        }
        Ok(crate::partition::partition_with_cap(g, cap))
    }
}

/// Node-order chunks of `cap` nodes: nodes `0..cap`, `cap..2cap`, ….
///
/// Ignores structure entirely, which makes it the deterministic
/// always-terminates baseline — and the fallback
/// [`partition_for_divide`] applies when a structural strategy stalls
/// on singletons (cliques, edgeless graphs, merge graphs with
/// non-positive weight).
#[derive(Debug, Clone, Copy, Default)]
pub struct BalancedChunks;

impl Partitioner for BalancedChunks {
    fn label(&self) -> &str {
        "balanced-chunks"
    }

    fn partition(&self, g: &Graph, cap: usize) -> Result<Partition, PartitionError> {
        if cap == 0 {
            return Err(PartitionError::InvalidCap);
        }
        Ok(balanced_chunks(g.num_nodes(), cap))
    }
}

/// Node-order chunks of size `cap` as a raw partition (shared by the
/// [`BalancedChunks`] strategy and the stall fallback).
pub(crate) fn balanced_chunks(n: usize, cap: usize) -> Partition {
    let communities: Vec<Vec<NodeId>> =
        (0..n as NodeId).collect::<Vec<_>>().chunks(cap).map(|c| c.to_vec()).collect();
    Partition::new(n, communities)
}

/// Breadth-first region growing: start from the lowest unassigned node
/// id, BFS outward (neighbors in ascending id order) until the
/// community holds `cap` nodes or the reachable region is exhausted,
/// then seed the next community from the next unassigned node.
///
/// Communities are connected by construction (except on isolated
/// nodes), which keeps sub-problems physically meaningful without the
/// cost of modularity bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
pub struct BfsGrow;

impl Partitioner for BfsGrow {
    fn label(&self) -> &str {
        "bfs-grow"
    }

    fn partition(&self, g: &Graph, cap: usize) -> Result<Partition, PartitionError> {
        if cap == 0 {
            return Err(PartitionError::InvalidCap);
        }
        let n = g.num_nodes();
        let mut assigned = vec![false; n];
        let mut communities: Vec<Vec<NodeId>> = Vec::new();
        let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
        for seed in 0..n as NodeId {
            if assigned[seed as usize] {
                continue;
            }
            let mut community = Vec::with_capacity(cap);
            queue.clear();
            queue.push_back(seed);
            while let Some(v) = queue.pop_front() {
                if assigned[v as usize] {
                    continue;
                }
                assigned[v as usize] = true;
                community.push(v);
                if community.len() == cap {
                    break; // abandoned frontier nodes reseed later
                }
                // CSR neighbor slices are sorted by id (a Graph
                // invariant), so the frontier extends in ascending
                // order with no per-node sort
                queue.extend(
                    g.neighbors(v).iter().filter(|&&(u, _)| !assigned[u as usize]).map(|&(u, _)| u),
                );
            }
            community.sort_unstable();
            communities.push(community);
        }
        Ok(Partition::new(n, communities))
    }
}

/// Multilevel heavy-edge-matching coarsening (METIS-style, after Angone
/// et al.): repeatedly match each super-node with its heaviest
/// positive-weight neighbor whose combined size still fits the cap,
/// contract all matched pairs at once, and stop when a round produces
/// no merge. The surviving super-nodes — each a set of original nodes
/// grown along the heaviest edges — are the communities; uncoarsening
/// is the identity because every super-node tracks its member list.
///
/// Pairing along heavy edges keeps strongly coupled nodes inside one
/// sub-circuit, which is exactly the weight the merge stage would
/// otherwise have to recover. Combine with [`crate::refine::Refined`]
/// for the classic coarsen → refine pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Multilevel;

impl Partitioner for Multilevel {
    fn label(&self) -> &str {
        "multilevel"
    }

    fn partition(&self, g: &Graph, cap: usize) -> Result<Partition, PartitionError> {
        if cap == 0 {
            return Err(PartitionError::InvalidCap);
        }
        let n = g.num_nodes();
        // super-node state: member lists (global ids) and the current
        // coarse graph over super-nodes
        let mut members: Vec<Vec<NodeId>> = (0..n as NodeId).map(|v| vec![v]).collect();
        let mut coarse = g.clone();
        loop {
            let k = coarse.num_nodes();
            let large_round = k > crate::auto::LARGE_INSTANCE_NODES;
            let mut matched = vec![false; k];
            let mut merge_into = vec![u32::MAX; k];
            let mut merges = 0usize;
            if large_round {
                // Two-phase matching above the large-instance gate:
                // score every super-node's heaviest admissible neighbor
                // in parallel against the *frozen* pre-round state
                // (member sizes only change at contraction), with the
                // same (weight, id)-lexicographic tie-break as the
                // sequential scan, then commit pairs sequentially in
                // ascending super-node order. Unlike the in-place
                // greedy, scoring never sees this round's earlier
                // matches, so a node whose best partner gets claimed
                // stays single until the next round — fewer merges per
                // round, identical bits at any thread count. Once the
                // coarse graph shrinks below the gate, rounds return to
                // the exact sequential greedy.
                use rayon::prelude::*;
                let members_ref = &members;
                let coarse_ref = &coarse;
                // REDUCTION: fixed node_ranges(k) chunks, index-keyed
                // collect — per-node best-match scores never cross a
                // chunk boundary.
                let best: Vec<Option<(f64, NodeId)>> = node_ranges(k)
                    .into_par_iter()
                    .with_min_len(1)
                    .map(|r| {
                        r.map(|u| {
                            let su = members_ref[u].len();
                            let mut best: Option<(f64, NodeId)> = None;
                            for &(v, w) in coarse_ref.neighbors(u as NodeId) {
                                if w <= 0.0 || su + members_ref[v as usize].len() > cap {
                                    continue;
                                }
                                let better = match best {
                                    None => true,
                                    Some((bw, bv)) => w > bw || (w == bw && v < bv),
                                };
                                if better {
                                    best = Some((w, v));
                                }
                            }
                            best
                        })
                        .collect::<Vec<_>>()
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .flatten()
                    .collect();
                for u in 0..k {
                    if matched[u] {
                        continue;
                    }
                    if let Some((_, v)) = best[u] {
                        if !matched[v as usize] {
                            matched[u] = true;
                            matched[v as usize] = true;
                            merge_into[v as usize] = u as u32;
                            merges += 1;
                        }
                    }
                }
            } else {
                // heaviest admissible matching, greedy in super-node
                // order: deterministic and one linear scan per round
                for u in 0..k as NodeId {
                    if matched[u as usize] {
                        continue;
                    }
                    let mut best: Option<(f64, NodeId)> = None;
                    for &(v, w) in coarse.neighbors(u) {
                        if matched[v as usize]
                            || w <= 0.0
                            || members[u as usize].len() + members[v as usize].len() > cap
                        {
                            continue;
                        }
                        let better = match best {
                            None => true,
                            // heaviest edge wins; ties break to the smaller id
                            Some((bw, bv)) => w > bw || (w == bw && v < bv),
                        };
                        if better {
                            best = Some((w, v));
                        }
                    }
                    if let Some((_, v)) = best {
                        matched[u as usize] = true;
                        matched[v as usize] = true;
                        merge_into[v as usize] = u;
                        merges += 1;
                    }
                }
            }
            if merges == 0 {
                break;
            }
            // Convergence-tail cutoff, engaged only above the
            // large-instance gate: on huge graphs the matching
            // converges geometrically for ~10 rounds and then crawls
            // (hundreds of rounds each merging < 0.2% of super-nodes
            // while paying a full O(m) contraction — measured 108 s at
            // n = 10^6 without the cutoff, ~13 s with it). A round that
            // matches fewer than k/64 pairs ends the coarsening; the
            // discarded matches are under 1.6% of super-nodes. Below
            // the threshold the loop runs to merges == 0 exactly as
            // before, so every small-instance partition is unchanged.
            if k > crate::auto::LARGE_INSTANCE_NODES && merges * 64 < k {
                break;
            }
            // contract: relabel super-nodes compactly, absorb matched
            // partners, and rebuild the coarse graph with summed weights
            let mut new_id = vec![u32::MAX; k];
            let mut next = 0u32;
            for u in 0..k {
                if merge_into[u] == u32::MAX {
                    new_id[u] = next;
                    next += 1;
                }
            }
            let mut new_members: Vec<Vec<NodeId>> = vec![Vec::new(); next as usize];
            for (u, m) in members.iter_mut().enumerate() {
                let target = if merge_into[u] == u32::MAX { u } else { merge_into[u] as usize };
                new_members[new_id[target] as usize].append(m);
            }
            if large_round {
                use rayon::prelude::*;
                new_members.as_mut_slice().par_iter_mut().for_each(|m| m.sort_unstable());
            } else {
                for m in &mut new_members {
                    m.sort_unstable();
                }
            }
            let entries: Vec<((u32, u32), f64)> = if large_round {
                // Parallel merge-graph accumulation: each fixed edge
                // chunk relabels its edges, stable-sorts by contracted
                // key (preserving edge order within a key), and
                // run-accumulates locally; the chunk partials are then
                // concatenated in chunk order, stable-sorted again (so
                // equal keys keep chunk order), and run-accumulated.
                // Every key's weight therefore sums in edge order with
                // chunk partials combined in chunk order — the same
                // bits at any thread count.
                use rayon::prelude::*;
                let merge_into_ref = &merge_into;
                let new_id_ref = &new_id;
                // REDUCTION: fixed par_chunks(DEFAULT_GRAIN) over the
                // coarse edge list; chunk results concatenate in chunk
                // order, then accumulate_sorted_runs merges key-sorted
                // runs left to right.
                let mut all: Vec<((u32, u32), f64)> = coarse
                    .edges()
                    .par_chunks(rayon::DEFAULT_GRAIN)
                    .map(|chunk| {
                        let mut local: Vec<((u32, u32), f64)> = Vec::with_capacity(chunk.len());
                        for e in chunk {
                            let mut a = e.u as usize;
                            let mut b = e.v as usize;
                            if merge_into_ref[a] != u32::MAX {
                                a = merge_into_ref[a] as usize;
                            }
                            if merge_into_ref[b] != u32::MAX {
                                b = merge_into_ref[b] as usize;
                            }
                            let (a, b) = (new_id_ref[a], new_id_ref[b]);
                            if a == b {
                                continue; // contracted edge disappears
                            }
                            local.push((if a < b { (a, b) } else { (b, a) }, e.w));
                        }
                        local.sort_by_key(|&(key, _)| key);
                        accumulate_sorted_runs(local)
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .flatten()
                    .collect();
                all.sort_by_key(|&(key, _)| key);
                accumulate_sorted_runs(all)
            } else {
                let mut weights: std::collections::HashMap<(u32, u32), f64> =
                    std::collections::HashMap::new();
                for e in coarse.edges() {
                    let mut a = e.u as usize;
                    let mut b = e.v as usize;
                    if merge_into[a] != u32::MAX {
                        a = merge_into[a] as usize;
                    }
                    if merge_into[b] != u32::MAX {
                        b = merge_into[b] as usize;
                    }
                    let (a, b) = (new_id[a], new_id[b]);
                    if a == b {
                        continue; // contracted edge disappears
                    }
                    let key = if a < b { (a, b) } else { (b, a) };
                    *weights.entry(key).or_insert(0.0) += e.w;
                }
                // DETERMINISM: accumulated weights leave the map through an
                // explicit key sort before entering the builder.
                let mut entries: Vec<((u32, u32), f64)> = weights.into_iter().collect();
                entries.sort_by_key(|&(key, _)| key);
                entries
            };
            let mut builder =
                crate::graph::GraphBuilder::with_capacity(next as usize, entries.len());
            for ((a, b), w) in entries {
                // INVARIANT: map keys are canonical unordered pairs of
                // distinct ids < next, so edges are unique and in range.
                builder.add_edge(a, b, w).expect("contracted edges are unique and in range");
            }
            members = new_members;
            // INVARIANT: one edge per map key — finalize cannot find dups.
            coarse = builder.finalize().expect("contracted edges are unique");
        }
        // deterministic presentation order, matching the CNM partitioner
        members.sort_by(|x, y| y.len().cmp(&x.len()).then_with(|| x[0].cmp(&y[0])));
        Ok(Partition::new(n, members))
    }
}

/// Deterministic cap-aware label propagation over absolute edge
/// weights.
///
/// Every node starts in its own label; sweeps visit nodes in ascending
/// id order, and a node adopts the neighboring label with the highest
/// total **absolute** incident weight, provided that label's community
/// is below the cap and the pull is strictly stronger than the node's
/// current label (ties break to the smaller label id). Sweeps repeat
/// until a full sweep moves nothing or the fixed sweep budget is
/// exhausted, so the procedure is deterministic and always terminates.
///
/// Absolute weights make this the structural strategy of choice for
/// the coarse merge graphs the QAOA² recursion produces: their
/// couplings are routinely negative, which stalls modularity (CNM) and
/// positive-edge matching ([`Multilevel`]) into singletons, while a
/// strong coupling is worth keeping inside one sub-circuit whatever
/// its sign — crossing the boundary defers it to the next coarse
/// solve.
#[derive(Debug, Clone, Copy, Default)]
pub struct LabelPropagation;

/// Sweep budget for [`LabelPropagation`]: convergence is typically
/// reached in 3–5 sweeps on the suite's instance sizes; the bound only
/// guarantees termination.
const LABEL_PROP_MAX_SWEEPS: usize = 12;

impl Partitioner for LabelPropagation {
    fn label(&self) -> &str {
        "label-propagation"
    }

    fn partition(&self, g: &Graph, cap: usize) -> Result<Partition, PartitionError> {
        if cap == 0 {
            return Err(PartitionError::InvalidCap);
        }
        let n = g.num_nodes();
        if n > crate::auto::LARGE_INSTANCE_NODES
            || g.num_edges() > crate::auto::LARGE_INSTANCE_EDGES
        {
            return label_propagation_snapshot(g, cap);
        }
        let mut label: Vec<u32> = (0..n as u32).collect();
        let mut size: Vec<usize> = vec![1; n];
        // per-label absolute incident weight of the node under
        // consideration, with a touched-list so clearing stays O(deg)
        let mut link = vec![0.0f64; n];
        let mut touched: Vec<u32> = Vec::new();
        for _ in 0..LABEL_PROP_MAX_SWEEPS {
            let mut changed = false;
            for v in 0..n as NodeId {
                let home = label[v as usize];
                touched.clear();
                for &(u, w) in g.neighbors(v) {
                    let c = label[u as usize];
                    if link[c as usize] == 0.0 && !touched.contains(&c) {
                        touched.push(c);
                    }
                    link[c as usize] += w.abs();
                }
                // strongest admissible pull; ties to the smaller label id
                let mut best: Option<(f64, u32)> = None;
                for &c in &touched {
                    if c == home || size[c as usize] >= cap {
                        continue;
                    }
                    let a = link[c as usize];
                    let better = match best {
                        None => true,
                        Some((ba, bc)) => a > ba + 1e-12 || (a >= ba - 1e-12 && c < bc),
                    };
                    if better {
                        best = Some((a, c));
                    }
                }
                if let Some((a, c)) = best {
                    if a > link[home as usize] + 1e-12 {
                        size[home as usize] -= 1;
                        size[c as usize] += 1;
                        label[v as usize] = c;
                        changed = true;
                    }
                }
                for &c in &touched {
                    link[c as usize] = 0.0;
                }
            }
            if !changed {
                break;
            }
        }
        Ok(Partition::new(n, communities_from_labels(n, &label)))
    }
}

/// Synchronous two-phase label propagation for instances above the
/// large-instance gate — the pool-parallel replacement for the in-place
/// sweep, public (but hidden) so the property battery can pin its
/// parallel-vs-sequential bit-identity on small zoo graphs too.
///
/// Each sweep runs in two phases:
///
/// 1. **Score (parallel).** Every node evaluates its neighbors' pulls
///    against a *frozen* snapshot of the labels and community sizes from
///    the start of the sweep. Per-node pulls accumulate over the
///    neighbor list stable-sorted by label, and the winning proposal
///    uses the same tolerance and smaller-label-id tie-break as the
///    sequential sweep. Fixed node-range chunks make the evaluation
///    order — and the pull bits — independent of the thread count.
/// 2. **Apply (sequential).** Proposals commit in ascending node order
///    against *live* community sizes, so the cap can never be
///    overshot by two nodes proposing the same target. A proposal whose
///    target filled up this sweep is simply dropped (the node retries
///    next sweep).
///
/// The apply phase stays sequential because cap accounting is a running
/// balance: committing in parallel would either need atomics (whose
/// winner depends on scheduling — a determinism leak) or per-label
/// reservation queues (a second full sort per sweep). An O(n) ordered
/// scan is cheaper than either and is not the bottleneck — scoring is.
///
/// Unlike the in-place sweep, a node's pull never sees labels adopted
/// earlier in the *same* sweep, so convergence takes a sweep or two
/// longer and communities can differ from the sequential path's — which
/// is why the small-instance path keeps the original sweep bit-identical
/// to previous releases, and this variant only engages above the gate.
///
/// The score/apply decisions themselves live in [`crate::snapshot`], the
/// policy module shared with the `qq-check` snapshot-protocol model
/// checker — this function supplies the real graph, the pool fan-out,
/// and the phase barrier between score and apply.
#[doc(hidden)]
pub fn label_propagation_snapshot(g: &Graph, cap: usize) -> Result<Partition, PartitionError> {
    use rayon::prelude::*;
    if cap == 0 {
        return Err(PartitionError::InvalidCap);
    }
    let n = g.num_nodes();
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut size: Vec<usize> = vec![1; n];
    for _ in 0..LABEL_PROP_MAX_SWEEPS {
        let label_ref = &label;
        let size_ref = &size;
        // Score phase: every chunk evaluates against `label`/`size` as
        // frozen at the top of the sweep (snapshot::SCORE_SOURCE) —
        // sound because the apply loop below only starts once this
        // collect has drained every chunk.
        // REDUCTION: fixed node_ranges(n) chunks; per-node pulls
        // accumulate over the neighbor list sorted by label inside
        // snapshot::propose_label, so the f64 order is independent of
        // thread count and steal schedule.
        let proposals: Vec<Option<u32>> = node_ranges(n)
            .into_par_iter()
            .with_min_len(1)
            .map(|r| {
                // one scratch buffer per fixed node range, reused
                // across the range's nodes
                let mut buf: Vec<(u32, f64)> = Vec::new();
                r.map(|v| {
                    let home = label_ref[v];
                    buf.clear();
                    for &(u, w) in g.neighbors(v as NodeId) {
                        buf.push((label_ref[u as usize], w.abs()));
                    }
                    snapshot::propose_label(home, &mut buf, size_ref, cap)
                })
                .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flatten()
            .collect();
        // Apply phase: ascending node id (snapshot::APPLY_ORDER) with a
        // live cap re-check (snapshot::CAP_CHECK) inside commit_label.
        let mut changed = false;
        for (v, proposal) in proposals.into_iter().enumerate() {
            if let Some(c) = proposal {
                changed |= snapshot::commit_label(v, c, &mut label, &mut size, cap);
            }
        }
        if !changed {
            break;
        }
    }
    Ok(Partition::new(n, communities_from_labels(n, &label)))
}

/// Group nodes by label, drop empty groups, and sort into the suite's
/// deterministic presentation order (size descending, then smallest
/// member id) — the shared tail of both label-propagation paths.
fn communities_from_labels(n: usize, label: &[u32]) -> Vec<Vec<NodeId>> {
    let mut communities: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for v in 0..n as NodeId {
        communities[label[v as usize] as usize].push(v);
    }
    communities.retain(|c| !c.is_empty());
    communities.sort_by(|x, y| y.len().cmp(&x.len()).then_with(|| x[0].cmp(&y[0])));
    communities
}

/// Fixed node-index ranges of [`rayon::DEFAULT_GRAIN`] nodes each — the
/// chunk unit every parallel divide phase fans out over. Depending only
/// on `n` (never the thread count) keeps chunk boundaries, and therefore
/// every float accumulation order downstream, identical at any
/// `RAYON_NUM_THREADS`.
pub(crate) fn node_ranges(n: usize) -> Vec<std::ops::Range<usize>> {
    snapshot::score_chunks(n, rayon::DEFAULT_GRAIN)
}

/// Collapse a key-sorted `(key, weight)` list into one entry per key,
/// summing runs left to right (first element's weight, then `+=` in
/// order) — the deterministic merge step of the parallel contraction.
fn accumulate_sorted_runs(sorted: Vec<((u32, u32), f64)>) -> Vec<((u32, u32), f64)> {
    let mut out: Vec<((u32, u32), f64)> = Vec::with_capacity(sorted.len());
    for (key, w) in sorted {
        match out.last_mut() {
            Some((last, acc)) if *last == key => *acc += w,
            _ => out.push((key, w)),
        }
    }
    out
}

/// Recursive spectral bisection: sort each oversized piece by its
/// Fiedler-vector coordinate (second-smallest Laplacian eigenvector,
/// approximated by deflated power iteration — no external linear
/// algebra) and split at the median until every piece fits the cap.
///
/// The Laplacian is built from **absolute** edge weights, which keeps
/// it positive semi-definite on the negative-weight merge graphs the
/// QAOA² recursion produces, and means the bisection direction
/// separates weakly coupled regions whatever the coupling sign. Median
/// splits (rather than sign splits) make both halves strictly smaller,
/// so the recursion always terminates; edgeless or zero-weight pieces
/// degrade to node-order bisection.
#[derive(Debug, Clone, Copy, Default)]
pub struct Spectral;

/// Fixed power-iteration budget for [`Spectral`]: the split needs a
/// usable direction, not eigenvector precision, and a fixed count
/// keeps the strategy deterministic.
const SPECTRAL_ITERS: usize = 60;

impl Partitioner for Spectral {
    fn label(&self) -> &str {
        "spectral"
    }

    fn partition(&self, g: &Graph, cap: usize) -> Result<Partition, PartitionError> {
        if cap == 0 {
            return Err(PartitionError::InvalidCap);
        }
        let n = g.num_nodes();
        let mut result: Vec<Vec<NodeId>> = Vec::new();
        let mut work: Vec<Vec<NodeId>> =
            if n == 0 { Vec::new() } else { vec![(0..n as NodeId).collect()] };
        while let Some(piece) = work.pop() {
            if piece.len() <= cap {
                result.push(piece);
                continue;
            }
            let (sub, map) = g.induced_subgraph(&piece);
            let order = fiedler_order(&sub);
            let mid = order.len() / 2;
            for half in [&order[..mid], &order[mid..]] {
                let mut global: Vec<NodeId> =
                    half.iter().map(|&local| map[local as usize]).collect();
                global.sort_unstable();
                work.push(global);
            }
        }
        result.sort_by(|x, y| y.len().cmp(&x.len()).then_with(|| x[0].cmp(&y[0])));
        Ok(Partition::new(n, result))
    }
}

/// Local node ids of `g` ordered by approximate Fiedler coordinate
/// (ties broken by id). Power iteration on `σI − L` with `L` the
/// absolute-weight Laplacian and `σ = 2·max absolute degree`
/// (Gershgorin bound, so the operator is PSD); the constant vector —
/// the eigenvector of the dominant eigenvalue `σ` — is deflated every
/// step, leaving convergence toward the Fiedler direction. Edgeless
/// (or all-zero-weight) graphs return plain node order.
fn fiedler_order(g: &Graph) -> Vec<NodeId> {
    let k = g.num_nodes();
    let deg: Vec<f64> =
        (0..k).map(|v| g.neighbors(v as NodeId).iter().map(|&(_, w)| w.abs()).sum()).collect();
    let max_deg = deg.iter().cloned().fold(0.0, f64::max);
    let node_order = || (0..k as NodeId).collect::<Vec<_>>();
    if max_deg <= 0.0 {
        return node_order();
    }
    let sigma = 2.0 * max_deg;
    // deterministic pseudo-random start (splitmix-hashed indices):
    // orthogonal-ish to the constant vector after deflation, and
    // reproducible with no RNG state
    let mut x: Vec<f64> = (0..k as u64).map(hash_to_unit).collect();
    if !deflate_normalize(&mut x) {
        return node_order();
    }
    let mut y = vec![0.0f64; k];
    for _ in 0..SPECTRAL_ITERS {
        for i in 0..k {
            y[i] = (sigma - deg[i]) * x[i];
        }
        for e in g.edges() {
            let w = e.w.abs();
            y[e.u as usize] += w * x[e.v as usize];
            y[e.v as usize] += w * x[e.u as usize];
        }
        std::mem::swap(&mut x, &mut y);
        if !deflate_normalize(&mut x) {
            return node_order();
        }
    }
    let mut order: Vec<NodeId> = (0..k as NodeId).collect();
    order.sort_by(|&a, &b| {
        x[a as usize]
            .partial_cmp(&x[b as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

/// Splitmix-style hash of `i` mapped into `[-0.5, 0.5)`.
fn hash_to_unit(i: u64) -> f64 {
    let mut z = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
}

/// Project out the constant component and normalize; `false` when the
/// remainder is numerically zero (no usable direction).
fn deflate_normalize(x: &mut [f64]) -> bool {
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm < 1e-12 {
        return false;
    }
    for v in x.iter_mut() {
        *v /= norm;
    }
    true
}

/// A guarded divide outcome: the partition plus attribution — which
/// strategy was asked for and which one actually produced the
/// partition. The two differ exactly when the singleton-stall guard
/// replaced a stalled structural strategy with [`BalancedChunks`]
/// (`stall_fallback` is then `true`), so engine and level reports stay
/// attributable instead of silently crediting the requested strategy
/// with the fallback's partition.
#[derive(Debug, Clone)]
pub struct DividedPartition {
    /// The validated, cap-respecting partition the divide step uses.
    pub partition: Partition,
    /// Label of the strategy the caller requested.
    pub requested: String,
    /// Label of the strategy whose output `partition` actually is:
    /// `requested` normally, `"balanced-chunks"` when the stall guard
    /// fired.
    pub effective: String,
    /// `true` when the singleton-stall guard replaced the requested
    /// strategy's output.
    pub stall_fallback: bool,
}

/// Run a strategy with the orchestrator's uniform guards:
///
/// 1. **Validation** — the returned communities are re-checked through
///    [`Partition::try_new`] (strategies, especially external ones, are
///    not trusted), every community is held to the cap, and empty
///    communities are dropped (they would become zero-node solve jobs
///    and isolated coarse-graph nodes, and would skew both the stall
///    guard and the balance metric).
/// 2. **Stall guard** — when the graph is larger than the cap but the
///    strategy returns only singletons (modularity on non-positive
///    total weight, matching with no positive edges, …), the divide
///    would not contract and the QAOA² recursion would never terminate;
///    the partition degrades to [`BalancedChunks`], which always makes
///    progress. The substitution is **not silent**: the returned
///    [`DividedPartition`] names the effective strategy.
///
/// This is the single entry point the QAOA² orchestrator uses; calling
/// a [`Partitioner`] directly skips both guards. Orchestrators that
/// computed the partition themselves (per-instance auto-selection,
/// which must record its choice) apply the same guard tail through
/// [`guard_strategy_output`].
pub fn partition_for_divide(
    strategy: &dyn Partitioner,
    g: &Graph,
    cap: usize,
) -> Result<DividedPartition, PartitionError> {
    if cap == 0 {
        return Err(PartitionError::InvalidCap);
    }
    let partition = strategy.partition(g, cap)?;
    guard_strategy_output(strategy.label(), partition, g, cap)
}

/// The guard tail of [`partition_for_divide`] — revalidation, cap
/// check, singleton-stall fallback — for callers that already hold a
/// strategy's raw output together with the label it came from.
pub fn guard_strategy_output(
    requested: &str,
    partition: Partition,
    g: &Graph,
    cap: usize,
) -> Result<DividedPartition, PartitionError> {
    if cap == 0 {
        return Err(PartitionError::InvalidCap);
    }
    // revalidate: strategy outputs are untrusted by contract
    let mut communities = partition.into_communities();
    communities.retain(|c| !c.is_empty());
    let partition = Partition::try_new(g.num_nodes(), communities)?;
    if partition.max_community_size() > cap {
        return Err(PartitionError::CapExceeded { size: partition.max_community_size(), cap });
    }
    // singleton stall: a partition that does not group anything makes
    // the coarse graph as large as `g` itself
    if partition.len() >= g.num_nodes() && g.num_nodes() > cap {
        return Ok(DividedPartition {
            partition: balanced_chunks(g.num_nodes(), cap),
            requested: requested.to_string(),
            effective: BalancedChunks.label().to_string(),
            stall_fallback: true,
        });
    }
    Ok(DividedPartition {
        partition,
        requested: requested.to_string(),
        effective: requested.to_string(),
        stall_fallback: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{self, WeightKind};

    fn strategies() -> Vec<BoxedPartitioner> {
        vec![
            Box::new(GreedyModularity),
            Box::new(BalancedChunks),
            Box::new(BfsGrow),
            Box::new(Multilevel),
            Box::new(LabelPropagation),
            Box::new(Spectral),
        ]
    }

    #[test]
    fn every_strategy_returns_valid_capped_partition() {
        let g = generators::erdos_renyi(50, 0.12, WeightKind::Random01, 7);
        for s in strategies() {
            for cap in [3, 8, 17] {
                let p = s.partition(&g, cap).unwrap();
                assert!(p.is_valid(), "{} cap {cap}", s.label());
                assert!(p.max_community_size() <= cap, "{} cap {cap}", s.label());
            }
        }
    }

    #[test]
    fn zero_cap_rejected_everywhere() {
        let g = generators::ring(5);
        for s in strategies() {
            assert_eq!(s.partition(&g, 0), Err(PartitionError::InvalidCap), "{}", s.label());
        }
    }

    #[test]
    fn greedy_modularity_matches_partition_with_cap() {
        let g = generators::erdos_renyi(40, 0.15, WeightKind::Uniform, 3);
        let via_trait = GreedyModularity.partition(&g, 9).unwrap();
        let direct = crate::partition::partition_with_cap(&g, 9);
        assert_eq!(via_trait, direct);
    }

    #[test]
    fn balanced_chunks_are_node_order_blocks() {
        let g = generators::ring(10);
        let p = BalancedChunks.partition(&g, 4).unwrap();
        assert_eq!(p.communities(), &[vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9]]);
    }

    #[test]
    fn bfs_grow_communities_are_connected() {
        let g = generators::erdos_renyi(40, 0.15, WeightKind::Uniform, 11);
        let p = BfsGrow.partition(&g, 7).unwrap();
        for c in p.communities() {
            let (sub, _) = g.induced_subgraph(c);
            if sub.num_nodes() > 1 && sub.num_edges() > 0 {
                // every multi-node community grown from one seed is one
                // BFS region; isolated-node pickups only happen when the
                // frontier is empty, i.e. in their own communities
                assert_eq!(sub.connected_components().len(), 1, "community {c:?} not connected");
            }
        }
    }

    #[test]
    fn multilevel_groups_heavy_edges_first() {
        // two heavy pairs bridged by light edges: HEM must contract the
        // heavy pairs into communities
        let g =
            Graph::from_edges(4, [(0, 1, 10.0), (2, 3, 10.0), (1, 2, 0.1), (0, 3, 0.1)]).unwrap();
        let p = Multilevel.partition(&g, 2).unwrap();
        assert_eq!(p.len(), 2);
        let a = p.assignment();
        assert_eq!(a[0], a[1]);
        assert_eq!(a[2], a[3]);
        assert_ne!(a[0], a[2]);
    }

    #[test]
    fn multilevel_respects_cap_on_dense_graphs() {
        let g = generators::complete(17);
        let p = Multilevel.partition(&g, 5).unwrap();
        assert!(p.is_valid());
        assert!(p.max_community_size() <= 5);
        // K17 has plenty of positive edges: coarsening must actually merge
        assert!(p.len() < 17);
    }

    #[test]
    fn multilevel_on_negative_weights_stalls_to_singletons() {
        let g = Graph::from_edges(3, [(0, 1, -1.0), (1, 2, -2.0)]).unwrap();
        let p = Multilevel.partition(&g, 2).unwrap();
        assert_eq!(p.len(), 3, "no positive edge may be contracted");
    }

    #[test]
    fn divide_guard_replaces_singleton_stall_with_chunks() {
        // negative-weight graph: both structural strategies return
        // singletons; the divide entry point must still contract — and
        // name the fallback instead of crediting the stalled strategy
        let g = Graph::from_edges(6, [(0, 1, -1.0), (2, 3, -1.0), (4, 5, -1.0)]).unwrap();
        for s in [&Multilevel as &dyn Partitioner, &GreedyModularity] {
            let d = partition_for_divide(s, &g, 3).unwrap();
            assert!(d.partition.len() < 6, "{} stalled", s.label());
            assert!(d.partition.max_community_size() <= 3);
            assert_eq!(d.requested, s.label());
            assert_eq!(d.effective, "balanced-chunks");
            assert!(d.stall_fallback);
        }
        // label propagation groups by |w| and does not stall here
        let d = partition_for_divide(&LabelPropagation, &g, 3).unwrap();
        assert!(!d.stall_fallback);
        assert_eq!(d.effective, "label-propagation");
    }

    #[test]
    fn divide_without_fallback_reports_the_requested_strategy() {
        let g = generators::erdos_renyi(30, 0.2, WeightKind::Uniform, 4);
        let d = partition_for_divide(&GreedyModularity, &g, 8).unwrap();
        assert_eq!(d.requested, "greedy-modularity");
        assert_eq!(d.effective, "greedy-modularity");
        assert!(!d.stall_fallback);
    }

    #[test]
    fn divide_rejects_invalid_custom_output() {
        struct Overlapping;
        impl Partitioner for Overlapping {
            fn label(&self) -> &str {
                "overlapping"
            }
            fn partition(&self, g: &Graph, _cap: usize) -> Result<Partition, PartitionError> {
                // deliberately broken: node 0 appears twice — bypass
                // try_new the way a buggy external impl could
                let mut communities: Vec<Vec<NodeId>> =
                    (0..g.num_nodes() as NodeId).map(|v| vec![v]).collect();
                communities[1][0] = 0;
                Ok(Partition::new_unchecked(g.num_nodes(), communities))
            }
        }
        let g = generators::ring(4);
        let err = partition_for_divide(&Overlapping, &g, 2).unwrap_err();
        assert!(matches!(err, PartitionError::InvalidPartition { .. }), "{err:?}");
    }

    #[test]
    fn label_propagation_groups_heavy_pairs() {
        let g =
            Graph::from_edges(4, [(0, 1, 10.0), (2, 3, 10.0), (1, 2, 0.1), (0, 3, 0.1)]).unwrap();
        let p = LabelPropagation.partition(&g, 2).unwrap();
        assert_eq!(p.len(), 2);
        let a = p.assignment();
        assert_eq!(a[0], a[1]);
        assert_eq!(a[2], a[3]);
        assert_ne!(a[0], a[2]);
    }

    #[test]
    fn label_propagation_does_not_stall_on_negative_weights() {
        // heavy *negative* pairs bridged by light edges — exactly the
        // merge-graph shape that stalls CNM and HEM; absolute-weight
        // affinities must still group the strong couplings
        let g = Graph::from_edges(
            6,
            [(0, 1, -10.0), (2, 3, -10.0), (4, 5, -10.0), (1, 2, 0.1), (3, 4, -0.1)],
        )
        .unwrap();
        let p = LabelPropagation.partition(&g, 2).unwrap();
        assert_eq!(p.len(), 3, "expected the three heavy pairs, got {:?}", p.communities());
        let a = p.assignment();
        assert_eq!(a[0], a[1]);
        assert_eq!(a[2], a[3]);
        assert_eq!(a[4], a[5]);
    }

    #[test]
    fn spectral_splits_a_barbell_at_the_bridge() {
        // two K4 bells joined by one edge: the Fiedler direction
        // separates the bells, so the bisection cuts only the bridge
        let g = generators::barbell(4);
        let p = Spectral.partition(&g, 4).unwrap();
        assert_eq!(p.len(), 2);
        let a = p.assignment();
        for v in 1..4 {
            assert_eq!(a[0], a[v], "bell 0 split: {:?}", p.communities());
        }
        for v in 5..8 {
            assert_eq!(a[4], a[v], "bell 1 split: {:?}", p.communities());
        }
        assert_ne!(a[0], a[4]);
    }

    #[test]
    fn spectral_respects_cap_via_median_splits() {
        for (n, cap) in [(17usize, 5usize), (40, 7), (9, 2)] {
            let g = generators::complete(n);
            let p = Spectral.partition(&g, cap).unwrap();
            assert!(p.is_valid());
            assert!(p.max_community_size() <= cap, "n {n} cap {cap}");
        }
        // edgeless graphs degrade to node-order bisection, still capped
        let empty = Graph::new(11);
        let p = Spectral.partition(&empty, 4).unwrap();
        assert!(p.is_valid());
        assert!(p.max_community_size() <= 4);
    }

    #[test]
    fn spectral_contracts_on_negative_weight_graphs() {
        // absolute-weight Laplacian: negative couplings are structure,
        // not a stall — no singleton collapse on merge-graph shapes
        let g =
            Graph::from_edges(8, (0..7).map(|i| (i, i + 1, if i % 2 == 0 { -2.0 } else { -0.5 })))
                .unwrap();
        let p = Spectral.partition(&g, 4).unwrap();
        assert!(p.is_valid());
        assert!(p.len() < 8, "spectral returned singletons");
        assert!(p.max_community_size() <= 4);
    }

    #[test]
    fn divide_rejects_cap_violating_custom_output() {
        struct OneBlob;
        impl Partitioner for OneBlob {
            fn label(&self) -> &str {
                "one-blob"
            }
            fn partition(&self, g: &Graph, _cap: usize) -> Result<Partition, PartitionError> {
                let all: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
                Ok(Partition::new(g.num_nodes(), vec![all]))
            }
        }
        let g = generators::ring(6);
        let err = partition_for_divide(&OneBlob, &g, 3).unwrap_err();
        assert_eq!(err, PartitionError::CapExceeded { size: 6, cap: 3 });
    }

    #[test]
    fn divide_drops_empty_communities_before_the_stall_check() {
        // a custom strategy padding its (good) cover with empty
        // communities: the empties must neither become zero-node solve
        // jobs nor push len() past the singleton-stall threshold
        struct PaddedChunks;
        impl Partitioner for PaddedChunks {
            fn label(&self) -> &str {
                "padded-chunks"
            }
            fn partition(&self, g: &Graph, cap: usize) -> Result<Partition, PartitionError> {
                let mut communities = balanced_chunks(g.num_nodes(), cap).into_communities();
                // pad with enough empties that len() >= num_nodes
                communities.resize(g.num_nodes() + 3, Vec::new());
                Ok(Partition::new_unchecked(g.num_nodes(), communities))
            }
        }
        let g = generators::ring(12);
        let d = partition_for_divide(&PaddedChunks, &g, 4).unwrap();
        assert_eq!(d.partition.len(), 3, "empties dropped, real chunks kept (no stall fallback)");
        assert!(d.partition.communities().iter().all(|c| !c.is_empty()));
        assert!(d.partition.is_valid());
        assert!(!d.stall_fallback, "dropping empties must not read as a fallback");
    }

    #[test]
    fn strategies_are_deterministic() {
        let g = generators::erdos_renyi(45, 0.1, WeightKind::Random01, 19);
        for s in strategies() {
            let a = s.partition(&g, 8).unwrap();
            let b = s.partition(&g, 8).unwrap();
            assert_eq!(a, b, "{}", s.label());
        }
    }

    #[test]
    fn labels_are_stable() {
        let strategies = strategies();
        let labels: Vec<&str> = strategies.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec![
                "greedy-modularity",
                "balanced-chunks",
                "bfs-grow",
                "multilevel",
                "label-propagation",
                "spectral"
            ]
        );
    }

    use crate::graph::Graph;
}
