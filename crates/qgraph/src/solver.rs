//! The pluggable MaxCut solver interface.
//!
//! Every backend — quantum (QAOA, RQAOA), classical (Goemans–Williamson,
//! local search, annealing, exact enumeration), or anything a downstream
//! crate invents (sharded, distributed, cached, …) — implements
//! [`MaxCutSolver`]. The QAOA² orchestrator in `qq-core` dispatches
//! exclusively through this trait, so new backends plug in without
//! touching the orchestration layer: implement the trait in your own
//! crate and either hand the orchestrator a boxed instance or register a
//! factory in `qq_core::SolverRegistry`.
//!
//! The trait lives here, in the graph substrate, because it is the one
//! crate every backend already depends on — backend crates must be able
//! to implement the trait without depending on the orchestrator (which
//! depends on *them*).

use crate::cut::Cut;
use crate::graph::Graph;

/// A solver outcome: the cut and its value on the input graph.
#[derive(Debug, Clone)]
pub struct CutResult {
    /// The bipartition found.
    pub cut: Cut,
    /// Its cut value.
    pub value: f64,
}

impl CutResult {
    /// Wrap a cut, computing its value on `g`.
    pub fn new(cut: Cut, g: &Graph) -> Self {
        let value = cut.value(g);
        CutResult { cut, value }
    }
}

/// Why a backend could not produce a cut.
#[derive(Debug, Clone)]
pub enum SolverError {
    /// The instance exceeds the backend's capability envelope.
    TooLarge {
        /// Nodes in the rejected instance.
        nodes: usize,
        /// The backend's limit ([`SolverCaps::max_nodes`]).
        max_nodes: usize,
    },
    /// The backend's configuration is invalid.
    InvalidConfig(String),
    /// The backend failed while solving.
    Backend(String),
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::TooLarge { nodes, max_nodes } => {
                write!(f, "instance has {nodes} nodes, backend handles at most {max_nodes}")
            }
            SolverError::InvalidConfig(m) => write!(f, "invalid solver config: {m}"),
            SolverError::Backend(m) => write!(f, "solver backend failed: {m}"),
        }
    }
}

impl std::error::Error for SolverError {}

/// A backend's capability envelope, used by orchestrators to validate
/// dispatch before paying for a solve (and to route instances in
/// heterogeneous pools).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverCaps {
    /// Largest instance (node count) the backend accepts, if bounded.
    /// Quantum backends bound this by the qubit budget of the simulated
    /// device; exact enumeration by runtime.
    pub max_nodes: Option<usize>,
    /// True when repeated calls with the same `(graph, seed)` return the
    /// same cut.
    pub deterministic: bool,
    /// True when the backend simulates a quantum device (used by
    /// reporting and by schedulers that separate QPU from CPU work).
    pub quantum: bool,
}

impl Default for SolverCaps {
    fn default() -> Self {
        SolverCaps { max_nodes: None, deterministic: true, quantum: false }
    }
}

impl SolverCaps {
    /// Compose the envelope of a *degrading* composite — one that skips
    /// members incapable of an instance rather than failing (the
    /// [`BestOf`] combinator, heterogeneous pools): as capable as the
    /// most capable member (`None` once any member is unbounded),
    /// quantum if any member is, deterministic only when all are.
    pub fn union_of(members: impl IntoIterator<Item = SolverCaps>) -> SolverCaps {
        let mut max_nodes = Some(0usize);
        let mut deterministic = true;
        let mut quantum = false;
        for caps in members {
            max_nodes = match (max_nodes, caps.max_nodes) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            };
            deterministic &= caps.deterministic;
            quantum |= caps.quantum;
        }
        SolverCaps { max_nodes, deterministic, quantum }
    }
}

/// A MaxCut solver backend.
///
/// `Send + Sync` is required so orchestrators can share one backend
/// instance across worker threads; configuration is therefore read-only
/// during solves.
pub trait MaxCutSolver: Send + Sync {
    /// Short stable label for reports, registries, and CLI selection
    /// (e.g. `"qaoa"`, `"gw"`, `"local-search"`).
    fn label(&self) -> &str;

    /// Solve MaxCut on `g`. `seed` perturbs every stochastic component so
    /// repeated sub-problems explore independently while staying
    /// reproducible.
    fn solve(&self, g: &Graph, seed: u64) -> Result<CutResult, SolverError>;

    /// Capability envelope; default is unbounded/deterministic/classical.
    fn capabilities(&self) -> SolverCaps {
        SolverCaps::default()
    }

    /// Validate `g` against [`MaxCutSolver::capabilities`]; orchestrators
    /// call this before dispatch to fail fast with a uniform error.
    fn check_instance(&self, g: &Graph) -> Result<(), SolverError> {
        match self.capabilities().max_nodes {
            Some(max_nodes) if g.num_nodes() > max_nodes => {
                Err(SolverError::TooLarge { nodes: g.num_nodes(), max_nodes })
            }
            _ => Ok(()),
        }
    }
}

/// Owned, dynamically typed backend handle.
pub type BoxedSolver = Box<dyn MaxCutSolver>;

// Boxed and shared handles are themselves solvers, so generic
// orchestration code accepts either without special cases. Every method
// is forwarded (including `check_instance`) so wrapper handles never
// shadow an implementation's overrides with trait defaults.
impl MaxCutSolver for BoxedSolver {
    fn label(&self) -> &str {
        self.as_ref().label()
    }

    fn solve(&self, g: &Graph, seed: u64) -> Result<CutResult, SolverError> {
        self.as_ref().solve(g, seed)
    }

    fn capabilities(&self) -> SolverCaps {
        self.as_ref().capabilities()
    }

    fn check_instance(&self, g: &Graph) -> Result<(), SolverError> {
        self.as_ref().check_instance(g)
    }
}

impl MaxCutSolver for std::sync::Arc<dyn MaxCutSolver> {
    fn label(&self) -> &str {
        self.as_ref().label()
    }

    fn solve(&self, g: &Graph, seed: u64) -> Result<CutResult, SolverError> {
        self.as_ref().solve(g, seed)
    }

    fn capabilities(&self) -> SolverCaps {
        self.as_ref().capabilities()
    }

    fn check_instance(&self, g: &Graph) -> Result<(), SolverError> {
        self.as_ref().check_instance(g)
    }
}

/// Combinator: run every inner backend that admits the instance, keep
/// the best cut — the hybrid run-time quantum/classical decision the
/// paper's "Best" series makes. Incapable members are skipped, not
/// fatal; see [`MaxCutSolver::solve`] on this type.
pub struct BestOf {
    label: String,
    inner: Vec<BoxedSolver>,
}

impl BestOf {
    /// Combine `inner` backends (at least one) under the label `"best"`.
    pub fn new(inner: Vec<BoxedSolver>) -> Self {
        Self::labeled("best", inner)
    }

    /// Combine with a custom label.
    pub fn labeled(label: impl Into<String>, inner: Vec<BoxedSolver>) -> Self {
        assert!(!inner.is_empty(), "BestOf needs at least one inner solver");
        BestOf { label: label.into(), inner }
    }
}

impl MaxCutSolver for BestOf {
    fn label(&self) -> &str {
        &self.label
    }

    /// Run every *capable* inner backend and keep the best cut. Members
    /// whose [`MaxCutSolver::check_instance`] rejects the graph are
    /// skipped — the run-time hybrid decision degrades to the remaining
    /// members (e.g. QAOA caps out, GW takes over) — and only when every
    /// member rejects does the composite error. Genuine solve failures
    /// of a capable member still propagate.
    fn solve(&self, g: &Graph, seed: u64) -> Result<CutResult, SolverError> {
        let mut best: Option<CutResult> = None;
        let mut rejection: Option<SolverError> = None;
        for solver in &self.inner {
            if let Err(e) = solver.check_instance(g) {
                rejection = Some(e);
                continue;
            }
            let r = solver.solve(g, seed)?;
            if best.as_ref().map(|b| r.value > b.value).unwrap_or(true) {
                best = Some(r);
            }
        }
        best.ok_or_else(|| rejection.expect("≥ 1 member, each either solved or rejected"))
    }

    fn capabilities(&self) -> SolverCaps {
        // incapable members are skipped, so the composite degrades
        SolverCaps::union_of(self.inner.iter().map(|s| s.capabilities()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// Fixed-side test backend.
    struct Constant {
        side: bool,
        cap: Option<usize>,
    }

    impl MaxCutSolver for Constant {
        fn label(&self) -> &str {
            "constant"
        }

        fn solve(&self, g: &Graph, _seed: u64) -> Result<CutResult, SolverError> {
            self.check_instance(g)?;
            let side = self.side;
            Ok(CutResult::new(Cut::from_fn(g.num_nodes(), |v| (v % 2 == 0) == side), g))
        }

        fn capabilities(&self) -> SolverCaps {
            SolverCaps { max_nodes: self.cap, ..SolverCaps::default() }
        }
    }

    #[test]
    fn check_instance_enforces_max_nodes() {
        let g = generators::ring(8);
        let ok = Constant { side: true, cap: Some(8) };
        let too_small = Constant { side: true, cap: Some(7) };
        assert!(ok.solve(&g, 0).is_ok());
        assert!(matches!(
            too_small.solve(&g, 0),
            Err(SolverError::TooLarge { nodes: 8, max_nodes: 7 })
        ));
    }

    #[test]
    fn best_of_picks_the_better_inner() {
        // on a star graph, centre-vs-rest beats alternating sides
        let g = generators::star(7);
        let all_even = Constant { side: true, cap: None };
        let all_odd = Constant { side: false, cap: None };
        let each: Vec<f64> =
            [&all_even, &all_odd].iter().map(|s| s.solve(&g, 1).unwrap().value).collect();
        let best = BestOf::new(vec![
            Box::new(Constant { side: true, cap: None }) as BoxedSolver,
            Box::new(Constant { side: false, cap: None }),
        ]);
        let b = best.solve(&g, 1).unwrap();
        assert_eq!(b.value, each.iter().cloned().fold(f64::MIN, f64::max));
    }

    #[test]
    fn best_of_caps_compose() {
        // incapable members are skipped at solve time, so the composite
        // is as capable as its largest member …
        let best = BestOf::new(vec![
            Box::new(Constant { side: true, cap: Some(10) }) as BoxedSolver,
            Box::new(Constant { side: false, cap: Some(20) }),
        ]);
        assert_eq!(best.capabilities().max_nodes, Some(20));
        // … and unbounded as soon as one member is
        let best = BestOf::new(vec![
            Box::new(Constant { side: true, cap: Some(10) }) as BoxedSolver,
            Box::new(Constant { side: false, cap: None }),
        ]);
        assert_eq!(best.capabilities().max_nodes, None);
    }

    #[test]
    fn best_of_skips_incapable_members() {
        // one member caps out at 7 nodes; the 8-node instance must not
        // poison the composite — the capable member answers alone
        let g = generators::ring(8);
        let best = BestOf::new(vec![
            Box::new(Constant { side: true, cap: Some(7) }) as BoxedSolver,
            Box::new(Constant { side: false, cap: None }),
        ]);
        let r = best.solve(&g, 0).unwrap();
        let alone = Constant { side: false, cap: None }.solve(&g, 0).unwrap();
        assert_eq!(r.cut, alone.cut, "only the capable member contributed");
    }

    #[test]
    fn best_of_errors_only_when_all_members_reject() {
        let g = generators::ring(9);
        let best = BestOf::new(vec![
            Box::new(Constant { side: true, cap: Some(7) }) as BoxedSolver,
            Box::new(Constant { side: false, cap: Some(8) }),
        ]);
        assert!(matches!(best.solve(&g, 0), Err(SolverError::TooLarge { nodes: 9, .. })));
    }

    #[test]
    fn boxed_solver_is_a_solver() {
        let boxed: BoxedSolver = Box::new(Constant { side: true, cap: None });
        let g = generators::ring(6);
        assert_eq!(boxed.label(), "constant");
        assert_eq!(boxed.solve(&g, 3).unwrap().cut.len(), 6);
    }
}
