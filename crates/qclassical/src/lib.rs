//! # qq-classical — classical MaxCut baselines
//!
//! Every classical comparator the paper touches, plus an exact solver used
//! as ground truth in the test suite:
//!
//! * [`random`] — randomized partitioning (the NetworkX
//!   `approximation.maxcut` baseline shown in red in Fig. 4);
//! * [`local_search`] — one-exchange hill climbing;
//! * [`annealing`] — simulated annealing (mentioned in the related work as
//!   the statistical-physics alternative);
//! * [`exact`] — Gray-code exhaustive enumeration, feasible to ~26 nodes,
//!   giving certified optima for validation.

#![forbid(unsafe_code)]

pub mod annealing;
pub mod exact;
pub mod local_search;
pub mod random;
pub mod solvers;

pub use annealing::simulated_annealing;
pub use exact::exact_maxcut;
pub use local_search::{one_exchange, one_exchange_from};
pub use random::randomized_partitioning;
pub use solvers::{AnnealingSolver, ExactSolver, LocalSearchSolver, RandomSolver};

// `CutResult` moved to the graph substrate alongside the `MaxCutSolver`
// trait; re-exported here so `qq_classical::CutResult` keeps working.
pub use qq_graph::CutResult;
