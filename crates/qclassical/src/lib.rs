//! # qq-classical — classical MaxCut baselines
//!
//! Every classical comparator the paper touches, plus an exact solver used
//! as ground truth in the test suite:
//!
//! * [`random`] — randomized partitioning (the NetworkX
//!   `approximation.maxcut` baseline shown in red in Fig. 4);
//! * [`local_search`] — one-exchange hill climbing;
//! * [`annealing`] — simulated annealing (mentioned in the related work as
//!   the statistical-physics alternative);
//! * [`exact`] — Gray-code exhaustive enumeration, feasible to ~26 nodes,
//!   giving certified optima for validation.

pub mod annealing;
pub mod exact;
pub mod local_search;
pub mod random;

pub use annealing::simulated_annealing;
pub use exact::exact_maxcut;
pub use local_search::one_exchange;
pub use random::randomized_partitioning;

use qq_graph::{Cut, Graph};

/// A solver outcome: the cut and its value on the input graph.
#[derive(Debug, Clone)]
pub struct CutResult {
    /// The bipartition found.
    pub cut: Cut,
    /// Its cut value.
    pub value: f64,
}

impl CutResult {
    /// Wrap a cut, computing its value on `g`.
    pub fn new(cut: Cut, g: &Graph) -> Self {
        let value = cut.value(g);
        CutResult { cut, value }
    }
}
