//! Exact MaxCut by Gray-code enumeration.
//!
//! Walks all `2^(n−1)` bipartitions (node 0 fixed by cut symmetry) in
//! Gray-code order so consecutive assignments differ in one node; the cut
//! value updates in `O(deg)` per step instead of `O(E)`. Practical to
//! ~26 nodes, which covers every sub-graph QAOA² produces at realistic
//! qubit budgets — the test suite uses it as certified ground truth.

use crate::CutResult;
use qq_graph::{Cut, Graph, NodeId};

/// Hard ceiling: beyond this the walk would exceed 2^29 steps.
pub const MAX_EXACT_NODES: usize = 30;

/// Certified-optimal MaxCut via exhaustive Gray-code search.
///
/// # Panics
/// If `g` has more than [`MAX_EXACT_NODES`] nodes.
pub fn exact_maxcut(g: &Graph) -> CutResult {
    let n = g.num_nodes();
    assert!(n <= MAX_EXACT_NODES, "exact solver limited to {MAX_EXACT_NODES} nodes, got {n}");
    if n <= 1 {
        return CutResult::new(Cut::new(n), g);
    }

    // Fix node n-1 on side 0: halves the space (global flip symmetry).
    let free = n - 1;
    let mut cut = Cut::new(n);
    let mut value = 0.0f64;
    let mut best_bits: u64 = 0;
    let mut best_value = 0.0f64;

    // Gray-code walk over the `free` low nodes.
    let steps = 1u64 << free;
    let mut gray_prev = 0u64;
    for i in 1..steps {
        let gray = i ^ (i >> 1);
        let changed = (gray ^ gray_prev).trailing_zeros() as NodeId;
        gray_prev = gray;
        value += cut.flip_gain(g, changed);
        cut.flip_node(changed);
        if value > best_value {
            best_value = value;
            best_bits = gray;
        }
    }

    let best_cut = Cut::from_basis_index(n, best_bits);
    CutResult::new(best_cut, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_graph::generators::{self, WeightKind};

    /// Independent reference: naive enumeration without Gray-code updates.
    fn brute_force(g: &Graph) -> f64 {
        let n = g.num_nodes();
        let mut best = 0.0f64;
        for bits in 0..(1u64 << n) {
            let v = Cut::from_basis_index(n, bits).value(g);
            if v > best {
                best = v;
            }
        }
        best
    }

    #[test]
    fn matches_naive_enumeration() {
        for seed in 0..5 {
            let g = generators::erdos_renyi(10, 0.4, WeightKind::Random01, seed);
            let exact = exact_maxcut(&g);
            let reference = brute_force(&g);
            assert!((exact.value - reference).abs() < 1e-9, "seed {seed}");
            assert!((exact.cut.value(&g) - exact.value).abs() < 1e-9);
        }
    }

    #[test]
    fn known_optima() {
        assert_eq!(exact_maxcut(&generators::ring(8)).value, 8.0);
        assert_eq!(exact_maxcut(&generators::ring(9)).value, 8.0);
        assert_eq!(exact_maxcut(&generators::star(10)).value, 9.0);
        // K6: ⌊6/2⌋·⌈6/2⌉ = 9
        assert_eq!(exact_maxcut(&generators::complete(6)).value, 9.0);
    }

    #[test]
    fn dominates_heuristics() {
        let g = generators::erdos_renyi(16, 0.3, WeightKind::Random01, 7);
        let exact = exact_maxcut(&g);
        let ls = crate::one_exchange(&g, 3);
        let sa = crate::simulated_annealing(&g, crate::annealing::AnnealingSchedule::default(), 3);
        assert!(exact.value >= ls.value - 1e-9);
        assert!(exact.value >= sa.value - 1e-9);
    }

    #[test]
    fn trivial_graphs() {
        assert_eq!(exact_maxcut(&Graph::new(0)).value, 0.0);
        assert_eq!(exact_maxcut(&Graph::new(1)).value, 0.0);
        let pair = Graph::from_edges(2, [(0, 1, 2.5)]).unwrap();
        assert_eq!(exact_maxcut(&pair).value, 2.5);
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn too_large_panics() {
        exact_maxcut(&Graph::new(31));
    }

    use qq_graph::Graph;
}
