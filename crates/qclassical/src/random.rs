//! Randomized partitioning — the weakest baseline in Fig. 4.
//!
//! Each trial assigns every node to a side with probability ½; the best of
//! `trials` cuts is kept. A single trial achieves half the total weight in
//! expectation, which is the floor every serious method must clear.

use crate::CutResult;
use qq_graph::{Cut, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Best of `trials` uniform random bipartitions.
pub fn randomized_partitioning(g: &Graph, trials: usize, seed: u64) -> CutResult {
    assert!(trials >= 1, "need at least one trial");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.num_nodes();
    let mut best: Option<CutResult> = None;
    for _ in 0..trials {
        let cut = Cut::from_fn(n, |_| rng.gen::<bool>());
        let cand = CutResult::new(cut, g);
        if best.as_ref().map(|b| cand.value > b.value).unwrap_or(true) {
            best = Some(cand);
        }
    }
    // INVARIANT: trials >= 1 is asserted above, so the loop always
    // installs a candidate.
    best.expect("trials >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_graph::generators::{self, WeightKind};

    #[test]
    fn random_cut_near_half_weight() {
        let g = generators::erdos_renyi(100, 0.3, WeightKind::Uniform, 5);
        let r = randomized_partitioning(&g, 1, 42);
        let half = g.total_weight() / 2.0;
        // Binomial concentration: a single random cut is within 15% of W/2 whp
        assert!((r.value - half).abs() < 0.15 * g.total_weight(), "value = {}", r.value);
    }

    #[test]
    fn more_trials_never_worse() {
        let g = generators::erdos_renyi(40, 0.2, WeightKind::Random01, 9);
        let one = randomized_partitioning(&g, 1, 7);
        let many = randomized_partitioning(&g, 64, 7);
        assert!(many.value >= one.value);
    }

    #[test]
    fn seeded_reproducibility() {
        let g = generators::erdos_renyi(30, 0.3, WeightKind::Uniform, 1);
        let a = randomized_partitioning(&g, 8, 33);
        let b = randomized_partitioning(&g, 8, 33);
        assert_eq!(a.cut, b.cut);
    }

    #[test]
    fn empty_graph_gives_zero() {
        let g = qq_graph::Graph::new(4);
        let r = randomized_partitioning(&g, 4, 0);
        assert_eq!(r.value, 0.0);
    }
}
