//! [`MaxCutSolver`] backends wrapping the classical baselines, so each
//! plugs into the QAOA² orchestrator and the `qq-core` solver registry.

use crate::annealing::AnnealingSchedule;
use qq_graph::{CutResult, Graph, MaxCutSolver, SolverCaps, SolverError};

/// Best of `trials` random bipartitions.
#[derive(Debug, Clone, Copy)]
pub struct RandomSolver {
    /// Number of random cuts to draw (at least 1 is enforced at solve
    /// time).
    pub trials: usize,
}

impl MaxCutSolver for RandomSolver {
    fn label(&self) -> &str {
        "random"
    }

    fn solve(&self, g: &Graph, seed: u64) -> Result<CutResult, SolverError> {
        Ok(crate::randomized_partitioning(g, self.trials.max(1), seed))
    }
}

/// One-exchange local search.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalSearchSolver;

impl MaxCutSolver for LocalSearchSolver {
    fn label(&self) -> &str {
        "local-search"
    }

    fn solve(&self, g: &Graph, seed: u64) -> Result<CutResult, SolverError> {
        Ok(crate::one_exchange(g, seed))
    }
}

/// Simulated annealing under a fixed schedule.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnnealingSolver {
    /// Cooling schedule.
    pub schedule: AnnealingSchedule,
}

impl MaxCutSolver for AnnealingSolver {
    fn label(&self) -> &str {
        "annealing"
    }

    fn solve(&self, g: &Graph, seed: u64) -> Result<CutResult, SolverError> {
        Ok(crate::simulated_annealing(g, self.schedule, seed))
    }
}

/// Exact Gray-code enumeration — ground truth for ablations, bounded to
/// [`crate::exact::MAX_EXACT_NODES`] nodes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactSolver;

impl MaxCutSolver for ExactSolver {
    fn label(&self) -> &str {
        "exact"
    }

    fn solve(&self, g: &Graph, _seed: u64) -> Result<CutResult, SolverError> {
        self.check_instance(g)?;
        Ok(crate::exact_maxcut(g))
    }

    fn capabilities(&self) -> SolverCaps {
        SolverCaps { max_nodes: Some(crate::exact::MAX_EXACT_NODES), ..SolverCaps::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_graph::generators::{self, WeightKind};

    #[test]
    fn all_backends_return_valid_cuts() {
        let g = generators::erdos_renyi(10, 0.4, WeightKind::Random01, 5);
        let backends: [&dyn MaxCutSolver; 4] = [
            &RandomSolver { trials: 4 },
            &LocalSearchSolver,
            &AnnealingSolver::default(),
            &ExactSolver,
        ];
        let exact = crate::exact_maxcut(&g).value;
        for b in backends {
            let r = b.solve(&g, 3).unwrap();
            assert_eq!(r.cut.len(), 10, "{}", b.label());
            assert!((r.cut.value(&g) - r.value).abs() < 1e-9, "{}", b.label());
            assert!(r.value <= exact + 1e-9, "{}", b.label());
        }
    }

    #[test]
    fn exact_solver_rejects_oversized_instances() {
        let g = generators::erdos_renyi(40, 0.1, WeightKind::Uniform, 1);
        assert!(matches!(ExactSolver.solve(&g, 0), Err(SolverError::TooLarge { nodes: 40, .. })));
    }
}
