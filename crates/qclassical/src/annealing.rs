//! Simulated annealing for MaxCut (Kirkpatrick et al., cited by the paper
//! as the statistical-physics baseline).
//!
//! Metropolis dynamics on single-node flips with a geometric temperature
//! schedule. Tracks the best cut ever visited, so the returned value is
//! monotone in the sweep budget.

use crate::CutResult;
use qq_graph::{Cut, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy)]
pub struct AnnealingSchedule {
    /// Starting temperature (in units of cut weight).
    pub t_start: f64,
    /// Final temperature.
    pub t_end: f64,
    /// Number of full sweeps (each sweep proposes `n` flips).
    pub sweeps: usize,
}

impl Default for AnnealingSchedule {
    fn default() -> Self {
        AnnealingSchedule { t_start: 2.0, t_end: 0.01, sweeps: 200 }
    }
}

/// Run simulated annealing.
pub fn simulated_annealing(g: &Graph, schedule: AnnealingSchedule, seed: u64) -> CutResult {
    assert!(schedule.t_start >= schedule.t_end && schedule.t_end > 0.0);
    assert!(schedule.sweeps >= 1);
    let n = g.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cut = Cut::from_fn(n, |_| rng.gen::<bool>());
    let mut value = cut.value(g);
    let mut best = cut.clone();
    let mut best_value = value;

    if n == 0 {
        return CutResult::new(cut, g);
    }

    let cooling = (schedule.t_end / schedule.t_start).powf(1.0 / schedule.sweeps as f64);
    let mut temp = schedule.t_start;
    for _ in 0..schedule.sweeps {
        for _ in 0..n {
            let v = rng.gen_range(0..n) as NodeId;
            let gain = cut.flip_gain(g, v);
            if gain >= 0.0 || rng.gen::<f64>() < (gain / temp).exp() {
                cut.flip_node(v);
                value += gain;
                if value > best_value {
                    best_value = value;
                    best = cut.clone();
                }
            }
        }
        temp *= cooling;
    }
    CutResult::new(best, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_graph::generators::{self, WeightKind};

    #[test]
    fn anneal_beats_random_baseline() {
        let g = generators::erdos_renyi(40, 0.25, WeightKind::Uniform, 12);
        let sa = simulated_annealing(&g, AnnealingSchedule::default(), 7);
        let rnd = crate::randomized_partitioning(&g, 1, 7);
        assert!(sa.value >= rnd.value, "sa {} < random {}", sa.value, rnd.value);
        assert!(sa.value >= g.total_weight() / 2.0);
    }

    #[test]
    fn anneal_solves_ring_optimally() {
        // even ring optimum = n (alternating cut); SA should find it
        let g = generators::ring(12);
        let sa = simulated_annealing(
            &g,
            AnnealingSchedule { t_start: 1.5, t_end: 0.01, sweeps: 400 },
            3,
        );
        assert_eq!(sa.value, 12.0);
    }

    #[test]
    fn value_matches_cut() {
        let g = generators::erdos_renyi(25, 0.3, WeightKind::Random01, 4);
        let sa = simulated_annealing(&g, AnnealingSchedule::default(), 1);
        assert!((sa.value - sa.cut.value(&g)).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::erdos_renyi(20, 0.3, WeightKind::Uniform, 2);
        let a = simulated_annealing(&g, AnnealingSchedule::default(), 10);
        let b = simulated_annealing(&g, AnnealingSchedule::default(), 10);
        assert_eq!(a.cut, b.cut);
    }

    #[test]
    fn empty_graph_ok() {
        let g = qq_graph::Graph::new(0);
        let sa = simulated_annealing(&g, AnnealingSchedule::default(), 0);
        assert_eq!(sa.value, 0.0);
    }
}
