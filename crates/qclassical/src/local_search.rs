//! One-exchange local search (hill climbing on single-node flips).
//!
//! Mirrors NetworkX's `one_exchange`: start from a seeded random cut, and
//! while any node flip strictly increases the cut value, flip the node with
//! the largest gain. Terminates at a 1-flip local optimum, which is always
//! ≥ half the total positive weight.

use crate::CutResult;
use qq_graph::{Cut, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hill-climb single-node flips to a local optimum.
pub fn one_exchange(g: &Graph, seed: u64) -> CutResult {
    let n = g.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cut = Cut::from_fn(n, |_| rng.gen::<bool>());

    // gains[v] = Δcut if v flips; updated incrementally after each flip.
    let mut gains: Vec<f64> = (0..n as NodeId).map(|v| cut.flip_gain(g, v)).collect();
    loop {
        let best =
            (0..n).max_by(|&a, &b| gains[a].total_cmp(&gains[b])).filter(|&v| gains[v] > 1e-12);
        let Some(v) = best else { break };
        cut.flip_node(v as NodeId);
        gains[v] = -gains[v];
        let side_v = cut.get(v as NodeId);
        for &(u, w) in g.neighbors(v as NodeId) {
            // edge (u,v) changed cut-status; u's gain shifts by ±2w
            if cut.get(u) == side_v {
                gains[u as usize] += 2.0 * w;
            } else {
                gains[u as usize] -= 2.0 * w;
            }
        }
    }
    CutResult::new(cut, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_graph::generators::{self, WeightKind};

    #[test]
    fn reaches_local_optimum() {
        let g = generators::erdos_renyi(30, 0.3, WeightKind::Random01, 3);
        let r = one_exchange(&g, 11);
        // no single flip may improve
        for v in 0..30 {
            assert!(r.cut.flip_gain(&g, v) <= 1e-9, "node {v} still improves");
        }
    }

    #[test]
    fn beats_half_total_weight() {
        let g = generators::erdos_renyi(50, 0.2, WeightKind::Uniform, 8);
        let r = one_exchange(&g, 2);
        assert!(r.value >= g.total_weight() / 2.0);
    }

    #[test]
    fn solves_bipartite_graph_exactly() {
        // star graphs are bipartite: optimal cut = all edges
        let g = generators::star(12);
        let r = one_exchange(&g, 4);
        assert_eq!(r.value, 11.0);
    }

    #[test]
    fn incremental_gains_match_recomputation() {
        let g = generators::erdos_renyi(20, 0.4, WeightKind::Random01, 6);
        let r = one_exchange(&g, 9);
        assert!((r.value - r.cut.value(&g)).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::erdos_renyi(25, 0.3, WeightKind::Uniform, 0);
        assert_eq!(one_exchange(&g, 5).cut, one_exchange(&g, 5).cut);
    }
}
