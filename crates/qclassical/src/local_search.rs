//! One-exchange local search (hill climbing on single-node flips).
//!
//! Mirrors NetworkX's `one_exchange`: start from a seeded random cut, and
//! while any node flip strictly increases the cut value, flip the node with
//! the largest gain. Terminates at a 1-flip local optimum, which is always
//! ≥ half the total positive weight.
//!
//! [`one_exchange_from`] is the restricted variant: the same climb, but
//! starting from a caller-supplied cut and flipping only a candidate
//! subset of nodes. QAOA² uses it as the post-merge cut polish — a
//! one-exchange confined to the partition's boundary nodes, the only
//! place where the divide-and-conquer composition can have left local
//! slack.

use crate::CutResult;
use qq_graph::{Cut, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hill-climb single-node flips to a local optimum.
pub fn one_exchange(g: &Graph, seed: u64) -> CutResult {
    let n = g.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let all: Vec<NodeId> = (0..n as NodeId).collect();
    let cut = climb(g, Cut::from_fn(n, |_| rng.gen::<bool>()), &all);
    CutResult::new(cut, g)
}

/// Hill-climb single-node flips restricted to `candidates`, starting
/// from `start`. The returned cut's value is never below the starting
/// cut's (zero improving flips leave it untouched), so this is safe to
/// apply unconditionally as a polish. Deterministic: no randomness, the
/// largest-gain candidate flips first (last index wins exact ties, as
/// in [`one_exchange`]).
pub fn one_exchange_from(g: &Graph, start: Cut, candidates: &[NodeId]) -> CutResult {
    assert_eq!(start.len(), g.num_nodes(), "cut and graph must agree on node count");
    CutResult::new(climb(g, start, candidates), g)
}

/// The shared climb: while any candidate flip strictly increases the
/// cut value, flip the largest-gain candidate, updating gains
/// incrementally.
fn climb(g: &Graph, mut cut: Cut, candidates: &[NodeId]) -> Cut {
    // gains[v] = Δcut if v flips; updated incrementally after each flip.
    // Only candidate gains are ever *read*, so initialization is
    // proportional to the candidate set (the boundary-polish caller
    // passes a small subset of a large graph); incremental updates
    // below may write non-candidate entries, which is harmless.
    let mut gains: Vec<f64> = vec![0.0; g.num_nodes()];
    for &v in candidates {
        gains[v as usize] = cut.flip_gain(g, v);
    }
    loop {
        let best = candidates
            .iter()
            .copied()
            .max_by(|&a, &b| gains[a as usize].total_cmp(&gains[b as usize]))
            .filter(|&v| gains[v as usize] > 1e-12);
        let Some(v) = best else { break };
        cut.flip_node(v);
        gains[v as usize] = -gains[v as usize];
        let side_v = cut.get(v);
        for &(u, w) in g.neighbors(v) {
            // edge (u,v) changed cut-status; u's gain shifts by ±2w
            if cut.get(u) == side_v {
                gains[u as usize] += 2.0 * w;
            } else {
                gains[u as usize] -= 2.0 * w;
            }
        }
    }
    cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_graph::generators::{self, WeightKind};

    #[test]
    fn reaches_local_optimum() {
        let g = generators::erdos_renyi(30, 0.3, WeightKind::Random01, 3);
        let r = one_exchange(&g, 11);
        // no single flip may improve
        for v in 0..30 {
            assert!(r.cut.flip_gain(&g, v) <= 1e-9, "node {v} still improves");
        }
    }

    #[test]
    fn beats_half_total_weight() {
        let g = generators::erdos_renyi(50, 0.2, WeightKind::Uniform, 8);
        let r = one_exchange(&g, 2);
        assert!(r.value >= g.total_weight() / 2.0);
    }

    #[test]
    fn solves_bipartite_graph_exactly() {
        // star graphs are bipartite: optimal cut = all edges
        let g = generators::star(12);
        let r = one_exchange(&g, 4);
        assert_eq!(r.value, 11.0);
    }

    #[test]
    fn incremental_gains_match_recomputation() {
        let g = generators::erdos_renyi(20, 0.4, WeightKind::Random01, 6);
        let r = one_exchange(&g, 9);
        assert!((r.value - r.cut.value(&g)).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::erdos_renyi(25, 0.3, WeightKind::Uniform, 0);
        assert_eq!(one_exchange(&g, 5).cut, one_exchange(&g, 5).cut);
    }

    #[test]
    fn restricted_climb_never_decreases_the_start_value() {
        let g = generators::erdos_renyi(30, 0.25, WeightKind::Random01, 12);
        for seed in 0..5u64 {
            let start = Cut::from_fn(30, |v| (seed >> (v % 13)) & 1 == 1);
            let before = start.value(&g);
            let candidates: Vec<NodeId> = (0..30).filter(|v| v % 3 != 0).collect();
            let r = one_exchange_from(&g, start, &candidates);
            assert!(r.value >= before - 1e-12, "seed {seed}: {} < {before}", r.value);
        }
    }

    #[test]
    fn restricted_climb_only_flips_candidates() {
        let g = generators::erdos_renyi(24, 0.3, WeightKind::Uniform, 7);
        let start = Cut::new(24);
        let candidates: Vec<NodeId> = (0..12).collect();
        let r = one_exchange_from(&g, start.clone(), &candidates);
        for v in 12..24 {
            assert_eq!(r.cut.get(v), start.get(v), "non-candidate {v} flipped");
        }
    }

    #[test]
    fn restricted_climb_reaches_candidate_local_optimum() {
        let g = generators::erdos_renyi(20, 0.35, WeightKind::Random01, 4);
        let candidates: Vec<NodeId> = (0..20).filter(|v| v % 2 == 0).collect();
        let r = one_exchange_from(&g, Cut::new(20), &candidates);
        for &v in &candidates {
            assert!(r.cut.flip_gain(&g, v) <= 1e-9, "candidate {v} still improves");
        }
    }

    #[test]
    fn unrestricted_climb_from_matches_one_exchange() {
        // one_exchange == climb over all nodes from the same seeded start
        let g = generators::erdos_renyi(28, 0.25, WeightKind::Random01, 9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let start = Cut::from_fn(28, |_| rng.gen::<bool>());
        let all: Vec<NodeId> = (0..28).collect();
        let restricted = one_exchange_from(&g, start, &all);
        let direct = one_exchange(&g, 3);
        assert_eq!(restricted.cut, direct.cut);
    }

    #[test]
    fn empty_candidate_set_is_identity() {
        let g = generators::erdos_renyi(10, 0.4, WeightKind::Uniform, 1);
        let start = Cut::from_fn(10, |v| v % 2 == 0);
        let r = one_exchange_from(&g, start.clone(), &[]);
        assert_eq!(r.cut, start);
    }
}
