//! Vendored, API-compatible subset of [`rand`](https://docs.rs/rand).
//!
//! No network route to crates.io exists in this build environment, so the
//! workspace vendors the slice of the rand surface the suite uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen::<f64 | bool>`
//! and `Rng::gen_range(Range<integer>)`.
//!
//! [`rngs::StdRng`] is **xoshiro256++** seeded through SplitMix64 — a
//! different stream than upstream rand's ChaCha12-based `StdRng`, but the
//! suite only relies on determinism-per-seed and statistical quality, both
//! of which xoshiro256++ provides (it passes BigCrush). Streams are stable
//! across platforms and releases of this vendor crate.

#![forbid(unsafe_code)]

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset: `seed_from_u64` only, which is the only
/// constructor the suite uses).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value samplable uniformly from an `RngCore`. Backs [`Rng::gen`], the
/// stand-in for upstream's `Standard` distribution.
pub trait StandardSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits (upstream's
    /// `Standard` for `f64`).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// An integer type usable with [`Rng::gen_range`].
pub trait UniformInt: Copy {
    /// Draw uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // widening-multiply range reduction (Lemire); the bias is
                // < 2^-64 and irrelevant for simulation workloads
                let hi64 = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + hi64) as Self
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32);

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a half-open integer range.
    fn gen_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), state expanded from the seed with SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4700..5300).contains(&heads), "{heads}");
    }
}
