//! Vendored, API-compatible subset of
//! [`crossbeam`](https://docs.rs/crossbeam).
//!
//! No network route to crates.io exists in this build environment, so the
//! workspace vendors the one piece of crossbeam the suite uses: unbounded
//! MPSC channels (`crossbeam::channel::{unbounded, Sender, Receiver}`).
//! `std::sync::mpsc` provides the exact semantics needed by `qq-hpc`'s
//! communicator — each rank is the sole consumer of its own receiver, so
//! crossbeam's MPMC capability is never exercised.

#![forbid(unsafe_code)]

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half; clonable across producer threads.
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when all receivers are gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Debug must not require `T: Debug` (upstream prints the payload
    // opaquely so callers can `.expect()` on any message type).
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned when all senders are gone and the buffer is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Queue `msg`; never blocks (unbounded buffering).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue the next message, blocking until one arrives.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0.try_recv().map_err(|_| RecvError)
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(5i32).unwrap();
        tx.send(6).unwrap();
        assert_eq!(rx.recv(), Ok(5));
        assert_eq!(rx.recv(), Ok(6));
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || tx.send(1u8).unwrap());
            s.spawn(move || tx2.send(2u8).unwrap());
            let mut got = [rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, [1, 2]);
        });
    }

    #[test]
    fn recv_errors_after_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
