//! Vendored, API-compatible subset of [`rayon`](https://docs.rs/rayon).
//!
//! This build environment has no network route to crates.io, so the
//! workspace vendors the small slice of the rayon surface the suite
//! actually uses (`par_iter`, `par_iter_mut`, `into_par_iter`,
//! `par_chunks`/`par_chunks_mut` plus the adapter chain: `map`, `zip`,
//! `enumerate`, `cloned`, `filter`, `flat_map`, `for_each`, `sum`,
//! `reduce`, `collect`).
//!
//! Execution is **sequential**: every parallel iterator delegates to the
//! equivalent `std` iterator. That keeps semantics identical to rayon for
//! the deterministic, order-preserving operations used here (rayon's
//! indexed parallel iterators guarantee the same item order), and on the
//! single-core containers this repo builds in it is also the fastest
//! schedule. Swapping the real crate back in requires only deleting this
//! vendor entry from the workspace manifest — no call site changes.

/// The adapter and entry-point traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// A "parallel" iterator: a thin newtype over a sequential iterator that
/// exposes rayon's method names (notably `reduce(identity, op)`, whose
/// signature differs from `std::iter::Iterator::reduce`).
pub struct ParallelIterator<I>(I);

impl<I: Iterator> ParallelIterator<I> {
    /// Map each item.
    pub fn map<R, F>(self, f: F) -> ParallelIterator<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> R,
    {
        ParallelIterator(self.0.map(f))
    }

    /// Map each item to an iterator and flatten.
    pub fn flat_map<U, F>(self, f: F) -> ParallelIterator<std::iter::FlatMap<I, U, F>>
    where
        U: IntoIterator,
        F: FnMut(I::Item) -> U,
    {
        ParallelIterator(self.0.flat_map(f))
    }

    /// Keep items satisfying the predicate.
    pub fn filter<F>(self, f: F) -> ParallelIterator<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        ParallelIterator(self.0.filter(f))
    }

    /// Pair up with another (parallel) iterator.
    pub fn zip<J>(self, other: J) -> ParallelIterator<std::iter::Zip<I, J::IntoIter>>
    where
        J: IntoIterator,
    {
        ParallelIterator(self.0.zip(other))
    }

    /// Attach the item index.
    pub fn enumerate(self) -> ParallelIterator<std::iter::Enumerate<I>> {
        ParallelIterator(self.0.enumerate())
    }

    /// Clone referenced items.
    pub fn cloned<'a, T>(self) -> ParallelIterator<std::iter::Cloned<I>>
    where
        I: Iterator<Item = &'a T>,
        T: Clone + 'a,
    {
        ParallelIterator(self.0.cloned())
    }

    /// Run `f` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        self.0.for_each(f)
    }

    /// Sum the items.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.0.sum()
    }

    /// Count the items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Rayon-style reduce: fold from `identity()` with `op`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Collect into any `FromIterator` target (including
    /// `Result<Vec<_>, E>`, rayon's short-circuiting collect).
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        self.0.collect()
    }
}

impl<I: Iterator> IntoIterator for ParallelIterator<I> {
    type Item = I::Item;
    type IntoIter = I;

    fn into_iter(self) -> I {
        self.0
    }
}

/// Entry point mirroring `rayon::iter::IntoParallelIterator`, implemented
/// for everything that is already sequentially iterable (ranges, vectors,
/// options, …).
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParallelIterator<Self::IntoIter> {
        ParallelIterator(self.into_iter())
    }
}

impl<T: IntoIterator> IntoParallelIterator for T {}

/// Shared-slice entry points (`rayon::slice::ParallelSlice` +
/// `IntoParallelRefIterator` rolled together).
pub trait ParallelSlice<T> {
    /// Parallel iterator over references.
    fn par_iter(&self) -> ParallelIterator<std::slice::Iter<'_, T>>;
    /// Parallel iterator over `size`-element chunks.
    fn par_chunks(&self, size: usize) -> ParallelIterator<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParallelIterator<std::slice::Iter<'_, T>> {
        ParallelIterator(self.iter())
    }

    fn par_chunks(&self, size: usize) -> ParallelIterator<std::slice::Chunks<'_, T>> {
        ParallelIterator(self.chunks(size))
    }
}

/// Mutable-slice entry points (`rayon::slice::ParallelSliceMut` +
/// `IntoParallelRefMutIterator` rolled together).
pub trait ParallelSliceMut<T> {
    /// Parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> ParallelIterator<std::slice::IterMut<'_, T>>;
    /// Parallel iterator over mutable `size`-element chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParallelIterator<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParallelIterator<std::slice::IterMut<'_, T>> {
        ParallelIterator(self.iter_mut())
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParallelIterator<std::slice::ChunksMut<'_, T>> {
        ParallelIterator(self.chunks_mut(size))
    }
}

/// `rayon::join`: run both closures (sequentially here) and return both
/// results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_roundtrip() {
        let v: Vec<u64> = (0u64..8).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn slice_par_iter_sum() {
        let v = [1.0f64, 2.0, 3.5];
        let s: f64 = v.par_iter().map(|x| x * 2.0).sum();
        assert!((s - 13.0).abs() < 1e-12);
    }

    #[test]
    fn reduce_with_identity() {
        let v = [3.0f64, -1.0, 7.0];
        let m = v.par_iter().cloned().reduce(|| f64::MIN, f64::max);
        assert_eq!(m, 7.0);
    }

    #[test]
    fn chunks_mut_enumerate() {
        let mut v = vec![0usize; 8];
        v.par_chunks_mut(4).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i;
            }
        });
        assert_eq!(v, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn zip_mutates_in_lockstep() {
        let mut a = vec![1i64, 2, 3];
        let b = [10i64, 20, 30];
        a.par_iter_mut().zip(b.par_iter()).for_each(|(x, y)| *x += y);
        assert_eq!(a, vec![11, 22, 33]);
    }

    #[test]
    fn collect_result_short_circuits() {
        let r: Result<Vec<i32>, &str> =
            [1, 2, 3].par_iter().map(|&x| if x == 2 { Err("two") } else { Ok(x) }).collect();
        assert_eq!(r, Err("two"));
    }
}
