//! Vendored, API-compatible subset of [`rayon`](https://docs.rs/rayon).
//!
//! This build environment has no network route to crates.io, so the
//! workspace vendors the slice of the rayon surface the suite actually
//! uses (`par_iter`, `par_iter_mut`, `into_par_iter` on ranges and
//! vectors, `par_chunks`/`par_chunks_mut`, plus the adapter chain: `map`,
//! `zip`, `enumerate`, `cloned`, `filter`, `flat_map`, `for_each`, `sum`,
//! `count`, `reduce`, `collect`) and `rayon::join`.
//!
//! Unlike the PR-1 shim this executor is **really parallel**: work runs on
//! a lazily-initialized global pool of `std::thread` workers, each owning
//! a crossbeam-style stealing deque (see [`pool`]): a terminal operation
//! places contiguous runs of its chunks — whole subtrees of the split
//! tree — on the workers' deques, owners drain their own deque front to
//! back, and an idle worker steals the trailing task of the first
//! non-empty deque it finds. `RAYON_NUM_THREADS` controls the worker
//! count exactly as upstream; `1` runs everything inline on the calling
//! thread.
//!
//! # Determinism
//!
//! Floating-point `sum`/`reduce` must give bit-identical results at any
//! thread count, so the execution model is a **fixed split tree**:
//!
//! * a parallel iterator is a splittable description of work over a
//!   source index range;
//! * every terminal operation splits the source into a power-of-two
//!   number of contiguous chunks determined *only* by the source length
//!   and a per-source grain constant — never by the thread count, pool
//!   state, or load;
//! * each chunk is folded sequentially left-to-right, and the per-chunk
//!   partials are combined sequentially in chunk order.
//!
//! Where those chunks *execute* (pool workers, the calling thread when
//! the input is below the grain threshold, inline on a worker for
//! nested parallelism, or a worker that *stole* the chunk from a busy
//! sibling's deque) is invisible to the result: every chunk reports
//! `(index, partial)` and the caller combines partials in chunk order.
//! This is stricter than upstream rayon, whose work-stealing **join
//! tree** makes float reductions run-to-run nondeterministic — here
//! stealing moves whole pre-split chunks and never re-splits them, so
//! the reduction tree is fixed even though the schedule is dynamic; the
//! suite's reproducibility guarantees (DESIGN.md §10) rely on that
//! contract.
//!
//! `enumerate`/`zip` are restricted to index-preserving chains
//! ([`IndexedParallelIterator`]) exactly as upstream restricts them, so
//! `filter`/`flat_map` cannot desynchronize indices. `collect` preserves
//! item order (chunks are concatenated in source order); collecting into
//! `Result`/`Option` returns the smallest-index error, matching the
//! sequential short-circuit *result* — but chunks already dispatched run
//! to completion first (speculative execution, as upstream rayon also
//! allows), so don't rely on an early error skipping sibling work.
//!
//! Swapping the real crate back in requires only deleting this vendor
//! entry from the workspace manifest — no call-site changes — except for
//! [`sequential_scope`] and [`steal_count`], clearly-marked vendor
//! extensions used only by tests and benches.

#![deny(unsafe_op_in_unsafe_fn)]

// In release builds the shim is transparent and `hb::enabled()` is
// const-false, so the shim-side hooks have no callers — expected, not a
// defect; the module is kept whole so both cfgs see the same source.
#[cfg_attr(not(debug_assertions), allow(dead_code))]
pub mod hb;
mod pool;
pub mod proto;
pub mod shim;

pub use pool::{
    debug_stats, force_steal_mode, join, sequential_scope, steal_count, PoolDebugStats,
};

/// The adapter and entry-point traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

/// Number of threads the global pool executes on (1 = inline only).
pub fn current_num_threads() -> usize {
    pool::current_num_threads()
}

/// Default minimum source elements per chunk. Below this a source is not
/// split at all (inline sequential execution — small inputs never pay
/// pool overhead). Sources whose elements are themselves large work items
/// (slice chunks) override [`ParallelIterator::grain`] to 1.
pub const DEFAULT_GRAIN: usize = 1 << 12;

/// Fixed upper bound on the number of chunks a terminal operation splits
/// into. A constant (never derived from the thread count) so that chunk
/// boundaries — and therefore float reduction trees — are identical at
/// any `RAYON_NUM_THREADS`.
const MAX_CHUNKS: usize = 128;

/// Power-of-two chunk count for a source of `len` elements: the largest
/// `c ≤ MAX_CHUNKS` such that every chunk still holds at least `grain`
/// elements. Depends only on its arguments (determinism).
fn chunk_count(len: usize, grain: usize) -> usize {
    let grain = grain.max(1);
    let mut c = 1usize;
    while c < MAX_CHUNKS && len / (c * 2) >= grain {
        c *= 2;
    }
    c
}

/// Recursively halve `p` into exactly `chunks` (a power of two) parts.
/// Split points depend only on `split_len` and `chunks`.
fn split_into<P: ParallelIterator>(p: P, chunks: usize, out: &mut Vec<P>) {
    if chunks <= 1 {
        out.push(p);
    } else {
        let mid = p.split_len() / 2;
        let (left, right) = p.split_at(mid);
        split_into(left, chunks / 2, out);
        split_into(right, chunks / 2, out);
    }
}

/// A parallel iterator: a splittable, sendable description of a
/// computation over a contiguous source index range.
///
/// The three required methods make a type splittable; the provided
/// methods are the rayon adapter/terminal surface. All terminals follow
/// the fixed-split-tree contract described in the crate docs.
pub trait ParallelIterator: Sized + Send {
    /// Item produced by the iterator.
    type Item: Send;
    /// The equivalent sequential iterator one part runs.
    type Seq: Iterator<Item = Self::Item>;

    /// Source length in *split units* (source elements, not necessarily
    /// output items — `filter`/`flat_map` change the output count but
    /// split by source index).
    fn split_len(&self) -> usize;

    /// Split into `[0, index)` and `[index, len)` parts.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Convert one part into its sequential iterator.
    fn into_seq(self) -> Self::Seq;

    /// Minimum split units per chunk; see [`DEFAULT_GRAIN`].
    fn grain(&self) -> usize {
        DEFAULT_GRAIN
    }

    // ---------------------------------------------------------- adapters

    /// Map each item. The closure is cloned per chunk, so it must be
    /// `Clone` (capture by reference or `Copy` data — upstream rayon
    /// shares `&F` instead, which is the same restriction in practice).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Clone + Send + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Map each item to an iterator and flatten, preserving order.
    fn flat_map<U, F>(self, f: F) -> FlatMap<Self, U, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Clone + Send + Sync,
    {
        FlatMap { base: self, f, _marker: std::marker::PhantomData }
    }

    /// Keep items satisfying the predicate, preserving order.
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Clone + Send + Sync,
    {
        Filter { base: self, f }
    }

    /// Clone referenced items.
    fn cloned<'a, T>(self) -> Cloned<Self>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: Clone + Send + Sync + 'a,
    {
        Cloned(self)
    }

    // --------------------------------------------------------- terminals

    /// Run `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        pool::execute_ordered(self.into_parts(), |part| part.into_seq().for_each(&f));
    }

    /// Sum the items: sequential per-chunk sums combined in chunk order
    /// (bit-identical at any thread count).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        pool::execute_ordered(self.into_parts(), |part| part.into_seq().sum::<S>())
            .into_iter()
            .sum()
    }

    /// Count the items.
    fn count(self) -> usize {
        pool::execute_ordered(self.into_parts(), |part| part.into_seq().count()).into_iter().sum()
    }

    /// Rayon-style reduce: fold each chunk from `identity()`, then fold
    /// the chunk partials in chunk order from `identity()` again.
    /// Bit-identical at any thread count; as with upstream, `op` should
    /// be associative and `identity()` its neutral element.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        pool::execute_ordered(self.into_parts(), |part| part.into_seq().fold(identity(), &op))
            .into_iter()
            .fold(identity(), &op)
    }

    /// Collect into any `FromIterator` target. Chunks are concatenated in
    /// source order, so `Vec` collects are order-preserving and
    /// `Result`/`Option` collects return the smallest-index failure —
    /// the sequential short-circuit *result*, though all chunks still
    /// run to completion (speculative execution).
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        pool::execute_ordered(self.into_parts(), |part| part.into_seq().collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    }

    /// Split into the fixed chunk list every terminal executes over.
    #[doc(hidden)]
    fn into_parts(self) -> Vec<Self> {
        let chunks = chunk_count(self.split_len(), self.grain());
        let mut parts = Vec::with_capacity(chunks);
        split_into(self, chunks, &mut parts);
        parts
    }
}

/// Marker + adapters for iterators whose split index corresponds 1:1 with
/// output items (slices, ranges, vecs, and `map`/`cloned`/`enumerate`/
/// `zip` chains over them — not `filter`/`flat_map`). Mirrors upstream's
/// `IndexedParallelIterator`, which gates the same adapters.
pub trait IndexedParallelIterator: ParallelIterator {
    /// Attach the global item index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self, offset: 0 }
    }

    /// Pair up with another indexed parallel iterator; both sides split
    /// at the same indices, so pairs match the sequential zip.
    fn zip<J>(self, other: J) -> Zip<Self, J>
    where
        J: IndexedParallelIterator,
    {
        Zip { a: self, b: other }
    }

    /// Set the minimum number of items per split piece (upstream rayon's
    /// `with_min_len`). The suite uses `with_min_len(1)` where each item
    /// is itself a coarse unit of work (a sub-graph solve, a chunk pair)
    /// so the fixed split tree fans out per item instead of treating the
    /// short list as "small input". A constant argument keeps chunk
    /// boundaries — and float reductions — deterministic.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen { base: self, min: min.max(1) }
    }
}

// ===================================================================
// Sources
// ===================================================================

/// Shared-slice entry points (`rayon::slice::ParallelSlice` +
/// `IntoParallelRefIterator` rolled together).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over references.
    fn par_iter(&self) -> SliceIter<'_, T>;
    /// Parallel iterator over `size`-element chunks (each chunk is one
    /// work item, so chunked iterators split down to single chunks).
    fn par_chunks(&self, size: usize) -> SliceChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }

    fn par_chunks(&self, size: usize) -> SliceChunks<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        SliceChunks { slice: self, size }
    }
}

/// Mutable-slice entry points (`rayon::slice::ParallelSliceMut` +
/// `IntoParallelRefMutIterator` rolled together).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> SliceIterMut<'_, T>;
    /// Parallel iterator over mutable `size`-element chunks.
    fn par_chunks_mut(&mut self, size: usize) -> SliceChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> SliceIterMut<'_, T> {
        SliceIterMut { slice: self }
    }

    fn par_chunks_mut(&mut self, size: usize) -> SliceChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        SliceChunksMut { slice: self, size }
    }
}

/// Entry point mirroring `rayon::iter::IntoParallelIterator`; implemented
/// for vectors and integer ranges (the owned sources the suite uses).
pub trait IntoParallelIterator {
    /// Resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn split_len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index);
        (SliceIter { slice: l }, SliceIter { slice: r })
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

impl<T: Sync> IndexedParallelIterator for SliceIter<'_, T> {}

/// Parallel iterator over `&mut [T]`.
pub struct SliceIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for SliceIterMut<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;

    fn split_len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index);
        (SliceIterMut { slice: l }, SliceIterMut { slice: r })
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.iter_mut()
    }
}

impl<T: Send> IndexedParallelIterator for SliceIterMut<'_, T> {}

/// Parallel iterator over `size`-element chunks of `&[T]`.
pub struct SliceChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for SliceChunks<'a, T> {
    type Item = &'a [T];
    type Seq = std::slice::Chunks<'a, T>;

    fn split_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index * self.size);
        (SliceChunks { slice: l, size: self.size }, SliceChunks { slice: r, size: self.size })
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks(self.size)
    }

    fn grain(&self) -> usize {
        1 // each chunk is one coarse work item
    }
}

impl<T: Sync> IndexedParallelIterator for SliceChunks<'_, T> {}

/// Parallel iterator over mutable `size`-element chunks of `&mut [T]`.
pub struct SliceChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for SliceChunksMut<'a, T> {
    type Item = &'a mut [T];
    type Seq = std::slice::ChunksMut<'a, T>;

    fn split_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index * self.size);
        (SliceChunksMut { slice: l, size: self.size }, SliceChunksMut { slice: r, size: self.size })
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks_mut(self.size)
    }

    fn grain(&self) -> usize {
        1 // each chunk is one coarse work item
    }
}

impl<T: Send> IndexedParallelIterator for SliceChunksMut<'_, T> {}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    range: std::ops::Range<T>,
}

macro_rules! range_impl {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
            type Seq = std::ops::Range<$t>;

            fn split_len(&self) -> usize {
                if self.range.end <= self.range.start {
                    0
                } else {
                    (self.range.end - self.range.start) as usize
                }
            }

            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.range.start + index as $t;
                (
                    RangeIter { range: self.range.start..mid },
                    RangeIter { range: mid..self.range.end },
                )
            }

            fn into_seq(self) -> Self::Seq {
                self.range
            }
        }

        impl IndexedParallelIterator for RangeIter<$t> {}

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = RangeIter<$t>;
            type Item = $t;

            fn into_par_iter(self) -> RangeIter<$t> {
                RangeIter { range: self }
            }
        }
    )*};
}

range_impl!(u32, u64, usize, i32, i64);

/// Parallel iterator over an owned `Vec<T>`.
pub struct VecIter<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    type Seq = std::vec::IntoIter<T>;

    fn split_len(&self) -> usize {
        self.vec.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.vec.split_off(index);
        (self, VecIter { vec: tail })
    }

    fn into_seq(self) -> Self::Seq {
        self.vec.into_iter()
    }
}

impl<T: Send> IndexedParallelIterator for VecIter<T> {}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;

    fn into_par_iter(self) -> VecIter<T> {
        VecIter { vec: self }
    }
}

// ===================================================================
// Adapters
// ===================================================================

/// See [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Clone + Send + Sync,
    R: Send,
{
    type Item = R;
    type Seq = std::iter::Map<P::Seq, F>;

    fn split_len(&self) -> usize {
        self.base.split_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (Map { base: l, f: self.f.clone() }, Map { base: r, f: self.f })
    }

    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().map(self.f)
    }

    fn grain(&self) -> usize {
        self.base.grain()
    }
}

impl<P, R, F> IndexedParallelIterator for Map<P, F>
where
    P: IndexedParallelIterator,
    F: Fn(P::Item) -> R + Clone + Send + Sync,
    R: Send,
{
}

/// See [`ParallelIterator::filter`].
pub struct Filter<P, F> {
    base: P,
    f: F,
}

impl<P, F> ParallelIterator for Filter<P, F>
where
    P: ParallelIterator,
    F: Fn(&P::Item) -> bool + Clone + Send + Sync,
{
    type Item = P::Item;
    type Seq = std::iter::Filter<P::Seq, F>;

    fn split_len(&self) -> usize {
        self.base.split_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (Filter { base: l, f: self.f.clone() }, Filter { base: r, f: self.f })
    }

    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().filter(self.f)
    }

    fn grain(&self) -> usize {
        self.base.grain()
    }
}

/// See [`ParallelIterator::flat_map`].
pub struct FlatMap<P, U, F> {
    base: P,
    f: F,
    _marker: std::marker::PhantomData<fn() -> U>,
}

impl<P, U, F> ParallelIterator for FlatMap<P, U, F>
where
    P: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(P::Item) -> U + Clone + Send + Sync,
{
    type Item = U::Item;
    type Seq = std::iter::FlatMap<P::Seq, U, F>;

    fn split_len(&self) -> usize {
        self.base.split_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            FlatMap { base: l, f: self.f.clone(), _marker: std::marker::PhantomData },
            FlatMap { base: r, f: self.f, _marker: std::marker::PhantomData },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().flat_map(self.f)
    }

    fn grain(&self) -> usize {
        self.base.grain()
    }
}

/// See [`ParallelIterator::cloned`].
pub struct Cloned<P>(P);

impl<'a, T, P> ParallelIterator for Cloned<P>
where
    P: ParallelIterator<Item = &'a T>,
    T: Clone + Send + Sync + 'a,
{
    type Item = T;
    type Seq = std::iter::Cloned<P::Seq>;

    fn split_len(&self) -> usize {
        self.0.split_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at(index);
        (Cloned(l), Cloned(r))
    }

    fn into_seq(self) -> Self::Seq {
        self.0.into_seq().cloned()
    }

    fn grain(&self) -> usize {
        self.0.grain()
    }
}

impl<'a, T, P> IndexedParallelIterator for Cloned<P>
where
    P: IndexedParallelIterator<Item = &'a T>,
    T: Clone + Send + Sync + 'a,
{
}

/// See [`IndexedParallelIterator::with_min_len`].
pub struct MinLen<P> {
    base: P,
    min: usize,
}

impl<P: IndexedParallelIterator> ParallelIterator for MinLen<P> {
    type Item = P::Item;
    type Seq = P::Seq;

    fn split_len(&self) -> usize {
        self.base.split_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (MinLen { base: l, min: self.min }, MinLen { base: r, min: self.min })
    }

    fn into_seq(self) -> Self::Seq {
        self.base.into_seq()
    }

    fn grain(&self) -> usize {
        self.min
    }
}

impl<P: IndexedParallelIterator> IndexedParallelIterator for MinLen<P> {}

/// See [`IndexedParallelIterator::enumerate`].
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

impl<P: IndexedParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);
    type Seq = std::iter::Zip<std::ops::RangeFrom<usize>, P::Seq>;

    fn split_len(&self) -> usize {
        self.base.split_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Enumerate { base: l, offset: self.offset },
            Enumerate { base: r, offset: self.offset + index },
        )
    }

    fn into_seq(self) -> Self::Seq {
        (self.offset..).zip(self.base.into_seq())
    }

    fn grain(&self) -> usize {
        self.base.grain()
    }
}

impl<P: IndexedParallelIterator> IndexedParallelIterator for Enumerate<P> {}

/// See [`IndexedParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn split_len(&self) -> usize {
        self.a.split_len().min(self.b.split_len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }

    fn into_seq(self) -> Self::Seq {
        self.a.into_seq().zip(self.b.into_seq())
    }

    fn grain(&self) -> usize {
        self.a.grain().min(self.b.grain())
    }
}

impl<A, B> IndexedParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;
    use std::thread::ThreadId;

    // -------------------------------------------------- PR-1 suite (kept)

    #[test]
    fn map_collect_roundtrip() {
        let v: Vec<u64> = (0u64..8).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn slice_par_iter_sum() {
        let v = [1.0f64, 2.0, 3.5];
        let s: f64 = v.par_iter().map(|x| x * 2.0).sum();
        assert!((s - 13.0).abs() < 1e-12);
    }

    #[test]
    fn reduce_with_identity() {
        let v = [3.0f64, -1.0, 7.0];
        let m = v.par_iter().cloned().reduce(|| f64::MIN, f64::max);
        assert_eq!(m, 7.0);
    }

    #[test]
    fn chunks_mut_enumerate() {
        let mut v = vec![0usize; 8];
        v.par_chunks_mut(4).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i;
            }
        });
        assert_eq!(v, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn zip_mutates_in_lockstep() {
        let mut a = vec![1i64, 2, 3];
        let b = [10i64, 20, 30];
        a.par_iter_mut().zip(b.par_iter()).for_each(|(x, y)| *x += y);
        assert_eq!(a, vec![11, 22, 33]);
    }

    #[test]
    fn collect_result_short_circuits() {
        let r: Result<Vec<i32>, &str> =
            [1, 2, 3].par_iter().map(|&x| if x == 2 { Err("two") } else { Ok(x) }).collect();
        assert_eq!(r, Err("two"));
    }

    // ------------------------------------------- real-parallelism suite

    /// Inputs big enough to split into many chunks (default grain is 4096).
    const BIG: usize = crate::DEFAULT_GRAIN * 32;

    /// True when this process was explicitly pinned to one thread
    /// (`RAYON_NUM_THREADS=1`, the CI determinism leg) — the
    /// multi-thread observables below don't exist then.
    fn pinned_single_threaded() -> bool {
        crate::current_num_threads() < 2
    }

    #[test]
    fn pool_runs_on_multiple_os_threads() {
        if pinned_single_threaded() {
            return;
        }
        // without the env override the pool defaults to >= 2 workers,
        // even on single-core hosts
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        (0..BIG as u64).into_par_iter().for_each(|_| {
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        let seen = seen.into_inner().unwrap();
        assert!(seen.len() >= 2, "expected >= 2 distinct worker threads, saw {}", seen.len());
        assert!(
            !seen.contains(&std::thread::current().id()),
            "chunks run on pool workers, not the caller"
        );
    }

    #[test]
    fn join_runs_second_closure_on_worker() {
        if pinned_single_threaded() {
            return;
        }
        let here = std::thread::current().id();
        let (a, b) = crate::join(|| std::thread::current().id(), || std::thread::current().id());
        assert_eq!(a, here);
        assert_ne!(b, here, "join offloads `b` to the pool");
    }

    #[test]
    fn parallel_collect_preserves_order_at_scale() {
        let v: Vec<usize> = (0..BIG).into_par_iter().map(|x| x * 3).collect();
        assert_eq!(v.len(), BIG);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 3));
    }

    #[test]
    fn parallel_result_collect_reports_smallest_index_error() {
        let bad = [BIG / 2, BIG - 7];
        let r: Result<Vec<usize>, usize> = (0..BIG)
            .into_par_iter()
            .map(|x| if bad.contains(&x) { Err(x) } else { Ok(x) })
            .collect();
        assert_eq!(r, Err(BIG / 2));
    }

    #[test]
    fn join_propagates_panic_from_either_side() {
        let a = std::panic::catch_unwind(|| crate::join(|| panic!("left boom"), || 1));
        let payload = a.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"left boom"));

        let b = std::panic::catch_unwind(|| crate::join(|| 1, || panic!("right boom")));
        let payload = b.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"right boom"));
    }

    #[test]
    fn for_each_panic_propagates_after_all_chunks_finish() {
        let r = std::panic::catch_unwind(|| {
            (0..BIG).into_par_iter().for_each(|i| {
                if i == BIG / 3 {
                    panic!("chunk panic");
                }
            });
        });
        let payload = r.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"chunk panic"));
    }

    #[test]
    fn nested_parallelism_runs_inline_without_deadlock() {
        let mut rows = vec![vec![1.0f64; 64]; 256];
        rows.par_iter_mut().for_each(|row| {
            // nested parallel op on (potentially) a worker thread
            let s: f64 = row.par_iter().sum();
            row[0] = s;
        });
        assert!(rows.iter().all(|r| (r[0] - 64.0).abs() < 1e-12));
    }

    #[test]
    fn float_sum_bit_identical_pooled_vs_sequential_scope() {
        let data: Vec<f64> = (0..BIG).map(|i| (i as f64).sqrt().sin()).collect();
        let pooled: f64 = data.par_iter().cloned().sum();
        let inline: f64 = crate::sequential_scope(|| data.par_iter().cloned().sum());
        assert_eq!(pooled.to_bits(), inline.to_bits());

        let pooled_red = data.par_iter().cloned().reduce(|| 0.0, |a, b| a + b * 1.000000001);
        let inline_red = crate::sequential_scope(|| {
            data.par_iter().cloned().reduce(|| 0.0, |a, b| a + b * 1.000000001)
        });
        assert_eq!(pooled_red.to_bits(), inline_red.to_bits());
    }

    #[test]
    fn chunk_boundaries_independent_of_thread_count() {
        // chunk_count depends only on (len, grain) — spot-check the tree
        assert_eq!(crate::chunk_count(0, 1), 1);
        assert_eq!(crate::chunk_count(crate::DEFAULT_GRAIN, crate::DEFAULT_GRAIN), 1);
        assert_eq!(crate::chunk_count(2 * crate::DEFAULT_GRAIN, crate::DEFAULT_GRAIN), 2);
        assert_eq!(crate::chunk_count(usize::MAX / 2, 1), crate::MAX_CHUNKS);
        assert!(crate::MAX_CHUNKS.is_power_of_two());
    }

    #[test]
    fn small_inputs_run_inline() {
        // below the grain there is exactly one part — executed on the
        // calling thread with no pool round-trip
        let here = std::thread::current().id();
        let ids: Vec<ThreadId> =
            (0..16u32).into_par_iter().map(|_| std::thread::current().id()).collect();
        assert!(ids.iter().all(|&id| id == here));
    }

    #[test]
    fn filter_and_flat_map_preserve_order_in_parallel() {
        let v: Vec<usize> = (0..BIG).into_par_iter().filter(|x| x % 3 == 0).collect();
        let expect: Vec<usize> = (0..BIG).filter(|x| x % 3 == 0).collect();
        assert_eq!(v, expect);

        let v: Vec<usize> = (0..1000usize).into_par_iter().flat_map(|x| vec![x, x]).collect();
        let expect: Vec<usize> = (0..1000usize).flat_map(|x| vec![x, x]).collect();
        assert_eq!(v, expect);
    }

    /// Prove a queued task behind a busy one gets stolen: two chunk jobs
    /// land contiguously on the SAME worker deque (2·w parts split into
    /// w groups of two), the first blocks until the second has run — so
    /// only a thief on another worker can run the second and unblock it.
    /// Without stealing this deadlocks (caught by the wait timeout).
    #[test]
    fn idle_workers_steal_trailing_subtree_tasks() {
        if pinned_single_threaded() {
            return;
        }
        let w = crate::current_num_threads();
        let before = crate::steal_count();
        let flag = Mutex::new(false);
        let unblocked = std::sync::Condvar::new();
        let parts: Vec<usize> = (0..2 * w).collect();
        let results = crate::pool::execute_ordered(parts, |i| {
            match i {
                0 => {
                    // parts 0 and 1 form the first contiguous group, so
                    // part 1 sits behind us in our own deque
                    let guard = flag.lock().unwrap();
                    let (guard, timeout) = unblocked
                        .wait_timeout_while(guard, std::time::Duration::from_secs(10), |ran| !*ran)
                        .unwrap();
                    assert!(
                        *guard && !timeout.timed_out(),
                        "the task queued behind a blocked one was never stolen"
                    );
                }
                1 => {
                    *flag.lock().unwrap() = true;
                    unblocked.notify_all();
                }
                _ => {}
            }
            i
        });
        assert_eq!(results, (0..2 * w).collect::<Vec<_>>());
        assert!(crate::steal_count() > before, "completed without recording a steal");
    }

    #[test]
    fn mutations_visible_after_parallel_for_each() {
        let mut v = vec![0u64; BIG];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = (i as u64).wrapping_mul(2654435761));
        assert!(v.iter().enumerate().all(|(i, &x)| x == (i as u64).wrapping_mul(2654435761)));
    }

    /// Debug builds tag every pooled job and assert exactly-once
    /// execution at the pop site (`pool::debug::record_fired` panics the
    /// suite on any double fire — that assert is the real check). This
    /// test pins the observability half: the lifecycle and sync-shim
    /// counters actually move when a batch runs. Deltas are not compared
    /// exactly because sibling tests submit concurrently.
    #[test]
    fn debug_counters_move_when_a_batch_runs() {
        if pinned_single_threaded() {
            return;
        }
        let before = crate::debug_stats();
        let s: u64 = (0..64u64).into_par_iter().with_min_len(1).map(|x| x + 1).sum();
        assert_eq!(s, 64 * 65 / 2);
        let after = crate::debug_stats();
        assert!(after.jobs_submitted > before.jobs_submitted, "batch placed no pooled jobs");
        if cfg!(debug_assertions) {
            assert!(after.jobs_executed > before.jobs_executed, "no pooled job recorded firing");
            assert!(
                after.sync.lock_acquisitions > before.sync.lock_acquisitions,
                "instrumented shim saw no lock traffic"
            );
            assert!(after.sync.notifies > before.sync.notifies, "submission never notified");
        }
    }
}
