//! The global worker pool and the bridge that runs borrowed work on it.
//!
//! Workers are plain `std::thread`s fed through the vendored crossbeam
//! channels, one queue per worker with round-robin dispatch (no work
//! stealing — the iterator layer produces uniform chunks, so striping is
//! already balanced). The pool is lazily initialized on first use and
//! lives for the whole process.
//!
//! Three rules keep this sound and deadlock-free:
//!
//! 1. **Callers block until every job they submitted has reported.**
//!    [`execute_ordered`] transmutes borrowed closures to `'static` before
//!    queueing them; that is sound only because it never returns (or
//!    unwinds) before receiving exactly one result per job, so every
//!    borrow captured by a job outlives the job's execution.
//! 2. **Workers never wait on the pool.** A parallel operation invoked on
//!    a worker thread (nested parallelism) runs inline on that worker, so
//!    a job can always run to completion without needing a free slot —
//!    no circular waits.
//! 3. **Panics are ferried, not leaked.** Jobs run under `catch_unwind`
//!    and report `thread::Result`s; the caller re-raises the first panic
//!    (in chunk order, for determinism) only after all jobs have
//!    reported.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

/// A queued unit of work. Jobs are erased to `'static`; see the module
/// docs for why that is sound.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The process-wide worker pool. `None` when configured for one thread —
/// then every operation runs inline on the calling thread.
struct ThreadPool {
    queues: Vec<Sender<Job>>,
    next: AtomicUsize,
}

static POOL: OnceLock<Option<ThreadPool>> = OnceLock::new();

thread_local! {
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
    static FORCE_SEQUENTIAL: Cell<bool> = const { Cell::new(false) };
}

/// Worker count from the environment: `RAYON_NUM_THREADS` if set to a
/// positive integer (upstream's convention; `0` means "default"),
/// otherwise the available parallelism, floored at 2 so the parallel
/// code paths are exercised even on single-core CI containers.
fn configured_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => thread::available_parallelism().map_or(1, |n| n.get()).max(2),
    }
}

fn pool() -> Option<&'static ThreadPool> {
    POOL.get_or_init(|| {
        let n = configured_threads();
        if n <= 1 {
            return None;
        }
        let mut queues = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = unbounded::<Job>();
            thread::Builder::new()
                .name(format!("qq-rayon-{i}"))
                .spawn(move || worker(rx))
                .expect("failed to spawn rayon worker thread");
            queues.push(tx);
        }
        Some(ThreadPool { queues, next: AtomicUsize::new(0) })
    })
    .as_ref()
}

fn worker(rx: Receiver<Job>) {
    IS_WORKER.with(|w| w.set(true));
    // The sender side lives in a `static`, so `recv` only errors at
    // process teardown.
    while let Ok(job) = rx.recv() {
        job(); // every job catches panics internally
    }
}

impl ThreadPool {
    fn submit(&self, job: Job) {
        let k = self.next.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        // Send can only fail at process teardown; the job is then dropped,
        // which is fine because its caller is gone too.
        let _ = self.queues[k].send(job);
    }
}

/// Number of worker threads the pool runs (1 when inline-only).
pub(crate) fn current_num_threads() -> usize {
    pool().map_or(1, |p| p.queues.len())
}

/// True on pool worker threads; nested parallel operations check this and
/// run inline (rule 2 above).
pub(crate) fn on_worker_thread() -> bool {
    IS_WORKER.with(|w| w.get())
}

fn force_sequential() -> bool {
    FORCE_SEQUENTIAL.with(|f| f.get())
}

/// Run `f` with every parallel operation on this thread executing inline.
///
/// **Vendor extension, not part of upstream rayon.** Because reductions
/// use a fixed split tree (see `lib.rs`), results inside the scope are
/// bit-identical to pooled execution — this exists so tests and benches
/// can compare the two schedules within one process.
pub fn sequential_scope<R>(f: impl FnOnce() -> R) -> R {
    let prev = FORCE_SEQUENTIAL.with(|c| c.replace(true));
    let out = panic::catch_unwind(AssertUnwindSafe(f));
    FORCE_SEQUENTIAL.with(|c| c.set(prev));
    match out {
        Ok(r) => r,
        Err(p) => panic::resume_unwind(p),
    }
}

/// Run `f` over each part, returning results in part order.
///
/// This is the single execution primitive the iterator layer builds on.
/// The parts and the combine order are fixed by the caller, so the result
/// is identical whether the parts run pooled, inline, or on a worker.
pub(crate) fn execute_ordered<P, R, F>(parts: Vec<P>, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let n = parts.len();
    let pool = match pool() {
        Some(p) if n > 1 && !on_worker_thread() && !force_sequential() => p,
        _ => return parts.into_iter().map(f).collect(),
    };

    let (tx, rx) = unbounded::<(usize, thread::Result<R>)>();
    for (idx, part) in parts.into_iter().enumerate() {
        let job_tx = tx.clone();
        let f_ref = &f;
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let out = panic::catch_unwind(AssertUnwindSafe(|| f_ref(part)));
            let _ = job_tx.send((idx, out));
        });
        // SAFETY: the receive loop below gets exactly one message per job
        // before this function returns or unwinds, so `f` and the
        // borrows inside `part` outlive every queued job (rule 1).
        let job: Job = unsafe { std::mem::transmute(job) };
        pool.submit(job);
    }
    drop(tx);

    let mut slots: Vec<Option<thread::Result<R>>> = (0..n).map(|_| None).collect();
    for _ in 0..n {
        let (idx, out) = rx.recv().expect("rayon worker died with jobs outstanding");
        slots[idx] = Some(out);
    }

    let mut results = Vec::with_capacity(n);
    let mut panic_payload: Option<Box<dyn Any + Send>> = None;
    for slot in slots {
        match slot.expect("each job reports exactly once") {
            Ok(r) => results.push(r),
            Err(p) => {
                panic_payload.get_or_insert(p);
            }
        }
    }
    if let Some(p) = panic_payload {
        panic::resume_unwind(p);
    }
    results
}

/// `rayon::join`: run both closures, potentially in parallel, and return
/// both results. `b` is offloaded to the pool while `a` runs on the
/// calling thread; on a worker thread (or a one-thread pool) both run
/// inline. Panics propagate after **both** closures have finished, `a`'s
/// first — nothing a closure borrowed is still in use when the caller
/// unwinds.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = match pool() {
        Some(p) if !on_worker_thread() && !force_sequential() => p,
        _ => {
            let ra = a();
            let rb = b();
            return (ra, rb);
        }
    };

    let (tx, rx) = unbounded::<thread::Result<RB>>();
    let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
        let out = panic::catch_unwind(AssertUnwindSafe(b));
        let _ = tx.send(out);
    });
    // SAFETY: `rx.recv()` below waits for the job before this function
    // returns or unwinds, so `b`'s borrows outlive its execution.
    let job: Job = unsafe { std::mem::transmute(job) };
    pool.submit(job);

    let ra = panic::catch_unwind(AssertUnwindSafe(a));
    let rb = rx.recv().expect("rayon worker died during join");
    match (ra, rb) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(p), _) => panic::resume_unwind(p),
        (_, Err(p)) => panic::resume_unwind(p),
    }
}
