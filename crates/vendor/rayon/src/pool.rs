//! The global worker pool and the bridge that runs borrowed work on it.
//!
//! Workers own crossbeam-style stealing deques sitting *underneath* the
//! fixed power-of-two split tree (`lib.rs`): the chunk list a terminal
//! operation produces depends only on `(len, grain)`, and
//! [`execute_ordered`] places contiguous runs of those chunks — whole
//! subtrees — on each worker's deque. An owner pops from the *front* of
//! its deque (its oldest pending subtree, in chunk order, which keeps the
//! owner streaming through adjacent memory); an idle worker that finds
//! its own deque empty scans the others and steals from the *back* of the
//! first non-empty one — the victim's trailing chunk, i.e. the rightmost
//! subtree it has not started. Stealing therefore moves coarse tasks,
//! never re-splits them.
//!
//! Determinism survives the stealing because *placement is not
//! semantics*: every job reports `(chunk_index, result)` over a channel
//! and the caller combines the results in chunk order, so which worker
//! ran a chunk — or whether it was stolen twice on the way — is invisible
//! to every reduction. The f64 digests in `tests/determinism.rs` stay
//! bit-identical at any `RAYON_NUM_THREADS`.
//!
//! Idle workers park on a condvar guarded by a submission epoch: a worker
//! snapshots the epoch *before* scanning the deques and sleeps only while
//! the epoch is unchanged, so a submission racing with the scan can never
//! be missed (the bump happens after the push, and the snapshot happens
//! before the scan).
//!
//! Three rules keep this sound and deadlock-free:
//!
//! 1. **Callers block until every job they submitted has reported.**
//!    [`execute_ordered`] transmutes borrowed closures to `'static` before
//!    queueing them; that is sound only because it never returns (or
//!    unwinds) before receiving exactly one result per job, so every
//!    borrow captured by a job outlives the job's execution.
//! 2. **Workers never wait on the pool.** A parallel operation invoked on
//!    a worker thread (nested parallelism) runs inline on that worker, so
//!    a job can always run to completion without needing a free slot —
//!    no circular waits. (Workers *do* park when every deque is empty,
//!    but never while holding a job.)
//! 3. **Panics are ferried, not leaked.** Jobs run under `catch_unwind`
//!    and report `thread::Result`s; the caller re-raises the first panic
//!    (in chunk order, for determinism) only after all jobs have
//!    reported.
//!
//! The *policy* pieces of this protocol — batch placement, deque scan
//! order, which end each party pops, and the snapshot-before-scan
//! parking discipline — live in [`crate::proto`], shared with the
//! `qq-check` bounded model checker, and the sync primitives come
//! through [`crate::shim`] (instrumented in debug builds). Debug builds
//! additionally tag every queued job with a process-unique id and assert
//! at execution that no id ever fires twice (see [`debug`]), and the
//! `QQ_RAYON_FORCE_STEAL` environment variable switches to an
//! adversarial all-steals schedule ([`force_steal_mode`]) that the
//! determinism digest suite runs under.

use crate::hb;
use crate::proto;
use crate::shim::{Condvar, Mutex};
use crossbeam::channel::unbounded;
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;

/// A queued unit of work. Jobs are erased to `'static`; see the module
/// docs for why that is sound.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A queued job plus its ownership tag: a process-unique id assigned at
/// submission. In debug builds [`debug::record_fired`] asserts each id
/// fires exactly once, which turns a double-pop or double-steal race —
/// the bug class the deque locking exists to prevent — into an immediate
/// test failure instead of a silently doubled side effect.
type TaggedJob = (u64, Job);

/// Debug-build dynamic assertions over the job lifecycle. Release builds
/// compile the calls away; ids are still assigned (one relaxed
/// fetch-add) so the two cfgs queue identical data.
mod debug {
    use std::sync::atomic::AtomicU64;
    #[cfg(debug_assertions)]
    use std::sync::atomic::Ordering;

    /// Monotonic source of job ownership tags.
    pub static JOB_SEQ: AtomicU64 = AtomicU64::new(0);
    /// Total jobs pushed onto any deque.
    pub static SUBMITTED: AtomicU64 = AtomicU64::new(0);
    /// Total jobs popped (owner) or stolen and then executed.
    pub static EXECUTED: AtomicU64 = AtomicU64::new(0);

    /// Assert job `id` has not fired before, then record it.
    #[cfg(debug_assertions)]
    pub fn record_fired(id: u64) {
        use std::collections::HashSet;
        use std::sync::{Mutex, OnceLock};
        static FIRED: OnceLock<Mutex<HashSet<u64>>> = OnceLock::new();
        let fired = FIRED.get_or_init(|| Mutex::new(HashSet::new()));
        // INVARIANT: the registry lock is only held across HashSet ops
        // that do not panic; poisoning would itself be a harness bug.
        let mut fired = fired.lock().expect("job registry poisoned");
        // Bound the registry: long test runs submit millions of jobs and
        // the registry exists to catch *races*, which are local in time —
        // dropping ancient ids keeps the check while capping memory.
        if fired.len() >= 1 << 20 {
            fired.clear();
        }
        assert!(
            fired.insert(id),
            "pool protocol violation: job {id} executed twice (double pop/steal)"
        );
        EXECUTED.fetch_add(1, Ordering::Relaxed);
    }

    #[cfg(not(debug_assertions))]
    pub fn record_fired(_id: u64) {}
}

/// Debug-build pool observability: shim sync counters plus the job
/// lifecycle counters maintained by the ownership tags. All zeros in
/// release builds except `jobs_submitted` (tag assignment is always on).
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolDebugStats {
    /// Sync-shim counters (locks, parks, notifies).
    pub sync: crate::shim::ShimStats,
    /// Jobs pushed onto deques since process start.
    pub jobs_submitted: u64,
    /// Jobs executed since process start (debug builds only).
    pub jobs_executed: u64,
}

/// Snapshot the debug counters.
///
/// **Vendor extension, not part of upstream rayon.** Diagnostics only.
pub fn debug_stats() -> PoolDebugStats {
    PoolDebugStats {
        sync: crate::shim::stats(),
        jobs_submitted: debug::SUBMITTED.load(Ordering::Relaxed),
        jobs_executed: debug::EXECUTED.load(Ordering::Relaxed),
    }
}

/// Force-steal scheduling mode: when the `QQ_RAYON_FORCE_STEAL`
/// environment variable is set (to anything but `0`), every batch is
/// placed on a single deque and workers prefer stealing over draining
/// their own placements, so every task with an idle sibling worker runs
/// as a steal. Stealing changes placement only — never results — so the
/// determinism suite uses this mode as its adversarial schedule.
///
/// **Vendor extension, not part of upstream rayon.** Read once per
/// process (the pool is global and sized once).
pub fn force_steal_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::var("QQ_RAYON_FORCE_STEAL").is_ok_and(|v| v != "0"))
}

/// Shared pool state: one deque per worker plus the parking lot.
struct Inner {
    /// Per-worker job deques. Owners pop the front; thieves take the back.
    deques: Vec<Mutex<VecDeque<TaggedJob>>>,
    /// Rotates the worker a batch's first group (or a lone job) lands on,
    /// so concurrent batches don't all pile onto worker 0.
    next: AtomicUsize,
    /// Submission epoch; bumped (under the lock) after every push so
    /// parked workers re-scan. See the module docs for the no-lost-wakeup
    /// argument.
    epoch: Mutex<u64>,
    /// Signalled on every epoch bump.
    wakeup: Condvar,
    /// Jobs that ran on a worker other than the one they were placed on.
    steals: AtomicU64,
}

/// The process-wide worker pool. `None` when configured for one thread —
/// then every operation runs inline on the calling thread.
struct ThreadPool {
    inner: Arc<Inner>,
}

static POOL: OnceLock<Option<ThreadPool>> = OnceLock::new();

thread_local! {
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
    static FORCE_SEQUENTIAL: Cell<bool> = const { Cell::new(false) };
}

/// Worker count from the environment: `RAYON_NUM_THREADS` if set to a
/// positive integer (upstream's convention; `0` means "default"),
/// otherwise the available parallelism, floored at 2 so the parallel
/// code paths are exercised even on single-core CI containers.
fn configured_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => thread::available_parallelism().map_or(1, |n| n.get()).max(2),
    }
}

fn pool() -> Option<&'static ThreadPool> {
    POOL.get_or_init(|| {
        let n = configured_threads();
        if n <= 1 {
            return None;
        }
        let inner = Arc::new(Inner {
            deques: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            next: AtomicUsize::new(0),
            epoch: Mutex::new(0),
            wakeup: Condvar::new(),
            steals: AtomicU64::new(0),
        });
        for id in 0..n {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name(format!("qq-rayon-{id}"))
                .spawn(move || worker(&inner, id))
                .expect("failed to spawn rayon worker thread");
        }
        Some(ThreadPool { inner })
    })
    .as_ref()
}

fn worker(inner: &Inner, id: usize) {
    IS_WORKER.with(|w| w.set(true));
    // This loop is the runtime transcription of
    // `proto::ParkOrder::SnapshotBeforeScan` — the `qq-check` bounded
    // model checker explores the same step sequence (snapshot, per-deque
    // scan, park-if-unchanged) at critical-section granularity and
    // proves it free of lost wake-ups for small worker counts.
    loop {
        // Snapshot the epoch BEFORE looking for work: if a submission
        // lands between the failed scan and the park below, the epoch no
        // longer matches and the wait returns immediately — no lost
        // wakeups.
        // INVARIANT: the pool never leaks a panic while holding these
        // locks (jobs run under catch_unwind), so the mutexes cannot be
        // poisoned; the expects document that.
        let seen = *inner.epoch.lock().expect("pool mutex poisoned");
        if let Some((tag, job)) = inner.find_job(id) {
            debug::record_fired(tag);
            job(); // every job catches panics internally
            continue;
        }
        let mut epoch = inner.epoch.lock().expect("pool mutex poisoned");
        while *epoch == seen {
            epoch = inner.wakeup.wait(epoch).expect("pool mutex poisoned");
        }
    }
}

impl Inner {
    /// Owner-first scheduling (thief-first under force-steal): visit the
    /// deques in `proto::scan_order`, popping the end `proto::pop_end`
    /// prescribes — our own front (oldest subtree, chunk order), a
    /// victim's back (its trailing subtree).
    fn find_job(&self, id: usize) -> Option<TaggedJob> {
        let n = self.deques.len();
        let order: Vec<usize> = if force_steal_mode() {
            proto::scan_order_force_steal(id, n).collect()
        } else {
            proto::scan_order(id, n).collect()
        };
        for victim in order {
            let mut deque = self.deques[victim].lock().expect("pool mutex poisoned");
            let job = match proto::pop_end(id, victim) {
                proto::DequeEnd::Front => deque.pop_front(),
                proto::DequeEnd::Back => deque.pop_back(),
            };
            if let Some(job) = job {
                if victim != id {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    hb::steal_event(victim);
                }
                return Some(job);
            }
        }
        None
    }

    /// Place a batch of jobs (one per chunk, in chunk order) as up to
    /// `nworkers` contiguous groups — each deque receives a whole subtree
    /// of the fixed split tree, so owner pops stream through adjacent
    /// chunks and a steal takes the trailing subtree of a group. Under
    /// force-steal the whole batch lands on one deque instead.
    fn submit_batch(&self, jobs: Vec<Job>) {
        let n = self.deques.len();
        let start = self.next.fetch_add(1, Ordering::Relaxed) % n;
        let count = jobs.len();
        let placement = if force_steal_mode() {
            proto::force_steal_placement(count, n, start)
        } else {
            proto::batch_placement(count, n, start)
        };
        let mut it = jobs.into_iter();
        for (w, take) in placement {
            let mut deque = self.deques[w].lock().expect("pool mutex poisoned");
            for job in it.by_ref().take(take) {
                let tag = debug::JOB_SEQ.fetch_add(1, Ordering::Relaxed);
                debug::SUBMITTED.fetch_add(1, Ordering::Relaxed);
                deque.push_back((tag, job));
            }
        }
        self.bump_epoch();
    }

    /// Place a single job (the `join` path) on the next worker in the
    /// rotation; any idle worker can steal it.
    fn submit_one(&self, job: Job) {
        let n = self.deques.len();
        let w = self.next.fetch_add(1, Ordering::Relaxed) % n;
        let tag = debug::JOB_SEQ.fetch_add(1, Ordering::Relaxed);
        debug::SUBMITTED.fetch_add(1, Ordering::Relaxed);
        self.deques[w].lock().expect("pool mutex poisoned").push_back((tag, job));
        self.bump_epoch();
    }

    fn bump_epoch(&self) {
        let mut epoch = self.epoch.lock().expect("pool mutex poisoned");
        *epoch += 1;
        self.wakeup.notify_all();
    }
}

/// Number of worker threads the pool runs (1 when inline-only).
pub(crate) fn current_num_threads() -> usize {
    pool().map_or(1, |p| p.inner.deques.len())
}

/// Total jobs that ran on a worker other than the one they were placed
/// on, since process start.
///
/// **Vendor extension, not part of upstream rayon.** Diagnostics only:
/// stealing moves *where* a chunk runs, never what it computes, so this
/// counter is the one pool observable allowed to vary run to run.
pub fn steal_count() -> u64 {
    pool().map_or(0, |p| p.inner.steals.load(Ordering::Relaxed))
}

/// True on pool worker threads; nested parallel operations check this and
/// run inline (rule 2 above).
pub(crate) fn on_worker_thread() -> bool {
    IS_WORKER.with(|w| w.get())
}

fn force_sequential() -> bool {
    FORCE_SEQUENTIAL.with(|f| f.get())
}

/// Run `f` with every parallel operation on this thread executing inline.
///
/// **Vendor extension, not part of upstream rayon.** Because reductions
/// use a fixed split tree (see `lib.rs`), results inside the scope are
/// bit-identical to pooled execution — this exists so tests and benches
/// can compare the two schedules within one process.
pub fn sequential_scope<R>(f: impl FnOnce() -> R) -> R {
    let prev = FORCE_SEQUENTIAL.with(|c| c.replace(true));
    let out = panic::catch_unwind(AssertUnwindSafe(f));
    FORCE_SEQUENTIAL.with(|c| c.set(prev));
    match out {
        Ok(r) => r,
        Err(p) => panic::resume_unwind(p),
    }
}

/// Run `f` over each part, returning results in part order.
///
/// This is the single execution primitive the iterator layer builds on.
/// The parts and the combine order are fixed by the caller, so the result
/// is identical whether the parts run pooled, inline, on a worker, or
/// stolen across workers.
pub(crate) fn execute_ordered<P, R, F>(parts: Vec<P>, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let n = parts.len();
    let pool = match pool() {
        Some(p) if n > 1 && !on_worker_thread() && !force_sequential() => p,
        _ => return parts.into_iter().map(f).collect(),
    };

    let (tx, rx) = unbounded::<(usize, thread::Result<R>, Option<hb::Stamp>)>();
    let mut jobs: Vec<Job> = Vec::with_capacity(n);
    for (idx, part) in parts.into_iter().enumerate() {
        let job_tx = tx.clone();
        let f_ref = &f;
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let out = panic::catch_unwind(AssertUnwindSafe(|| f_ref(part)));
            // The stamp is the happens-before detector's record of this
            // chunk-slot write; the channel send is the edge it rides.
            let stamp = hb::stamp(&format!("result for chunk {idx}"));
            let _ = job_tx.send((idx, out, stamp));
        });
        // SAFETY: the receive loop below gets exactly one message per job
        // before this function returns or unwinds, so `f` and the
        // borrows inside `part` outlive every queued job (rule 1).
        let job: Job = unsafe { std::mem::transmute(job) };
        jobs.push(job);
    }
    drop(tx);
    pool.inner.submit_batch(jobs);

    let mut slots: Vec<Option<(thread::Result<R>, Option<hb::Stamp>)>> =
        (0..n).map(|_| None).collect();
    for _ in 0..n {
        let (idx, out, stamp) = rx.recv().expect("rayon worker died with jobs outstanding");
        hb::recv_join(stamp.as_ref());
        slots[idx] = Some((out, stamp));
    }

    let mut results = Vec::with_capacity(n);
    let mut panic_payload: Option<Box<dyn Any + Send>> = None;
    for (idx, slot) in slots.into_iter().enumerate() {
        let (out, stamp) = slot.expect("each job reports exactly once");
        hb::check_ordered(stamp.as_ref(), &format!("chunk slot {idx}"));
        match out {
            Ok(r) => results.push(r),
            Err(p) => {
                panic_payload.get_or_insert(p);
            }
        }
    }
    if let Some(p) = panic_payload {
        panic::resume_unwind(p);
    }
    results
}

/// `rayon::join`: run both closures, potentially in parallel, and return
/// both results. `b` is offloaded to the pool while `a` runs on the
/// calling thread; on a worker thread (or a one-thread pool) both run
/// inline. Panics propagate after **both** closures have finished, `a`'s
/// first — nothing a closure borrowed is still in use when the caller
/// unwinds.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = match pool() {
        Some(p) if !on_worker_thread() && !force_sequential() => p,
        _ => {
            let ra = a();
            let rb = b();
            return (ra, rb);
        }
    };

    let (tx, rx) = unbounded::<(thread::Result<RB>, Option<hb::Stamp>)>();
    let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
        let out = panic::catch_unwind(AssertUnwindSafe(b));
        let stamp = hb::stamp("result for join arm b");
        let _ = tx.send((out, stamp));
    });
    // SAFETY: `rx.recv()` below waits for the job before this function
    // returns or unwinds, so `b`'s borrows outlive its execution.
    let job: Job = unsafe { std::mem::transmute(job) };
    pool.inner.submit_one(job);

    let ra = panic::catch_unwind(AssertUnwindSafe(a));
    // INVARIANT: the worker sends exactly one result (or its panic)
    // before dropping the channel; a dead worker is re-raised below.
    let (rb, stamp) = rx.recv().expect("rayon worker died during join");
    hb::recv_join(stamp.as_ref());
    hb::check_ordered(stamp.as_ref(), "join arm b result");
    match (ra, rb) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(p), _) => panic::resume_unwind(p),
        (_, Err(p)) => panic::resume_unwind(p),
    }
}
