//! The pool's scheduling **policy**, factored out of [`crate::pool`] so
//! that the runtime and the `qq-check` bounded model checker execute the
//! *same* decisions from the *same* code.
//!
//! **Vendor extension, not part of upstream rayon.** `pool.rs` calls
//! these functions on its real `Mutex`-guarded deques; `qq-check model`
//! calls them on virtual deques while exhaustively interleaving 2–3
//! virtual workers at critical-section granularity. Because placement,
//! scan order, deque ends, and the parking discipline all live here, a
//! change to the protocol shows up in the checker without anyone having
//! to remember to mirror it — and a checker run with `--mutate
//! scan-before-snapshot` demonstrates that the checker actually catches
//! the canonical lost-wake-up bug this discipline exists to prevent.
//!
//! Everything in this module is a pure function of its arguments: no
//! clocks, no randomness, no global state. That is what makes the model
//! checker's exploration exhaustive rather than probabilistic.

/// Which end of a deque a worker takes a job from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DequeEnd {
    /// The owner streams through its own subtree oldest-first.
    Front,
    /// A thief takes the victim's trailing subtree.
    Back,
}

/// The end of deque `deque` that worker `worker` pops from: owners pop
/// the front (chunk order), thieves pop the back (the rightmost subtree
/// the victim has not started).
pub fn pop_end(worker: usize, deque: usize) -> DequeEnd {
    if worker == deque {
        DequeEnd::Front
    } else {
        DequeEnd::Back
    }
}

/// Epoch/condvar parking discipline. See the no-lost-wake-up argument in
/// the `pool` module docs: the epoch snapshot must be taken **before**
/// the deque scan, so that a submission racing with the scan bumps the
/// epoch past the snapshot and the park request returns immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParkOrder {
    /// Correct: snapshot the epoch, then scan, then park only while the
    /// epoch still equals the snapshot.
    SnapshotBeforeScan,
    /// The canonical bug: scan first, snapshot after. A submission that
    /// lands between the failed scan and the snapshot is invisible — the
    /// worker parks on a fresh epoch with work already queued. Exists so
    /// `qq-check model --mutate scan-before-snapshot` can demonstrate
    /// the checker catches it; the runtime never executes this variant.
    ScanBeforeSnapshot,
}

/// The discipline the runtime implements (`pool::worker` is written in
/// this order; the model checker reads this constant as its default).
pub const PARK_ORDER: ParkOrder = ParkOrder::SnapshotBeforeScan;

/// Deque scan order for worker `id` over `n` deques: own deque first
/// (index 0 of the iterator), then victims left-to-right starting at the
/// right neighbor. Combined with [`pop_end`], this is exactly
/// `pool::Inner::find_job`.
pub fn scan_order(id: usize, n: usize) -> impl Iterator<Item = usize> {
    (0..n).map(move |k| (id + k) % n)
}

/// Scan order under force-steal scheduling (`QQ_RAYON_FORCE_STEAL`):
/// every other deque before our own, so a worker prefers stealing and
/// only drains its own placements when no victim has work. Together with
/// [`force_steal_placement`] this makes every task with an idle sibling
/// worker run as a steal — the stress schedule for the determinism
/// digests.
pub fn scan_order_force_steal(id: usize, n: usize) -> impl Iterator<Item = usize> {
    (1..n).map(move |k| (id + k) % n).chain(std::iter::once(id))
}

/// Contiguous group placement for a batch of `count` jobs (in chunk
/// order) over `n` deques, the batch's first group landing on worker
/// `start`: returns `(worker, take)` pairs in consumption order. Each
/// deque receives a whole subtree of the fixed split tree; `take` skips
/// zero-sized groups.
pub fn batch_placement(count: usize, n: usize, start: usize) -> Vec<(usize, usize)> {
    let per = count / n;
    let extra = count % n;
    let mut placement = Vec::new();
    for j in 0..n {
        let take = per + usize::from(j < extra);
        if take == 0 {
            break;
        }
        placement.push(((start + j) % n, take));
    }
    placement
}

/// Force-steal placement: the entire batch lands on worker `start`'s
/// deque, so every job is eligible to be stolen by the other `n - 1`
/// workers (which, under [`scan_order_force_steal`], actively prefer
/// stealing).
pub fn force_steal_placement(count: usize, n: usize, start: usize) -> Vec<(usize, usize)> {
    if count == 0 {
        return Vec::new();
    }
    vec![(start % n, count)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_covers_batch_in_chunk_order() {
        for n in 1..5 {
            for count in 0..10 {
                for start in 0..n {
                    let p = batch_placement(count, n, start);
                    let total: usize = p.iter().map(|&(_, t)| t).sum();
                    assert_eq!(total, count, "count {count} workers {n} start {start}");
                    assert!(p.iter().all(|&(_, t)| t > 0));
                    // contiguous rotation starting at `start`
                    for (j, &(w, _)) in p.iter().enumerate() {
                        assert_eq!(w, (start + j) % n);
                    }
                }
            }
        }
    }

    #[test]
    fn force_steal_places_everything_on_one_deque() {
        assert_eq!(force_steal_placement(5, 4, 2), vec![(2, 5)]);
        assert_eq!(force_steal_placement(0, 4, 2), vec![]);
    }

    #[test]
    fn scan_orders_visit_every_deque_once() {
        for n in 1..5 {
            for id in 0..n {
                let a: Vec<usize> = scan_order(id, n).collect();
                assert_eq!(a[0], id, "owner first");
                let mut s = a.clone();
                s.sort_unstable();
                assert_eq!(s, (0..n).collect::<Vec<_>>());
                let b: Vec<usize> = scan_order_force_steal(id, n).collect();
                assert_eq!(*b.last().unwrap(), id, "owner last under force-steal");
                let mut s = b.clone();
                s.sort_unstable();
                assert_eq!(s, (0..n).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn pop_ends() {
        assert_eq!(pop_end(1, 1), DequeEnd::Front);
        assert_eq!(pop_end(1, 2), DequeEnd::Back);
    }
}
