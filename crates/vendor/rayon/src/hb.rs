//! Happens-before race detector for the pool protocol.
//!
//! **Vendor extension, not part of upstream rayon.** Debug builds only,
//! and even there dormant until `QQ_RAYON_HB_CHECK=1` is set — release
//! builds compile every entry point here to an immediate return.
//!
//! The detector maintains classic vector clocks over the pool's real
//! synchronization events, fed by the [`crate::shim`] sync wrappers and
//! the job/result plumbing in `pool.rs`:
//!
//! * **lock acquire** — the acquiring thread's clock joins the lock's
//!   clock (it inherits everything published under that lock);
//! * **lock release** — the thread ticks its own component and the lock's
//!   clock becomes a copy of the thread's (publication);
//! * **condvar park** — the wait releases the guard's mutex, so the
//!   waiter publishes into the mutex clock before sleeping;
//! * **condvar unpark** — the waiter re-joins the mutex clock *and* the
//!   condvar clock (the notifier published into the latter);
//! * **notify** — the notifier ticks and joins its clock into the
//!   condvar clock;
//! * **result send** — the job [`stamp`]s its clock (tick + snapshot)
//!   and ships the stamp alongside the `(chunk_index, result)` message;
//! * **result receive** — the combiner joins the stamp into its own
//!   clock ([`recv_join`]).
//!
//! The checked property is the one the whole ordered-combine design
//! rests on: **every chunk-slot write happens-before the combiner's
//! read of that slot**. At combine time [`check_ordered`] verifies the
//! reader's clock dominates the writer's send stamp; if any component is
//! missing, the process prints both threads' recent event trails and
//! **aborts** — a torn combine is a memory-safety-grade protocol bug,
//! not a recoverable error.
//!
//! On the healthy protocol the channel edge makes the check pass by
//! construction; the detector's teeth are demonstrated by the seeded
//! mutation `QQ_RAYON_HB_MUTATE=unordered-combine`, which drops the
//! receive-side join (exactly the bug of combining results by completion
//! order, or reading slots through a share that skips the channel) and
//! must abort the determinism battery.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Events kept per thread for the abort report.
const TRAIL_CAP: usize = 48;

/// Is the detector live? False in release builds and when the
/// `QQ_RAYON_HB_CHECK` environment variable is unset (or `0`); read once
/// per process like the other pool mode switches.
pub fn enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        cfg!(debug_assertions) && std::env::var("QQ_RAYON_HB_CHECK").is_ok_and(|v| v != "0")
    })
}

/// Seeded mutation switch: `QQ_RAYON_HB_MUTATE=unordered-combine` makes
/// [`recv_join`] drop the channel's happens-before edge, simulating a
/// combiner that reads chunk slots without receiving the message that
/// published them. The detector must then abort.
fn mutate_unordered_combine() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE
        .get_or_init(|| std::env::var("QQ_RAYON_HB_MUTATE").is_ok_and(|v| v == "unordered-combine"))
}

/// A send-side clock snapshot, shipped with each `(chunk, result)`
/// message. `slot` identifies the writing thread for the abort report.
#[derive(Debug, Clone)]
pub struct Stamp {
    slot: usize,
    clock: Vec<u64>,
}

/// Hand out identities for shim mutexes and condvars.
pub(crate) fn next_sync_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

struct ThreadState {
    name: String,
    clock: Vec<u64>,
    trail: VecDeque<String>,
}

/// Global detector state. Guarded by a **raw `std::sync::Mutex`**, never
/// the shim — shim wrappers call into this module, so routing the
/// detector's own lock through the shim would recurse.
struct HbState {
    threads: Vec<ThreadState>,
    /// Clock last published into each shim mutex / condvar, by sync id.
    sync_clocks: HashMap<u64, Vec<u64>>,
    /// Monotonic event counter, so the two trails in an abort report can
    /// be interleaved by the reader.
    seq: u64,
}

fn state() -> &'static Mutex<HbState> {
    static STATE: OnceLock<Mutex<HbState>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(HbState { threads: Vec::new(), sync_clocks: HashMap::new(), seq: 0 })
    })
}

thread_local! {
    static SLOT: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// This thread's slot in the clock table, registering it on first use.
fn my_slot(st: &mut HbState) -> usize {
    SLOT.with(|s| match s.get() {
        Some(slot) => slot,
        None => {
            let slot = st.threads.len();
            let name = std::thread::current().name().unwrap_or("unnamed").to_string();
            st.threads.push(ThreadState { name, clock: Vec::new(), trail: VecDeque::new() });
            s.set(Some(slot));
            slot
        }
    })
}

/// `a ⊔= b` componentwise, growing `a` as needed.
fn join_into(a: &mut Vec<u64>, b: &[u64]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (ai, &bi) in a.iter_mut().zip(b) {
        *ai = (*ai).max(bi);
    }
}

/// Does `big` dominate `small` (componentwise ≥, missing = 0)?
fn dominates(big: &[u64], small: &[u64]) -> bool {
    small.iter().enumerate().all(|(i, &s)| big.get(i).copied().unwrap_or(0) >= s)
}

fn tick(st: &mut HbState, slot: usize) {
    let clock = &mut st.threads[slot].clock;
    if clock.len() <= slot {
        clock.resize(slot + 1, 0);
    }
    clock[slot] += 1;
}

fn note(st: &mut HbState, slot: usize, event: String) {
    st.seq += 1;
    let seq = st.seq;
    let trail = &mut st.threads[slot].trail;
    if trail.len() >= TRAIL_CAP {
        trail.pop_front();
    }
    trail.push_back(format!("#{seq} {event}"));
}

/// Shim hook: `lock()` returned — join the mutex's published clock.
pub(crate) fn lock_acquired(id: u64) {
    if !enabled() {
        return;
    }
    let mut st = state().lock().expect("hb state poisoned");
    let slot = my_slot(&mut st);
    if let Some(lc) = st.sync_clocks.get(&id) {
        let lc = lc.clone();
        join_into(&mut st.threads[slot].clock, &lc);
    }
    note(&mut st, slot, format!("acquire lock {id}"));
}

/// Shim hook: guard dropping — tick and publish into the mutex clock.
/// Called *before* the std guard unlocks, so a later acquirer always
/// sees this publication.
pub(crate) fn lock_released(id: u64) {
    if !enabled() {
        return;
    }
    let mut st = state().lock().expect("hb state poisoned");
    let slot = my_slot(&mut st);
    tick(&mut st, slot);
    let clock = st.threads[slot].clock.clone();
    st.sync_clocks.insert(id, clock);
    note(&mut st, slot, format!("release lock {id}"));
}

/// Shim hook: about to park on `cv` — the wait is releasing `lock`, so
/// publish like a release (still holding the guard when called).
pub(crate) fn condvar_park(cv: u64, lock: u64) {
    if !enabled() {
        return;
    }
    let mut st = state().lock().expect("hb state poisoned");
    let slot = my_slot(&mut st);
    tick(&mut st, slot);
    let clock = st.threads[slot].clock.clone();
    st.sync_clocks.insert(lock, clock);
    note(&mut st, slot, format!("park on condvar {cv} (releasing lock {lock})"));
}

/// Shim hook: wait returned — re-acquire from both the mutex clock and
/// the condvar clock (the notifier published into the latter).
pub(crate) fn condvar_unpark(cv: u64, lock: u64) {
    if !enabled() {
        return;
    }
    let mut st = state().lock().expect("hb state poisoned");
    let slot = my_slot(&mut st);
    for id in [lock, cv] {
        if let Some(c) = st.sync_clocks.get(&id) {
            let c = c.clone();
            join_into(&mut st.threads[slot].clock, &c);
        }
    }
    note(&mut st, slot, format!("unpark from condvar {cv} (holding lock {lock})"));
}

/// Shim hook: `notify_all` — tick and publish into the condvar clock.
pub(crate) fn notify(cv: u64) {
    if !enabled() {
        return;
    }
    let mut st = state().lock().expect("hb state poisoned");
    let slot = my_slot(&mut st);
    tick(&mut st, slot);
    let mut published = st.threads[slot].clock.clone();
    if let Some(prev) = st.sync_clocks.get(&cv) {
        join_into(&mut published, prev);
    }
    st.sync_clocks.insert(cv, published);
    note(&mut st, slot, format!("notify condvar {cv}"));
}

/// Pool hook: a job was taken from another worker's deque. Trail-only —
/// the ordering edge itself travels through the deque mutex.
pub(crate) fn steal_event(victim: usize) {
    if !enabled() {
        return;
    }
    let mut st = state().lock().expect("hb state poisoned");
    let slot = my_slot(&mut st);
    note(&mut st, slot, format!("steal from deque {victim}"));
}

/// Pool hook: a job is about to send its `(chunk, result)` message —
/// tick and snapshot this thread's clock. `None` when the detector is
/// off, so the channel payload costs nothing in normal runs.
pub(crate) fn stamp(what: &str) -> Option<Stamp> {
    if !enabled() {
        return None;
    }
    let mut st = state().lock().expect("hb state poisoned");
    let slot = my_slot(&mut st);
    tick(&mut st, slot);
    note(&mut st, slot, format!("send {what}"));
    Some(Stamp { slot, clock: st.threads[slot].clock.clone() })
}

/// Pool hook: the combiner received a stamped message — join the stamp
/// (the channel's happens-before edge). Under the seeded
/// `unordered-combine` mutation the join is dropped, which
/// [`check_ordered`] must catch.
pub(crate) fn recv_join(stamp: Option<&Stamp>) {
    let Some(stamp) = stamp else { return };
    if !enabled() {
        return;
    }
    let mut st = state().lock().expect("hb state poisoned");
    let slot = my_slot(&mut st);
    if mutate_unordered_combine() {
        note(&mut st, slot, format!("recv from thread {} [MUTATED: join dropped]", stamp.slot));
        return;
    }
    join_into(&mut st.threads[slot].clock, &stamp.clock);
    note(&mut st, slot, format!("recv join from thread {}", stamp.slot));
}

/// Pool hook: the combiner is reading a chunk slot. The reader's clock
/// must dominate the writer's send stamp — otherwise the write is not
/// ordered before this read and the combine is a data race: print both
/// event trails and abort.
pub(crate) fn check_ordered(stamp: Option<&Stamp>, context: &str) {
    let Some(stamp) = stamp else { return };
    if !enabled() {
        return;
    }
    let mut st = state().lock().expect("hb state poisoned");
    let slot = my_slot(&mut st);
    note(&mut st, slot, format!("combine read of {context}"));
    if dominates(&st.threads[slot].clock, &stamp.clock) {
        return;
    }
    let reader = &st.threads[slot];
    let writer = &st.threads[stamp.slot];
    eprintln!("qq-rayon: happens-before violation: {context}");
    eprintln!(
        "  the combiner's read is not ordered after the job's slot write \
         (reader clock {:?} does not dominate writer stamp {:?})",
        reader.clock, stamp.clock
    );
    for (role, t) in [("reader", reader), ("writer", writer)] {
        eprintln!("  {role} thread `{}` recent events (oldest first):", t.name);
        for e in &t.trail {
            eprintln!("    {e}");
        }
    }
    eprintln!("  (events carry global sequence numbers; interleave the trails by #n)");
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_grows_and_maximizes() {
        let mut a = vec![3, 0];
        join_into(&mut a, &[1, 4, 2]);
        assert_eq!(a, vec![3, 4, 2]);
    }

    #[test]
    fn dominates_treats_missing_as_zero() {
        assert!(dominates(&[2, 1], &[2]));
        assert!(dominates(&[2, 1], &[2, 1]));
        assert!(!dominates(&[2], &[2, 1]));
        assert!(!dominates(&[1, 1], &[2]));
    }

    #[test]
    fn hooks_never_panic_and_stamp_tracks_enabled() {
        // Exercised under whatever QQ_RAYON_HB_CHECK the harness set:
        // with the detector off every hook is an inert no-op, with it on
        // they record events — neither mode may panic, and a stamp
        // exists exactly when the detector is live.
        lock_acquired(7);
        lock_released(7);
        notify(8);
        steal_event(0);
        let s = stamp("unit test");
        assert_eq!(s.is_some(), enabled());
        recv_join(s.as_ref());
        check_ordered(s.as_ref(), "unit test");
        recv_join(None);
        check_ordered(None, "unit test");
    }
}
