//! Thin sync shim: the pool takes its `Mutex`/`Condvar` from here
//! instead of `std::sync` directly.
//!
//! **Vendor extension, not part of upstream rayon.** The indirection is
//! cfg-gated on `debug_assertions`:
//!
//! * **release builds** — transparent `#[inline]` newtypes that delegate
//!   straight to `std::sync`; the optimizer erases them, so the hot path
//!   pays nothing.
//! * **debug builds** — instrumented versions that count lock
//!   acquisitions, condvar parks, and wake notifications into relaxed
//!   process-wide counters ([`stats`]). The counters give tests and the
//!   `qq-check` tooling an observable protocol trace: a test can assert
//!   that workers really parked, that a submission really notified, or
//!   that a force-steal run kept every worker busy — without touching
//!   the pool's internals.
//!
//! The wrappers expose exactly the `std::sync` surface `pool.rs` uses
//! (`Mutex::new/lock`, `Condvar::new/wait/notify_all`), returning real
//! `std` guards so the pool code is identical under both cfgs.

use std::sync::{LockResult, MutexGuard};

#[cfg(debug_assertions)]
mod counters {
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static LOCKS: AtomicU64 = AtomicU64::new(0);
    pub static PARKS: AtomicU64 = AtomicU64::new(0);
    pub static NOTIFIES: AtomicU64 = AtomicU64::new(0);

    pub fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }
}

/// Instrumentation counters accumulated since process start (always zero
/// in release builds, where the shim is transparent).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShimStats {
    /// `Mutex::lock` calls through the shim (deque + epoch locks).
    pub lock_acquisitions: u64,
    /// `Condvar::wait` calls — each is one worker parking.
    pub parks: u64,
    /// `Condvar::notify_all` calls — each is one submission epoch bump.
    pub notifies: u64,
}

/// Snapshot the shim counters.
pub fn stats() -> ShimStats {
    #[cfg(debug_assertions)]
    {
        use std::sync::atomic::Ordering;
        ShimStats {
            lock_acquisitions: counters::LOCKS.load(Ordering::Relaxed),
            parks: counters::PARKS.load(Ordering::Relaxed),
            notifies: counters::NOTIFIES.load(Ordering::Relaxed),
        }
    }
    #[cfg(not(debug_assertions))]
    {
        ShimStats::default()
    }
}

/// Shimmed `std::sync::Mutex`.
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    #[inline]
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    #[inline]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        #[cfg(debug_assertions)]
        counters::bump(&counters::LOCKS);
        self.0.lock()
    }
}

/// Shimmed `std::sync::Condvar`.
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    #[inline]
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    #[inline]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        #[cfg(debug_assertions)]
        counters::bump(&counters::PARKS);
        self.0.wait(guard)
    }

    #[inline]
    pub fn notify_all(&self) {
        #[cfg(debug_assertions)]
        counters::bump(&counters::NOTIFIES);
        self.0.notify_all()
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}
