//! Thin sync shim: the pool takes its `Mutex`/`Condvar` from here
//! instead of `std::sync` directly.
//!
//! **Vendor extension, not part of upstream rayon.** The indirection is
//! cfg-gated on `debug_assertions`:
//!
//! * **release builds** — transparent `#[inline]` newtypes that delegate
//!   straight to `std::sync`; the optimizer erases them, so the hot path
//!   pays nothing. [`Guard`] is a plain type alias for the std guard.
//! * **debug builds** — instrumented versions that count lock
//!   acquisitions, condvar parks, and wake notifications into relaxed
//!   process-wide counters ([`stats`]), and feed every acquire, release,
//!   park, unpark, and notify into the [`crate::hb`] happens-before
//!   detector (dormant unless `QQ_RAYON_HB_CHECK=1`). The counters give
//!   tests and the `qq-check` tooling an observable protocol trace; the
//!   detector checks that trace's ordering discipline at runtime.
//!
//! The wrappers expose exactly the `std::sync` surface `pool.rs` uses
//! (`Mutex::new/lock`, `Condvar::new/wait/notify_all`). In debug builds
//! the guard is a wrapper that reports its release to the detector
//! **before** unlocking, so a later acquirer always observes the
//! publication — the pool code is identical under both cfgs because the
//! guard derefs like the std one.

use std::sync::LockResult;
#[cfg(not(debug_assertions))]
use std::sync::MutexGuard;
#[cfg(debug_assertions)]
use std::sync::PoisonError;

#[cfg(debug_assertions)]
use crate::hb;

#[cfg(debug_assertions)]
mod counters {
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static LOCKS: AtomicU64 = AtomicU64::new(0);
    pub static PARKS: AtomicU64 = AtomicU64::new(0);
    pub static NOTIFIES: AtomicU64 = AtomicU64::new(0);

    pub fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }
}

/// Instrumentation counters accumulated since process start (always zero
/// in release builds, where the shim is transparent).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShimStats {
    /// `Mutex::lock` calls through the shim (deque + epoch locks).
    pub lock_acquisitions: u64,
    /// `Condvar::wait` calls — each is one worker parking.
    pub parks: u64,
    /// `Condvar::notify_all` calls — each is one submission epoch bump.
    pub notifies: u64,
}

/// Snapshot the shim counters.
pub fn stats() -> ShimStats {
    #[cfg(debug_assertions)]
    {
        use std::sync::atomic::Ordering;
        ShimStats {
            lock_acquisitions: counters::LOCKS.load(Ordering::Relaxed),
            parks: counters::PARKS.load(Ordering::Relaxed),
            notifies: counters::NOTIFIES.load(Ordering::Relaxed),
        }
    }
    #[cfg(not(debug_assertions))]
    {
        ShimStats::default()
    }
}

/// Debug-build lock guard: derefs like `std::sync::MutexGuard`, and on
/// drop reports the release to the happens-before detector *before*
/// unlocking (see the module docs for why that order is load-bearing).
#[cfg(debug_assertions)]
pub struct HbGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    lock_id: u64,
}

#[cfg(debug_assertions)]
impl<'a, T> HbGuard<'a, T> {
    fn new(inner: std::sync::MutexGuard<'a, T>, lock_id: u64) -> Self {
        HbGuard { inner: Some(inner), lock_id }
    }

    /// Take the std guard out, disarming this wrapper's Drop (used by
    /// `Condvar::wait`, which reports the release itself as a park).
    fn into_std(mut self) -> std::sync::MutexGuard<'a, T> {
        self.inner.take().expect("guard already taken")
    }
}

#[cfg(debug_assertions)]
impl<T> std::ops::Deref for HbGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already taken")
    }
}

#[cfg(debug_assertions)]
impl<T> std::ops::DerefMut for HbGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard already taken")
    }
}

#[cfg(debug_assertions)]
impl<T> Drop for HbGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            // Publish while still holding the lock; the std unlock
            // happens when `inner` drops right after.
            hb::lock_released(self.lock_id);
        }
    }
}

/// The guard type `Mutex::lock` returns: the instrumented wrapper in
/// debug builds, the std guard verbatim in release builds.
#[cfg(debug_assertions)]
pub type Guard<'a, T> = HbGuard<'a, T>;
#[cfg(not(debug_assertions))]
pub type Guard<'a, T> = MutexGuard<'a, T>;

/// Shimmed `std::sync::Mutex`.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    #[cfg(debug_assertions)]
    id: u64,
}

impl<T> Mutex<T> {
    #[inline]
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
            #[cfg(debug_assertions)]
            id: hb::next_sync_id(),
        }
    }

    #[inline]
    pub fn lock(&self) -> LockResult<Guard<'_, T>> {
        #[cfg(debug_assertions)]
        {
            counters::bump(&counters::LOCKS);
            let result = self.inner.lock();
            hb::lock_acquired(self.id);
            match result {
                Ok(g) => Ok(HbGuard::new(g, self.id)),
                Err(p) => Err(PoisonError::new(HbGuard::new(p.into_inner(), self.id))),
            }
        }
        #[cfg(not(debug_assertions))]
        {
            self.inner.lock()
        }
    }
}

/// Shimmed `std::sync::Condvar`.
pub struct Condvar {
    inner: std::sync::Condvar,
    #[cfg(debug_assertions)]
    id: u64,
}

impl Condvar {
    #[inline]
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
            #[cfg(debug_assertions)]
            id: hb::next_sync_id(),
        }
    }

    #[inline]
    pub fn wait<'a, T>(&self, guard: Guard<'a, T>) -> LockResult<Guard<'a, T>> {
        #[cfg(debug_assertions)]
        {
            counters::bump(&counters::PARKS);
            let lock_id = guard.lock_id;
            // The wait releases the mutex: publish (as a park) while the
            // guard is still held, then hand the bare std guard to the
            // real wait so this wrapper's Drop doesn't double-report.
            hb::condvar_park(self.id, lock_id);
            let result = self.inner.wait(guard.into_std());
            hb::condvar_unpark(self.id, lock_id);
            match result {
                Ok(g) => Ok(HbGuard::new(g, lock_id)),
                Err(p) => Err(PoisonError::new(HbGuard::new(p.into_inner(), lock_id))),
            }
        }
        #[cfg(not(debug_assertions))]
        {
            self.inner.wait(guard)
        }
    }

    #[inline]
    pub fn notify_all(&self) {
        #[cfg(debug_assertions)]
        {
            counters::bump(&counters::NOTIFIES);
            hb::notify(self.id);
        }
        self.inner.notify_all()
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}
