//! Vendored, API-compatible subset of
//! [`criterion`](https://docs.rs/criterion).
//!
//! No network route to crates.io exists in this build environment, so the
//! workspace vendors the criterion entry points the bench suite uses:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_with_input, bench_function, finish}`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery this harness times a
//! fixed number of samples (after one warm-up run) and prints
//! min/mean/max per benchmark — enough to compare kernels locally and to
//! keep `cargo bench` green. Benchmark names, IDs, and filter arguments
//! behave like upstream's, so swapping the real crate back in is a
//! manifest-only change.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` and criterion-style flags: take the
        // first non-flag argument as a substring filter, ignore the rest
        // (`--bench`, `--quick`, …) like upstream does for unknown modes.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter, default_samples: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), samples: self.default_samples, criterion: self }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.default_samples;
        let matches = self.matches(name);
        if matches {
            run_one(name, samples, f);
        }
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Time `f`, handing it the input by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        if self.criterion.matches(&full) {
            run_one(&full, self.samples, |b| f(b, input));
        }
        self
    }

    /// Time `f` with no input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.0);
        if self.criterion.matches(&full) {
            run_one(&full, self.samples, |b| f(b));
        }
        self
    }

    /// End the group (upstream flushes reports here; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier: `function/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to the benchmark closure; `iter` does the timing.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Time `samples` executions of `routine` (after one warm-up call).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        self.results.clear();
        self.results.reserve(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.results.push(t0.elapsed());
        }
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(name: &str, samples: usize, f: F) {
    let mut b = Bencher { samples, results: Vec::new() };
    f(&mut b);
    if b.results.is_empty() {
        println!("{name:<40} (no measurement: bencher.iter was not called)");
        return;
    }
    let min = b.results.iter().min().expect("non-empty");
    let max = b.results.iter().max().expect("non-empty");
    let mean = b.results.iter().sum::<Duration>() / b.results.len() as u32;
    println!(
        "{name:<40} [{} {} {}] ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        b.results.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a runnable group, like upstream's
/// `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running the listed groups, like upstream's
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_with_input_runs_closure() {
        let mut c = Criterion { filter: None, default_samples: 3 };
        let mut calls = 0usize;
        let mut group = c.benchmark_group("g");
        group.sample_size(2).bench_with_input(BenchmarkId::new("f", 1), &7usize, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            });
        });
        group.finish();
        // 1 warm-up + 2 samples
        assert_eq!(calls, 3);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion { filter: Some("nomatch".into()), default_samples: 3 };
        let mut calls = 0usize;
        let mut group = c.benchmark_group("g");
        group.bench_function(BenchmarkId::from_parameter("x"), |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        assert_eq!(calls, 0);
    }

    #[test]
    fn ids_format_like_upstream() {
        assert_eq!(BenchmarkId::new("flat_rx", 14).0, "flat_rx/14");
        assert_eq!(BenchmarkId::from_parameter(200).0, "200");
    }
}
