//! Fused-vs-unfused executor wall time on QAOA ansätze.
//!
//! Measures the single-sweep gate fusion (`qq_circuit::fuse`): the same
//! synthesized circuit runs through the fused executor (one sweep per
//! diagonal run, one cache-blocked pass per one-qubit wall) and the
//! per-gate reference path, over Erdős–Rényi, ring and complete MaxCut
//! ansätze at n = 16–24 (default sizes trimmed for CI; override with
//! `QQ_FUSION_SIZES="16 20 24"`). Records `BENCH_sim.json` at the repo
//! root: sweeps per gate, ns per amplitude-sweep, and the fused/unfused
//! wall-clock ratio.
//!
//! Not a criterion harness: one process writes one JSON artifact.
//! Run with `cargo bench --bench sim_fusion`.

use qq_circuit::exec::{apply_fused_to_statevector, run_statevector, run_statevector_unfused};
use qq_circuit::{fuse, AnsatzParams, CostModel, Preference, Synthesizer};
use qq_graph::generators::{self, WeightKind};
use qq_graph::Graph;
use qq_sim::StateVector;
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    family: &'static str,
    n: usize,
    gates: usize,
    ops: usize,
    sweeps: usize,
    fused_ns: u128,
    unfused_ns: u128,
}

fn graph(family: &'static str, n: usize) -> Graph {
    match family {
        "erdos_renyi" => generators::erdos_renyi(n, 0.3, WeightKind::Random01, 7),
        "ring" => generators::ring(n),
        "complete" => generators::complete(n),
        _ => unreachable!("unknown family"),
    }
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (u128, R) {
    let mut best = u128::MAX;
    let mut last = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_nanos());
        last = Some(r);
    }
    (best, last.expect("reps >= 1"))
}

fn overlap_ok(a: &StateVector, b: &StateVector) -> bool {
    let mut overlap = qq_sim::C64::ZERO;
    for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
        overlap += x.conj() * *y;
    }
    (overlap.abs() - 1.0).abs() < 1e-9
}

fn main() {
    let sizes: Vec<usize> = std::env::var("QQ_FUSION_SIZES")
        .unwrap_or_else(|_| "16 18 20".into())
        .split_whitespace()
        .map(|s| s.parse().expect("QQ_FUSION_SIZES entries are integers"))
        .collect();
    let p = 2;
    let params = AnsatzParams::new(vec![0.35, 0.6], vec![0.2, 0.45]);
    assert_eq!(params.layers(), p);

    let mut rows = Vec::new();
    for &n in &sizes {
        for family in ["erdos_renyi", "ring", "complete"] {
            let g = graph(family, n);
            let model = CostModel::from_maxcut(&g);
            let circuit = Synthesizer::new(Preference::Depth).qaoa_ansatz(&model, &params);
            let program = fuse(&circuit);

            // warm-up (first-touches the pool) + correctness gate
            let fused_state = run_statevector(&circuit);
            let unfused_state = run_statevector_unfused(&circuit);
            assert!(overlap_ok(&fused_state, &unfused_state), "{family} n={n} diverged");

            let (fused_ns, stats) = best_of(3, || {
                let mut s = StateVector::zero_state(n);
                apply_fused_to_statevector(&program, &mut s)
            });
            let (unfused_ns, _) = best_of(3, || run_statevector_unfused(&circuit));

            rows.push(Row {
                family,
                n,
                gates: circuit.gates().len(),
                ops: program.ops().len(),
                sweeps: stats.sweeps,
                fused_ns,
                unfused_ns,
            });
            println!(
                "{family:<12} n={n:<3} gates={:<4} sweeps={:<3} fused={:>9.3} ms unfused={:>9.3} ms speedup={:.2}x",
                circuit.gates().len(),
                stats.sweeps,
                fused_ns as f64 / 1e6,
                unfused_ns as f64 / 1e6,
                unfused_ns as f64 / fused_ns as f64,
            );
        }
    }

    let mut json = String::from("{\n  \"bench\": \"sim_fusion\",\n");
    let _ = writeln!(json, "  \"layers\": {p},");
    let _ = writeln!(json, "  \"host_threads\": {},", rayon::current_num_threads());
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let amps = 1u64 << r.n;
        let _ = write!(
            json,
            "    {{\"family\": \"{}\", \"n\": {}, \"source_gates\": {}, \"fused_ops\": {}, \
             \"sweeps\": {}, \"sweeps_per_gate\": {:.4}, \"fused_ns\": {}, \"unfused_ns\": {}, \
             \"fused_ns_per_amp_sweep\": {:.3}, \"speedup\": {:.3}}}",
            r.family,
            r.n,
            r.gates,
            r.ops,
            r.sweeps,
            r.sweeps as f64 / r.gates as f64,
            r.fused_ns,
            r.unfused_ns,
            r.fused_ns as f64 / (amps as f64 * r.sweeps as f64),
            r.unfused_ns as f64 / r.fused_ns as f64,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, &json).expect("write BENCH_sim.json");
    println!("wrote {path}");
}
