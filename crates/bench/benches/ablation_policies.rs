//! Ablation: cost of the three solution-extraction policies (the paper
//! uses highest-amplitude and names top-k as the expected improvement).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qq_graph::generators::{self, WeightKind};
use qq_qaoa::{ObjectiveMode, QaoaConfig, SolutionPolicy};

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_policies");
    group.sample_size(10);
    let g = generators::erdos_renyi(12, 0.3, WeightKind::Uniform, 5);
    for (name, policy) in [
        ("highest_amplitude", SolutionPolicy::HighestAmplitude),
        ("top_k_64", SolutionPolicy::TopK(64)),
        ("best_shot", SolutionPolicy::BestShot),
    ] {
        let cfg = QaoaConfig {
            layers: 2,
            max_iters: 20,
            objective: ObjectiveMode::Exact,
            policy,
            ..QaoaConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| qq_qaoa::solve(&g, cfg).unwrap().best.value);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
