//! Abstraction cost of the execution-engine layer.
//!
//! PR 3 collapsed the orchestrator's hand-rolled `par_iter` fan-out into
//! `ExecutionEngine::solve_batch` (routing + timing + dispatch
//! accounting per batch). This bench holds the new layer to its budget:
//! on the 60-node ER workload (the `qaoa2` test workload — ~10 coarse
//! sub-graph solves per batch), `ThreadPoolEngine` must cost **< 5%**
//! over the pre-refactor direct `par_iter` path it replaced.
//!
//! Not a criterion harness so the two paths can share one warmed pool
//! and the checksum comparison stays explicit. Run with
//! `cargo bench --bench routing_overhead`.

use qq_core::{solve_with_backend, SubSolver};
use qq_graph::generators::{self, WeightKind};
use qq_graph::{extract_subgraphs, partition_with_cap, Subgraph};
use qq_hpc::{ExecutionEngine, HeterogeneousPool, SolveJob, ThreadPoolEngine};
use rayon::prelude::*;
use std::time::Instant;

const BATCHES_PER_REP: usize = 200;
const REPS: usize = 7;

/// Best-of-`REPS` nanoseconds for `BATCHES_PER_REP` runs of `work`.
fn best_ns(mut work: impl FnMut() -> f64) -> (u128, f64) {
    let check = work(); // warm-up (also first-touches the rayon pool)
    let mut best = u128::MAX;
    for _ in 0..REPS {
        let t = Instant::now();
        for _ in 0..BATCHES_PER_REP {
            let c = work();
            assert_eq!(c.to_bits(), check.to_bits(), "nondeterministic batch");
        }
        best = best.min(t.elapsed().as_nanos());
    }
    (best / BATCHES_PER_REP as u128, check)
}

fn main() {
    // the 60-node ER workload: same graph family/cap as the qaoa2 tests
    let g = generators::erdos_renyi(60, 0.12, WeightKind::Random01, 2);
    let partition = partition_with_cap(&g, 10);
    let subgraphs: Vec<Subgraph> = extract_subgraphs(&g, &partition);
    let backend = SubSolver::LocalSearch.to_backend();
    println!(
        "routing_overhead — {} nodes → {} sub-graphs (≤ 10 nodes), local-search backend,",
        g.num_nodes(),
        subgraphs.len()
    );
    println!("{BATCHES_PER_REP} batches/rep, best of {REPS} reps\n");

    // pre-refactor path: the literal `Parallelism::Threads` arm that
    // used to live in `qaoa2::solve_level`
    let direct = || -> f64 {
        let cuts: Result<Vec<_>, _> = subgraphs
            .par_iter()
            .with_min_len(1)
            .enumerate()
            .map(|(i, sub)| {
                solve_with_backend(&sub.graph, backend.as_ref(), i as u64).map(|r| r.value)
            })
            .collect();
        cuts.expect("local search cannot fail").iter().sum()
    };

    // post-refactor path: the same batch through the engine layer
    // (routing + per-task timing + dispatch report + utilization replay)
    let pool = HeterogeneousPool::single(backend.clone());
    let engine = ThreadPoolEngine;
    let engined = || -> f64 {
        let jobs: Vec<SolveJob<'_>> = subgraphs
            .iter()
            .enumerate()
            .map(|(i, sub)| SolveJob { graph: &sub.graph, seed: i as u64 })
            .collect();
        let out = engine.solve_batch(&pool, &jobs).expect("local search cannot fail");
        out.results.iter().map(|r| r.value).sum()
    };

    let (direct_ns, direct_check) = best_ns(direct);
    let (engine_ns, engine_check) = best_ns(engined);
    assert_eq!(
        direct_check.to_bits(),
        engine_check.to_bits(),
        "engine path changed the cuts: {direct_check} vs {engine_check}"
    );

    let overhead = (engine_ns as f64 - direct_ns as f64) / direct_ns as f64 * 100.0;
    println!("{:<34} {:>12}", "path", "ns/batch");
    println!("{:<34} {:>12}", "direct par_iter (pre-refactor)", direct_ns);
    println!("{:<34} {:>12}", "ThreadPoolEngine::solve_batch", engine_ns);
    println!("\nabstraction overhead: {overhead:+.2}%  (budget: < 5%)");
    println!("checksums identical: ok");
    if overhead >= 5.0 {
        println!("WARNING: engine overhead exceeds the 5% budget on this host");
    }
}
