//! Partition-strategy comparison: cut value and wall time per divide
//! strategy — the six fixed built-ins, per-instance `Auto` selection,
//! and a per-level schedule — on ER, planted-partition, and
//! Gset-format instances.
//!
//! Two measurements per (instance, strategy) cell:
//!
//! * `divide/…` — the partitioner alone (what the strategy costs);
//! * `qaoa2/…` — the full QAOA² pipeline under that strategy with
//!   local-search sub-solves (what the strategy buys), with the cut
//!   value and partition quality printed once per cell so the numbers
//!   land next to the timings (recorded in EXPERIMENTS.md).
//!
//! The instance list is mirrored by `tests/partition_strategies.rs`,
//! which asserts the refinement-quality guarantee **and the Auto
//! guarantee** (auto ≥ every fixed strategy's cut, per instance and
//! mode) on exactly these graphs. The Gset leg exercises the full
//! interchange path: the generated graph is serialized with
//! `write_gset` and read back with `read_gset` before being benched.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qq_core::{
    Parallelism, PartitionSchedule, PartitionStrategy, Qaoa2Config, RefineConfig, SubSolver,
};
use qq_graph::generators::{self, WeightKind};
use qq_graph::io::{read_gset, write_gset};
use qq_graph::{inter_weight_fraction, Graph};

fn instances() -> Vec<(&'static str, Graph)> {
    let gset = {
        // round-trip a generated instance through the Gset format so
        // the bench covers published-instance ingestion end-to-end
        let g = generators::erdos_renyi(120, 0.06, WeightKind::Uniform, 5);
        let mut buf = Vec::new();
        write_gset(&g, &mut buf).expect("in-memory write cannot fail");
        read_gset(std::io::BufReader::new(buf.as_slice())).expect("round-trip parses")
    };
    vec![
        ("gset-er-120", gset),
        ("er-90w", generators::erdos_renyi(90, 0.1, WeightKind::Random01, 7)),
        ("planted-100", generators::planted_partition(10, 10, 0.8, 0.03, 9)),
        ("planted-48", generators::planted_partition(6, 8, 0.9, 0.05, 11)),
    ]
}

const CAP: usize = 10;

/// The single-shot divide sweep: every fixed built-in plus
/// per-instance auto-selection. A schedule is deliberately absent —
/// `to_partitioner()` on a schedule yields only its level-0 strategy
/// (per-level resolution lives in `divide()`), so a divide-only
/// "schedule" row would be a re-measurement of that strategy under a
/// misleading label; schedules are benched where they mean something,
/// in the full-pipeline sweep below.
fn divide_strategies() -> Vec<PartitionStrategy> {
    let mut all = PartitionStrategy::builtin();
    all.push(PartitionStrategy::Auto);
    all
}

/// The full-pipeline sweep: the divide set plus the canonical
/// per-level schedule (structure-exploiting divide on the input graph,
/// label propagation on the negative-weight merge graphs below).
fn pipeline_strategies() -> Vec<PartitionStrategy> {
    let mut all = divide_strategies();
    all.push(PartitionStrategy::scheduled(PartitionSchedule::new(
        vec![PartitionStrategy::Multilevel],
        PartitionStrategy::LabelPropagation,
    )));
    all
}

fn bench_divide(c: &mut Criterion) {
    let mut group = c.benchmark_group("divide");
    group.sample_size(10);
    for (name, g) in instances() {
        for strategy in divide_strategies() {
            let partitioner = strategy.to_partitioner();
            let p = partitioner.partition(&g, CAP).expect("builtin strategies succeed");
            eprintln!(
                "# divide {name}/{}: {} communities, inter-weight {:.3}, balance {:.2}",
                strategy.label(),
                p.len(),
                inter_weight_fraction(&g, &p),
                p.balance(),
            );
            group.bench_with_input(BenchmarkId::new(name, strategy.label()), &g, |b, g| {
                b.iter(|| partitioner.partition(g, CAP).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_qaoa2_per_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("qaoa2");
    group.sample_size(10);
    for (name, g) in instances() {
        for strategy in pipeline_strategies() {
            for (mode, refine) in
                [("plain", RefineConfig::default()), ("refined", RefineConfig::full())]
            {
                let cfg = Qaoa2Config {
                    max_qubits: CAP,
                    solver: SubSolver::LocalSearch,
                    coarse_solver: SubSolver::LocalSearch,
                    partition: strategy.clone(),
                    refine,
                    parallelism: Parallelism::Sequential,
                    seed: 1,
                };
                let res = qq_core::solve(&g, &cfg).expect("solve succeeds");
                let effective: Vec<&str> =
                    res.levels.iter().map(|l| l.strategy_effective.as_str()).collect();
                eprintln!(
                    "# qaoa2 {name}/{}/{mode}: cut {:.2} across {} sub-graphs, levels {:?}",
                    strategy.label(),
                    res.cut_value,
                    res.total_subgraphs,
                    effective,
                );
                group.bench_with_input(
                    BenchmarkId::new(name, format!("{}/{mode}", strategy.label())),
                    &g,
                    |b, g| b.iter(|| qq_core::solve(g, &cfg).unwrap().cut_value),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_divide, bench_qaoa2_per_strategy);
criterion_main!(benches);
