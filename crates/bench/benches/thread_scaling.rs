//! Threads-vs-time scaling for the suite's hot parallel paths.
//!
//! The rayon pool is global and sized once per process, so each thread
//! count is measured in a child process: the parent re-executes this
//! binary with `RAYON_NUM_THREADS` pinned (and `QQ_THREAD_SCALING_CHILD`
//! set), the child runs the workloads and prints per-workload
//! nanoseconds, and the parent assembles the scaling table recorded in
//! EXPERIMENTS.md.
//!
//! Not a criterion harness: criterion cannot re-exec per configuration.
//! Run with `cargo bench --bench thread_scaling` (add
//! `--features`-style knobs via env: `QQ_THREAD_COUNTS="1 2 4"`).

use qq_circuit::{AnsatzParams, CostModel};
use qq_core::{Parallelism, Qaoa2Config};
use qq_graph::generators::{self, WeightKind};
use qq_qaoa::executor::build_state_fused;
use qq_qaoa::CostTable;
use qq_sim::{BlockedState, StateVector};
use std::time::Instant;

const CHILD_ENV: &str = "QQ_THREAD_SCALING_CHILD";

/// A named workload returning a checksum (defeats dead-code elimination
/// and confirms cross-thread-count agreement).
type Workload = (&'static str, fn() -> f64);

fn workloads() -> Vec<Workload> {
    vec![
        ("flat_gate_sweep_n20", || {
            let mut s = StateVector::plus_state(20);
            for q in 0..20 {
                s.rx(q, 0.1 + 0.01 * q as f64);
            }
            for q in 0..19 {
                s.rzz(q, q + 1, 0.05);
            }
            s.norm_sqr()
        }),
        ("blocked_gate_sweep_n20", || {
            let mut s = BlockedState::plus_state(20, 14).unwrap();
            for q in 0..20 {
                s.rx(q, 0.1 + 0.01 * q as f64).unwrap();
            }
            for q in 0..19 {
                s.rzz(q, q + 1, 0.05).unwrap();
            }
            s.norm_sqr()
        }),
        ("cost_layer_landscape_n18", || {
            let g = generators::erdos_renyi(18, 0.3, WeightKind::Random01, 3);
            let table = CostTable::new(&CostModel::from_maxcut(&g));
            let mut acc = 0.0;
            for k in 0..4 {
                let params = AnsatzParams::new(vec![0.2 + 0.1 * k as f64], vec![0.3]);
                let state = build_state_fused(&table, &params);
                acc += table.expectation(&state);
            }
            acc
        }),
        ("qaoa2_subgraph_fanout", || {
            let g = generators::erdos_renyi(96, 0.08, WeightKind::Random01, 11);
            let cfg = Qaoa2Config {
                max_qubits: 10,
                parallelism: Parallelism::Threads,
                seed: 4,
                ..Default::default()
            };
            qq_core::solve(&g, &cfg).expect("solve").cut_value
        }),
    ]
}

fn run_child() {
    for (name, work) in workloads() {
        // one warm-up (also first-touches the pool), then best-of-3
        let check = work();
        let mut best = u128::MAX;
        for _ in 0..3 {
            let t = Instant::now();
            let c = work();
            best = best.min(t.elapsed().as_nanos());
            assert_eq!(c.to_bits(), check.to_bits(), "nondeterministic workload {name}");
        }
        println!("WORKLOAD {name} ns={best} check={:016x}", check.to_bits());
    }
}

fn main() {
    if std::env::var(CHILD_ENV).is_ok() {
        run_child();
        return;
    }

    let counts: Vec<String> = std::env::var("QQ_THREAD_COUNTS")
        .unwrap_or_else(|_| "1 2 4".into())
        .split_whitespace()
        .map(str::to_string)
        .collect();
    let exe = std::env::current_exe().expect("bench binary path");

    // name -> (threads, ns, check) rows
    let mut rows: Vec<(String, String, u128, String)> = Vec::new();
    for t in &counts {
        let out = std::process::Command::new(&exe)
            .env(CHILD_ENV, "1")
            .env("RAYON_NUM_THREADS", t)
            .output()
            .expect("spawn scaling child");
        assert!(out.status.success(), "child failed at {t} threads");
        for line in String::from_utf8_lossy(&out.stdout).lines() {
            let Some(rest) = line.strip_prefix("WORKLOAD ") else { continue };
            let mut it = rest.split_whitespace();
            let name = it.next().unwrap_or("?").to_string();
            let ns: u128 = it
                .next()
                .and_then(|s| s.strip_prefix("ns="))
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            let check = it.next().and_then(|s| s.strip_prefix("check=")).unwrap_or("?").to_string();
            rows.push((name, t.clone(), ns, check));
        }
    }

    println!("thread_scaling — best-of-3 wall time per workload");
    println!("{:<28} {:>8} {:>14} {:>10}", "workload", "threads", "time", "speedup");
    for (name, _) in workloads() {
        let base = rows
            .iter()
            .find(|(n, t, _, _)| n == name && t == &counts[0])
            .map(|&(_, _, ns, _)| ns)
            .unwrap_or(0);
        let mut checks: Vec<&str> = Vec::new();
        for t in &counts {
            if let Some((_, _, ns, check)) = rows.iter().find(|(n, tt, _, _)| n == name && tt == t)
            {
                println!(
                    "{:<28} {:>8} {:>12.3} ms {:>9.2}x",
                    name,
                    t,
                    *ns as f64 / 1e6,
                    base as f64 / *ns as f64
                );
                checks.push(check);
            }
        }
        assert!(
            checks.windows(2).all(|w| w[0] == w[1]),
            "checksums differ across thread counts for {name}: {checks:?}"
        );
    }
    println!("checksums bit-identical across thread counts: ok");
}
