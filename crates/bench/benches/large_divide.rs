//! Million-node divide-path benchmark: streaming ingestion + CSR build
//! + size-gated `Auto` divide, with peak-memory accounting.
//!
//! For each (family, n) the harness generates a graph (geometric-skip
//! Erdős–Rényi at mean degree 8, Barabási–Albert at attach 4, square
//! 2-D grid), writes it to a Gset file on disk, streams it back through
//! the single-pass reader, and runs `strategy::divide` with the `Auto`
//! strategy — the end-to-end large-instance path. Records
//! `BENCH_large.json` at the repo root: read wall, divide wall, CSR
//! bytes per edge endpoint, peak RSS (`VmHWM` from `/proc/self/status`),
//! and the gate attribution.
//!
//! Default sizes are the CI smoke leg (n = 10⁵). Override with
//! `QQ_LARGE_SIZES="100000 1000000"`; the 10⁷ leg is opt-in the same
//! way. `QQ_LARGE_CAP` overrides the community cap (default 4096).
//!
//! Not a criterion harness: one process writes one JSON artifact.
//! Run with `cargo bench --bench large_divide`.

use qq_core::{strategy, PartitionStrategy, RefineConfig};
use qq_graph::generators::{self, WeightKind};
use qq_graph::{io, Graph};
use std::fmt::Write as _;
use std::io::BufReader;
use std::time::Instant;

struct Row {
    family: &'static str,
    n: usize,
    m: usize,
    read_ns: u128,
    divide_ns: u128,
    bytes_per_endpoint: f64,
    effective: String,
    size_gated: bool,
    communities: usize,
    peak_rss_kb: u64,
}

fn generate(family: &'static str, n: usize) -> Graph {
    match family {
        // mean degree 8 → m ≈ 4n, the acceptance instance shape
        "erdos_renyi" => generators::erdos_renyi_fast(n, 8.0 / n as f64, WeightKind::Uniform, 42),
        "barabasi_albert" => generators::barabasi_albert(n, 4, 42),
        "grid_2d" => {
            let side = (n as f64).sqrt().round() as usize;
            generators::grid_2d(side, side)
        }
        _ => unreachable!("unknown family"),
    }
}

/// Peak resident set size of this process, in kB (`VmHWM`). Linux-only;
/// reports 0 elsewhere so the artifact stays well-formed.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

fn main() {
    let sizes: Vec<usize> = std::env::var("QQ_LARGE_SIZES")
        .unwrap_or_else(|_| "100000".into())
        .split_whitespace()
        .map(|s| s.parse().expect("QQ_LARGE_SIZES entries are integers"))
        .collect();
    let cap: usize = std::env::var("QQ_LARGE_CAP")
        .unwrap_or_else(|_| "4096".into())
        .parse()
        .expect("QQ_LARGE_CAP is an integer");
    let tmp = std::env::temp_dir().join("qq_large_divide.gset");

    let mut rows = Vec::new();
    for &n in &sizes {
        for family in ["erdos_renyi", "barabasi_albert", "grid_2d"] {
            let g = generate(family, n);
            let gen_n = g.num_nodes(); // grid rounds n to a square
            let m = g.num_edges();
            {
                let file = std::fs::File::create(&tmp).expect("create temp gset file");
                io::write_gset(&g, std::io::BufWriter::new(file)).expect("write gset");
            }
            drop(g);

            // streamed single-pass ingest: disk → CSR
            let t = Instant::now();
            let file = std::fs::File::open(&tmp).expect("open temp gset file");
            let g = io::read_gset(BufReader::new(file)).expect("read gset");
            let read_ns = t.elapsed().as_nanos();
            assert_eq!(g.num_nodes(), gen_n, "{family} n={n}: node count drifted");
            assert_eq!(g.num_edges(), m, "{family} n={n}: edge count drifted");

            let bytes_per_endpoint =
                if m == 0 { 0.0 } else { g.memory_bytes() as f64 / (2 * m) as f64 };

            let t = Instant::now();
            let outcome =
                strategy::divide(&g, cap, &PartitionStrategy::Auto, 0, &RefineConfig::default(), 7)
                    .expect("divide succeeds");
            let divide_ns = t.elapsed().as_nanos();

            rows.push(Row {
                family,
                n: g.num_nodes(),
                m,
                read_ns,
                divide_ns,
                bytes_per_endpoint,
                effective: outcome.effective.clone(),
                size_gated: outcome.size_gated,
                communities: outcome.communities_after_refine,
                peak_rss_kb: peak_rss_kb(),
            });
            println!(
                "{family:<16} n={n:<9} m={m:<9} read={:>8.3} s divide={:>8.3} s \
                 B/endpoint={:>5.1} gated={} effective={} communities={}",
                read_ns as f64 / 1e9,
                divide_ns as f64 / 1e9,
                bytes_per_endpoint,
                outcome.size_gated,
                outcome.effective,
                outcome.communities_after_refine,
            );
        }
    }
    let _ = std::fs::remove_file(&tmp);

    let mut json = String::from("{\n  \"bench\": \"large_divide\",\n");
    let _ = writeln!(json, "  \"cap\": {cap},");
    let _ = writeln!(json, "  \"host_threads\": {},", rayon::current_num_threads());
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"family\": \"{}\", \"n\": {}, \"m\": {}, \"read_ns\": {}, \
             \"divide_ns\": {}, \"divide_s\": {:.3}, \"bytes_per_edge_endpoint\": {:.2}, \
             \"effective\": \"{}\", \"size_gated\": {}, \"communities\": {}, \
             \"peak_rss_kb\": {}}}",
            r.family,
            r.n,
            r.m,
            r.read_ns,
            r.divide_ns,
            r.divide_ns as f64 / 1e9,
            r.bytes_per_endpoint,
            r.effective,
            r.size_gated,
            r.communities,
            r.peak_rss_kb,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_large.json");
    std::fs::write(path, &json).expect("write BENCH_large.json");
    println!("wrote {path}");
}
