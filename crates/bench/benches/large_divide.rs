//! Million-node divide-path benchmark: streaming ingestion, parallel
//! CSR build, and the size-gated `Auto` divide, with peak-memory
//! accounting and thread-scaling attribution.
//!
//! For each (family, n) the harness generates a graph (geometric-skip
//! Erdős–Rényi at mean degree 8, Barabási–Albert at attach 4, square
//! 2-D grid), writes it to a Gset file on disk, streams it back through
//! the single-pass reader, and runs `strategy::divide` with the `Auto`
//! strategy twice — once pinned to one thread via
//! `rayon::sequential_scope` and once on the configured pool — asserting
//! the two partitions are identical (the repo's bit-identical
//! invariant) and recording both walls plus the pool's steal count.
//! Records `BENCH_large.json` at the repo root: per-phase walls (read,
//! probe, divide ×2), CSR bytes per edge endpoint, steal counts, peak
//! RSS (`VmHWM` from `/proc/self/status`), and the gate attribution.
//!
//! Default sizes are the CI smoke leg (n = 10⁵). Override with
//! `QQ_LARGE_SIZES="100000 1000000"`; the 10⁷ power-law leg is opt-in
//! the same way and additionally asserts the peak-RSS ceiling
//! (`QQ_LARGE_RSS_CEILING_KB`, default 12 GiB). `QQ_LARGE_CAP`
//! overrides the community cap (default 4096).
//!
//! Not a criterion harness: one process writes one JSON artifact.
//! Run with `cargo bench --bench large_divide`.

use qq_core::{strategy, PartitionStrategy, RefineConfig};
use qq_graph::generators::{self, WeightKind};
use qq_graph::{auto, io, Graph};
use std::fmt::Write as _;
use std::io::BufReader;
use std::time::Instant;

struct Row {
    family: &'static str,
    n: usize,
    m: usize,
    read_ns: u128,
    probe_ns: u128,
    divide_1t_ns: u128,
    divide_ns: u128,
    steals: u64,
    bytes_per_endpoint: f64,
    effective: String,
    size_gated: bool,
    communities: usize,
    peak_rss_kb: u64,
}

fn generate(family: &'static str, n: usize) -> Graph {
    match family {
        // mean degree 8 → m ≈ 4n, the acceptance instance shape
        "erdos_renyi" => generators::erdos_renyi_fast(n, 8.0 / n as f64, WeightKind::Uniform, 42),
        "barabasi_albert" => generators::barabasi_albert(n, 4, 42),
        "grid_2d" => {
            let side = (n as f64).sqrt().round() as usize;
            generators::grid_2d(side, side)
        }
        _ => unreachable!("unknown family"),
    }
}

/// Peak resident set size of this process, in kB (`VmHWM`). Linux-only;
/// reports 0 elsewhere so the artifact stays well-formed.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

fn main() {
    let sizes: Vec<usize> = std::env::var("QQ_LARGE_SIZES")
        .unwrap_or_else(|_| "100000".into())
        .split_whitespace()
        .map(|s| s.parse().expect("QQ_LARGE_SIZES entries are integers"))
        .collect();
    let cap: usize = std::env::var("QQ_LARGE_CAP")
        .unwrap_or_else(|_| "4096".into())
        .parse()
        .expect("QQ_LARGE_CAP is an integer");
    let rss_ceiling_kb: u64 = std::env::var("QQ_LARGE_RSS_CEILING_KB")
        .unwrap_or_else(|_| "12582912".into())
        .parse()
        .expect("QQ_LARGE_RSS_CEILING_KB is an integer");
    let tmp = std::env::temp_dir().join("qq_large_divide.gset");

    let mut rows = Vec::new();
    for &n in &sizes {
        // the 10⁷ leg is the power-law family only: hubs are the shape
        // that stresses the scatter balance and the snapshot sweeps
        let families: &[&'static str] = if n >= 10_000_000 {
            &["barabasi_albert"]
        } else {
            &["erdos_renyi", "barabasi_albert", "grid_2d"]
        };
        for &family in families {
            let g = generate(family, n);
            let gen_n = g.num_nodes(); // grid rounds n to a square
            let m = g.num_edges();
            {
                let file = std::fs::File::create(&tmp).expect("create temp gset file");
                io::write_gset(&g, std::io::BufWriter::new(file)).expect("write gset");
            }
            drop(g);

            // streamed single-pass ingest: disk → CSR (the parallel
            // finalize runs inside this wall)
            let t = Instant::now();
            let file = std::fs::File::open(&tmp).expect("open temp gset file");
            let g = io::read_gset(BufReader::new(file)).expect("read gset");
            let read_ns = t.elapsed().as_nanos();
            assert_eq!(g.num_nodes(), gen_n, "{family} n={n}: node count drifted");
            assert_eq!(g.num_edges(), m, "{family} n={n}: edge count drifted");

            let bytes_per_endpoint =
                if m == 0 { 0.0 } else { g.memory_bytes() as f64 / (2 * m) as f64 };

            // instance probe as its own phase (the chunk-ordered
            // parallel weight reduction)
            let t = Instant::now();
            let probe = auto::probe(&g);
            let probe_ns = t.elapsed().as_nanos();

            // 1-thread reference leg: the exact same divide forced
            // inline through `sequential_scope` — an honest in-process
            // single-thread wall whatever `RAYON_NUM_THREADS` says
            let t = Instant::now();
            let outcome_1t = rayon::sequential_scope(|| {
                strategy::divide(&g, cap, &PartitionStrategy::Auto, 0, &RefineConfig::default(), 7)
                    .expect("divide succeeds")
            });
            let divide_1t_ns = t.elapsed().as_nanos();

            // pooled leg, with the work-stealing delta attributed
            let steals_before = rayon::steal_count();
            let t = Instant::now();
            let outcome =
                strategy::divide(&g, cap, &PartitionStrategy::Auto, 0, &RefineConfig::default(), 7)
                    .expect("divide succeeds");
            let divide_ns = t.elapsed().as_nanos();
            let steals = rayon::steal_count() - steals_before;

            // the signature invariant, enforced in-bench: pooled and
            // single-thread divides are bit-identical
            assert_eq!(outcome_1t.partition, outcome.partition, "{family} n={n}: divide drifted");
            assert_eq!(outcome_1t.effective, outcome.effective);
            assert_eq!(probe.is_large(), outcome.size_gated);

            rows.push(Row {
                family,
                n: g.num_nodes(),
                m,
                read_ns,
                probe_ns,
                divide_1t_ns,
                divide_ns,
                steals,
                bytes_per_endpoint,
                effective: outcome.effective.clone(),
                size_gated: outcome.size_gated,
                communities: outcome.communities_after_refine,
                peak_rss_kb: peak_rss_kb(),
            });
            println!(
                "{family:<16} n={n:<9} m={m:<9} read={:>8.3} s divide(1t)={:>8.3} s \
                 divide={:>8.3} s steals={} B/endpoint={:>5.1} gated={} effective={} \
                 communities={}",
                read_ns as f64 / 1e9,
                divide_1t_ns as f64 / 1e9,
                divide_ns as f64 / 1e9,
                steals,
                bytes_per_endpoint,
                outcome.size_gated,
                outcome.effective,
                outcome.communities_after_refine,
            );
        }
        // the opt-in 10⁷ leg doubles as the memory-regression fence:
        // the whole process (graph + transients) must stay under the
        // ceiling, or the CSR path has grown a hidden copy
        if n >= 10_000_000 {
            let peak = peak_rss_kb();
            assert!(
                peak < rss_ceiling_kb,
                "peak RSS {peak} kB exceeds the {rss_ceiling_kb} kB ceiling at n = {n}"
            );
        }
    }
    let _ = std::fs::remove_file(&tmp);

    let mut json = String::from("{\n  \"bench\": \"large_divide\",\n");
    let _ = writeln!(json, "  \"cap\": {cap},");
    let _ = writeln!(json, "  \"host_threads\": {},", rayon::current_num_threads());
    let _ = writeln!(
        json,
        "  \"host_cpus\": {},",
        std::thread::available_parallelism().map(usize::from).unwrap_or(1)
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"family\": \"{}\", \"n\": {}, \"m\": {}, \"read_ns\": {}, \
             \"probe_ns\": {}, \"divide_1t_ns\": {}, \"divide_ns\": {}, \"divide_s\": {:.3}, \
             \"speedup_vs_1t\": {:.3}, \"steals\": {}, \"bytes_per_edge_endpoint\": {:.2}, \
             \"effective\": \"{}\", \"size_gated\": {}, \"communities\": {}, \
             \"peak_rss_kb\": {}}}",
            r.family,
            r.n,
            r.m,
            r.read_ns,
            r.probe_ns,
            r.divide_1t_ns,
            r.divide_ns,
            r.divide_ns as f64 / 1e9,
            if r.divide_ns == 0 { 1.0 } else { r.divide_1t_ns as f64 / r.divide_ns as f64 },
            r.steals,
            r.bytes_per_endpoint,
            r.effective,
            r.size_gated,
            r.communities,
            r.peak_rss_kb,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_large.json");
    std::fs::write(path, &json).expect("write BENCH_large.json");
    println!("wrote {path}");
}
