//! GW cost growth with node count (§3.4: the paper's cvxpy route grows
//! like O(N^6.5) and aborts beyond 2000 nodes; Burer–Monteiro stays
//! polynomially mild, which is the point of the substitution).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qq_graph::generators::{self, WeightKind};
use qq_gw::{goemans_williamson, GwConfig};

fn bench_gw(c: &mut Criterion) {
    let mut group = c.benchmark_group("gw_scaling");
    group.sample_size(10);
    for &n in &[100usize, 200, 400] {
        let g = generators::erdos_renyi(n, 0.1, WeightKind::Uniform, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| goemans_williamson(g, &GwConfig::default()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gw);
criterion_main!(benches);
