//! QAOA² merge-step cost: coarse-graph construction plus flip
//! application, the serial overhead between parallel levels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qq_core::{apply_flips, build_merge_graph};
use qq_graph::generators::{self, WeightKind};
use qq_graph::{partition_with_cap, Cut};

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("qaoa2_merge");
    group.sample_size(20);
    for &n in &[500usize, 1000] {
        let g = generators::erdos_renyi(n, 0.05, WeightKind::Uniform, 9);
        let partition = partition_with_cap(&g, 16);
        let local_cuts: Vec<Cut> = partition
            .communities()
            .iter()
            .enumerate()
            .map(|(i, members)| Cut::from_fn(members.len(), |v| (v as usize + i).is_multiple_of(2)))
            .collect();
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| build_merge_graph(&g, &partition, &local_cuts));
        });
        let coarse = build_merge_graph(&g, &partition, &local_cuts);
        let coarse_cut = Cut::from_fn(coarse.num_nodes(), |v| v % 2 == 0);
        group.bench_with_input(BenchmarkId::new("apply_flips", n), &n, |b, _| {
            b.iter(|| apply_flips(&g, &partition, &local_cuts, &coarse_cut));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
