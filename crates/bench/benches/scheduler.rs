//! Workload-manager throughput: scheduling cost per job for batches of
//! hybrid jobs, monolithic vs heterogeneous.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qq_hpc::scheduler::{Cluster, Job, JobComponent, JobMode, ResourceReq, Scheduler};

fn jobs(k: usize, mode: JobMode) -> Vec<Job> {
    (0..k)
        .map(|i| Job {
            submit: (i as u64) % 7,
            mode,
            components: vec![
                JobComponent { name: "classical".into(), req: ResourceReq::cpu(2), duration: 10 },
                JobComponent {
                    name: "quantum".into(),
                    req: ResourceReq::quantum(1, 1),
                    duration: 3,
                },
            ],
        })
        .collect()
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(20);
    let cluster = Cluster { cpu_nodes: 16, qpus: 2 };
    for &k in &[100usize, 400] {
        for (name, mode) in [("mono", JobMode::Monolithic), ("het", JobMode::Heterogeneous)] {
            let batch = jobs(k, mode);
            group.bench_with_input(BenchmarkId::new(name, k), &batch, |b, batch| {
                let sched = Scheduler::new(cluster, true);
                b.iter(|| sched.run(batch));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
