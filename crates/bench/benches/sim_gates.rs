//! Gate-kernel throughput: flat vs cache-blocked engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qq_sim::{BlockedState, StateVector};

fn bench_gates(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_gates");
    group.sample_size(20);
    for &n in &[14usize, 18] {
        group.bench_with_input(BenchmarkId::new("flat_rx", n), &n, |b, &n| {
            let mut s = StateVector::plus_state(n);
            b.iter(|| s.rx(n / 2, 0.3));
        });
        group.bench_with_input(BenchmarkId::new("flat_rzz", n), &n, |b, &n| {
            let mut s = StateVector::plus_state(n);
            b.iter(|| s.rzz(0, n - 1, 0.3));
        });
        group.bench_with_input(BenchmarkId::new("blocked_rx_low", n), &n, |b, &n| {
            let mut s = BlockedState::plus_state(n, 12).unwrap();
            b.iter(|| s.rx(1, 0.3).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("blocked_rx_high", n), &n, |b, &n| {
            let mut s = BlockedState::plus_state(n, 12).unwrap();
            b.iter(|| s.rx(n - 1, 0.3).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gates);
criterion_main!(benches);
