//! CNM greedy-modularity partition cost — the QAOA² divide step on
//! Fig. 4-sized graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qq_graph::generators::{self, WeightKind};
use qq_graph::partition_with_cap;

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_partition");
    group.sample_size(10);
    for &n in &[200usize, 500, 1000] {
        let g = generators::erdos_renyi(n, 0.05, WeightKind::Uniform, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| partition_with_cap(g, 16));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
