//! QAOA objective-evaluation cost: fused diagonal layer vs synthesized
//! gate circuit — the optimization that makes the paper's grid searches
//! tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qq_circuit::{AnsatzParams, CostModel, Preference};
use qq_graph::generators::{self, WeightKind};
use qq_qaoa::cost::CostTable;
use qq_qaoa::executor;

fn bench_objective(c: &mut Criterion) {
    let mut group = c.benchmark_group("qaoa_objective");
    group.sample_size(15);
    for &n in &[12usize, 16] {
        let g = generators::erdos_renyi(n, 0.3, WeightKind::Uniform, 3);
        let model = CostModel::from_maxcut(&g);
        let table = CostTable::new(&model);
        let params = AnsatzParams::new(vec![0.3, 0.5, 0.2], vec![0.4, 0.1, 0.6]);
        group.bench_with_input(BenchmarkId::new("fused", n), &n, |b, _| {
            b.iter(|| {
                let s = executor::build_state_fused(&table, &params);
                table.expectation(&s)
            });
        });
        group.bench_with_input(BenchmarkId::new("gate_circuit", n), &n, |b, _| {
            b.iter(|| {
                let s = executor::build_state_circuit(&model, &params, Preference::Depth);
                table.expectation(&s)
            });
        });
        group.bench_with_input(BenchmarkId::new("fused_with_shots", n), &n, |b, _| {
            b.iter(|| {
                let s = executor::build_state_fused(&table, &params);
                table.sampled_expectation(&s, 4096, 7)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_objective);
criterion_main!(benches);
