//! # qq-bench — experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §3) plus the
//! criterion micro-benchmarks. This library holds the shared machinery:
//! run-scale handling, the Fig. 3/Table 1 grid-search engine, and plain
//! CSV/heatmap output helpers.

#![forbid(unsafe_code)]

pub mod fig3;
pub mod output;
pub mod scale;

pub use fig3::{run_grid_experiment, CellOutcome, GridSettings, GridSummary};
pub use output::{write_csv, Heatmap};
pub use scale::Scale;
