//! The Fig. 3 / Table 1 grid-search engine.
//!
//! For every `(node count, edge probability, weighting)` instance the paper
//! generates one graph, solves it classically with GW (30 slicings, the
//! *average* cut is the comparison value) and then runs QAOA on every
//! `(p, rhobeg)` grid point, recording
//!
//! * the proportion of grid points where QAOA is **strictly better** than
//!   GW (Fig. 3a / Table 1 top), and
//! * the proportion where QAOA lands in **[95, 100)%** of GW (Fig. 3b /
//!   Table 1 bottom),
//!
//! plus the per-grid-point win proportions aggregated over instances
//! (Fig. 3c).

use qq_graph::generators::{self, WeightKind};
use qq_gw::{goemans_williamson, GwConfig};
use qq_qaoa::QaoaConfig;
use rayon::prelude::*;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct GridSettings {
    /// Node counts (heatmap rows).
    pub node_counts: Vec<usize>,
    /// Edge probabilities (heatmap columns).
    pub edge_probs: Vec<f64>,
    /// QAOA layer counts.
    pub ps: Vec<usize>,
    /// COBYLA `rhobeg` values.
    pub rhobegs: Vec<f64>,
    /// Shots per objective estimate.
    pub shots: usize,
    /// Master seed.
    pub seed: u64,
}

impl GridSettings {
    /// The paper's Fig. 3 sweep (nodes 15–25, probs 0.1–0.5, p 3–8,
    /// rhobeg 0.1–0.5, 4096 shots).
    pub fn paper_fig3() -> Self {
        GridSettings {
            node_counts: (15..=25).collect(),
            edge_probs: vec![0.1, 0.2, 0.3, 0.4, 0.5],
            ps: (3..=8).collect(),
            rhobegs: vec![0.1, 0.2, 0.3, 0.4, 0.5],
            shots: 4096,
            seed: 2024,
        }
    }

    /// The paper's Table 1 sweep (nodes 30–33, probs {0.1, 0.2}).
    pub fn paper_table1() -> Self {
        GridSettings {
            node_counts: (30..=33).collect(),
            edge_probs: vec![0.1, 0.2],
            ..Self::paper_fig3()
        }
    }
}

/// One `(instance, grid point)` outcome.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Node count of the instance.
    pub nodes: usize,
    /// Edge probability of the instance.
    pub edge_prob: f64,
    /// Weighted instance?
    pub weighted: bool,
    /// QAOA layers.
    pub p: usize,
    /// COBYLA rhobeg.
    pub rhobeg: f64,
    /// QAOA cut value (highest-amplitude policy, like the paper).
    pub qaoa_value: f64,
    /// GW comparison value (mean over 30 slicings, like the paper).
    pub gw_value: f64,
}

impl CellOutcome {
    /// QAOA strictly better than GW.
    pub fn qaoa_wins(&self) -> bool {
        self.qaoa_value > self.gw_value
    }

    /// QAOA within `[95, 100)%` of GW.
    pub fn near_miss(&self) -> bool {
        let r = self.qaoa_value / self.gw_value.max(1e-300);
        (0.95..1.0).contains(&r)
    }
}

/// All outcomes of a sweep.
#[derive(Debug, Clone)]
pub struct GridSummary {
    /// Every `(instance, grid point)` outcome.
    pub cells: Vec<CellOutcome>,
    /// Settings that produced them.
    pub settings: GridSettings,
}

impl GridSummary {
    /// Proportion over grid points of `pred` for one `(nodes, prob,
    /// weighted)` instance — a Fig. 3a/3b heatmap cell.
    pub fn instance_proportion(
        &self,
        nodes: usize,
        edge_prob: f64,
        weighted: bool,
        pred: impl Fn(&CellOutcome) -> bool,
    ) -> f64 {
        let sel: Vec<&CellOutcome> = self
            .cells
            .iter()
            .filter(|c| c.nodes == nodes && c.edge_prob == edge_prob && c.weighted == weighted)
            .collect();
        if sel.is_empty() {
            return 0.0;
        }
        sel.iter().filter(|c| pred(c)).count() as f64 / sel.len() as f64
    }

    /// Proportion over instances of QAOA wins for one `(p, rhobeg)` grid
    /// point — a Fig. 3c heatmap cell.
    pub fn gridpoint_win_proportion(&self, p: usize, rhobeg: f64, weighted: bool) -> f64 {
        let sel: Vec<&CellOutcome> = self
            .cells
            .iter()
            .filter(|c| c.p == p && (c.rhobeg - rhobeg).abs() < 1e-12 && c.weighted == weighted)
            .collect();
        if sel.is_empty() {
            return 0.0;
        }
        sel.iter().filter(|c| c.qaoa_wins()).count() as f64 / sel.len() as f64
    }
}

/// Run the sweep. Instances are processed in parallel; each `(instance,
/// grid point)` cell derives its own seed, so results are independent of
/// thread scheduling.
pub fn run_grid_experiment(settings: &GridSettings, verbose: bool) -> GridSummary {
    let mut instances: Vec<(usize, f64, bool)> = Vec::new();
    for &n in &settings.node_counts {
        for &p in &settings.edge_probs {
            for weighted in [false, true] {
                instances.push((n, p, weighted));
            }
        }
    }

    // REDUCTION: one leaf per instance cell (with_min_len(1)); the
    // flat_map collect is keyed by instance index, so cell outcomes land
    // in grid order whatever the steal schedule.
    let cells: Vec<CellOutcome> = instances
        .par_iter()
        .with_min_len(1)
        .flat_map(|&(nodes, edge_prob, weighted)| {
            let kind = if weighted { WeightKind::Random01 } else { WeightKind::Uniform };
            let gseed = settings
                .seed
                .wrapping_add((nodes as u64) << 24)
                .wrapping_add((edge_prob * 1000.0) as u64)
                .wrapping_add(weighted as u64);
            let g = generators::erdos_renyi(nodes, edge_prob, kind, gseed);
            // paper comparison value: mean of 30 GW slicings
            let gw =
                goemans_williamson(&g, &GwConfig { seed: gseed ^ 0xa5a5, ..GwConfig::default() });
            let mut out = Vec::new();
            for &p in &settings.ps {
                for &rhobeg in &settings.rhobegs {
                    let cfg = QaoaConfig {
                        shots: settings.shots,
                        ..QaoaConfig::grid_cell(
                            p,
                            rhobeg,
                            gseed ^ ((p as u64) << 8) ^ rhobeg.to_bits(),
                        )
                    };
                    let qaoa_value = match qq_qaoa::solve(&g, &cfg) {
                        Ok(r) => r.best.value,
                        Err(e) => {
                            eprintln!("qaoa failed on n={nodes}: {e}");
                            continue;
                        }
                    };
                    out.push(CellOutcome {
                        nodes,
                        edge_prob,
                        weighted,
                        p,
                        rhobeg,
                        qaoa_value,
                        gw_value: gw.mean_value,
                    });
                }
            }
            if verbose {
                let wins = out.iter().filter(|c| c.qaoa_wins()).count();
                eprintln!(
                    "  n={nodes:>2} p_edge={edge_prob:.1} weighted={weighted}: QAOA wins {wins}/{}",
                    out.len()
                );
            }
            out
        })
        .collect();

    GridSummary { cells, settings: settings.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_all_cells() {
        let settings = GridSettings {
            node_counts: vec![6],
            edge_probs: vec![0.4],
            ps: vec![1],
            rhobegs: vec![0.3],
            shots: 256,
            seed: 1,
        };
        let summary = run_grid_experiment(&settings, false);
        // 1 node count × 1 prob × 2 weightings × 1 grid point
        assert_eq!(summary.cells.len(), 2);
        for c in &summary.cells {
            assert!(c.qaoa_value >= 0.0);
            assert!(c.gw_value > 0.0);
        }
    }

    #[test]
    fn proportions_in_unit_interval() {
        let settings = GridSettings {
            node_counts: vec![7],
            edge_probs: vec![0.3],
            ps: vec![1, 2],
            rhobegs: vec![0.2],
            shots: 256,
            seed: 5,
        };
        let summary = run_grid_experiment(&settings, false);
        let p = summary.instance_proportion(7, 0.3, false, CellOutcome::qaoa_wins);
        assert!((0.0..=1.0).contains(&p));
        let q = summary.gridpoint_win_proportion(1, 0.2, true);
        assert!((0.0..=1.0).contains(&q));
    }
}
