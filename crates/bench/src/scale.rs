//! Run scales: every experiment binary accepts `--scale smoke|default|paper`.
//!
//! * `smoke` — seconds; CI-sized sanity run.
//! * `default` — minutes on a laptop; the scale EXPERIMENTS.md records.
//! * `paper` — the paper's exact parameters (15–25 and 30–33 qubit cells,
//!   500–2500-node graphs). Needs a large machine; 33-qubit statevectors
//!   are out of reach for 21 GB of RAM (the paper used 512 nodes).

/// Experiment scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Seconds-long sanity run.
    Smoke,
    /// Laptop-sized reproduction (recorded in EXPERIMENTS.md).
    #[default]
    Default,
    /// The paper's full parameters.
    Paper,
}

impl Scale {
    /// Parse from CLI args (`--scale X` or positional `X`); defaults to
    /// [`Scale::Default`].
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for (i, a) in args.iter().enumerate() {
            let v = if a == "--scale" {
                args.get(i + 1).map(String::as_str)
            } else if let Some(rest) = a.strip_prefix("--scale=") {
                Some(rest)
            } else {
                continue;
            };
            match v {
                Some("smoke") => return Scale::Smoke,
                Some("default") => return Scale::Default,
                Some("paper") => return Scale::Paper,
                Some(other) => {
                    eprintln!("unknown scale `{other}`; using default");
                    return Scale::Default;
                }
                None => {}
            }
        }
        Scale::Default
    }

    /// Human label.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Default => "default",
            Scale::Paper => "paper",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Scale::Smoke.label(), "smoke");
        assert_eq!(Scale::Paper.label(), "paper");
        assert_eq!(Scale::default(), Scale::Default);
    }
}
