//! Fig. 3 reproduction: grid search QAOA vs GW over node count × edge
//! probability × (p, rhobeg), printing the three heatmap panels and
//! persisting every cell to `results/fig3.csv`.

use qq_bench::{run_grid_experiment, write_csv, CellOutcome, GridSettings, Heatmap, Scale};

fn settings_for(scale: Scale) -> GridSettings {
    match scale {
        Scale::Smoke => GridSettings {
            node_counts: vec![8, 10],
            edge_probs: vec![0.1, 0.3],
            ps: vec![3, 4],
            rhobegs: vec![0.1, 0.5],
            shots: 1024,
            seed: 2024,
        },
        Scale::Default => GridSettings {
            node_counts: vec![10, 12, 14],
            edge_probs: vec![0.1, 0.2, 0.3, 0.4, 0.5],
            ps: vec![3, 4, 5, 6],
            rhobegs: vec![0.1, 0.3, 0.5],
            shots: 4096,
            seed: 2024,
        },
        Scale::Paper => GridSettings::paper_fig3(),
    }
}

fn main() {
    let scale = Scale::from_args();
    let settings = settings_for(scale);
    eprintln!(
        "fig3_grid [{}]: nodes {:?}, probs {:?}, p {:?}, rhobeg {:?}",
        scale.label(),
        settings.node_counts,
        settings.edge_probs,
        settings.ps,
        settings.rhobegs
    );
    let t0 = std::time::Instant::now();
    let summary = run_grid_experiment(&settings, true);
    eprintln!("sweep done in {:.1?} ({} cells)", t0.elapsed(), summary.cells.len());

    let prob_labels: Vec<String> = settings.edge_probs.iter().map(|p| format!("{p:.1}")).collect();
    let node_labels: Vec<String> = settings.node_counts.iter().map(|n| n.to_string()).collect();

    // Panels (a) and (b): instance heatmaps per weighting.
    for (pred_name, pred) in [
        (
            "QAOA strictly better than GW (Fig 3a)",
            CellOutcome::qaoa_wins as fn(&CellOutcome) -> bool,
        ),
        ("QAOA in [95,100)% of GW (Fig 3b)", CellOutcome::near_miss as fn(&CellOutcome) -> bool),
    ] {
        for weighted in [false, true] {
            let mut h = Heatmap::new(
                &format!("{pred_name} — {}", if weighted { "weighted" } else { "unweighted" }),
                ("nodes", node_labels.clone()),
                ("p_edge", prob_labels.clone()),
            );
            for (r, &n) in settings.node_counts.iter().enumerate() {
                for (c, &pe) in settings.edge_probs.iter().enumerate() {
                    h.cells[r][c] = summary.instance_proportion(n, pe, weighted, pred);
                }
            }
            println!("{}", h.render());
        }
    }

    // Panel (c): grid-point heatmaps.
    let p_labels: Vec<String> = settings.ps.iter().map(|p| p.to_string()).collect();
    let rb_labels: Vec<String> = settings.rhobegs.iter().map(|r| format!("{r:.1}")).collect();
    for weighted in [false, true] {
        let mut h = Heatmap::new(
            &format!(
                "QAOA wins per (rhobeg, layers) grid point (Fig 3c) — {}",
                if weighted { "weighted" } else { "unweighted" }
            ),
            ("rhobeg", rb_labels.clone()),
            ("layers", p_labels.clone()),
        );
        for (r, &rb) in settings.rhobegs.iter().enumerate() {
            for (c, &p) in settings.ps.iter().enumerate() {
                h.cells[r][c] = summary.gridpoint_win_proportion(p, rb, weighted);
            }
        }
        println!("{}", h.render());
    }

    // Best grid point, as the paper calls out (rhobeg = 0.5, p = 6).
    let mut best = (0usize, 0.0f64, f64::MIN);
    for &p in &settings.ps {
        for &rb in &settings.rhobegs {
            let w = summary.gridpoint_win_proportion(p, rb, false)
                + summary.gridpoint_win_proportion(p, rb, true);
            if w > best.2 {
                best = (p, rb, w);
            }
        }
    }
    println!(
        "most successful parameter combination: (rhobeg = {:.1}, p = {}) — paper found (0.5, 6)",
        best.1, best.0
    );

    let rows: Vec<Vec<String>> = summary
        .cells
        .iter()
        .map(|c| {
            vec![
                c.nodes.to_string(),
                format!("{}", c.edge_prob),
                c.weighted.to_string(),
                c.p.to_string(),
                format!("{}", c.rhobeg),
                format!("{}", c.qaoa_value),
                format!("{}", c.gw_value),
            ]
        })
        .collect();
    write_csv(
        "results/fig3.csv",
        &["nodes", "edge_prob", "weighted", "p", "rhobeg", "qaoa_value", "gw_value"],
        &rows,
    )
    .expect("write results/fig3.csv");
    eprintln!("wrote results/fig3.csv");
}
