//! Table 1 reproduction: the Fig. 3 statistics at larger node counts
//! (paper: 30–33 qubits, edge probabilities 0.1 and 0.2).
//!
//! The paper ran these cells on 512 HPE-Cray EX nodes (~10 minutes per
//! 33-qubit, p = 8 simulation). On this machine the default scale uses
//! 16–19 qubits with a reduced grid; `--scale paper` requests the true
//! sizes and will exhaust memory below ~140 GB (documented in
//! EXPERIMENTS.md).

use qq_bench::{run_grid_experiment, write_csv, CellOutcome, GridSettings, Scale};

fn settings_for(scale: Scale) -> GridSettings {
    match scale {
        Scale::Smoke => GridSettings {
            node_counts: vec![12, 13],
            edge_probs: vec![0.1, 0.2],
            ps: vec![3],
            rhobegs: vec![0.5],
            shots: 1024,
            seed: 2025,
        },
        Scale::Default => GridSettings {
            node_counts: vec![16, 17, 18, 19],
            edge_probs: vec![0.1, 0.2],
            ps: vec![3, 6],
            rhobegs: vec![0.3, 0.5],
            shots: 4096,
            seed: 2025,
        },
        Scale::Paper => GridSettings::paper_table1(),
    }
}

fn main() {
    let scale = Scale::from_args();
    let settings = settings_for(scale);
    eprintln!(
        "table1 [{}]: nodes {:?}, probs {:?}",
        scale.label(),
        settings.node_counts,
        settings.edge_probs
    );
    let t0 = std::time::Instant::now();
    let summary = run_grid_experiment(&settings, true);
    eprintln!("sweep done in {:.1?}", t0.elapsed());

    println!("Table 1 — proportions per (nodes, weighting, edge probability)");
    println!("top block: QAOA strictly better than GW; bottom: QAOA in [95,100)% of GW\n");
    let probs = &settings.edge_probs;
    let header: Vec<String> = probs.iter().map(|p| format!("p={p:.1}")).collect();
    for (name, pred) in [
        ("strictly better", CellOutcome::qaoa_wins as fn(&CellOutcome) -> bool),
        ("within [95,100)%", CellOutcome::near_miss as fn(&CellOutcome) -> bool),
    ] {
        println!("-- {name} --");
        println!("{:>6} {:>9} {}", "nodes", "weighted", header.join("  "));
        for &n in &settings.node_counts {
            for weighted in [true, false] {
                let cells: Vec<String> = probs
                    .iter()
                    .map(|&pe| {
                        qq_bench::output::format_prop(
                            summary.instance_proportion(n, pe, weighted, pred),
                        )
                    })
                    .collect();
                println!(
                    "{:>6} {:>9} {}",
                    n,
                    if weighted { "yes" } else { "no" },
                    cells.join("   ")
                );
            }
        }
        println!();
    }

    let rows: Vec<Vec<String>> = summary
        .cells
        .iter()
        .map(|c| {
            vec![
                c.nodes.to_string(),
                format!("{}", c.edge_prob),
                c.weighted.to_string(),
                c.p.to_string(),
                format!("{}", c.rhobeg),
                format!("{}", c.qaoa_value),
                format!("{}", c.gw_value),
            ]
        })
        .collect();
    write_csv(
        "results/table1.csv",
        &["nodes", "edge_prob", "weighted", "p", "rhobeg", "qaoa_value", "gw_value"],
        &rows,
    )
    .expect("write results/table1.csv");
    eprintln!("wrote results/table1.csv");
}
