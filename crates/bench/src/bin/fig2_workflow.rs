//! Fig. 2 reproduction: the coordinator/worker distribution scheme.
//!
//! A QAOA² first partition is dispatched through the `qq-hpc`
//! coordinator (a dedicated rank, like the paper's MPI coordinator) to
//! worker pools of increasing size. Reported per pool size: wall time,
//! parallel efficiency (busy / (workers × wall)) and coordination
//! overhead — the paper's "overhead incurred by the coordination of the
//! various sub-graph solutions is minimal and overall an almost ideal
//! scaling is achieved".

use qq_bench::{write_csv, Scale};
use qq_core::{solve_subgraph, SubSolver};
use qq_graph::generators::WeightKind;
use qq_graph::{extract_subgraphs, generators, partition_with_cap};
use qq_hpc::master_worker;
use qq_qaoa::QaoaConfig;

fn main() {
    let scale = Scale::from_args();
    let (n, cap, layers) = match scale {
        Scale::Smoke => (80, 8, 1),
        Scale::Default => (240, 10, 3),
        Scale::Paper => (1000, 16, 6),
    };
    let g = generators::erdos_renyi(n, 0.1, WeightKind::Uniform, 7);
    let partition = partition_with_cap(&g, cap);
    let subgraphs = extract_subgraphs(&g, &partition);
    eprintln!(
        "fig2_workflow [{}]: {} nodes → {} sub-graphs (max {})",
        scale.label(),
        n,
        subgraphs.len(),
        partition.max_community_size()
    );

    let solver = SubSolver::Qaoa(QaoaConfig {
        layers,
        max_iters: QaoaConfig::paper_iterations(layers),
        ..QaoaConfig::default()
    });

    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>12}",
        "workers", "wall (ms)", "efficiency", "tasks/worker", "speedup"
    );
    let mut rows = Vec::new();
    let mut t1 = None;
    for workers in [1usize, 2, 4, 8] {
        let report = master_worker(workers, subgraphs.clone(), |i, sub| {
            solve_subgraph(&sub.graph, &solver, i as u64).map(|r| r.value).unwrap_or(f64::NAN)
        });
        let wall_ms = report.wall.as_secs_f64() * 1e3;
        if t1.is_none() {
            t1 = Some(wall_ms);
        }
        let speedup = t1.expect("set on first iteration") / wall_ms;
        let tasks: Vec<usize> = report.workers.iter().map(|w| w.tasks).collect();
        println!(
            "{:>8} {:>12.1} {:>12.3} {:>14} {:>12.2}",
            workers,
            wall_ms,
            report.efficiency(),
            format!("{tasks:?}"),
            speedup
        );
        rows.push(vec![
            workers.to_string(),
            format!("{wall_ms}"),
            format!("{}", report.efficiency()),
            format!("{speedup}"),
        ]);
    }
    println!(
        "\nnote: wall-clock speedup saturates at the physical core count of this machine ({});\n\
         efficiency is busy-time based and shows the coordination overhead directly.",
        std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1)
    );
    write_csv("results/fig2.csv", &["workers", "wall_ms", "efficiency", "speedup"], &rows)
        .expect("write results/fig2.csv");
    eprintln!("wrote results/fig2.csv");
}
