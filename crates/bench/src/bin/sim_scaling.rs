//! §4 simulator-cost reproduction: QAOA layer wall time vs qubit count and
//! the cache-blocking communication profile.
//!
//! The paper reports "simulation of QAOA for 33 qubits takes ~10 minutes
//! on 512 compute nodes for p = 8". This binary measures one QAOA layer
//! (cost + mixer) on this machine across qubit counts and prints, for the
//! blocked engine, the exchange volume a rank-distributed run would incur
//! — mixer gates above the chunk boundary are the *only* communication, so
//! the table shows directly why QAOA scales well under cache blocking.

use qq_bench::{write_csv, Scale};
use qq_circuit::CostModel;
use qq_graph::generators::{self, WeightKind};
use qq_sim::BlockedState;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let qubit_range: Vec<usize> = match scale {
        Scale::Smoke => vec![10, 12, 14],
        Scale::Default => vec![12, 14, 16, 18, 20],
        Scale::Paper => vec![16, 18, 20, 22, 24],
    };
    let chunk_qubits = 12usize;

    println!(
        "{:>7} {:>12} {:>14} {:>16} {:>14}",
        "qubits", "layer (ms)", "local ops", "pair exchanges", "MiB exchanged"
    );
    let mut rows = Vec::new();
    for &n in &qubit_range {
        let g = generators::erdos_renyi(n, 0.3, WeightKind::Uniform, 5);
        let model = CostModel::from_maxcut(&g);
        let mut s = BlockedState::plus_state(n, chunk_qubits.min(n)).expect("state fits");
        s.reset_stats();
        let t0 = Instant::now();
        // one QAOA layer: cost (diagonal RZZ per edge) + mixer (RX wall)
        for &(a, b, c) in &model.terms {
            s.rzz(a as usize, b as usize, 2.0 * 0.4 * c).expect("valid");
        }
        for q in 0..n {
            s.rx(q, 0.6).expect("valid");
        }
        let dt = t0.elapsed();
        let st = s.stats();
        let mib = st.bytes_exchanged as f64 / (1024.0 * 1024.0);
        println!(
            "{:>7} {:>12.2} {:>14} {:>16} {:>14.1}",
            n,
            dt.as_secs_f64() * 1e3,
            st.local_chunk_ops,
            st.pair_exchanges,
            mib
        );
        rows.push(vec![
            n.to_string(),
            format!("{}", dt.as_secs_f64() * 1e3),
            st.local_chunk_ops.to_string(),
            st.pair_exchanges.to_string(),
            format!("{mib}"),
        ]);
    }
    println!(
        "\ncost layer (all RZZ) is communication-free under cache blocking;\n\
         only mixer gates on qubits ≥ {chunk_qubits} (the chunk boundary) exchange chunk pairs."
    );
    write_csv(
        "results/sim_scaling.csv",
        &["qubits", "layer_ms", "local_ops", "pair_exchanges", "mib_exchanged"],
        &rows,
    )
    .expect("write results/sim_scaling.csv");
    eprintln!("wrote results/sim_scaling.csv");
}
