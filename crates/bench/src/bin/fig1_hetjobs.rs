//! Fig. 1 reproduction: heterogeneous SLURM jobs reduce quantum-device
//! idle time.
//!
//! A batch of hybrid jobs — a long classical component plus a short
//! quantum component — is scheduled twice on a cluster with one QPU:
//! monolithically (components start together) and heterogeneously
//! (components start independently). The QPU idle fraction and makespan
//! are reported for both, sweeping the classical/quantum duration ratio.

use qq_bench::write_csv;
use qq_hpc::scheduler::{fig1_hetjob_scenario, Cluster};

fn main() {
    let cluster = Cluster { cpu_nodes: 8, qpus: 1 };
    let jobs = 6;
    let quantum_ticks = 20u64;
    println!("Fig 1 — QPU idle fraction, {jobs} hybrid jobs, cluster: 8 CPU nodes, 1 QPU");
    println!(
        "{:>18} {:>14} {:>14} {:>12} {:>12}",
        "classical:quantum", "mono idle", "het idle", "mono span", "het span"
    );
    let mut rows = Vec::new();
    for ratio in [1u64, 2, 4, 8, 16] {
        let classical_ticks = quantum_ticks * ratio;
        let (mono, het) = fig1_hetjob_scenario(jobs, classical_ticks, quantum_ticks, cluster);
        let mono_idle = mono.qpu_idle_fraction().expect("cluster has a QPU");
        let het_idle = het.qpu_idle_fraction().expect("cluster has a QPU");
        println!(
            "{:>18} {:>14.3} {:>14.3} {:>12} {:>12}",
            format!("{classical_ticks}:{quantum_ticks}"),
            mono_idle,
            het_idle,
            mono.makespan,
            het.makespan
        );
        rows.push(vec![
            ratio.to_string(),
            format!("{mono_idle}"),
            format!("{het_idle}"),
            mono.makespan.to_string(),
            het.makespan.to_string(),
        ]);
    }
    write_csv(
        "results/fig1.csv",
        &[
            "classical_quantum_ratio",
            "mono_qpu_idle",
            "het_qpu_idle",
            "mono_makespan",
            "het_makespan",
        ],
        &rows,
    )
    .expect("write results/fig1.csv");
    eprintln!("wrote results/fig1.csv");
}
