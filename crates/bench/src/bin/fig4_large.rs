//! Fig. 4 reproduction: QAOA² on large Erdős–Rényi graphs.
//!
//! For each node count the first-partition sub-graphs are solved with
//! (i) QAOA only (grid-searched per sub-graph like the paper), (ii) GW
//! only, (iii) the best of the two per sub-graph; deeper levels always use
//! the classical solution, matching the paper. The GW solution of the
//! *original* graph and a random-partition baseline complete the series.
//! Values are printed relative to the QAOA series, exactly like Fig. 4.

use qq_bench::{write_csv, Scale};
use qq_core::{solve, Parallelism, Qaoa2Config, SubSolver};
use qq_graph::generators::{self, WeightKind};
use qq_gw::{goemans_williamson, GwConfig};
use qq_qaoa::QaoaConfig;

struct Fig4Settings {
    node_counts: Vec<usize>,
    edge_prob: f64,
    max_qubits: usize,
    ps: Vec<usize>,
    rhobegs: Vec<f64>,
    seed: u64,
}

fn settings_for(scale: Scale) -> Fig4Settings {
    match scale {
        Scale::Smoke => Fig4Settings {
            node_counts: vec![60, 120],
            edge_prob: 0.1,
            max_qubits: 8,
            ps: vec![3],
            rhobegs: vec![0.5],
            seed: 44,
        },
        Scale::Default => Fig4Settings {
            node_counts: vec![200, 400, 600],
            edge_prob: 0.1,
            max_qubits: 10,
            ps: vec![3, 6],
            rhobegs: vec![0.3, 0.5],
            seed: 44,
        },
        Scale::Paper => Fig4Settings {
            node_counts: vec![500, 1000, 1500, 2000, 2500],
            edge_prob: 0.1,
            max_qubits: 16,
            ps: (3..=8).collect(),
            rhobegs: vec![0.1, 0.2, 0.3, 0.4, 0.5],
            seed: 44,
        },
    }
}

fn main() {
    let scale = Scale::from_args();
    let s = settings_for(scale);
    eprintln!(
        "fig4_large [{}]: nodes {:?}, p_edge {}, qubit budget {}",
        scale.label(),
        s.node_counts,
        s.edge_prob,
        s.max_qubits
    );

    let qaoa_base = QaoaConfig { seed: s.seed, ..QaoaConfig::default() };
    let gw_cfg = GwConfig::default();
    let mut rows: Vec<Vec<String>> = Vec::new();

    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "nodes", "random", "classic(GW)", "qaoa", "best", "gw-full"
    );
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "", "(rel)", "(rel)", "(rel=1)", "(rel)", "(rel)"
    );

    for &n in &s.node_counts {
        let t0 = std::time::Instant::now();
        let g = generators::erdos_renyi(n, s.edge_prob, WeightKind::Uniform, s.seed + n as u64);

        let base_cfg = Qaoa2Config {
            max_qubits: s.max_qubits,
            coarse_solver: SubSolver::Gw(gw_cfg), // "further iterations: classical"
            parallelism: Parallelism::Threads,
            seed: s.seed,
            solver: SubSolver::LocalSearch, // replaced below
            ..Qaoa2Config::default()
        };

        let qaoa_solver = SubSolver::QaoaGrid {
            ps: s.ps.clone(),
            rhobegs: s.rhobegs.clone(),
            base: qaoa_base.clone(),
        };
        let qaoa = solve(&g, &Qaoa2Config { solver: qaoa_solver.clone(), ..base_cfg.clone() })
            .expect("qaoa² with QAOA sub-solver");
        let classic = solve(&g, &Qaoa2Config { solver: SubSolver::Gw(gw_cfg), ..base_cfg.clone() })
            .expect("qaoa² with GW sub-solver");
        // "Best": QAOA-grid vs GW per sub-graph. SubSolver::Best uses a
        // single QAOA config; emulate grid-vs-GW by comparing per sub-graph
        // via the Best variant with the strongest single grid cell, plus
        // the full-grid QAOA series computed above.
        let best_solver = SubSolver::Best {
            qaoa: QaoaConfig {
                layers: *s.ps.last().expect("non-empty ps"),
                rhobeg: *s.rhobegs.last().expect("non-empty rhobegs"),
                max_iters: QaoaConfig::paper_iterations(*s.ps.last().unwrap()),
                ..qaoa_base.clone()
            },
            gw: gw_cfg,
        };
        let best = solve(&g, &Qaoa2Config { solver: best_solver, ..base_cfg.clone() })
            .expect("qaoa² with Best sub-solver");

        let gw_full = goemans_williamson(&g, &gw_cfg);
        let random = qq_classical::randomized_partitioning(&g, 1, s.seed + 1);

        let rel = |v: f64| v / qaoa.cut_value;
        println!(
            "{:>7} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>12.4}   [{:.1?}, {} subgraphs, {} levels]",
            n,
            rel(random.value),
            rel(classic.cut_value),
            1.0,
            rel(best.cut_value),
            rel(gw_full.best.value),
            t0.elapsed(),
            qaoa.total_subgraphs,
            qaoa.levels.len(),
        );
        rows.push(vec![
            n.to_string(),
            format!("{}", random.value),
            format!("{}", classic.cut_value),
            format!("{}", qaoa.cut_value),
            format!("{}", best.cut_value),
            format!("{}", gw_full.best.value),
            format!("{}", gw_full.sdp_bound),
        ]);
    }

    write_csv(
        "results/fig4.csv",
        &["nodes", "random", "classic_gw_subs", "qaoa_subs", "best_subs", "gw_full", "sdp_bound"],
        &rows,
    )
    .expect("write results/fig4.csv");
    eprintln!("wrote results/fig4.csv");
}
