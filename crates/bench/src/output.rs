//! Plain-text heatmaps (the paper's Fig. 3 panels are heatmaps) and CSV
//! persistence for every experiment.

use std::io::Write;
use std::path::Path;

/// A labelled 2-D table of proportions.
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// Panel title.
    pub title: String,
    /// Row axis name and labels.
    pub row_axis: (String, Vec<String>),
    /// Column axis name and labels.
    pub col_axis: (String, Vec<String>),
    /// `cells[row][col]`.
    pub cells: Vec<Vec<f64>>,
}

impl Heatmap {
    /// Allocate a zeroed heatmap.
    pub fn new(title: &str, row_axis: (&str, Vec<String>), col_axis: (&str, Vec<String>)) -> Self {
        let cells = vec![vec![0.0; col_axis.1.len()]; row_axis.1.len()];
        Heatmap {
            title: title.to_string(),
            row_axis: (row_axis.0.to_string(), row_axis.1),
            col_axis: (col_axis.0.to_string(), col_axis.1),
            cells,
        }
    }

    /// Render like the paper's figure annotations (two significant digits).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("## {}\n", self.title));
        s.push_str(&format!("{} \\ {}:\n", self.row_axis.0, self.col_axis.0));
        s.push_str(&format!("{:>8}", ""));
        for c in &self.col_axis.1 {
            s.push_str(&format!("{c:>8}"));
        }
        s.push('\n');
        for (r, row) in self.cells.iter().enumerate() {
            s.push_str(&format!("{:>8}", self.row_axis.1[r]));
            for v in row {
                s.push_str(&format!("{:>8}", format_prop(*v)));
            }
            s.push('\n');
        }
        s
    }
}

/// Two-significant-digit proportion, like the paper's annotations
/// (`0.067`, `0.53`, `0`).
pub fn format_prop(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v >= 0.995 {
        "1.0".to_string()
    } else if v < 0.095 {
        format!("{v:.3}")
    } else {
        format!("{v:.2}")
    }
}

/// Write rows as CSV under `results/` (header first). Best-effort
/// directory creation; errors propagate.
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    if let Some(dir) = path.as_ref().parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_renders_all_cells() {
        let mut h = Heatmap::new(
            "test",
            ("rows", vec!["a".into(), "b".into()]),
            ("cols", vec!["x".into(), "y".into(), "z".into()]),
        );
        h.cells[1][2] = 0.53;
        let out = h.render();
        assert!(out.contains("0.53"));
        assert!(out.lines().count() >= 4);
    }

    #[test]
    fn proportion_formatting_matches_paper_style() {
        assert_eq!(format_prop(0.0), "0");
        assert_eq!(format_prop(0.067), "0.067");
        assert_eq!(format_prop(0.53), "0.53");
        assert_eq!(format_prop(1.0), "1.0");
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("qq_bench_test_csv");
        let path = dir.join("t.csv");
        write_csv(&path, &["a", "b"], &[vec!["1".into(), "2".into()]]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
