//! QAOA driver configuration, mirroring the paper's experimental knobs.

use qq_circuit::Preference;

/// How the optimizer's objective ⟨H_C⟩ is estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveMode {
    /// Exact expectation from the statevector (noise-free reference).
    Exact,
    /// Sample-mean over the configured shot count — what hardware (and the
    /// paper's `aer` runs) would give.
    Shots,
}

/// How the final bit string is chosen from the optimized state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolutionPolicy {
    /// The single highest-amplitude basis state — the paper's choice
    /// ("for the sake of simplicity").
    HighestAmplitude,
    /// Inspect the `k` highest amplitudes and keep the best cut among
    /// them — the improvement the paper recommends in its conclusion.
    TopK(usize),
    /// Best cut among the sampled shots.
    BestShot,
}

/// Full driver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct QaoaConfig {
    /// Ansatz depth `p`.
    pub layers: usize,
    /// COBYLA initial trust-region radius (the paper sweeps 0.1–0.5).
    pub rhobeg: f64,
    /// Optimizer evaluation budget. The paper scales iterations linearly
    /// in `p` from 30 to 100; see [`QaoaConfig::paper_iterations`].
    pub max_iters: usize,
    /// Shots per objective estimate (paper: 4096).
    pub shots: usize,
    /// Objective estimator.
    pub objective: ObjectiveMode,
    /// Solution extraction policy.
    pub policy: SolutionPolicy,
    /// Circuit-synthesis preference.
    pub preference: Preference,
    /// Use the fused diagonal cost layer (aer-style optimization).
    pub fused_cost_layer: bool,
    /// Master seed: derives shot-sampling and extraction randomness.
    pub seed: u64,
    /// Optional explicit initial parameters `[γ…, β…]`; default is the
    /// trotterized-annealing ramp.
    pub initial_params: Option<Vec<f64>>,
}

impl Default for QaoaConfig {
    fn default() -> Self {
        QaoaConfig {
            layers: 3,
            rhobeg: 0.5,
            max_iters: QaoaConfig::paper_iterations(3),
            shots: 4096,
            objective: ObjectiveMode::Shots,
            policy: SolutionPolicy::HighestAmplitude,
            preference: Preference::Depth,
            fused_cost_layer: true,
            seed: 0,
            initial_params: None,
        }
    }
}

impl QaoaConfig {
    /// The paper's iteration budget: "linearly dependent on p and ranges
    /// from 30 to 100 steps" over `p ∈ {3..8}` → `30 + 14·(p − 3)`.
    pub fn paper_iterations(p: usize) -> usize {
        30 + 14 * p.saturating_sub(3)
    }

    /// Convenience: configuration for a grid cell `(p, rhobeg)` as used in
    /// Fig. 3 / Table 1.
    pub fn grid_cell(p: usize, rhobeg: f64, seed: u64) -> Self {
        QaoaConfig {
            layers: p,
            rhobeg,
            max_iters: Self::paper_iterations(p),
            seed,
            ..QaoaConfig::default()
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), crate::QaoaError> {
        if self.layers == 0 {
            return Err(crate::QaoaError::InvalidConfig { message: "layers must be ≥ 1".into() });
        }
        if self.shots == 0 && matches!(self.objective, ObjectiveMode::Shots) {
            return Err(crate::QaoaError::InvalidConfig {
                message: "shot-based objective needs shots ≥ 1".into(),
            });
        }
        if let SolutionPolicy::TopK(0) = self.policy {
            return Err(crate::QaoaError::InvalidConfig { message: "TopK needs k ≥ 1".into() });
        }
        if self.max_iters == 0 {
            return Err(crate::QaoaError::InvalidConfig {
                message: "optimizer budget must be ≥ 1".into(),
            });
        }
        if let Some(v) = &self.initial_params {
            if v.len() != 2 * self.layers {
                return Err(crate::QaoaError::InvalidConfig {
                    message: format!("initial params need length 2p = {}", 2 * self.layers),
                });
            }
        }
        Ok(())
    }

    /// Default initial parameters: the trotterized-annealing ramp
    /// `γ_l = (l+1)/p · Δ`, `β_l = (1 − (l+1)/p) · Δ` with `Δ = 0.75` —
    /// a standard heuristic start for MaxCut QAOA.
    pub fn default_initial_params(&self) -> Vec<f64> {
        let p = self.layers;
        let delta = 0.75;
        let mut v = Vec::with_capacity(2 * p);
        for l in 0..p {
            v.push(delta * (l + 1) as f64 / p as f64); // γ
        }
        for l in 0..p {
            v.push(delta * (1.0 - (l + 1) as f64 / p as f64).max(0.05)); // β
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_iteration_schedule() {
        assert_eq!(QaoaConfig::paper_iterations(3), 30);
        assert_eq!(QaoaConfig::paper_iterations(8), 100);
        assert_eq!(QaoaConfig::paper_iterations(5), 58);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = QaoaConfig { layers: 0, ..QaoaConfig::default() };
        assert!(c.validate().is_err());
        let c = QaoaConfig { shots: 0, ..QaoaConfig::default() };
        assert!(c.validate().is_err());
        let c = QaoaConfig { policy: SolutionPolicy::TopK(0), ..QaoaConfig::default() };
        assert!(c.validate().is_err());
        let c = QaoaConfig { initial_params: Some(vec![0.1; 3]), ..QaoaConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_is_valid() {
        assert!(QaoaConfig::default().validate().is_ok());
    }

    #[test]
    fn initial_ramp_has_right_shape() {
        let c = QaoaConfig { layers: 4, ..QaoaConfig::default() };
        let v = c.default_initial_params();
        assert_eq!(v.len(), 8);
        // γ increases, β decreases
        assert!(v[0] < v[3]);
        assert!(v[4] > v[7]);
    }
}
