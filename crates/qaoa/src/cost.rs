//! Precomputed cost tables and the fused diagonal cost layer.
//!
//! The MaxCut Hamiltonian is diagonal, so `C(z)` for all `2^n` basis
//! states can be tabulated once per graph and reused by every optimizer
//! iteration: the cost layer becomes a single `e^{−iγ·C(z)}` pass
//! (independent of edge count) and the expectation a single weighted sum.
//! This is the same fusion `aer` performs for diagonal operators and is
//! what makes the paper's grid search (thousands of QAOA runs) tractable.

use qq_circuit::CostModel;
use qq_sim::{StateVector, C64};
use rayon::prelude::*;

/// `table[z] = C(z)` for every basis state of an `n`-qubit register.
#[derive(Debug, Clone)]
pub struct CostTable {
    values: Vec<f64>,
    num_qubits: usize,
}

impl CostTable {
    /// Tabulate a cost model over all `2^n` basis states, in parallel
    /// across the rayon pool. The parallel `collect` is order-preserving
    /// (chunks concatenate in basis order), so the table is identical at
    /// any thread count.
    pub fn new(model: &CostModel) -> Self {
        let n = model.num_qubits;
        let size = 1usize << n;
        // REDUCTION: the collect is keyed by basis index z over a fixed
        // DEFAULT_GRAIN range split — each table entry is computed
        // independently, nothing is combined across chunks.
        let values: Vec<f64> =
            (0..size as u64).into_par_iter().map(|z| model.eval_basis(z)).collect();
        CostTable { values, num_qubits: n }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Cost of one basis state.
    #[inline]
    pub fn value(&self, z: u64) -> f64 {
        self.values[z as usize]
    }

    /// Full table.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The certified maximum over all basis states (exact MaxCut value —
    /// available as a by-product for registers small enough to tabulate).
    /// `max` is associative and insensitive to the reduction tree, and the
    /// vendored rayon fixes the tree anyway, so this is deterministic.
    pub fn max_value(&self) -> f64 {
        // REDUCTION: max is associative and order-insensitive, and the
        // vendored pool fixes the DEFAULT_GRAIN reduction tree anyway.
        self.values.par_iter().cloned().reduce(|| f64::MIN, f64::max)
    }

    /// Apply the fused cost layer `|ψ⟩ ← e^{−iγ·C} |ψ⟩` in one pass.
    pub fn apply_cost_layer(&self, state: &mut StateVector, gamma: f64) {
        assert_eq!(state.num_qubits(), self.num_qubits, "register width mismatch");
        state.amplitudes_mut().par_iter_mut().zip(self.values.par_iter()).for_each(|(a, &c)| {
            *a *= C64::cis(-gamma * c);
        });
    }

    /// Exact ⟨C⟩ under `state`.
    pub fn expectation(&self, state: &StateVector) -> f64 {
        qq_sim::measure::expectation_from_table(state.amplitudes(), &self.values)
    }

    /// Sample-mean ⟨C⟩ from `shots` measurements.
    pub fn sampled_expectation(&self, state: &StateVector, shots: usize, seed: u64) -> f64 {
        let counts = qq_sim::measure::sample_counts(state.amplitudes(), shots, seed);
        let total: f64 = counts.iter().map(|&(z, c)| self.values[z as usize] * c as f64).sum();
        total / shots as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_circuit::prelude::*;
    use qq_graph::generators::{self, WeightKind};

    #[test]
    fn table_matches_cut_values() {
        let g = generators::erdos_renyi(7, 0.5, WeightKind::Random01, 3);
        let table = CostTable::new(&CostModel::from_maxcut(&g));
        for z in [0u64, 5, 63, 127] {
            let cut = qq_graph::Cut::from_basis_index(7, z).value(&g);
            assert!((table.value(z) - cut).abs() < 1e-12);
        }
    }

    #[test]
    fn max_value_equals_exact_maxcut() {
        let g = generators::erdos_renyi(10, 0.4, WeightKind::Random01, 8);
        let table = CostTable::new(&CostModel::from_maxcut(&g));
        let exact = qq_classical::exact_maxcut(&g);
        assert!((table.max_value() - exact.value).abs() < 1e-9);
    }

    #[test]
    fn fused_layer_matches_gate_layer() {
        let g = generators::erdos_renyi(6, 0.5, WeightKind::Random01, 5);
        let model = CostModel::from_maxcut(&g);
        let table = CostTable::new(&model);
        let gamma = 0.37;

        // fused path
        let mut fused = qq_sim::StateVector::plus_state(6);
        table.apply_cost_layer(&mut fused, gamma);

        // gate path: one cost layer of the ansatz (γ = gamma, β = 0 means
        // the mixer contributes RX(0) = identity)
        let params = AnsatzParams::new(vec![gamma], vec![0.0]);
        let circuit = Synthesizer::new(Preference::None).qaoa_ansatz(&model, &params);
        let gate = qq_circuit::exec::run_statevector(&circuit);

        for (a, b) in fused.amplitudes().iter().zip(gate.amplitudes()) {
            assert!((*a - *b).norm_sqr() < 1e-18, "{a} vs {b}");
        }
    }

    #[test]
    fn expectation_plus_state_is_half_weight() {
        // ⟨+|H_C|+⟩ = W/2 for any graph
        let g = generators::erdos_renyi(8, 0.4, WeightKind::Uniform, 2);
        let table = CostTable::new(&CostModel::from_maxcut(&g));
        let s = qq_sim::StateVector::plus_state(8);
        assert!((table.expectation(&s) - g.total_weight() / 2.0).abs() < 1e-9);
    }

    #[test]
    fn sampled_expectation_approximates_exact() {
        let g = generators::erdos_renyi(8, 0.4, WeightKind::Uniform, 6);
        let table = CostTable::new(&CostModel::from_maxcut(&g));
        let mut s = qq_sim::StateVector::plus_state(8);
        table.apply_cost_layer(&mut s, 0.3);
        s.rx(2, 0.8);
        let exact = table.expectation(&s);
        let sampled = table.sampled_expectation(&s, 200_000, 4);
        assert!((exact - sampled).abs() < 0.1, "{exact} vs {sampled}");
    }
}
