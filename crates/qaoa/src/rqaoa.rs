//! Recursive QAOA (Bravyi, Kliesch, König, Tang) — the non-local QAOA
//! variant the paper highlights as numerically outperforming standard
//! QAOA and "leverageable using QAOA² to get a good global solution for
//! very large problems".
//!
//! One RQAOA round: optimize a depth-`p` ansatz, measure the edge
//! correlations `M_uv = ⟨Z_u Z_v⟩`, pick the edge with the largest
//! `|M_uv|` and *contract* it — impose `s_v = sign(M_uv) · s_u` — which
//! eliminates one variable and rewrites the graph (parallel edges merge by
//! weight addition). Recurse until the graph reaches `stop_size`, solve
//! that rump exactly, and unwind the substitutions.

use crate::config::QaoaConfig;
use crate::cost::CostTable;
use crate::executor;
use crate::QaoaError;
use qq_circuit::{AnsatzParams, CostModel};
use qq_classical::CutResult;
use qq_graph::{Cut, Graph, NodeId};
use qq_opt::cobyla::Cobyla;
use qq_opt::Optimizer;

/// RQAOA configuration.
#[derive(Debug, Clone)]
pub struct RqaoaConfig {
    /// Per-round QAOA settings (layers, rhobeg, iteration budget, seed).
    pub qaoa: QaoaConfig,
    /// Stop contracting at this many nodes and solve exactly.
    pub stop_size: usize,
}

impl Default for RqaoaConfig {
    fn default() -> Self {
        RqaoaConfig { qaoa: QaoaConfig::default(), stop_size: 8 }
    }
}

/// Result of an RQAOA run.
#[derive(Debug, Clone)]
pub struct RqaoaResult {
    /// The cut on the original graph.
    pub best: CutResult,
    /// Number of variable eliminations performed.
    pub eliminations: usize,
}

/// A recorded elimination: `node = sign · representative`.
#[derive(Debug, Clone, Copy)]
struct Substitution {
    eliminated: NodeId,
    representative: NodeId,
    sign: f64,
}

/// Solve MaxCut with recursive QAOA.
pub fn rqaoa_solve(g: &Graph, cfg: &RqaoaConfig) -> Result<RqaoaResult, QaoaError> {
    cfg.qaoa.validate()?;
    if cfg.stop_size < 1 {
        return Err(QaoaError::InvalidConfig { message: "stop_size must be ≥ 1".into() });
    }
    let n0 = g.num_nodes();
    if n0 > crate::MAX_QAOA_QUBITS {
        return Err(QaoaError::TooManyQubits { requested: n0, max: crate::MAX_QAOA_QUBITS });
    }
    if n0 == 0 {
        return Ok(RqaoaResult { best: CutResult::new(Cut::new(0), g), eliminations: 0 });
    }

    // Work on a shrinking graph with "live node → original nodes" tracking
    // through substitutions in original-node coordinates.
    let mut current = g.clone();
    // original id of each current-graph node
    let mut ids: Vec<NodeId> = (0..n0 as NodeId).collect();
    let mut subs: Vec<Substitution> = Vec::new();
    let mut round = 0u64;

    while current.num_nodes() > cfg.stop_size && current.num_edges() > 0 {
        let (u, v, corr) = strongest_correlation(&current, &cfg.qaoa, round)?;
        let sign = if corr >= 0.0 { 1.0 } else { -1.0 };
        // In the MaxCut Hamiltonian picture, ⟨Z_uZ_v⟩ > 0 means the spins
        // agree (same side); < 0 means they disagree.
        subs.push(Substitution {
            eliminated: ids[v as usize],
            representative: ids[u as usize],
            sign,
        });
        let (next, next_ids) = contract(&current, &ids, u, v, sign);
        current = next;
        ids = next_ids;
        round += 1;
    }

    // Exact solve of the rump.
    let rump = qq_classical::exact_maxcut(&current);

    // Unwind: seed original-node spins with the rump, then apply the
    // substitutions in reverse elimination order.
    let mut side = vec![false; n0];
    for (local, &orig) in ids.iter().enumerate() {
        side[orig as usize] = rump.cut.get(local as NodeId);
    }
    for s in subs.iter().rev() {
        let rep_side = side[s.representative as usize];
        side[s.eliminated as usize] = if s.sign > 0.0 { rep_side } else { !rep_side };
    }
    let cut = Cut::from_bools(&side);
    Ok(RqaoaResult { best: CutResult::new(cut, g), eliminations: subs.len() })
}

/// Optimize a QAOA ansatz on `g` and return the edge `(u, v)` with the
/// strongest `|⟨Z_u Z_v⟩|`, plus the signed correlation.
fn strongest_correlation(
    g: &Graph,
    qcfg: &QaoaConfig,
    round: u64,
) -> Result<(NodeId, NodeId, f64), QaoaError> {
    let model = CostModel::from_maxcut(g);
    let table = CostTable::new(&model);
    let p = qcfg.layers;

    let objective = |flat: &[f64]| -> f64 {
        let params = AnsatzParams::from_vec(p, flat);
        let state = executor::build_state_fused(&table, &params);
        -table.expectation(&state)
    };
    let x0 = qcfg.initial_params.clone().unwrap_or_else(|| qcfg.default_initial_params());
    let opt = Cobyla::new(qcfg.rhobeg, 1e-4, qcfg.max_iters).minimize(&objective, &x0);
    let params = AnsatzParams::from_vec(p, &opt.x);
    let state = executor::build_state_fused(&table, &params);

    // ⟨Z_uZ_v⟩ per edge, one pass over the amplitudes per edge.
    let mut best: Option<(NodeId, NodeId, f64)> = None;
    for e in g.edges() {
        let (mu, mv) = (1u64 << e.u, 1u64 << e.v);
        let corr = qq_sim::measure::expectation_diagonal(state.amplitudes(), 0, |z| {
            let agree = ((z & mu) != 0) == ((z & mv) != 0);
            if agree {
                1.0
            } else {
                -1.0
            }
        });
        let better = best.map(|(_, _, c)| corr.abs() > c.abs()).unwrap_or(true);
        if better {
            best = Some((e.u, e.v, corr));
        }
    }
    let _ = round; // rounds differ through the shrinking graph itself
    best.ok_or_else(|| QaoaError::InvalidConfig { message: "graph has no edges".into() })
}

/// Contract `v` into `u` with relative `sign`: neighbors of `v` re-attach
/// to `u` with weight `sign · w` (parallel edges merge additively;
/// vanishing weights are dropped). Node indices above `v` shift down.
fn contract(g: &Graph, ids: &[NodeId], u: NodeId, v: NodeId, sign: f64) -> (Graph, Vec<NodeId>) {
    let n = g.num_nodes();
    // new index mapping: remove v
    let remap = |x: NodeId| -> NodeId {
        if x > v {
            x - 1
        } else {
            x
        }
    };
    let nu = remap(u);
    let mut weights: std::collections::HashMap<(NodeId, NodeId), f64> =
        std::collections::HashMap::new();
    for e in g.edges() {
        let (mut a, mut b, mut w) = (e.u, e.v, e.w);
        if a == v || b == v {
            // re-attach to u with the substitution sign
            let other = if a == v { b } else { a };
            if other == u {
                continue; // the contracted edge disappears (constant term)
            }
            a = u;
            b = other;
            w *= sign;
        }
        let (ra, rb) = (remap(a), remap(b));
        let key = if ra < rb { (ra, rb) } else { (rb, ra) };
        *weights.entry(key).or_insert(0.0) += w;
    }
    let mut out = Graph::new(n - 1);
    let mut entries: Vec<((NodeId, NodeId), f64)> = weights.into_iter().collect();
    entries.sort_by_key(|&(k, _)| k);
    for ((a, b), w) in entries {
        if w != 0.0 {
            out.add_edge(a, b, w).expect("contraction preserves validity");
        }
    }
    let mut new_ids: Vec<NodeId> = Vec::with_capacity(n - 1);
    for (i, &orig) in ids.iter().enumerate() {
        if i as NodeId != v {
            new_ids.push(orig);
        }
    }
    let _ = nu;
    (out, new_ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ObjectiveMode, SolutionPolicy};
    use qq_graph::generators::{self, WeightKind};

    fn cfg(stop: usize) -> RqaoaConfig {
        RqaoaConfig {
            qaoa: QaoaConfig {
                layers: 1,
                max_iters: 40,
                objective: ObjectiveMode::Exact,
                policy: SolutionPolicy::HighestAmplitude,
                ..QaoaConfig::default()
            },
            stop_size: stop,
        }
    }

    #[test]
    fn rqaoa_solves_ring_optimally() {
        let g = generators::ring(10);
        let r = rqaoa_solve(&g, &cfg(4)).unwrap();
        assert_eq!(r.best.value, 10.0, "even ring optimum");
        assert_eq!(r.eliminations, 6);
    }

    #[test]
    fn rqaoa_matches_or_beats_plain_qaoa_on_small_graphs() {
        for seed in 0..3 {
            let g = generators::erdos_renyi(12, 0.3, WeightKind::Uniform, 400 + seed);
            let rq = rqaoa_solve(&g, &cfg(5)).unwrap();
            let plain = crate::solve(
                &g,
                &QaoaConfig {
                    layers: 1,
                    max_iters: 40,
                    objective: ObjectiveMode::Exact,
                    ..QaoaConfig::default()
                },
            )
            .unwrap();
            assert!(
                rq.best.value >= plain.best.value - 1e-9,
                "seed {seed}: rqaoa {} < qaoa {}",
                rq.best.value,
                plain.best.value
            );
        }
    }

    #[test]
    fn rqaoa_never_exceeds_exact() {
        let g = generators::erdos_renyi(11, 0.4, WeightKind::Random01, 9);
        let exact = qq_classical::exact_maxcut(&g);
        let r = rqaoa_solve(&g, &cfg(4)).unwrap();
        assert!(r.best.value <= exact.value + 1e-9);
        assert!(r.best.value >= 0.8 * exact.value, "ratio {}", r.best.value / exact.value);
    }

    #[test]
    fn small_graph_short_circuits_to_exact() {
        let g = generators::complete(5);
        let r = rqaoa_solve(&g, &cfg(8)).unwrap();
        assert_eq!(r.eliminations, 0);
        assert_eq!(r.best.value, 6.0); // K5 optimum
    }

    #[test]
    fn contraction_merges_parallel_edges() {
        // triangle: contracting one edge creates parallel edges that merge
        let g = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]).unwrap();
        let ids: Vec<NodeId> = vec![0, 1, 2];
        let (out, new_ids) = contract(&g, &ids, 0, 1, 1.0);
        assert_eq!(out.num_nodes(), 2);
        assert_eq!(out.num_edges(), 1);
        // w(0,2)=3 plus re-attached w(1,2)=2 → 5
        assert_eq!(out.edges()[0].w, 5.0);
        assert_eq!(new_ids, vec![0, 2]);
    }

    #[test]
    fn anti_correlated_contraction_flips_sign() {
        let g = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)]).unwrap();
        let ids: Vec<NodeId> = vec![0, 1, 2];
        let (out, _) = contract(&g, &ids, 0, 1, -1.0);
        // edge (1,2) re-attaches to 0 with weight −2
        assert_eq!(out.num_edges(), 1);
        assert_eq!(out.edges()[0].w, -2.0);
    }

    use qq_graph::Graph;
}
