//! # qq-qaoa — the QAOA MaxCut driver
//!
//! Ties the substrates together exactly the way the paper's stack does:
//! graph → Ising cost model → synthesized ansatz (`qq-circuit`) →
//! statevector execution (`qq-sim`, 4096-shot sampling) → COBYLA parameter
//! optimization (`qq-opt`) → bit-string extraction.
//!
//! Two fidelity/performance paths execute the cost layer:
//! * **gate path** — the synthesized `RZZ` circuit, gate by gate;
//! * **fused path** (default) — the cost layer is diagonal, so one pass
//!   multiplies each amplitude by `e^{−iγ·C(z)}` from a precomputed
//!   [`cost::CostTable`]; this is the "diagonal fusion" optimization the
//!   `aer` simulator applies and is bit-compatible with the gate path up
//!   to floating-point association (verified by tests).
//!
//! Solution extraction implements the paper's policy (single highest
//! amplitude) *and* the two extensions it names as future work: inspecting
//! the top-k amplitudes, and taking the best sampled shot.
//!
//! ```
//! use qq_graph::generators;
//! use qq_qaoa::{solve, QaoaConfig};
//!
//! let g = generators::ring(6);
//! let cfg = QaoaConfig { layers: 2, seed: 7, ..QaoaConfig::default() };
//! let res = solve(&g, &cfg).unwrap();
//! assert!(res.best.value >= 4.0); // even-ring optimum is 6
//! ```

#![forbid(unsafe_code)]

pub mod backend;
pub mod config;
pub mod cost;
pub mod executor;
pub mod rqaoa;
pub mod solver;

pub use backend::{QaoaGridSolver, QaoaSolver, RqaoaSolver};
pub use config::{ObjectiveMode, QaoaConfig, SolutionPolicy};
pub use cost::CostTable;
pub use rqaoa::{rqaoa_solve, RqaoaConfig, RqaoaResult};
pub use solver::{solve, QaoaResult};

/// Errors from the QAOA driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QaoaError {
    /// Graph too large for statevector simulation.
    TooManyQubits { requested: usize, max: usize },
    /// Configuration rejected (zero layers, zero shots, …).
    InvalidConfig { message: String },
}

impl std::fmt::Display for QaoaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QaoaError::TooManyQubits { requested, max } => {
                write!(f, "graph needs {requested} qubits; simulator supports {max}")
            }
            QaoaError::InvalidConfig { message } => write!(f, "invalid QAOA config: {message}"),
        }
    }
}

impl std::error::Error for QaoaError {}

/// Statevector ceiling for the driver: `2^26` amplitudes (1 GiB) plus the
/// cost table (512 MiB). The paper's 30–33-qubit cells need the blocked
/// engine and a bigger machine (see EXPERIMENTS.md).
pub const MAX_QAOA_QUBITS: usize = 26;
