//! End-to-end QAOA solve: optimize parameters, extract the cut.

use crate::config::{ObjectiveMode, QaoaConfig, SolutionPolicy};
use crate::cost::CostTable;
use crate::executor::{self, CircuitMetrics};
use crate::QaoaError;
use qq_circuit::{AnsatzParams, CostModel};
use qq_classical::CutResult;
use qq_graph::{Cut, Graph};
use qq_opt::cobyla::Cobyla;
use qq_opt::Optimizer;
use std::cell::Cell;

/// Outcome of a QAOA run.
#[derive(Debug, Clone)]
pub struct QaoaResult {
    /// The extracted cut and its (exact) value on the input graph.
    pub best: CutResult,
    /// Optimized variational parameters.
    pub params: AnsatzParams,
    /// Final exact expectation ⟨H_C⟩ at the optimized parameters.
    pub expectation: f64,
    /// Objective evaluations consumed by the optimizer.
    pub evals: usize,
    /// Running-best objective history (negated expectation estimates).
    pub history: Vec<f64>,
    /// Metrics of the synthesized ansatz circuit at the final parameters.
    pub circuit: CircuitMetrics,
}

/// Solve MaxCut on `g` with QAOA.
///
/// Deterministic for a fixed `(graph, config)` pair: shot noise is driven
/// by seeds derived from `cfg.seed` and the evaluation counter.
pub fn solve(g: &Graph, cfg: &QaoaConfig) -> Result<QaoaResult, QaoaError> {
    cfg.validate()?;
    let n = g.num_nodes();
    if n > crate::MAX_QAOA_QUBITS {
        return Err(QaoaError::TooManyQubits { requested: n, max: crate::MAX_QAOA_QUBITS });
    }
    if n == 0 {
        return Ok(trivial_result(g, cfg, Cut::new(0)));
    }
    if g.num_edges() == 0 {
        return Ok(trivial_result(g, cfg, Cut::new(n)));
    }

    let model = CostModel::from_maxcut(g);
    let table = CostTable::new(&model);
    let p = cfg.layers;

    // Objective: negated ⟨H_C⟩ estimate (optimizers minimize). Shot seeds
    // advance per evaluation so repeated calls see fresh sampling noise,
    // yet the whole run is reproducible.
    let eval_counter = Cell::new(0u64);
    let objective = |flat: &[f64]| -> f64 {
        let params = AnsatzParams::from_vec(p, flat);
        let state = executor::build_state_fused(&table, &params);
        let value = match cfg.objective {
            ObjectiveMode::Exact => table.expectation(&state),
            ObjectiveMode::Shots => {
                let k = eval_counter.get();
                eval_counter.set(k + 1);
                let shot_seed = cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(k);
                table.sampled_expectation(&state, cfg.shots, shot_seed)
            }
        };
        -value
    };

    let x0 = cfg.initial_params.clone().unwrap_or_else(|| cfg.default_initial_params());
    let optimizer = Cobyla::new(cfg.rhobeg, 1e-4, cfg.max_iters);
    let opt = optimizer.minimize(&objective, &x0);

    let params = AnsatzParams::from_vec(p, &opt.x);
    let state = executor::build_state_fused(&table, &params);
    let expectation = table.expectation(&state);

    // Extract the solution bit string.
    let cut = match cfg.policy {
        SolutionPolicy::HighestAmplitude => {
            let top = qq_sim::measure::top_k_amplitudes(state.amplitudes(), 1);
            Cut::from_basis_index(n, top[0].0)
        }
        SolutionPolicy::TopK(k) => {
            let top = qq_sim::measure::top_k_amplitudes(state.amplitudes(), k);
            let z = top
                .iter()
                .max_by(|a, b| table.value(a.0).total_cmp(&table.value(b.0)))
                // INVARIANT: top_k_amplitudes of a normalized state
                // returns at least one entry for k >= 1.
                .expect("top-k of a normalized state is non-empty")
                .0;
            Cut::from_basis_index(n, z)
        }
        SolutionPolicy::BestShot => {
            let counts =
                qq_sim::measure::sample_counts(state.amplitudes(), cfg.shots, cfg.seed ^ 0xbeef);
            let z = counts
                .iter()
                .max_by(|a, b| table.value(a.0).total_cmp(&table.value(b.0)))
                // INVARIANT: cfg.shots >= 1 is validated at config
                // construction, so sample_counts is non-empty.
                .expect("shots ≥ 1 validated")
                .0;
            Cut::from_basis_index(n, z)
        }
    };

    Ok(QaoaResult {
        best: CutResult::new(cut, g),
        params: params.clone(),
        expectation,
        evals: opt.evals,
        history: opt.history,
        circuit: executor::circuit_metrics(&model, &params, cfg.preference),
    })
}

fn trivial_result(g: &Graph, cfg: &QaoaConfig, cut: Cut) -> QaoaResult {
    QaoaResult {
        best: CutResult::new(cut, g),
        params: AnsatzParams::new(vec![0.0; cfg.layers], vec![0.0; cfg.layers]),
        expectation: 0.0,
        evals: 0,
        history: Vec::new(),
        circuit: CircuitMetrics { depth: 0, gates: 0, two_qubit: 0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_graph::generators::{self, WeightKind};

    fn exact_cfg(p: usize, seed: u64) -> QaoaConfig {
        // Generous optimizer budget for ground-truth tests — the paper's
        // 30–100-iteration budget intentionally under-optimizes (that is
        // part of its findings); here we want QAOA at its best.
        QaoaConfig {
            layers: p,
            objective: ObjectiveMode::Exact,
            policy: SolutionPolicy::TopK(16),
            seed,
            max_iters: 400,
            ..QaoaConfig::default()
        }
    }

    #[test]
    fn single_edge_p1_reaches_optimal_cut() {
        let g = qq_graph::Graph::from_edges(2, [(0, 1, 1.0)]).unwrap();
        let res = solve(&g, &exact_cfg(1, 3)).unwrap();
        assert_eq!(res.best.value, 1.0);
        // p=1 QAOA solves a single edge exactly: ⟨H_C⟩ → 1
        assert!(res.expectation > 0.9, "expectation {}", res.expectation);
    }

    #[test]
    fn even_ring_reaches_optimum_with_topk() {
        let g = generators::ring(6);
        let res = solve(&g, &exact_cfg(3, 1)).unwrap();
        assert!(res.best.value >= 5.0, "value {}", res.best.value);
    }

    #[test]
    fn approximation_ratio_reasonable_on_random_graphs() {
        let g = generators::erdos_renyi(10, 0.4, WeightKind::Uniform, 21);
        let exact = qq_classical::exact_maxcut(&g);
        let res = solve(&g, &exact_cfg(3, 2)).unwrap();
        let ratio = res.best.value / exact.value;
        assert!(ratio >= 0.75, "ratio {ratio}");
    }

    #[test]
    fn shots_mode_is_deterministic_and_close_to_exact() {
        let g = generators::erdos_renyi(8, 0.4, WeightKind::Uniform, 5);
        let cfg = QaoaConfig { layers: 2, seed: 9, ..QaoaConfig::default() };
        let a = solve(&g, &cfg).unwrap();
        let b = solve(&g, &cfg).unwrap();
        assert_eq!(a.best.cut, b.best.cut);
        assert_eq!(a.evals, b.evals);
    }

    #[test]
    fn higher_p_does_not_hurt_expectation_much() {
        // sanity: p=3 should be ≥ p=1 on expectation for these seeds
        let g = generators::erdos_renyi(8, 0.5, WeightKind::Uniform, 13);
        let r1 = solve(&g, &exact_cfg(1, 4)).unwrap();
        let r3 = solve(&g, &exact_cfg(3, 4)).unwrap();
        assert!(
            r3.expectation >= r1.expectation - 0.05,
            "{} vs {}",
            r3.expectation,
            r1.expectation
        );
    }

    #[test]
    fn topk_never_below_highest_amplitude() {
        let g = generators::erdos_renyi(9, 0.35, WeightKind::Random01, 6);
        let base = QaoaConfig {
            layers: 2,
            objective: ObjectiveMode::Exact,
            seed: 8,
            ..QaoaConfig::default()
        };
        let ha =
            solve(&g, &QaoaConfig { policy: SolutionPolicy::HighestAmplitude, ..base.clone() })
                .unwrap();
        let tk =
            solve(&g, &QaoaConfig { policy: SolutionPolicy::TopK(32), ..base.clone() }).unwrap();
        assert!(tk.best.value >= ha.best.value - 1e-12);
    }

    #[test]
    fn rejects_oversized_graph() {
        let g = qq_graph::Graph::new(27);
        assert!(matches!(solve(&g, &QaoaConfig::default()), Err(QaoaError::TooManyQubits { .. })));
    }

    #[test]
    fn trivial_graphs_short_circuit() {
        let empty = qq_graph::Graph::new(0);
        assert_eq!(solve(&empty, &QaoaConfig::default()).unwrap().best.value, 0.0);
        let edgeless = qq_graph::Graph::new(5);
        let r = solve(&edgeless, &QaoaConfig::default()).unwrap();
        assert_eq!(r.best.value, 0.0);
        assert_eq!(r.evals, 0);
    }

    #[test]
    fn result_reports_circuit_metrics() {
        let g = generators::ring(6);
        let res = solve(&g, &exact_cfg(2, 0)).unwrap();
        assert!(res.circuit.depth > 0);
        assert_eq!(res.circuit.two_qubit, 12); // 6 edges × 2 layers
    }
}
