//! [`MaxCutSolver`] backends for the quantum side of the suite: plain
//! QAOA, the paper's per-sub-graph `(p, rhobeg)` grid search, and RQAOA.
//!
//! These live here — not in the orchestrator — so the dispatch layer in
//! `qq-core` needs no edits when backend behaviour changes, and so any
//! crate can drive a quantum solve through the trait without pulling in
//! the divide-and-conquer machinery.

use crate::config::QaoaConfig;
use crate::rqaoa::RqaoaConfig;
use qq_graph::{CutResult, Graph, MaxCutSolver, SolverCaps, SolverError};

/// Register ceiling shared by every statevector-backed backend.
fn simulated_device_caps() -> SolverCaps {
    SolverCaps {
        max_nodes: Some(qq_sim::state::MAX_QUBITS),
        // COBYLA and extraction are deterministic per (config, seed)
        deterministic: true,
        quantum: true,
    }
}

/// QAOA on the simulated quantum device.
#[derive(Debug, Clone, Default)]
pub struct QaoaSolver {
    /// Driver configuration; its `seed` is XOR-mixed with the per-call
    /// seed.
    pub config: QaoaConfig,
}

impl MaxCutSolver for QaoaSolver {
    fn label(&self) -> &str {
        "qaoa"
    }

    fn solve(&self, g: &Graph, seed: u64) -> Result<CutResult, SolverError> {
        self.check_instance(g)?;
        let cfg = QaoaConfig { seed: self.config.seed ^ seed, ..self.config.clone() };
        crate::solve(g, &cfg).map(|r| r.best).map_err(|e| SolverError::Backend(e.to_string()))
    }

    fn capabilities(&self) -> SolverCaps {
        simulated_device_caps()
    }
}

/// QAOA grid search over `(p, rhobeg)` — the paper's per-sub-graph
/// procedure for Fig. 4 ("analyzed with the same parameter grid search
/// from before, and the QAOA solution with the highest MaxCut value is
/// stored").
#[derive(Debug, Clone)]
pub struct QaoaGridSolver {
    /// Layer counts to scan.
    pub ps: Vec<usize>,
    /// `rhobeg` values to scan.
    pub rhobegs: Vec<f64>,
    /// Template configuration (seed, shots, policy, …).
    pub base: QaoaConfig,
}

impl MaxCutSolver for QaoaGridSolver {
    fn label(&self) -> &str {
        "qaoa-grid"
    }

    fn solve(&self, g: &Graph, seed: u64) -> Result<CutResult, SolverError> {
        if self.ps.is_empty() || self.rhobegs.is_empty() {
            return Err(SolverError::InvalidConfig("empty QAOA grid".into()));
        }
        self.check_instance(g)?;
        let mut best: Option<CutResult> = None;
        for &p in &self.ps {
            for &rb in &self.rhobegs {
                let cfg = QaoaConfig {
                    layers: p,
                    rhobeg: rb,
                    max_iters: QaoaConfig::paper_iterations(p),
                    seed: self.base.seed ^ seed ^ ((p as u64) << 32) ^ (rb.to_bits() >> 16),
                    ..self.base.clone()
                };
                let r = crate::solve(g, &cfg).map_err(|e| SolverError::Backend(e.to_string()))?;
                if best.as_ref().map(|b| r.best.value > b.value).unwrap_or(true) {
                    best = Some(r.best);
                }
            }
        }
        Ok(best.expect("grid is non-empty"))
    }

    fn capabilities(&self) -> SolverCaps {
        simulated_device_caps()
    }
}

/// Recursive QAOA (Bravyi et al.) — the non-local variant the paper notes
/// "can also be leveraged using QAOA² to get a good global solution for
/// very large problems".
#[derive(Debug, Clone, Default)]
pub struct RqaoaSolver {
    /// RQAOA configuration; the inner QAOA seed is XOR-mixed with the
    /// per-call seed.
    pub config: RqaoaConfig,
}

impl MaxCutSolver for RqaoaSolver {
    fn label(&self) -> &str {
        "rqaoa"
    }

    fn solve(&self, g: &Graph, seed: u64) -> Result<CutResult, SolverError> {
        self.check_instance(g)?;
        let cfg = RqaoaConfig {
            qaoa: QaoaConfig { seed: self.config.qaoa.seed ^ seed, ..self.config.qaoa.clone() },
            ..self.config.clone()
        };
        crate::rqaoa_solve(g, &cfg).map(|r| r.best).map_err(|e| SolverError::Backend(e.to_string()))
    }

    fn capabilities(&self) -> SolverCaps {
        simulated_device_caps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_graph::generators::{self, WeightKind};

    #[test]
    fn qaoa_backend_solves_and_mixes_seed() {
        let g = generators::erdos_renyi(8, 0.4, WeightKind::Uniform, 2);
        let solver =
            QaoaSolver { config: QaoaConfig { layers: 1, max_iters: 10, ..QaoaConfig::default() } };
        let a = solver.solve(&g, 5).unwrap();
        let b = solver.solve(&g, 5).unwrap();
        assert_eq!(a.cut, b.cut, "same seed must reproduce");
        assert_eq!(a.cut.len(), 8);
        assert!(solver.capabilities().quantum);
    }

    #[test]
    fn grid_backend_rejects_empty_grid() {
        let g = generators::ring(6);
        let solver = QaoaGridSolver { ps: vec![], rhobegs: vec![0.1], base: QaoaConfig::default() };
        assert!(matches!(solver.solve(&g, 0), Err(SolverError::InvalidConfig(_))));
    }

    #[test]
    fn backends_reject_oversized_registers() {
        let g = generators::erdos_renyi(40, 0.05, WeightKind::Uniform, 1);
        let solver = QaoaSolver::default();
        assert!(matches!(solver.solve(&g, 0), Err(SolverError::TooLarge { nodes: 40, .. })));
    }
}
