//! Ansatz execution: build `|ψ_p(β, γ)⟩` for a parameter vector.
//!
//! Two interchangeable paths (verified equivalent in tests):
//! the fused diagonal path (default — used by the optimizer loop) and the
//! synthesized gate circuit (used when circuit metrics are requested, and
//! as the fidelity reference).

use crate::cost::CostTable;
use qq_circuit::{AnsatzParams, CostModel, Preference, Synthesizer};
use qq_sim::StateVector;

/// Build the QAOA state with the fused cost layer.
///
/// Per layer: one `e^{−iγC}` pass from the table, then the mixer wall
/// `RX(2β)` on every qubit.
pub fn build_state_fused(table: &CostTable, params: &AnsatzParams) -> StateVector {
    let n = table.num_qubits();
    let mut state = StateVector::plus_state(n);
    for (&gamma, &beta) in params.gammas.iter().zip(&params.betas) {
        table.apply_cost_layer(&mut state, gamma);
        let theta = 2.0 * beta;
        for q in 0..n {
            state.rx(q, theta);
        }
    }
    state
}

/// Build the QAOA state by synthesizing and executing the gate circuit.
pub fn build_state_circuit(
    model: &CostModel,
    params: &AnsatzParams,
    preference: Preference,
) -> StateVector {
    let circuit = Synthesizer::new(preference).qaoa_ansatz(model, params);
    qq_circuit::exec::run_statevector(&circuit)
}

/// Summary of the synthesized ansatz circuit (reported in results so the
/// workflow can reason about NISQ feasibility, as the paper's Classiq
/// integration does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitMetrics {
    /// Parallel-layer depth.
    pub depth: usize,
    /// Total gate count.
    pub gates: usize,
    /// Two-qubit gate count.
    pub two_qubit: usize,
}

/// Synthesize once and measure the circuit.
pub fn circuit_metrics(
    model: &CostModel,
    params: &AnsatzParams,
    preference: Preference,
) -> CircuitMetrics {
    let circuit = Synthesizer::new(preference).qaoa_ansatz(model, params);
    CircuitMetrics {
        depth: circuit.depth(),
        gates: circuit.gate_count(),
        two_qubit: circuit.two_qubit_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_graph::generators::{self, WeightKind};

    #[test]
    fn fused_and_circuit_paths_agree() {
        let g = generators::erdos_renyi(7, 0.45, WeightKind::Random01, 9);
        let model = CostModel::from_maxcut(&g);
        let table = CostTable::new(&model);
        let params = AnsatzParams::new(vec![0.3, 0.7, 0.2], vec![0.5, 0.1, 0.4]);
        let fused = build_state_fused(&table, &params);
        let gate = build_state_circuit(&model, &params, Preference::Depth);
        let mut overlap = qq_sim::C64::ZERO;
        for (a, b) in fused.amplitudes().iter().zip(gate.amplitudes()) {
            overlap += a.conj() * *b;
        }
        assert!((overlap.abs() - 1.0).abs() < 1e-9, "overlap {}", overlap.abs());
    }

    #[test]
    fn metrics_scale_with_layers() {
        let g = generators::ring(8);
        let model = CostModel::from_maxcut(&g);
        let p1 = AnsatzParams::new(vec![0.1], vec![0.1]);
        let p3 = AnsatzParams::new(vec![0.1; 3], vec![0.1; 3]);
        let m1 = circuit_metrics(&model, &p1, Preference::Depth);
        let m3 = circuit_metrics(&model, &p3, Preference::Depth);
        assert!(m3.depth > m1.depth);
        assert_eq!(m3.two_qubit, 3 * m1.two_qubit);
    }

    #[test]
    fn zero_beta_keeps_uniform_probabilities_symmetric() {
        // γ-only evolution applies phases; probabilities stay uniform
        let g = generators::ring(5);
        let table = CostTable::new(&CostModel::from_maxcut(&g));
        let params = AnsatzParams::new(vec![0.9], vec![0.0]);
        let s = build_state_fused(&table, &params);
        for i in 0..32 {
            assert!((s.probability(i) - 1.0 / 32.0).abs() < 1e-12);
        }
    }
}
