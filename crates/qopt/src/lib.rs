//! # qq-opt — derivative-free optimizers for variational quantum algorithms
//!
//! The paper drives QAOA with SciPy's COBYLA and sweeps its `rhobeg`
//! parameter (the initial change to the variables) over
//! `{0.1, 0.2, 0.3, 0.4, 0.5}` — `rhobeg` is one of the two axes of the
//! paper's Fig. 3c grid. [`cobyla`] is a from-scratch implementation of
//! COBYLA's unconstrained core: linear interpolation models over a simplex,
//! trust-region steps, and the `rhobeg → rhoend` radius schedule.
//! [`neldermead`] and [`spsa`] provide baselines for the optimizer-ablation
//! benchmark.
//!
//! All optimizers *minimize*; the QAOA driver negates its objective.
//!
//! ```
//! use qq_opt::{cobyla::Cobyla, Optimizer};
//!
//! let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
//! let res = Cobyla::new(0.5, 1e-8, 500).minimize(&sphere, &[1.0, -0.7]);
//! assert!(res.fx < 1e-6);
//! ```

#![forbid(unsafe_code)]

pub mod cobyla;
pub mod grid;
pub mod neldermead;
pub mod spsa;

/// Result of a minimization run.
#[derive(Debug, Clone)]
pub struct OptResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Number of objective evaluations consumed.
    pub evals: usize,
    /// Best objective value seen after each evaluation (monotone
    /// non-increasing); used for convergence reporting.
    pub history: Vec<f64>,
}

/// A derivative-free minimizer.
pub trait Optimizer {
    /// Minimize `f` starting from `x0`.
    fn minimize(&self, f: &dyn Fn(&[f64]) -> f64, x0: &[f64]) -> OptResult;
}

/// Objective wrapper that counts evaluations and records the running best.
pub(crate) struct Recorder<'a> {
    f: &'a dyn Fn(&[f64]) -> f64,
    pub evals: usize,
    pub best_fx: f64,
    pub best_x: Vec<f64>,
    pub history: Vec<f64>,
    pub max_evals: usize,
}

impl<'a> Recorder<'a> {
    pub fn new(f: &'a dyn Fn(&[f64]) -> f64, dim: usize, max_evals: usize) -> Self {
        Recorder {
            f,
            evals: 0,
            best_fx: f64::INFINITY,
            best_x: vec![0.0; dim],
            history: Vec::new(),
            max_evals,
        }
    }

    /// True when the evaluation budget is spent.
    pub fn exhausted(&self) -> bool {
        self.evals >= self.max_evals
    }

    /// Evaluate and record.
    pub fn eval(&mut self, x: &[f64]) -> f64 {
        let v = (self.f)(x);
        self.evals += 1;
        if v < self.best_fx {
            self.best_fx = v;
            self.best_x.copy_from_slice(x);
        }
        self.history.push(self.best_fx);
        v
    }

    pub fn finish(self) -> OptResult {
        OptResult { x: self.best_x, fx: self.best_fx, evals: self.evals, history: self.history }
    }
}

#[cfg(test)]
pub(crate) mod test_functions {
    /// Convex quadratic with minimum 0 at (1, 2, 3, ...).
    pub fn shifted_sphere(x: &[f64]) -> f64 {
        x.iter()
            .enumerate()
            .map(|(i, v)| {
                let d = v - (i + 1) as f64;
                d * d
            })
            .sum()
    }

    /// The classic banana valley; minimum 0 at (1, 1).
    pub fn rosenbrock(x: &[f64]) -> f64 {
        let (a, b) = (x[0], x[1]);
        (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
    }

    /// Smooth trigonometric landscape like a QAOA objective: multiple
    /// local optima, bounded, 2π-periodic.
    pub fn cosine_mixture(x: &[f64]) -> f64 {
        x.iter().map(|v| -(v.cos() + 0.2 * (3.0 * v).cos())).sum()
    }
}
