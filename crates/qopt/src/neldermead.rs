//! Nelder–Mead downhill simplex, the classic derivative-free baseline.
//!
//! Included for the optimizer-ablation benchmark: the paper fixes COBYLA,
//! and comparing against Nelder–Mead (and SPSA) on the same QAOA
//! landscapes shows how sensitive the Fig. 3 grid is to that choice.

use crate::{OptResult, Optimizer, Recorder};

/// Nelder–Mead configuration with the standard coefficient set
/// (reflection 1, expansion 2, contraction ½, shrink ½).
#[derive(Debug, Clone, Copy)]
pub struct NelderMead {
    /// Initial simplex edge length (plays the role of `rhobeg`).
    pub initial_step: f64,
    /// Terminate when the simplex f-spread falls below this.
    pub ftol: f64,
    /// Evaluation budget.
    pub max_evals: usize,
}

impl NelderMead {
    /// Create a Nelder–Mead optimizer.
    pub fn new(initial_step: f64, ftol: f64, max_evals: usize) -> Self {
        assert!(initial_step > 0.0 && ftol >= 0.0);
        NelderMead { initial_step, ftol, max_evals }
    }
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead::new(0.5, 1e-10, 1000)
    }
}

impl Optimizer for NelderMead {
    fn minimize(&self, f: &dyn Fn(&[f64]) -> f64, x0: &[f64]) -> OptResult {
        let n = x0.len();
        assert!(n > 0);
        let mut rec = Recorder::new(f, n, self.max_evals);

        let mut verts: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        let mut fv: Vec<f64> = Vec::with_capacity(n + 1);
        verts.push(x0.to_vec());
        fv.push(rec.eval(x0));
        for i in 0..n {
            if rec.exhausted() {
                return rec.finish();
            }
            let mut v = x0.to_vec();
            v[i] += self.initial_step;
            fv.push(rec.eval(&v));
            verts.push(v);
        }

        while !rec.exhausted() {
            // sort ascending by objective
            let mut order: Vec<usize> = (0..=n).collect();
            order.sort_by(|&a, &b| fv[a].total_cmp(&fv[b]));
            let (best, worst, second_worst) = (order[0], order[n], order[n - 1]);
            if fv[worst] - fv[best] < self.ftol {
                break;
            }

            // centroid of all but the worst
            let mut centroid = vec![0.0; n];
            for &i in &order[..n] {
                for (c, v) in centroid.iter_mut().zip(&verts[i]) {
                    *c += v / n as f64;
                }
            }

            let reflect: Vec<f64> =
                centroid.iter().zip(&verts[worst]).map(|(c, w)| 2.0 * c - w).collect();
            let fr = rec.eval(&reflect);

            if fr < fv[best] {
                // try expansion
                if rec.exhausted() {
                    break;
                }
                let expand: Vec<f64> =
                    centroid.iter().zip(&verts[worst]).map(|(c, w)| 3.0 * c - 2.0 * w).collect();
                let fe = rec.eval(&expand);
                if fe < fr {
                    verts[worst] = expand;
                    fv[worst] = fe;
                } else {
                    verts[worst] = reflect;
                    fv[worst] = fr;
                }
            } else if fr < fv[second_worst] {
                verts[worst] = reflect;
                fv[worst] = fr;
            } else {
                // contraction (outside if reflection helped at all)
                if rec.exhausted() {
                    break;
                }
                let towards = if fr < fv[worst] { &reflect } else { &verts[worst] };
                let contract: Vec<f64> =
                    centroid.iter().zip(towards).map(|(c, w)| 0.5 * (c + w)).collect();
                let fc = rec.eval(&contract);
                if fc < fv[worst].min(fr) {
                    verts[worst] = contract;
                    fv[worst] = fc;
                } else {
                    // shrink toward best
                    let base = verts[best].clone();
                    for i in 0..=n {
                        if i == best || rec.exhausted() {
                            continue;
                        }
                        let v: Vec<f64> =
                            base.iter().zip(&verts[i]).map(|(b, w)| 0.5 * (b + w)).collect();
                        fv[i] = rec.eval(&v);
                        verts[i] = v;
                    }
                }
            }
        }
        rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_functions::{rosenbrock, shifted_sphere};

    #[test]
    fn solves_quadratic() {
        let res = NelderMead::default().minimize(&shifted_sphere, &[0.0, 0.0]);
        assert!(res.fx < 1e-8, "fx = {}", res.fx);
    }

    #[test]
    fn solves_rosenbrock() {
        let res = NelderMead::new(0.5, 1e-12, 4000).minimize(&rosenbrock, &[-1.2, 1.0]);
        assert!(res.fx < 1e-6, "fx = {}", res.fx);
        assert!((res.x[0] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn respects_budget() {
        let res = NelderMead::new(0.5, 0.0, 25).minimize(&shifted_sphere, &[4.0, 4.0, 4.0]);
        assert!(res.evals <= 25);
    }

    #[test]
    fn deterministic() {
        let a = NelderMead::default().minimize(&rosenbrock, &[0.3, 0.1]);
        let b = NelderMead::default().minimize(&rosenbrock, &[0.3, 0.1]);
        assert_eq!(a.x, b.x);
    }
}
