//! COBYLA — Constrained Optimization BY Linear Approximations (M.J.D.
//! Powell, 1994), specialized to the unconstrained objectives produced by
//! QAOA (the paper imposes no parameter constraints).
//!
//! The method keeps a non-degenerate simplex of `n+1` points, fits the
//! linear interpolant of the objective over it, and takes a trust-region
//! step of length `ρ` against the model gradient. When steps stop paying
//! off and the simplex geometry is acceptable, `ρ` halves; the run ends at
//! `ρ < rhoend` or when the evaluation budget is spent.
//!
//! `rhobeg` — the initial trust-region radius, SciPy's "reasonable initial
//! change to the variables" — is the knob the paper grid-searches, because
//! QAOA landscapes at different depths reward different initial step
//! scales. The implementation keeps Powell's two step types (minimization
//! step / geometry-repair step) and his acceptability criterion on vertex
//! distances.

use crate::{OptResult, Optimizer, Recorder};

/// COBYLA configuration.
#[derive(Debug, Clone, Copy)]
pub struct Cobyla {
    /// Initial trust-region radius (SciPy `rhobeg`).
    pub rhobeg: f64,
    /// Final radius; convergence declared below this (SciPy `tol`).
    pub rhoend: f64,
    /// Maximum objective evaluations (SciPy `maxiter` — COBYLA counts
    /// evaluations).
    pub max_evals: usize,
}

impl Cobyla {
    /// Create a COBYLA optimizer.
    pub fn new(rhobeg: f64, rhoend: f64, max_evals: usize) -> Self {
        assert!(rhobeg > 0.0 && rhoend > 0.0 && rhoend <= rhobeg);
        Cobyla { rhobeg, rhoend, max_evals }
    }
}

impl Default for Cobyla {
    /// SciPy-like defaults: `rhobeg = 1.0`, `rhoend = 1e-6`, 1000 evals.
    fn default() -> Self {
        Cobyla::new(1.0, 1e-6, 1000)
    }
}

impl Optimizer for Cobyla {
    fn minimize(&self, f: &dyn Fn(&[f64]) -> f64, x0: &[f64]) -> OptResult {
        let n = x0.len();
        assert!(n > 0, "objective must have at least one variable");
        let mut rec = Recorder::new(f, n, self.max_evals);

        // Initial simplex: x0 and x0 + rhobeg·e_i.
        let mut verts: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        let mut fvals: Vec<f64> = Vec::with_capacity(n + 1);
        verts.push(x0.to_vec());
        fvals.push(rec.eval(x0));
        for i in 0..n {
            if rec.exhausted() {
                return rec.finish();
            }
            let mut v = x0.to_vec();
            v[i] += self.rhobeg;
            fvals.push(rec.eval(&v));
            verts.push(v);
        }

        let mut rho = self.rhobeg;
        while rho >= self.rhoend && !rec.exhausted() {
            let best = argmin(&fvals);
            // Linear model: solve Eᵀg = Δf with rows e_i = v_i − v_best.
            let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n);
            let mut rhs: Vec<f64> = Vec::with_capacity(n);
            for (i, v) in verts.iter().enumerate() {
                if i == best {
                    continue;
                }
                rows.push(v.iter().zip(&verts[best]).map(|(a, b)| a - b).collect());
                rhs.push(fvals[i] - fvals[best]);
            }
            let grad = solve_linear(&rows, &rhs);

            let Some(g) = grad.filter(|g| norm(g) > 1e-14) else {
                // Degenerate model: repair geometry at the current radius.
                let far = farthest_vertex(&verts, best);
                repair_vertex(&mut verts, &mut fvals, &mut rec, best, far, rho, n);
                continue;
            };

            // Trust-region step against the model gradient.
            let gn = norm(&g);
            let trial: Vec<f64> =
                verts[best].iter().zip(&g).map(|(x, gi)| x - rho * gi / gn).collect();
            let ft = rec.eval(&trial);
            let actual = fvals[best] - ft;

            if actual > 0.0 {
                let worst = argmax(&fvals);
                verts[worst] = trial;
                fvals[worst] = ft;
            } else {
                // Powell: when the step under-delivers, first make sure the
                // simplex geometry is trustworthy at the current scale; only
                // then halve ρ. The repair moves a single vertex, so the
                // simplex keeps its memory of productive directions.
                let best_now = argmin(&fvals);
                if let Some(far) = worst_geometry_vertex(&verts, best_now, rho) {
                    repair_vertex(&mut verts, &mut fvals, &mut rec, best_now, far, rho, n);
                } else {
                    rho *= 0.5;
                    // refit the model at the new scale with one fresh vertex
                    let far = farthest_vertex(&verts, best_now);
                    repair_vertex(&mut verts, &mut fvals, &mut rec, best_now, far, rho, n);
                }
            }
        }
        rec.finish()
    }
}

fn argmin(v: &[f64]) -> usize {
    v.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).expect("non-empty")
}

fn argmax(v: &[f64]) -> usize {
    v.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).expect("non-empty")
}

fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// The non-best vertex farthest from the best (always exists; simplex has
/// ≥ 2 vertices).
fn farthest_vertex(verts: &[Vec<f64>], best: usize) -> usize {
    verts
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != best)
        .max_by(|a, b| dist(a.1, &verts[best]).total_cmp(&dist(b.1, &verts[best])))
        .map(|(i, _)| i)
        .expect("simplex has at least two vertices")
}

/// A vertex violating Powell's acceptability band `[0.1ρ, 2.1ρ]` around
/// the best vertex, if any (the most out-of-scale one).
fn worst_geometry_vertex(verts: &[Vec<f64>], best: usize, rho: f64) -> Option<usize> {
    verts
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != best)
        .map(|(i, v)| {
            let d = dist(v, &verts[best]);
            // badness: how far outside the band, as a ratio
            let badness = if d > 2.1 * rho {
                d / (2.1 * rho)
            } else if d < 0.1 * rho {
                (0.1 * rho) / d.max(1e-300)
            } else {
                1.0
            };
            (i, badness)
        })
        .filter(|&(_, b)| b > 1.0)
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(i, _)| i)
}

/// Replace vertex `j` with `best + ρ·d`, where `d` is the coordinate axis
/// least represented by the remaining simplex edges (a cheap stand-in for
/// Powell's volume-maximizing direction): project each axis onto the edge
/// span via Gram–Schmidt and take the axis with the largest residual.
fn repair_vertex(
    verts: &mut [Vec<f64>],
    fvals: &mut [f64],
    rec: &mut Recorder<'_>,
    best: usize,
    j: usize,
    rho: f64,
    n: usize,
) {
    if rec.exhausted() {
        return;
    }
    // Orthonormal basis of the edges excluding vertex j.
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(n - 1);
    for (i, v) in verts.iter().enumerate() {
        if i == best || i == j {
            continue;
        }
        let mut e: Vec<f64> = v.iter().zip(&verts[best]).map(|(a, b)| a - b).collect();
        for q in &basis {
            let proj: f64 = e.iter().zip(q).map(|(a, b)| a * b).sum();
            for (ev, qv) in e.iter_mut().zip(q) {
                *ev -= proj * qv;
            }
        }
        let en = norm(&e);
        if en > 1e-12 {
            for ev in &mut e {
                *ev /= en;
            }
            basis.push(e);
        }
    }
    // Axis with the largest residual after projecting off the basis.
    let mut best_axis = 0usize;
    let mut best_resid = -1.0;
    for axis in 0..n {
        let mut resid = 1.0; // |e_axis|² = 1
        for q in &basis {
            resid -= q[axis] * q[axis];
        }
        if resid > best_resid {
            best_resid = resid;
            best_axis = axis;
        }
    }
    let mut v = verts[best].clone();
    v[best_axis] += rho;
    fvals[j] = rec.eval(&v);
    verts[j] = v;
}

/// Solve a dense `n×n` system by Gaussian elimination with partial
/// pivoting. Returns `None` when the matrix is numerically singular
/// (degenerate simplex).
fn solve_linear(rows: &[Vec<f64>], rhs: &[f64]) -> Option<Vec<f64>> {
    let n = rhs.len();
    let mut a: Vec<Vec<f64>> = rows.to_vec();
    let mut b = rhs.to_vec();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let inv = 1.0 / a[col][col];
        // split so the pivot row can be read while later rows are updated
        let (pivot_rows, tail) = a.split_at_mut(col + 1);
        let pivot_row = &pivot_rows[col];
        for (offset, row) in tail.iter_mut().enumerate() {
            let factor = row[col] * inv;
            if factor == 0.0 {
                continue;
            }
            for (x, &p) in row[col..n].iter_mut().zip(&pivot_row[col..n]) {
                *x -= factor * p;
            }
            b[col + 1 + offset] -= factor * b[col];
        }
    }
    // back substitution
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_functions::{cosine_mixture, rosenbrock, shifted_sphere};

    #[test]
    fn solves_quadratic_to_high_accuracy() {
        let res = Cobyla::new(0.5, 1e-10, 2000).minimize(&shifted_sphere, &[0.0, 0.0, 0.0]);
        assert!(res.fx < 1e-8, "fx = {}", res.fx);
        for (i, v) in res.x.iter().enumerate() {
            assert!((v - (i + 1) as f64).abs() < 1e-3, "x[{i}] = {v}");
        }
    }

    #[test]
    fn reaches_rosenbrock_valley() {
        // Linear-model trust-region methods descend into the banana valley
        // quickly but then track its curvature slowly (no second-order
        // model) — assert the descent from f = 24.2 to the valley floor.
        let res = Cobyla::new(0.5, 1e-10, 4000).minimize(&rosenbrock, &[-1.2, 1.0]);
        assert!(res.fx < 2.0, "fx = {}", res.fx);
        // the iterate must sit essentially on the parabola y = x²
        let (x, y) = (res.x[0], res.x[1]);
        assert!((y - x * x).abs() < 0.05, "off the valley floor: ({x}, {y})");
    }

    #[test]
    fn descends_cosine_landscape() {
        let res = Cobyla::new(0.3, 1e-8, 500).minimize(&cosine_mixture, &[0.5, -0.4]);
        // global minimum of each term is ≈ −1.2 at x = 0
        assert!(res.fx < -2.3, "fx = {}", res.fx);
    }

    #[test]
    fn respects_eval_budget() {
        let budget = 37;
        let res = Cobyla::new(0.5, 1e-12, budget).minimize(&shifted_sphere, &[5.0, 5.0]);
        assert!(res.evals <= budget);
        assert_eq!(res.history.len(), res.evals);
    }

    #[test]
    fn history_is_monotone_nonincreasing() {
        let res = Cobyla::new(0.4, 1e-8, 300).minimize(&rosenbrock, &[0.0, 0.0]);
        for w in res.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-15);
        }
    }

    #[test]
    fn larger_rhobeg_travels_farther_early() {
        // From a distant start, a larger initial radius must reach a lower
        // value within a small budget — the effect the paper's grid probes.
        let start = [8.0, 8.0];
        let small = Cobyla::new(0.1, 1e-8, 60).minimize(&shifted_sphere, &start);
        let large = Cobyla::new(1.0, 1e-8, 60).minimize(&shifted_sphere, &start);
        assert!(large.fx < small.fx, "large {} vs small {}", large.fx, small.fx);
    }

    #[test]
    fn one_dimensional_problem() {
        let f = |x: &[f64]| (x[0] - 3.5).powi(2);
        let res = Cobyla::new(0.5, 1e-10, 500).minimize(&f, &[0.0]);
        assert!((res.x[0] - 3.5).abs() < 1e-4);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let a = Cobyla::new(0.3, 1e-8, 200).minimize(&rosenbrock, &[0.2, 0.3]);
        let b = Cobyla::new(0.3, 1e-8, 200).minimize(&rosenbrock, &[0.2, 0.3]);
        assert_eq!(a.x, b.x);
        assert_eq!(a.fx, b.fx);
    }

    #[test]
    fn solve_linear_identity() {
        let rows = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve_linear(&rows, &[3.0, -4.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] + 4.0).abs() < 1e-12);
    }

    #[test]
    fn solve_linear_detects_singularity() {
        let rows = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear(&rows, &[1.0, 2.0]).is_none());
    }
}
