//! Parameter-grid utilities for the paper's sweeps.
//!
//! Fig. 3 scans `p ∈ {3..8} × rhobeg ∈ {0.1..0.5}`; the experiment
//! harness builds those axes with [`linspace`]/[`GridSpec`] and iterates
//! the cartesian product deterministically (row-major, first axis slowest),
//! so every grid cell has a stable index that can seed its RNG.

/// `count` evenly spaced values from `start` to `end` inclusive.
pub fn linspace(start: f64, end: f64, count: usize) -> Vec<f64> {
    match count {
        0 => Vec::new(),
        1 => vec![start],
        _ => {
            let step = (end - start) / (count - 1) as f64;
            (0..count).map(|i| start + step * i as f64).collect()
        }
    }
}

/// A cartesian grid over named `f64` axes.
#[derive(Debug, Clone, Default)]
pub struct GridSpec {
    axes: Vec<(String, Vec<f64>)>,
}

impl GridSpec {
    /// Empty grid (a single empty point).
    pub fn new() -> Self {
        GridSpec::default()
    }

    /// Add an axis; builder style.
    pub fn axis(mut self, name: &str, values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "axis `{name}` has no values");
        self.axes.push((name.to_string(), values));
        self
    }

    /// Number of grid points (product of axis lengths).
    pub fn len(&self) -> usize {
        self.axes.iter().map(|(_, v)| v.len()).product()
    }

    /// True when no axes were added.
    pub fn is_empty(&self) -> bool {
        self.axes.is_empty()
    }

    /// Axis names in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.axes.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The `i`-th point, row-major with the first axis varying slowest.
    pub fn point(&self, mut i: usize) -> Vec<f64> {
        assert!(i < self.len());
        let mut out = vec![0.0; self.axes.len()];
        for (slot, (_, vals)) in out.iter_mut().zip(&self.axes).rev() {
            *slot = vals[i % vals.len()];
            i /= vals.len();
        }
        out
    }

    /// Iterate `(index, point)` over the whole grid.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Vec<f64>)> + '_ {
        (0..self.len()).map(move |i| (i, self.point(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints() {
        let v = linspace(0.1, 0.5, 5);
        assert_eq!(v.len(), 5);
        assert!((v[0] - 0.1).abs() < 1e-12);
        assert!((v[4] - 0.5).abs() < 1e-12);
        assert!((v[2] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn linspace_degenerate() {
        assert!(linspace(1.0, 2.0, 0).is_empty());
        assert_eq!(linspace(1.0, 2.0, 1), vec![1.0]);
    }

    #[test]
    fn grid_cartesian_product() {
        let g = GridSpec::new().axis("p", vec![3.0, 4.0]).axis("rhobeg", vec![0.1, 0.2, 0.3]);
        assert_eq!(g.len(), 6);
        assert_eq!(g.point(0), vec![3.0, 0.1]);
        assert_eq!(g.point(2), vec![3.0, 0.3]);
        assert_eq!(g.point(3), vec![4.0, 0.1]);
        assert_eq!(g.point(5), vec![4.0, 0.3]);
    }

    #[test]
    fn grid_iter_covers_all_points_once() {
        let g = GridSpec::new().axis("a", vec![1.0, 2.0]).axis("b", vec![5.0, 6.0]);
        let pts: Vec<Vec<f64>> = g.iter().map(|(_, p)| p).collect();
        assert_eq!(pts.len(), 4);
        assert!(pts.contains(&vec![2.0, 5.0]));
    }

    #[test]
    #[should_panic]
    fn grid_point_out_of_range_panics() {
        let g = GridSpec::new().axis("a", vec![1.0]);
        g.point(1);
    }
}
