//! SPSA — Simultaneous Perturbation Stochastic Approximation (Spall).
//!
//! Estimates the gradient from exactly two objective evaluations per
//! iteration regardless of dimension, which is why it is the standard
//! optimizer for *shot-noisy* QAOA objectives on real hardware. Included
//! to let the testbed compare a noise-robust optimizer against COBYLA,
//! one of the "preparation of real quantum devices" angles the paper's
//! workflow is meant to serve.

use crate::{OptResult, Optimizer, Recorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SPSA configuration with the standard gain schedules
/// `a_k = a/(k+1+A)^α`, `c_k = c/(k+1)^γ`.
#[derive(Debug, Clone, Copy)]
pub struct Spsa {
    /// Step-size numerator `a`.
    pub a: f64,
    /// Perturbation numerator `c`.
    pub c: f64,
    /// Stability constant `A` (typically 10% of iterations).
    pub big_a: f64,
    /// Step decay exponent (0.602 per Spall).
    pub alpha: f64,
    /// Perturbation decay exponent (0.101 per Spall).
    pub gamma: f64,
    /// Evaluation budget (two evals per iteration).
    pub max_evals: usize,
    /// RNG seed for the Rademacher perturbations.
    pub seed: u64,
}

impl Spsa {
    /// SPSA with Spall's recommended exponents.
    pub fn new(a: f64, c: f64, max_evals: usize, seed: u64) -> Self {
        Spsa { a, c, big_a: max_evals as f64 * 0.05, alpha: 0.602, gamma: 0.101, max_evals, seed }
    }
}

impl Optimizer for Spsa {
    fn minimize(&self, f: &dyn Fn(&[f64]) -> f64, x0: &[f64]) -> OptResult {
        let n = x0.len();
        assert!(n > 0);
        let mut rec = Recorder::new(f, n, self.max_evals);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut x = x0.to_vec();
        rec.eval(&x);

        let mut k = 0usize;
        while rec.evals + 2 <= self.max_evals {
            let ak = self.a / (k as f64 + 1.0 + self.big_a).powf(self.alpha);
            let ck = self.c / (k as f64 + 1.0).powf(self.gamma);
            // Rademacher ±1 perturbation
            let delta: Vec<f64> =
                (0..n).map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 }).collect();
            let xp: Vec<f64> = x.iter().zip(&delta).map(|(v, d)| v + ck * d).collect();
            let xm: Vec<f64> = x.iter().zip(&delta).map(|(v, d)| v - ck * d).collect();
            let fp = rec.eval(&xp);
            let fm = rec.eval(&xm);
            let diff = (fp - fm) / (2.0 * ck);
            for (v, d) in x.iter_mut().zip(&delta) {
                *v -= ak * diff / d;
            }
            k += 1;
        }
        // final candidate
        if !rec.exhausted() {
            rec.eval(&x);
        }
        rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_functions::shifted_sphere;

    #[test]
    fn converges_on_quadratic() {
        let res = Spsa::new(0.5, 0.2, 2000, 7).minimize(&shifted_sphere, &[0.0, 0.0]);
        assert!(res.fx < 1e-2, "fx = {}", res.fx);
    }

    #[test]
    fn tolerates_noise() {
        // noisy sphere: SPSA should still get close
        use std::cell::RefCell;
        let rng = RefCell::new(StdRng::seed_from_u64(3));
        let noisy = move |x: &[f64]| shifted_sphere(x) + 0.01 * rng.borrow_mut().gen::<f64>();
        let res = Spsa::new(0.5, 0.2, 3000, 11).minimize(&noisy, &[0.0, 0.0]);
        assert!(res.fx < 0.5, "fx = {}", res.fx);
    }

    #[test]
    fn respects_budget_and_is_seeded() {
        let a = Spsa::new(0.4, 0.2, 101, 5).minimize(&shifted_sphere, &[2.0]);
        let b = Spsa::new(0.4, 0.2, 101, 5).minimize(&shifted_sphere, &[2.0]);
        assert!(a.evals <= 101);
        assert_eq!(a.x, b.x);
    }
}
