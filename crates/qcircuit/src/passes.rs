//! Circuit optimization passes.
//!
//! Three rewrites cover what the paper relies on Classiq for:
//!
//! * [`schedule_commuting_layers`] — all gates of a QAOA cost layer are
//!   diagonal and commute, so they may be reordered freely; a greedy edge
//!   coloring groups the RZZ gates into color classes that execute as
//!   parallel layers, minimizing depth (within the greedy bound ≤ 2Δ−1
//!   colors).
//! * [`fuse_rotations`] — adjacent same-axis rotations on one qubit merge
//!   into a single gate; zero-angle rotations vanish.
//! * [`cancel_inverses`] — adjacent self-inverse pairs (`H·H`,
//!   `CX·CX`, `CZ·CZ`, `X·X`) annihilate.
//!
//! Every pass preserves circuit semantics up to global phase; the
//! equivalence tests execute rewritten circuits against the originals on
//! the statevector simulator.

use crate::ir::{Circuit, Gate};

/// Reorder runs of commuting diagonal gates into edge-colored parallel
/// layers. Non-diagonal gates act as barriers, so correctness only relies
/// on commutativity inside each diagonal run.
pub fn schedule_commuting_layers(c: &Circuit) -> Circuit {
    let mut out: Vec<Gate> = Vec::with_capacity(c.gates().len());
    let mut run: Vec<Gate> = Vec::new();
    for &g in c.gates() {
        if g.is_diagonal() {
            run.push(g);
        } else {
            flush_diagonal_run(&mut out, &mut run, c.num_qubits());
            out.push(g);
        }
    }
    flush_diagonal_run(&mut out, &mut run, c.num_qubits());
    Circuit::with_gates(c.num_qubits(), out)
}

/// Greedy edge coloring of one diagonal run; emits gates color by color.
fn flush_diagonal_run(out: &mut Vec<Gate>, run: &mut Vec<Gate>, num_qubits: usize) {
    if run.is_empty() {
        return;
    }
    // single-qubit diagonals and global phases go first (depth-free w.r.t.
    // two-qubit scheduling)
    let mut colors: Vec<u32> = Vec::with_capacity(run.len());
    let mut used: Vec<Vec<u32>> = vec![Vec::new(); num_qubits]; // colors present at each qubit
    let mut max_color = 0u32;
    for g in run.iter() {
        let qs = g.qubits();
        if qs.len() < 2 {
            colors.push(0);
            continue;
        }
        let (a, b) = (qs[0] as usize, qs[1] as usize);
        let mut color = 1u32;
        while used[a].contains(&color) || used[b].contains(&color) {
            color += 1;
        }
        used[a].push(color);
        used[b].push(color);
        colors.push(color);
        max_color = max_color.max(color);
    }
    for wanted in 0..=max_color {
        for (g, &col) in run.iter().zip(&colors) {
            if col == wanted {
                out.push(*g);
            }
        }
    }
    run.clear();
}

/// Merge adjacent same-axis rotations on the same qubit(s); drop
/// resulting zero-angle gates (and zero global phases).
pub fn fuse_rotations(c: &Circuit) -> Circuit {
    const ZERO_TOL: f64 = 1e-15;
    let mut out: Vec<Gate> = Vec::with_capacity(c.gates().len());
    for &g in c.gates() {
        let fused = match (out.last().copied(), g) {
            (Some(Gate::Rx(q1, a)), Gate::Rx(q2, b)) if q1 == q2 => Some(Gate::Rx(q1, a + b)),
            (Some(Gate::Ry(q1, a)), Gate::Ry(q2, b)) if q1 == q2 => Some(Gate::Ry(q1, a + b)),
            (Some(Gate::Rz(q1, a)), Gate::Rz(q2, b)) if q1 == q2 => Some(Gate::Rz(q1, a + b)),
            (Some(Gate::Rzz(a1, b1, t1)), Gate::Rzz(a2, b2, t2))
                if (a1, b1) == (a2, b2) || (a1, b1) == (b2, a2) =>
            {
                Some(Gate::Rzz(a1, b1, t1 + t2))
            }
            (Some(Gate::GlobalPhase(a)), Gate::GlobalPhase(b)) => Some(Gate::GlobalPhase(a + b)),
            _ => None,
        };
        match fused {
            Some(f) => {
                out.pop();
                if rotation_angle(&f).map(|t| t.abs() > ZERO_TOL).unwrap_or(true) {
                    out.push(f);
                }
            }
            None => out.push(g),
        }
    }
    Circuit::with_gates(c.num_qubits(), out)
}

/// Cancel adjacent self-inverse pairs. Iterates to a fixed point so
/// cascades (`H H H H`) fully collapse.
pub fn cancel_inverses(c: &Circuit) -> Circuit {
    let mut gates: Vec<Gate> = c.gates().to_vec();
    loop {
        let mut out: Vec<Gate> = Vec::with_capacity(gates.len());
        let mut changed = false;
        for g in gates.drain(..) {
            if let Some(&prev) = out.last() {
                if is_self_inverse_pair(prev, g) {
                    out.pop();
                    changed = true;
                    continue;
                }
            }
            out.push(g);
        }
        gates = out;
        if !changed {
            break;
        }
    }
    Circuit::with_gates(c.num_qubits(), gates)
}

fn rotation_angle(g: &Gate) -> Option<f64> {
    match *g {
        Gate::Rx(_, t) | Gate::Ry(_, t) | Gate::Rz(_, t) | Gate::Rzz(_, _, t) => Some(t),
        Gate::GlobalPhase(p) => Some(p),
        _ => None,
    }
}

fn is_self_inverse_pair(a: Gate, b: Gate) -> bool {
    match (a, b) {
        (Gate::H(p), Gate::H(q)) | (Gate::X(p), Gate::X(q)) => p == q,
        (Gate::Cnot(c1, t1), Gate::Cnot(c2, t2)) => (c1, t1) == (c2, t2),
        (Gate::Cz(a1, b1), Gate::Cz(a2, b2)) => (a1, b1) == (a2, b2) || (a1, b1) == (b2, a2),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_statevector;
    use crate::synth::{AnsatzParams, CostModel, Preference, Synthesizer};
    use qq_graph::generators;

    fn assert_equivalent(a: &Circuit, b: &Circuit) {
        let sa = run_statevector(a);
        let sb = run_statevector(b);
        // equality up to global phase: |⟨a|b⟩| = 1
        let mut overlap = qq_sim::C64::ZERO;
        for (x, y) in sa.amplitudes().iter().zip(sb.amplitudes()) {
            overlap += x.conj() * *y;
        }
        assert!((overlap.abs() - 1.0).abs() < 1e-9, "overlap = {}", overlap.abs());
    }

    #[test]
    fn scheduling_preserves_semantics() {
        let g = generators::erdos_renyi(6, 0.6, generators::WeightKind::Random01, 4);
        let model = CostModel::from_maxcut(&g);
        let params = AnsatzParams::new(vec![0.3, 0.5], vec![0.2, 0.7]);
        let naive = Synthesizer::new(Preference::None).qaoa_ansatz(&model, &params);
        let sched = schedule_commuting_layers(&naive);
        assert_equivalent(&naive, &sched);
        assert!(sched.depth() <= naive.depth());
    }

    #[test]
    fn fusion_merges_rotations() {
        let mut c = Circuit::new(1);
        c.push(Gate::Rx(0, 0.3)).unwrap();
        c.push(Gate::Rx(0, 0.4)).unwrap();
        let f = fuse_rotations(&c);
        assert_eq!(f.gates().len(), 1);
        assert_eq!(f.gates()[0], Gate::Rx(0, 0.7));
    }

    #[test]
    fn fusion_drops_zero_rotations() {
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(0, 0.5)).unwrap();
        c.push(Gate::Rz(0, -0.5)).unwrap();
        let f = fuse_rotations(&c);
        assert_eq!(f.gate_count(), 0);
    }

    #[test]
    fn fusion_respects_qubit_boundaries() {
        let mut c = Circuit::new(2);
        c.push(Gate::Rx(0, 0.3)).unwrap();
        c.push(Gate::Rx(1, 0.4)).unwrap();
        assert_eq!(fuse_rotations(&c).gates().len(), 2);
    }

    #[test]
    fn fusion_merges_rzz_either_orientation() {
        let mut c = Circuit::new(2);
        c.push(Gate::Rzz(0, 1, 0.3)).unwrap();
        c.push(Gate::Rzz(1, 0, 0.2)).unwrap();
        let f = fuse_rotations(&c);
        assert_eq!(f.gates(), &[Gate::Rzz(0, 1, 0.5)]);
    }

    #[test]
    fn cancel_collapses_cascades() {
        let mut c = Circuit::new(2);
        for _ in 0..4 {
            c.push(Gate::H(0)).unwrap();
        }
        c.push(Gate::Cnot(0, 1)).unwrap();
        c.push(Gate::Cnot(0, 1)).unwrap();
        let out = cancel_inverses(&c);
        assert_eq!(out.gate_count(), 0);
    }

    #[test]
    fn cancel_keeps_non_adjacent_pairs() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0)).unwrap();
        c.push(Gate::Cnot(0, 1)).unwrap();
        c.push(Gate::H(0)).unwrap();
        assert_eq!(cancel_inverses(&c).gate_count(), 3);
    }

    #[test]
    fn fusion_preserves_semantics_on_ansatz() {
        let g = generators::ring(5);
        let model = CostModel::from_maxcut(&g);
        let params = AnsatzParams::new(vec![0.4], vec![0.6]);
        let naive = Synthesizer::new(Preference::None).qaoa_ansatz(&model, &params);
        let fused = fuse_rotations(&naive);
        assert_equivalent(&naive, &fused);
    }

    #[test]
    fn coloring_is_proper() {
        // every color class must touch each qubit at most once
        let g = generators::complete(7);
        let model = CostModel::from_maxcut(&g);
        let params = AnsatzParams::new(vec![0.2], vec![0.1]);
        let c = Synthesizer::new(Preference::Depth).qaoa_ansatz(&model, &params);
        // walk the rzz run and check no two adjacent-in-layer gates share a
        // qubit: equivalent to checking depth of the rzz block is the
        // number of color classes; weaker but meaningful: depth ≤ 2Δ−1+2
        assert!(c.depth() <= 2 * 6 - 1 + 2);
    }
}
