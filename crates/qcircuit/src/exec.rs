//! Circuit execution on the `qq-sim` backends.
//!
//! The default entry points ([`run_statevector`], [`run_blocked`]) lower
//! the circuit through the [`crate::fuse`] pass first, so a run of
//! commuting diagonal gates costs one state sweep and a wall of one-qubit
//! gates costs one cache-blocked pass. The unfused per-gate lowerings are
//! kept as the reference path ([`run_statevector_unfused`],
//! [`run_blocked_unfused`], [`apply_to_statevector`]) — equivalence is
//! checked to 1e-9 overlap in `tests/fusion_equivalence.rs`.
//!
//! Both engines start from `|0…0⟩`; the QAOA ansatz itself contains the
//! initial Hadamard wall.

use crate::fuse::{fuse, FusedOp, FusedProgram};
use crate::ir::{Circuit, Gate};
use qq_sim::{BlockedState, SimError, StateVector};

/// Sweep accounting for one fused execution, reported by the
/// `apply_fused_*` entry points and the fusion benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FusedRunStats {
    /// Gates in the source circuit (including global phases).
    pub source_gates: usize,
    /// Full passes over the amplitude array the fused execution made.
    pub sweeps: usize,
    /// Diagonal blocks executed (one sweep each).
    pub diag_blocks: usize,
    /// Source gates folded into diagonal blocks.
    pub diag_gates: usize,
    /// One-qubit walls executed.
    pub walls: usize,
    /// Gates that fell back to the per-gate kernels.
    pub unfused_gates: usize,
}

/// Execute on the flat statevector engine (fused path).
pub fn run_statevector(c: &Circuit) -> StateVector {
    let mut s = StateVector::zero_state(c.num_qubits());
    apply_fused_to_statevector(&fuse(c), &mut s);
    s
}

/// Execute on the flat statevector engine with the per-gate reference
/// lowering (one sweep per gate).
pub fn run_statevector_unfused(c: &Circuit) -> StateVector {
    let mut s = StateVector::zero_state(c.num_qubits());
    apply_to_statevector(c, &mut s);
    s
}

/// Apply a circuit gate-by-gate to an existing state (used when composing
/// ansatz fragments or re-running with different measurement settings,
/// and as the unfused reference path).
pub fn apply_to_statevector(c: &Circuit, s: &mut StateVector) {
    assert_eq!(c.num_qubits(), s.num_qubits(), "circuit/register width mismatch");
    for &g in c.gates() {
        apply_gate_statevector(g, s);
    }
}

/// Per-gate lowering to the flat engine. Returns the number of state
/// sweeps the gate cost (1, or 0 for a pure bookkeeping gate).
fn apply_gate_statevector(g: Gate, s: &mut StateVector) -> usize {
    match g {
        Gate::H(q) => s.h(q as usize),
        Gate::X(q) => s.x(q as usize),
        Gate::Rx(q, t) => s.rx(q as usize, t),
        Gate::Ry(q, t) => s.ry(q as usize, t),
        Gate::Rz(q, t) => s.rz(q as usize, t),
        Gate::Rzz(a, b, t) => s.rzz(a as usize, b as usize, t),
        Gate::Cz(a, b) => s.cz(a as usize, b as usize),
        Gate::Cnot(a, b) => s.cnot(a as usize, b as usize),
        Gate::GlobalPhase(p) => s.global_phase(p),
    }
    1
}

/// Apply a fused program to an existing flat state, returning sweep
/// accounting. Each diagonal block is exactly one sweep regardless of how
/// many gates folded into it; each wall is one pass plus one per
/// high-qubit gate outside the cache-blocked grain.
pub fn apply_fused_to_statevector(p: &FusedProgram, s: &mut StateVector) -> FusedRunStats {
    assert_eq!(p.num_qubits(), s.num_qubits(), "circuit/register width mismatch");
    let mut stats = FusedRunStats { source_gates: p.source_gates(), ..Default::default() };
    for op in p.ops() {
        match op {
            FusedOp::DiagonalBlock { phase0, terms, gates } => {
                s.apply_diag_block(*phase0, terms);
                stats.sweeps += 1;
                stats.diag_blocks += 1;
                stats.diag_gates += gates;
            }
            FusedOp::OneQubitWall { mats, .. } => {
                stats.sweeps += s.apply_1q_wall(mats);
                stats.walls += 1;
            }
            FusedOp::Unfused(g) => {
                stats.sweeps += apply_gate_statevector(*g, s);
                stats.unfused_gates += 1;
            }
        }
    }
    stats
}

/// Execute on the cache-blocked engine (chunk size `2^chunk_qubits`),
/// fused path, returning the final state with its communication
/// statistics.
pub fn run_blocked(c: &Circuit, chunk_qubits: usize) -> Result<BlockedState, SimError> {
    let mut s = BlockedState::zero_state(c.num_qubits(), chunk_qubits)?;
    apply_fused_to_blocked(&fuse(c), &mut s)?;
    Ok(s)
}

/// Execute on the cache-blocked engine with the per-gate reference
/// lowering.
pub fn run_blocked_unfused(c: &Circuit, chunk_qubits: usize) -> Result<BlockedState, SimError> {
    let mut s = BlockedState::zero_state(c.num_qubits(), chunk_qubits)?;
    for &g in c.gates() {
        apply_gate_blocked(g, &mut s)?;
    }
    Ok(s)
}

/// Per-gate lowering to the blocked engine. CZ/CNOT lower via the generic
/// kernels (global phase −π/4 omitted — unobservable); returns the number
/// of chunk passes the gate cost.
fn apply_gate_blocked(g: Gate, s: &mut BlockedState) -> Result<usize, SimError> {
    let passes = match g {
        Gate::H(q) => {
            s.h(q as usize)?;
            1
        }
        Gate::X(q) => {
            s.apply_1q(q as usize, &qq_sim::gates::x_matrix())?;
            1
        }
        Gate::Rx(q, t) => {
            s.rx(q as usize, t)?;
            1
        }
        Gate::Ry(q, t) => {
            s.apply_1q(q as usize, &qq_sim::gates::ry_matrix(t))?;
            1
        }
        Gate::Rz(q, t) => {
            s.rz(q as usize, t)?;
            1
        }
        Gate::Rzz(a, b, t) => {
            s.rzz(a as usize, b as usize, t)?;
            1
        }
        Gate::Cz(a, b) => {
            s.rzz(a as usize, b as usize, std::f64::consts::FRAC_PI_2)?;
            s.rz(a as usize, -std::f64::consts::FRAC_PI_2)?;
            s.rz(b as usize, -std::f64::consts::FRAC_PI_2)?;
            3
        }
        Gate::Cnot(a, b) => {
            // CX = (I⊗H)·CZ·(I⊗H)
            s.h(b as usize)?;
            s.rzz(a as usize, b as usize, std::f64::consts::FRAC_PI_2)?;
            s.rz(a as usize, -std::f64::consts::FRAC_PI_2)?;
            s.rz(b as usize, -std::f64::consts::FRAC_PI_2)?;
            s.h(b as usize)?;
            5
        }
        Gate::GlobalPhase(_) => 0,
    };
    Ok(passes)
}

/// Apply a fused program to an existing blocked state, returning sweep
/// accounting. Diagonal blocks are chunk-local (zero pair exchanges);
/// walls split into one chunk-local pass plus one pair-exchange pass per
/// chunk-crossing qubit.
pub fn apply_fused_to_blocked(
    p: &FusedProgram,
    s: &mut BlockedState,
) -> Result<FusedRunStats, SimError> {
    assert_eq!(p.num_qubits(), s.num_qubits(), "circuit/register width mismatch");
    let mut stats = FusedRunStats { source_gates: p.source_gates(), ..Default::default() };
    for op in p.ops() {
        match op {
            FusedOp::DiagonalBlock { phase0, terms, gates } => {
                s.apply_diag_block(*phase0, terms)?;
                stats.sweeps += 1;
                stats.diag_blocks += 1;
                stats.diag_gates += gates;
            }
            FusedOp::OneQubitWall { mats, .. } => {
                stats.sweeps += s.apply_1q_wall(mats)?;
                stats.walls += 1;
            }
            FusedOp::Unfused(g) => {
                stats.sweeps += apply_gate_blocked(*g, s)?;
                stats.unfused_gates += 1;
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{AnsatzParams, CostModel, Preference, Synthesizer};
    use qq_graph::generators;

    fn assert_overlap(a: &StateVector, b: &StateVector) {
        let mut overlap = qq_sim::C64::ZERO;
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            overlap += x.conj() * *y;
        }
        assert!((overlap.abs() - 1.0).abs() < 1e-9, "overlap = {}", overlap.abs());
    }

    #[test]
    fn bell_circuit() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0)).unwrap();
        c.push(Gate::Cnot(0, 1)).unwrap();
        let s = run_statevector(&c);
        assert!((s.probability(0) - 0.5).abs() < 1e-10);
        assert!((s.probability(3) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn fused_default_matches_unfused_reference() {
        let g = generators::erdos_renyi(8, 0.5, generators::WeightKind::Random01, 21);
        let model = CostModel::from_maxcut(&g);
        let params = AnsatzParams::new(vec![0.25, 0.55], vec![0.15, 0.35]);
        let circuit = Synthesizer::new(Preference::Depth).qaoa_ansatz(&model, &params);
        assert_overlap(&run_statevector(&circuit), &run_statevector_unfused(&circuit));
    }

    #[test]
    fn fused_sweeps_bounded_by_runs_not_gates() {
        let g = generators::complete(9);
        let model = CostModel::from_maxcut(&g);
        let p = 2;
        let params = AnsatzParams::new(vec![0.3; p], vec![0.2; p]);
        let circuit = Synthesizer::new(Preference::Depth).qaoa_ansatz(&model, &params);
        let mut s = StateVector::zero_state(circuit.num_qubits());
        let stats = apply_fused_to_statevector(&fuse(&circuit), &mut s);
        // one sweep per diagonal run: p cost layers ⇒ p diagonal sweeps
        assert_eq!(stats.diag_blocks, p);
        // 36 rzz per layer folded into one block each
        assert_eq!(stats.diag_gates, circuit.gates().iter().filter(|g| g.is_diagonal()).count());
        // total sweeps far below the per-gate count
        assert!(
            stats.sweeps <= stats.diag_blocks + 2 * stats.walls + stats.unfused_gates,
            "sweeps {} exceed run bound",
            stats.sweeps
        );
        assert!(stats.sweeps < circuit.gates().len() / 4);
    }

    #[test]
    fn blocked_matches_flat_on_ansatz() {
        let g = generators::erdos_renyi(7, 0.4, generators::WeightKind::Random01, 12);
        let model = CostModel::from_maxcut(&g);
        let params = AnsatzParams::new(vec![0.25, 0.55], vec![0.15, 0.35]);
        let circuit = Synthesizer::new(Preference::Depth).qaoa_ansatz(&model, &params);
        let flat = run_statevector(&circuit);
        let blocked = run_blocked(&circuit, 3).unwrap().to_statevector();
        assert_overlap(&flat, &blocked);
    }

    #[test]
    fn blocked_cnot_lowering_matches_flat() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0)).unwrap();
        c.push(Gate::Cnot(0, 2)).unwrap();
        c.push(Gate::Cz(1, 2)).unwrap();
        let flat = run_statevector(&c);
        for blk in [run_blocked(&c, 1).unwrap(), run_blocked_unfused(&c, 1).unwrap()] {
            assert_overlap(&flat, &blk.to_statevector());
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let c = Circuit::new(3);
        let mut s = StateVector::zero_state(2);
        apply_to_statevector(&c, &mut s);
    }
}
