//! Circuit execution on the `qq-sim` backends.
//!
//! The lowering is direct: each IR gate maps to one simulator kernel.
//! Both engines start from `|0…0⟩`; the QAOA ansatz itself contains the
//! initial Hadamard wall.

use crate::ir::{Circuit, Gate};
use qq_sim::{BlockedState, SimError, StateVector};

/// Execute on the flat statevector engine.
pub fn run_statevector(c: &Circuit) -> StateVector {
    let mut s = StateVector::zero_state(c.num_qubits());
    apply_to_statevector(c, &mut s);
    s
}

/// Apply a circuit to an existing state (used when composing ansatz
/// fragments or re-running with different measurement settings).
pub fn apply_to_statevector(c: &Circuit, s: &mut StateVector) {
    assert_eq!(c.num_qubits(), s.num_qubits(), "circuit/register width mismatch");
    for &g in c.gates() {
        match g {
            Gate::H(q) => s.h(q as usize),
            Gate::X(q) => s.x(q as usize),
            Gate::Rx(q, t) => s.rx(q as usize, t),
            Gate::Ry(q, t) => s.ry(q as usize, t),
            Gate::Rz(q, t) => s.rz(q as usize, t),
            Gate::Rzz(a, b, t) => s.rzz(a as usize, b as usize, t),
            Gate::Cz(a, b) => s.cz(a as usize, b as usize),
            Gate::Cnot(a, b) => s.cnot(a as usize, b as usize),
            Gate::GlobalPhase(p) => s.global_phase(p),
        }
    }
}

/// Execute on the cache-blocked engine (chunk size `2^chunk_qubits`),
/// returning the final state with its communication statistics.
pub fn run_blocked(c: &Circuit, chunk_qubits: usize) -> Result<BlockedState, SimError> {
    let mut s = BlockedState::zero_state(c.num_qubits(), chunk_qubits)?;
    for &g in c.gates() {
        match g {
            Gate::H(q) => s.h(q as usize)?,
            Gate::X(q) => s.apply_1q(q as usize, &qq_sim::gates::x_matrix())?,
            Gate::Rx(q, t) => s.rx(q as usize, t)?,
            Gate::Ry(q, t) => s.apply_1q(q as usize, &qq_sim::gates::ry_matrix(t))?,
            Gate::Rz(q, t) => s.rz(q as usize, t)?,
            Gate::Rzz(a, b, t) => s.rzz(a as usize, b as usize, t)?,
            // CZ/CNOT/global phase are not needed by the QAOA ansatz on the
            // blocked engine; lower them via the generic kernels.
            Gate::Cz(a, b) => {
                s.rzz(a as usize, b as usize, std::f64::consts::FRAC_PI_2)?;
                s.rz(a as usize, -std::f64::consts::FRAC_PI_2)?;
                s.rz(b as usize, -std::f64::consts::FRAC_PI_2)?;
                // global phase −π/4 omitted (unobservable)
            }
            Gate::Cnot(a, b) => {
                // CX = (I⊗H)·CZ·(I⊗H)
                s.h(b as usize)?;
                s.rzz(a as usize, b as usize, std::f64::consts::FRAC_PI_2)?;
                s.rz(a as usize, -std::f64::consts::FRAC_PI_2)?;
                s.rz(b as usize, -std::f64::consts::FRAC_PI_2)?;
                s.h(b as usize)?;
            }
            Gate::GlobalPhase(_) => {}
        }
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{AnsatzParams, CostModel, Preference, Synthesizer};
    use qq_graph::generators;

    #[test]
    fn bell_circuit() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0)).unwrap();
        c.push(Gate::Cnot(0, 1)).unwrap();
        let s = run_statevector(&c);
        assert!((s.probability(0) - 0.5).abs() < 1e-10);
        assert!((s.probability(3) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn blocked_matches_flat_on_ansatz() {
        let g = generators::erdos_renyi(7, 0.4, generators::WeightKind::Random01, 12);
        let model = CostModel::from_maxcut(&g);
        let params = AnsatzParams::new(vec![0.25, 0.55], vec![0.15, 0.35]);
        let circuit = Synthesizer::new(Preference::Depth).qaoa_ansatz(&model, &params);
        let flat = run_statevector(&circuit);
        let blocked = run_blocked(&circuit, 3).unwrap().to_statevector();
        let mut overlap = qq_sim::C64::ZERO;
        for (a, b) in flat.amplitudes().iter().zip(blocked.amplitudes()) {
            overlap += a.conj() * *b;
        }
        assert!((overlap.abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn blocked_cnot_lowering_matches_flat() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0)).unwrap();
        c.push(Gate::Cnot(0, 2)).unwrap();
        c.push(Gate::Cz(1, 2)).unwrap();
        let flat = run_statevector(&c);
        let blk = run_blocked(&c, 1).unwrap().to_statevector();
        let mut overlap = qq_sim::C64::ZERO;
        for (a, b) in flat.amplitudes().iter().zip(blk.amplitudes()) {
            overlap += a.conj() * *b;
        }
        assert!((overlap.abs() - 1.0).abs() < 1e-9, "overlap = {}", overlap.abs());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let c = Circuit::new(3);
        let mut s = StateVector::zero_state(2);
        apply_to_statevector(&c, &mut s);
    }
}
