//! Gate-level intermediate representation.
//!
//! A [`Circuit`] is an ordered gate list over a fixed-width register. The
//! IR tracks the two metrics the Classiq synthesis engine optimizes and the
//! paper cares about on NISQ devices: circuit **depth** (parallel layers,
//! assuming all-to-all connectivity as the simulator provides) and
//! **two-qubit gate count** (the error-dominating resource on hardware).

use std::fmt;

/// One gate instruction. Angles are radians; qubit indices are
/// little-endian register positions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H(u32),
    /// Pauli-X.
    X(u32),
    /// `RX(θ)` rotation (QAOA mixer).
    Rx(u32, f64),
    /// `RY(θ)` rotation.
    Ry(u32, f64),
    /// `RZ(θ)` rotation.
    Rz(u32, f64),
    /// `RZZ(θ) = exp(−iθ(Z⊗Z)/2)` (QAOA cost term).
    Rzz(u32, u32, f64),
    /// Controlled-Z.
    Cz(u32, u32),
    /// Controlled-X (control, target).
    Cnot(u32, u32),
    /// Global phase `e^{iφ}` (bookkeeping for exact-fidelity checks).
    GlobalPhase(f64),
}

impl Gate {
    /// Qubits the gate acts on (empty for a global phase).
    pub fn qubits(&self) -> Vec<u32> {
        match *self {
            Gate::H(q) | Gate::X(q) | Gate::Rx(q, _) | Gate::Ry(q, _) | Gate::Rz(q, _) => vec![q],
            Gate::Rzz(a, b, _) | Gate::Cz(a, b) | Gate::Cnot(a, b) => vec![a, b],
            Gate::GlobalPhase(_) => vec![],
        }
    }

    /// True for gates diagonal in the computational basis — these commute
    /// with one another, which is what the depth scheduler exploits.
    pub fn is_diagonal(&self) -> bool {
        matches!(self, Gate::Rz(..) | Gate::Rzz(..) | Gate::Cz(..) | Gate::GlobalPhase(_))
    }

    /// True for two-qubit gates.
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Gate::Rzz(..) | Gate::Cz(..) | Gate::Cnot(..))
    }

    /// Short mnemonic.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::H(_) => "h",
            Gate::X(_) => "x",
            Gate::Rx(..) => "rx",
            Gate::Ry(..) => "ry",
            Gate::Rz(..) => "rz",
            Gate::Rzz(..) => "rzz",
            Gate::Cz(..) => "cz",
            Gate::Cnot(..) => "cx",
            Gate::GlobalPhase(_) => "gphase",
        }
    }
}

/// IR validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// Gate references a qubit ≥ register width.
    QubitOutOfRange { qubit: u32, num_qubits: usize },
    /// Two-qubit gate with identical operands.
    DuplicateQubit { qubit: u32 },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(f, "qubit {qubit} out of range for width-{num_qubits} circuit")
            }
            CircuitError::DuplicateQubit { qubit } => {
                write!(f, "two-qubit gate uses qubit {qubit} twice")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// An ordered gate list over `num_qubits` qubits.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Empty circuit.
    pub fn new(num_qubits: usize) -> Self {
        Circuit { num_qubits, gates: Vec::new() }
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Gate list in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Total gate count (global phases excluded).
    pub fn gate_count(&self) -> usize {
        self.gates.iter().filter(|g| !matches!(g, Gate::GlobalPhase(_))).count()
    }

    /// Two-qubit gate count — the NISQ cost metric.
    pub fn two_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Append a gate with validation.
    pub fn push(&mut self, gate: Gate) -> Result<(), CircuitError> {
        let qs = gate.qubits();
        for &q in &qs {
            if q as usize >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
        }
        if qs.len() == 2 && qs[0] == qs[1] {
            return Err(CircuitError::DuplicateQubit { qubit: qs[0] });
        }
        self.gates.push(gate);
        Ok(())
    }

    /// Append all gates of `other` (widths must match).
    pub fn append(&mut self, other: &Circuit) -> Result<(), CircuitError> {
        assert_eq!(self.num_qubits, other.num_qubits, "circuit widths differ");
        for &g in other.gates() {
            self.push(g)?;
        }
        Ok(())
    }

    /// Replace the gate list wholesale (used by optimization passes, which
    /// are whole-circuit rewrites).
    pub(crate) fn with_gates(num_qubits: usize, gates: Vec<Gate>) -> Self {
        Circuit { num_qubits, gates }
    }

    /// Circuit depth: number of parallel layers under all-to-all
    /// connectivity. Global phases occupy no layer.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for g in &self.gates {
            let qs = g.qubits();
            if qs.is_empty() {
                continue;
            }
            let layer = qs.iter().map(|&q| level[q as usize]).max().unwrap_or(0) + 1;
            for &q in &qs {
                level[q as usize] = layer;
            }
            depth = depth.max(layer);
        }
        depth
    }

    /// Histogram of gate mnemonics, for reporting.
    pub fn gate_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for g in &self.gates {
            match counts.iter_mut().find(|(n, _)| *n == g.name()) {
                Some((_, c)) => *c += 1,
                None => counts.push((g.name(), 1)),
            }
        }
        counts.sort_by(|a, b| a.0.cmp(b.0));
        counts
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit: {} qubits, {} gates, depth {}, {} two-qubit",
            self.num_qubits,
            self.gate_count(),
            self.depth(),
            self.two_qubit_count()
        )?;
        for g in &self.gates {
            match *g {
                Gate::H(q) => writeln!(f, "  h q{q}")?,
                Gate::X(q) => writeln!(f, "  x q{q}")?,
                Gate::Rx(q, t) => writeln!(f, "  rx({t:.4}) q{q}")?,
                Gate::Ry(q, t) => writeln!(f, "  ry({t:.4}) q{q}")?,
                Gate::Rz(q, t) => writeln!(f, "  rz({t:.4}) q{q}")?,
                Gate::Rzz(a, b, t) => writeln!(f, "  rzz({t:.4}) q{a}, q{b}")?,
                Gate::Cz(a, b) => writeln!(f, "  cz q{a}, q{b}")?,
                Gate::Cnot(a, b) => writeln!(f, "  cx q{a}, q{b}")?,
                Gate::GlobalPhase(p) => writeln!(f, "  gphase({p:.4})")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_range() {
        let mut c = Circuit::new(2);
        assert!(c.push(Gate::H(0)).is_ok());
        assert_eq!(
            c.push(Gate::H(2)),
            Err(CircuitError::QubitOutOfRange { qubit: 2, num_qubits: 2 })
        );
    }

    #[test]
    fn push_validates_distinct_operands() {
        let mut c = Circuit::new(3);
        assert_eq!(c.push(Gate::Rzz(1, 1, 0.5)), Err(CircuitError::DuplicateQubit { qubit: 1 }));
    }

    #[test]
    fn depth_counts_parallel_layers() {
        let mut c = Circuit::new(4);
        // layer 1: h on all four qubits
        for q in 0..4 {
            c.push(Gate::H(q)).unwrap();
        }
        assert_eq!(c.depth(), 1);
        // layer 2: two disjoint rzz
        c.push(Gate::Rzz(0, 1, 0.3)).unwrap();
        c.push(Gate::Rzz(2, 3, 0.3)).unwrap();
        assert_eq!(c.depth(), 2);
        // layer 3: rzz sharing qubit 1
        c.push(Gate::Rzz(1, 2, 0.3)).unwrap();
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn global_phase_does_not_affect_depth() {
        let mut c = Circuit::new(1);
        c.push(Gate::GlobalPhase(0.2)).unwrap();
        assert_eq!(c.depth(), 0);
        assert_eq!(c.gate_count(), 0);
        c.push(Gate::H(0)).unwrap();
        assert_eq!(c.depth(), 1);
    }

    #[test]
    fn two_qubit_count() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0)).unwrap();
        c.push(Gate::Rzz(0, 1, 0.2)).unwrap();
        c.push(Gate::Cnot(1, 2)).unwrap();
        c.push(Gate::Rx(2, 0.1)).unwrap();
        assert_eq!(c.two_qubit_count(), 2);
        assert_eq!(c.gate_count(), 4);
    }

    #[test]
    fn histogram_sorted_by_name() {
        let mut c = Circuit::new(2);
        c.push(Gate::Rzz(0, 1, 0.2)).unwrap();
        c.push(Gate::H(0)).unwrap();
        c.push(Gate::H(1)).unwrap();
        assert_eq!(c.gate_histogram(), vec![("h", 2), ("rzz", 1)]);
    }

    #[test]
    fn append_concatenates() {
        let mut a = Circuit::new(2);
        a.push(Gate::H(0)).unwrap();
        let mut b = Circuit::new(2);
        b.push(Gate::Cnot(0, 1)).unwrap();
        a.append(&b).unwrap();
        assert_eq!(a.gates().len(), 2);
    }

    #[test]
    fn diagonal_classification() {
        assert!(Gate::Rzz(0, 1, 0.1).is_diagonal());
        assert!(Gate::Rz(0, 0.1).is_diagonal());
        assert!(!Gate::Rx(0, 0.1).is_diagonal());
        assert!(!Gate::Cnot(0, 1).is_diagonal());
    }
}
