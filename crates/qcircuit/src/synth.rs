//! High-level model → gate-level circuit synthesis (Classiq substitute).
//!
//! The paper hands Classiq "the description of a high-level combinatorial
//! optimization problem" and receives "an optimized gate-level quantum
//! circuit". Here the high-level object is an Ising [`CostModel`] (built
//! from a MaxCut graph), and [`Synthesizer`] lowers it into the standard
//! QAOA ansatz
//!
//! ```text
//! |ψ_p(β, γ)⟩ = Π_{l=1..p} exp(−iβ_l H_M) exp(−iγ_l H_C) · H^{⊗n} |0⟩
//! ```
//!
//! applying the optimization preference: [`Preference::Depth`] schedules
//! the commuting cost terms with a greedy edge coloring so each color
//! class executes as one parallel layer (the depth-optimal structure for
//! RZZ sets), while [`Preference::GateCount`] performs rotation fusion and
//! cancellation only.

use crate::ir::{Circuit, Gate};
use crate::passes;
use qq_graph::Graph;

/// Ising cost model `H = Σ_j c_j · Z_{a_j} Z_{b_j} + constant`.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Register width.
    pub num_qubits: usize,
    /// `(qubit_a, qubit_b, coefficient)` two-body terms.
    pub terms: Vec<(u32, u32, f64)>,
    /// Identity-term coefficient (carried as a global phase so simulated
    /// energies match `H_C` exactly).
    pub constant: f64,
}

impl CostModel {
    /// MaxCut Hamiltonian `H_C = ½ Σ w_ij (1 − Z_i Z_j)`:
    /// constant `W/2` and coefficient `−w_ij/2` per edge.
    pub fn from_maxcut(g: &Graph) -> Self {
        let terms: Vec<(u32, u32, f64)> =
            g.edges().iter().map(|e| (e.u, e.v, -e.w / 2.0)).collect();
        CostModel { num_qubits: g.num_nodes(), terms, constant: g.total_weight() / 2.0 }
    }

    /// Evaluate the cost value of a computational-basis state (bit `i`
    /// of `z` is the spin of qubit `i`: 0 ↦ +1, 1 ↦ −1).
    pub fn eval_basis(&self, z: u64) -> f64 {
        let mut acc = self.constant;
        for &(a, b, c) in &self.terms {
            let sa = 1.0 - 2.0 * ((z >> a) & 1) as f64;
            let sb = 1.0 - 2.0 * ((z >> b) & 1) as f64;
            acc += c * sa * sb;
        }
        acc
    }
}

/// Synthesis optimization preference, mirroring Classiq's optimization
/// parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Preference {
    /// Minimize circuit depth (edge-color the commuting cost layer).
    #[default]
    Depth,
    /// Minimize gate count (fusion/cancellation only, program order kept).
    GateCount,
    /// No optimization; emit the naive ansatz.
    None,
}

/// Variational parameters of a depth-`p` ansatz.
#[derive(Debug, Clone, PartialEq)]
pub struct AnsatzParams {
    /// Cost angles `γ_1..γ_p`.
    pub gammas: Vec<f64>,
    /// Mixer angles `β_1..β_p`.
    pub betas: Vec<f64>,
}

impl AnsatzParams {
    /// Construct; the two vectors must have equal length `p ≥ 1`.
    pub fn new(gammas: Vec<f64>, betas: Vec<f64>) -> Self {
        assert_eq!(gammas.len(), betas.len(), "γ and β must have the same length");
        assert!(!gammas.is_empty(), "ansatz needs at least one layer");
        AnsatzParams { gammas, betas }
    }

    /// Number of layers `p`.
    pub fn layers(&self) -> usize {
        self.gammas.len()
    }

    /// Flatten to the optimizer's parameter vector `[γ…, β…]`.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut v = self.gammas.clone();
        v.extend_from_slice(&self.betas);
        v
    }

    /// Rebuild from the optimizer's flat vector.
    pub fn from_vec(p: usize, v: &[f64]) -> Self {
        assert_eq!(v.len(), 2 * p, "flat parameter vector must have length 2p");
        AnsatzParams { gammas: v[..p].to_vec(), betas: v[p..].to_vec() }
    }
}

/// The synthesis engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct Synthesizer {
    preference: Preference,
}

impl Synthesizer {
    /// Engine with the given optimization preference.
    pub fn new(preference: Preference) -> Self {
        Synthesizer { preference }
    }

    /// Lower a cost model and parameter set to the QAOA ansatz circuit.
    pub fn qaoa_ansatz(&self, model: &CostModel, params: &AnsatzParams) -> Circuit {
        let n = model.num_qubits;
        let mut c = Circuit::new(n);
        for q in 0..n as u32 {
            // INVARIANT: q < n = c.num_qubits, so push cannot reject.
            c.push(Gate::H(q)).expect("synthesizer emits valid qubits");
        }
        for (&gamma, &beta) in params.gammas.iter().zip(&params.betas) {
            // cost layer: exp(−iγ Σ c·ZZ) → RZZ(2γc) per term
            for &(a, b, coef) in &model.terms {
                // INVARIANT: CostModel validates a, b < num_qubits.
                c.push(Gate::Rzz(a, b, 2.0 * gamma * coef)).expect("valid term");
            }
            if model.constant != 0.0 {
                // INVARIANT: GlobalPhase touches no qubit index.
                c.push(Gate::GlobalPhase(-gamma * model.constant)).expect("phase is valid");
            }
            // mixer layer: exp(−iβ Σ X) → RX(2β) per qubit
            for q in 0..n as u32 {
                // INVARIANT: q < n = c.num_qubits, so push cannot reject.
                c.push(Gate::Rx(q, 2.0 * beta)).expect("valid qubit");
            }
        }
        match self.preference {
            Preference::Depth => passes::schedule_commuting_layers(&passes::fuse_rotations(&c)),
            Preference::GateCount => passes::cancel_inverses(&passes::fuse_rotations(&c)),
            Preference::None => c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_graph::generators;

    #[test]
    fn maxcut_model_matches_cut_values() {
        let g = generators::erdos_renyi(8, 0.4, generators::WeightKind::Random01, 2);
        let model = CostModel::from_maxcut(&g);
        for z in [0u64, 1, 37, 200, 255] {
            let cut = qq_graph::Cut::from_basis_index(8, z).value(&g);
            assert!((model.eval_basis(z) - cut).abs() < 1e-12, "z = {z}");
        }
    }

    #[test]
    fn model_constant_is_half_total_weight() {
        let g = generators::complete(5);
        let model = CostModel::from_maxcut(&g);
        assert!((model.constant - 5.0).abs() < 1e-12);
        assert_eq!(model.terms.len(), 10);
    }

    #[test]
    fn ansatz_structure_naive() {
        let g = generators::ring(4);
        let model = CostModel::from_maxcut(&g);
        let params = AnsatzParams::new(vec![0.1, 0.2], vec![0.3, 0.4]);
        let c = Synthesizer::new(Preference::None).qaoa_ansatz(&model, &params);
        // 4 H + 2 layers × (4 rzz + 4 rx) = 20 gates (+ 2 global phases)
        assert_eq!(c.gate_count(), 20);
        assert_eq!(c.two_qubit_count(), 8);
    }

    #[test]
    fn depth_preference_reduces_depth() {
        let g = generators::complete(8);
        let model = CostModel::from_maxcut(&g);
        let params = AnsatzParams::new(vec![0.1], vec![0.2]);
        let naive = Synthesizer::new(Preference::None).qaoa_ansatz(&model, &params);
        let opt = Synthesizer::new(Preference::Depth).qaoa_ansatz(&model, &params);
        assert!(
            opt.depth() < naive.depth(),
            "optimized {} vs naive {}",
            opt.depth(),
            naive.depth()
        );
        // K8 cost layer can execute in 7 colors; +1 H layer +1 mixer layer
        assert!(opt.depth() <= 9, "depth = {}", opt.depth());
    }

    #[test]
    fn params_roundtrip_flat_vector() {
        let p = AnsatzParams::new(vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6]);
        let v = p.to_vec();
        assert_eq!(AnsatzParams::from_vec(3, &v), p);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_params_panic() {
        AnsatzParams::new(vec![0.1], vec![0.2, 0.3]);
    }
}
