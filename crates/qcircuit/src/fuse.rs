//! Gate fusion: lower a [`Circuit`] into a [`FusedProgram`] of meta-ops
//! that the simulator executes in far fewer state sweeps.
//!
//! The statevector hot path is memory-bound: every per-gate kernel walks
//! all `2^n` amplitudes once, so a p-layer QAOA ansatz over m edges costs
//! `p·(m + n) + n` full passes even though most of those gates commute.
//! Fusion collapses two kinds of runs (the same runs
//! [`crate::passes::schedule_commuting_layers`] exploits for depth):
//!
//! * **Diagonal runs** — maximal stretches of gates diagonal in the
//!   computational basis ([`Gate::is_diagonal`]: `Rz`, `Rzz`, `Cz`,
//!   global phase). Each gate contributes parity-phase terms
//!   `coef·(−1)^popcount(idx & mask)`; accumulating the terms turns the
//!   whole run into **one** sweep that evaluates the summed phase per
//!   amplitude. The paper's QAOA cost layer `e^{−iγC}` is exactly such a
//!   run, so a layer of `m` RZZ gates becomes a single pass.
//! * **One-qubit walls** — maximal stretches of non-diagonal
//!   single-qubit gates (`H`, `X`, `Rx`, `Ry`). Gates on distinct qubits
//!   commute; same-qubit neighbours fold by 2×2 matrix product. The run
//!   becomes one cache-blocked sweep applying an independent [`Mat2`]
//!   per touched qubit — the mixer wall `RX(2β)^{⊗n}` is one pass
//!   instead of `n`.
//!
//! Anything else (`Cnot`) stays [`FusedOp::Unfused`] and executes through
//! the ordinary per-gate kernel. Fusion never reorders across run
//! boundaries, so correctness needs only within-run commutativity.
//!
//! Determinism note: the fused diagonal sweep is a pure per-amplitude
//! function (no cross-amplitude reduction), so its output is bit-identical
//! under any chunking/thread count — the executor's `PAR_GRAIN` chunk
//! boundaries stay fixed and the fused path inherits the repo's
//! determinism contract. Fused and unfused paths differ only by ~1 ulp
//! rounding (different operation order) and are verified equivalent to
//! 1e-9 overlap in `tests/fusion_equivalence.rs`.

use std::collections::BTreeMap;
use std::f64::consts::FRAC_PI_4;

use crate::ir::{Circuit, Gate};
use qq_sim::gates::{self, Mat2};
use qq_sim::DiagTerm;

/// One fused meta-operation.
#[derive(Debug, Clone, PartialEq)]
pub enum FusedOp {
    /// A run of commuting diagonal gates, executed as one sweep that
    /// multiplies each amplitude by `e^{i·φ(idx)}` with
    /// `φ(idx) = phase0 + Σ coef·(−1)^popcount(idx & mask)`.
    DiagonalBlock {
        /// Index-independent phase offset.
        phase0: f64,
        /// Parity-phase terms, sorted by mask (deterministic order).
        terms: Vec<DiagTerm>,
        /// Source gates folded into this block.
        gates: usize,
    },
    /// A run of non-diagonal one-qubit gates, one folded `Mat2` per
    /// touched qubit, executed as one cache-blocked sweep.
    OneQubitWall {
        /// Per-qubit unitaries, sorted by qubit index.
        mats: Vec<(usize, Mat2)>,
        /// Source gates folded into this wall.
        gates: usize,
    },
    /// A gate the fuser does not handle; executed by its per-gate kernel.
    Unfused(Gate),
}

/// A circuit lowered into fused meta-ops.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedProgram {
    num_qubits: usize,
    ops: Vec<FusedOp>,
    source_gates: usize,
}

impl FusedProgram {
    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Meta-ops in program order.
    pub fn ops(&self) -> &[FusedOp] {
        &self.ops
    }

    /// Gates in the source circuit (including global phases).
    pub fn source_gates(&self) -> usize {
        self.source_gates
    }

    /// Number of diagonal blocks.
    pub fn diag_blocks(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, FusedOp::DiagonalBlock { .. })).count()
    }

    /// Number of one-qubit walls.
    pub fn walls(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, FusedOp::OneQubitWall { .. })).count()
    }

    /// Number of gates left unfused.
    pub fn unfused_gates(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, FusedOp::Unfused(_))).count()
    }
}

/// Accumulates a diagonal run into `phase0` + parity-phase terms.
#[derive(Default)]
struct DiagBuilder {
    phase0: f64,
    terms: BTreeMap<u64, f64>,
    gates: usize,
}

impl DiagBuilder {
    fn add_term(&mut self, mask: u64, coef: f64) {
        *self.terms.entry(mask).or_insert(0.0) += coef;
    }

    /// Fold one diagonal gate. Conventions match the per-gate kernels:
    /// `Rz(θ) = diag(e^{−iθ/2}, e^{+iθ/2})` ⇒ term `(1<<q, −θ/2)`;
    /// `Rzz(θ)` phases by `−θ/2·z_a z_b` ⇒ term `(mask_a|mask_b, −θ/2)`;
    /// `Cz = e^{iπ/4}·e^{−i(π/4)(Z_a+Z_b−Z_aZ_b)}` expands to three terms.
    fn push(&mut self, g: Gate) {
        match g {
            Gate::Rz(q, t) => self.add_term(1u64 << q, -t / 2.0),
            Gate::Rzz(a, b, t) => self.add_term((1u64 << a) | (1u64 << b), -t / 2.0),
            Gate::Cz(a, b) => {
                self.phase0 += FRAC_PI_4;
                self.add_term(1u64 << a, -FRAC_PI_4);
                self.add_term(1u64 << b, -FRAC_PI_4);
                self.add_term((1u64 << a) | (1u64 << b), FRAC_PI_4);
            }
            Gate::GlobalPhase(p) => self.phase0 += p,
            _ => unreachable!("non-diagonal gate pushed into DiagBuilder"),
        }
        self.gates += 1;
    }

    fn flush(&mut self, ops: &mut Vec<FusedOp>) {
        if self.gates == 0 {
            return;
        }
        let terms: Vec<DiagTerm> = self
            .terms
            .iter()
            .filter(|(_, &coef)| coef != 0.0)
            .map(|(&mask, &coef)| DiagTerm { mask, coef })
            .collect();
        // exact cancellation (e.g. Rz(θ)·Rz(−θ)) can leave an identity
        // block; skip the sweep entirely in that case
        if !terms.is_empty() || self.phase0 != 0.0 {
            ops.push(FusedOp::DiagonalBlock { phase0: self.phase0, terms, gates: self.gates });
        }
        self.phase0 = 0.0;
        self.terms.clear();
        self.gates = 0;
    }
}

/// Accumulates a run of non-diagonal one-qubit gates into one folded
/// `Mat2` per qubit, kept in first-touch order while building.
#[derive(Default)]
struct WallBuilder {
    mats: Vec<(usize, Mat2)>,
    gates: usize,
}

impl WallBuilder {
    fn push(&mut self, q: usize, m: Mat2) {
        match self.mats.iter_mut().find(|(p, _)| *p == q) {
            // later gate multiplies from the left: U_total = U_new · U_old
            Some((_, acc)) => *acc = gates::mat_mul(&m, acc),
            None => self.mats.push((q, m)),
        }
        self.gates += 1;
    }

    fn flush(&mut self, ops: &mut Vec<FusedOp>) {
        if self.gates == 0 {
            return;
        }
        let mut mats = std::mem::take(&mut self.mats);
        mats.sort_by_key(|&(q, _)| q);
        ops.push(FusedOp::OneQubitWall { mats, gates: self.gates });
        self.gates = 0;
    }
}

/// Lower a circuit into fused meta-ops.
///
/// Greedy single pass: each gate routes to the diagonal builder, the wall
/// builder, or `Unfused`; switching category flushes the open run, so
/// program order across runs is preserved exactly.
pub fn fuse(c: &Circuit) -> FusedProgram {
    let mut ops = Vec::new();
    let mut diag = DiagBuilder::default();
    let mut wall = WallBuilder::default();
    for &g in c.gates() {
        if g.is_diagonal() {
            wall.flush(&mut ops);
            diag.push(g);
            continue;
        }
        match g {
            Gate::H(q) => {
                diag.flush(&mut ops);
                wall.push(q as usize, gates::h_matrix());
            }
            Gate::X(q) => {
                diag.flush(&mut ops);
                wall.push(q as usize, gates::x_matrix());
            }
            Gate::Rx(q, t) => {
                diag.flush(&mut ops);
                wall.push(q as usize, gates::rx_matrix(t));
            }
            Gate::Ry(q, t) => {
                diag.flush(&mut ops);
                wall.push(q as usize, gates::ry_matrix(t));
            }
            other => {
                diag.flush(&mut ops);
                wall.flush(&mut ops);
                ops.push(FusedOp::Unfused(other));
            }
        }
    }
    diag.flush(&mut ops);
    wall.flush(&mut ops);
    FusedProgram { num_qubits: c.num_qubits(), ops, source_gates: c.gates().len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{AnsatzParams, CostModel, Preference, Synthesizer};
    use qq_graph::generators;

    #[test]
    fn qaoa_ansatz_fuses_to_expected_shape() {
        // p layers ⇒ 1 initial H wall + p·(diag block + mixer wall)
        let g = generators::erdos_renyi(8, 0.5, generators::WeightKind::Random01, 3);
        let model = CostModel::from_maxcut(&g);
        let p = 3;
        let params = AnsatzParams::new(vec![0.3; p], vec![0.2; p]);
        let c = Synthesizer::new(Preference::Depth).qaoa_ansatz(&model, &params);
        let f = fuse(&c);
        assert_eq!(f.diag_blocks(), p);
        assert_eq!(f.walls(), p + 1);
        assert_eq!(f.unfused_gates(), 0);
        assert_eq!(f.ops().len(), 2 * p + 1);
        assert_eq!(f.source_gates(), c.gates().len());
    }

    #[test]
    fn diagonal_run_becomes_single_block() {
        let mut c = Circuit::new(3);
        c.push(Gate::Rz(0, 0.3)).unwrap();
        c.push(Gate::Rzz(0, 1, 0.4)).unwrap();
        c.push(Gate::Cz(1, 2)).unwrap();
        c.push(Gate::GlobalPhase(0.1)).unwrap();
        let f = fuse(&c);
        assert_eq!(f.ops().len(), 1);
        let FusedOp::DiagonalBlock { phase0, terms, gates } = &f.ops()[0] else {
            panic!("expected a diagonal block");
        };
        assert_eq!(*gates, 4);
        assert!((phase0 - (0.1 + FRAC_PI_4)).abs() < 1e-15);
        // masks present: 1 (rz + cz on q0? no — cz hits q1,q2), check set
        let masks: Vec<u64> = terms.iter().map(|t| t.mask).collect();
        assert_eq!(masks, vec![0b001, 0b010, 0b011, 0b100, 0b110]);
    }

    #[test]
    fn same_mask_terms_accumulate_and_cancel() {
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(0, 0.5)).unwrap();
        c.push(Gate::Rz(0, -0.5)).unwrap();
        let f = fuse(&c);
        // exact cancellation ⇒ identity block elided entirely
        assert!(f.ops().is_empty());
    }

    #[test]
    fn wall_folds_same_qubit_runs() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0)).unwrap();
        c.push(Gate::Rx(0, 0.4)).unwrap();
        c.push(Gate::Ry(1, 0.2)).unwrap();
        let f = fuse(&c);
        assert_eq!(f.ops().len(), 1);
        let FusedOp::OneQubitWall { mats, gates } = &f.ops()[0] else {
            panic!("expected a wall");
        };
        assert_eq!(*gates, 3);
        assert_eq!(mats.len(), 2);
        assert_eq!(mats[0].0, 0);
        assert_eq!(mats[1].0, 1);
        // folded q0 matrix must equal Rx(0.4)·H and stay unitary
        let expect = gates::mat_mul(&gates::rx_matrix(0.4), &gates::h_matrix());
        for (a, b) in mats[0].1.iter().zip(expect.iter()) {
            assert!((*a - *b).norm_sqr() < 1e-24);
        }
        assert!(gates::is_unitary(&mats[0].1, 1e-12));
    }

    #[test]
    fn cnot_breaks_runs() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0)).unwrap();
        c.push(Gate::Cnot(0, 1)).unwrap();
        c.push(Gate::H(0)).unwrap();
        let f = fuse(&c);
        assert_eq!(f.ops().len(), 3);
        assert!(matches!(f.ops()[0], FusedOp::OneQubitWall { .. }));
        assert!(matches!(f.ops()[1], FusedOp::Unfused(Gate::Cnot(0, 1))));
        assert!(matches!(f.ops()[2], FusedOp::OneQubitWall { .. }));
    }

    #[test]
    fn empty_circuit_fuses_to_nothing() {
        let f = fuse(&Circuit::new(4));
        assert!(f.ops().is_empty());
        assert_eq!(f.source_gates(), 0);
    }
}
