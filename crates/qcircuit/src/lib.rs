//! # qq-circuit — circuit IR and synthesis engine
//!
//! The paper builds its QAOA circuits with the Classiq platform: a
//! high-level combinatorial model goes in, an optimized gate-level circuit
//! comes out, subject to optimization preferences (depth, gate count, …).
//! This crate is that layer, rebuilt:
//!
//! * [`ir`] — the gate-level intermediate representation with depth and
//!   gate-count metrics;
//! * [`synth`] — high-level models ([`synth::CostModel`], built from a
//!   MaxCut graph) lowered to QAOA ansatz circuits;
//! * [`passes`] — optimization passes: commuting-layer depth scheduling
//!   (greedy edge coloring of the cost terms), rotation fusion,
//!   inverse-pair cancellation;
//! * [`fuse`] — lowering to fused meta-ops: a run of commuting diagonal
//!   gates becomes one parity-phase sweep, a run of one-qubit gates
//!   becomes one cache-blocked wall pass;
//! * [`exec`] — execution on the `qq-sim` backends (fused by default,
//!   per-gate reference paths kept).
//!
//! ```
//! use qq_circuit::prelude::*;
//! use qq_graph::generators;
//!
//! let g = generators::ring(6);
//! let model = CostModel::from_maxcut(&g);
//! let params = AnsatzParams::new(vec![0.4], vec![0.7]);
//! let circuit = Synthesizer::new(Preference::Depth).qaoa_ansatz(&model, &params);
//! let state = qq_circuit::exec::run_statevector(&circuit);
//! assert!((state.norm_sqr() - 1.0).abs() < 1e-10);
//! ```

#![forbid(unsafe_code)]

pub mod exec;
pub mod fuse;
pub mod ir;
pub mod passes;
pub mod synth;

pub use exec::FusedRunStats;
pub use fuse::{fuse, FusedOp, FusedProgram};
pub use ir::{Circuit, CircuitError, Gate};
pub use synth::{AnsatzParams, CostModel, Preference, Synthesizer};

/// Commonly used items.
pub mod prelude {
    pub use crate::exec::{run_statevector, run_statevector_unfused, FusedRunStats};
    pub use crate::fuse::{fuse, FusedOp, FusedProgram};
    pub use crate::ir::{Circuit, Gate};
    pub use crate::synth::{AnsatzParams, CostModel, Preference, Synthesizer};
}
