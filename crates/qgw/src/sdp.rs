//! Burer–Monteiro low-rank solver for the MaxCut SDP.
//!
//! The MaxCut SDP is
//!
//! ```text
//! max  Σ_{(i,j)∈E} w_ij (1 − X_ij)/2    s.t.  X ⪰ 0, X_ii = 1.
//! ```
//!
//! Factorizing `X = V Vᵀ` with unit-norm rows turns the constraint set into
//! a product of spheres; minimizing `f(V) = Σ w_ij ⟨v_i, v_j⟩` by exact row
//! updates `v_i ← −g_i/‖g_i‖`, `g_i = Σ_j w_ij v_j` decreases `f`
//! monotonically. With rank `k ≥ ⌈√(2n)⌉` second-order critical points are
//! global optima (Boumal–Voroninski–Bandeira), so coordinate descent with a
//! seeded random start recovers the SDP value to solver tolerance on the
//! instance families used here.

use qq_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SDP solver settings.
#[derive(Debug, Clone, Copy)]
pub struct SdpConfig {
    /// Factorization rank; `None` → `⌈√(2n)⌉ + 1` (capped at `n.max(1)`).
    pub rank: Option<usize>,
    /// Maximum coordinate-descent sweeps.
    pub max_sweeps: usize,
    /// Relative objective-change tolerance for convergence.
    pub tol: f64,
    /// Seed for the random initial vectors.
    pub seed: u64,
}

impl Default for SdpConfig {
    fn default() -> Self {
        SdpConfig { rank: None, max_sweeps: 500, tol: 1e-10, seed: 0x5d9 }
    }
}

/// Solver output.
#[derive(Debug, Clone)]
pub struct SdpSolution {
    /// Unit vectors, one row per node.
    pub vectors: Vec<Vec<f64>>,
    /// SDP objective `Σ w_ij (1 − ⟨v_i, v_j⟩)/2` — the cut upper bound.
    pub objective: f64,
    /// Sweeps performed.
    pub sweeps: usize,
    /// True if the relative change fell below tolerance.
    pub converged: bool,
}

/// Solve the MaxCut SDP relaxation of `g`.
pub fn solve_maxcut_sdp(g: &Graph, cfg: &SdpConfig) -> SdpSolution {
    let n = g.num_nodes();
    if n == 0 {
        return SdpSolution { vectors: Vec::new(), objective: 0.0, sweeps: 0, converged: true };
    }
    let k = effective_rank(n, cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // random unit rows
    let v: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            let mut row: Vec<f64> = (0..k).map(|_| rng.gen::<f64>() - 0.5).collect();
            normalize(&mut row);
            row
        })
        .collect();
    solve_maxcut_sdp_from(g, cfg, v)
}

/// The factorization rank used for `n` nodes under `cfg`.
pub fn effective_rank(n: usize, cfg: &SdpConfig) -> usize {
    cfg.rank.unwrap_or_else(|| ((2.0 * n as f64).sqrt().ceil() as usize) + 1).clamp(1, n.max(1))
}

/// Run coordinate descent from caller-supplied unit rows (one per node).
///
/// Because each row update is the exact minimizer in that row, the Ising
/// energy is monotone non-increasing — equivalently the reported SDP
/// objective is monotone non-decreasing from the initial point. Warm
/// starting from a cut's ±1 rank-1 embedding therefore yields an
/// objective at least that cut's value, which is how
/// [`crate::goemans_williamson`] repairs an under-converged bound.
pub fn solve_maxcut_sdp_from(g: &Graph, cfg: &SdpConfig, init: Vec<Vec<f64>>) -> SdpSolution {
    let n = g.num_nodes();
    if n == 0 {
        return SdpSolution { vectors: Vec::new(), objective: 0.0, sweeps: 0, converged: true };
    }
    assert_eq!(init.len(), n, "one row per node required");
    let k = init.first().map(Vec::len).unwrap_or(0).max(1);
    let mut v = init;

    let mut prev_energy = ising_energy(g, &v);
    let mut sweeps = 0;
    let mut converged = false;
    let scale = g.edges().iter().map(|e| e.w.abs()).sum::<f64>().max(1e-300);

    while sweeps < cfg.max_sweeps {
        sweeps += 1;
        for i in 0..n {
            let mut grad = vec![0.0; k];
            for &(j, w) in g.neighbors(i as u32) {
                let vj = &v[j as usize];
                for (gslot, &x) in grad.iter_mut().zip(vj) {
                    *gslot += w * x;
                }
            }
            let gn = grad.iter().map(|x| x * x).sum::<f64>().sqrt();
            if gn > 1e-14 {
                let inv = -1.0 / gn;
                for (slot, gval) in v[i].iter_mut().zip(&grad) {
                    *slot = gval * inv;
                }
            }
        }
        let energy = ising_energy(g, &v);
        if (prev_energy - energy).abs() <= cfg.tol * scale {
            converged = true;
            prev_energy = energy;
            break;
        }
        prev_energy = energy;
    }

    let objective = (g.total_weight() - prev_energy) / 2.0;
    SdpSolution { vectors: v, objective, sweeps, converged }
}

/// `Σ w_ij ⟨v_i, v_j⟩` — the quantity coordinate descent minimizes.
fn ising_energy(g: &Graph, v: &[Vec<f64>]) -> f64 {
    g.edges().iter().map(|e| e.w * dot(&v[e.u as usize], &v[e.v as usize])).sum()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn normalize(v: &mut [f64]) {
    let n = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if n > 1e-300 {
        for x in v.iter_mut() {
            *x /= n;
        }
    } else if let Some(first) = v.first_mut() {
        *first = 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_graph::generators::{self, WeightKind};

    #[test]
    fn rows_stay_unit_norm() {
        let g = generators::erdos_renyi(20, 0.3, WeightKind::Random01, 1);
        let sol = solve_maxcut_sdp(&g, &SdpConfig::default());
        for row in &sol.vectors {
            let n: f64 = row.iter().map(|x| x * x).sum();
            assert!((n - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn objective_bounded_by_total_positive_weight() {
        let g = generators::erdos_renyi(25, 0.3, WeightKind::Uniform, 2);
        let sol = solve_maxcut_sdp(&g, &SdpConfig::default());
        // bound lies in [W/2, W] for non-negative weights
        assert!(sol.objective <= g.total_weight() + 1e-9);
        assert!(sol.objective >= g.total_weight() / 2.0 - 1e-9);
    }

    #[test]
    fn bipartite_sdp_is_tight() {
        let g = generators::star(9);
        let sol = solve_maxcut_sdp(&g, &SdpConfig::default());
        assert!((sol.objective - 8.0).abs() < 1e-5, "objective {}", sol.objective);
        assert!(sol.converged);
    }

    #[test]
    fn energy_monotone_under_updates() {
        // one manual sweep must not increase the energy
        let g = generators::erdos_renyi(15, 0.4, WeightKind::Random01, 8);
        let a = solve_maxcut_sdp(&g, &SdpConfig { max_sweeps: 1, ..SdpConfig::default() });
        let b = solve_maxcut_sdp(&g, &SdpConfig { max_sweeps: 5, ..SdpConfig::default() });
        let c = solve_maxcut_sdp(&g, &SdpConfig { max_sweeps: 100, ..SdpConfig::default() });
        assert!(b.objective >= a.objective - 1e-9);
        assert!(c.objective >= b.objective - 1e-9);
    }

    #[test]
    fn rank_one_reduces_to_local_search_like_solution() {
        // k = 1 forces ±1 vectors: objective equals an actual cut value
        let g = generators::erdos_renyi(12, 0.4, WeightKind::Uniform, 4);
        let sol = solve_maxcut_sdp(&g, &SdpConfig { rank: Some(1), ..SdpConfig::default() });
        let cut = qq_graph::Cut::from_fn(12, |v| sol.vectors[v as usize][0] < 0.0);
        assert!((sol.objective - cut.value(&g)).abs() < 1e-6);
    }

    #[test]
    fn isolated_nodes_are_harmless() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1.0).unwrap();
        let sol = solve_maxcut_sdp(&g, &SdpConfig::default());
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_graph() {
        let sol = solve_maxcut_sdp(&Graph::new(0), &SdpConfig::default());
        assert_eq!(sol.objective, 0.0);
        assert!(sol.converged);
    }

    use qq_graph::Graph;
}
