//! # qq-gw — Goemans–Williamson MaxCut
//!
//! The classical comparator of the whole paper: solve the MaxCut SDP
//! relaxation, then round with random hyperplanes (0.878-approximation).
//!
//! The paper solves the SDP with `cvxpy`/SCS; that route crashes beyond
//! 2000 nodes (an Eigen triplet-representation issue) and scales poorly.
//! Here the SDP is solved with the **Burer–Monteiro low-rank
//! factorization**: parameterize `X = V Vᵀ` with unit rows `v_i ∈ R^k`,
//! `k = ⌈√(2n)⌉ + 1`, and run row coordinate descent
//! `v_i ← −normalize(Σ_j w_ij v_j)` — each update is the exact minimizer
//! of the objective in `v_i`, so the sweep monotonically decreases
//! `Σ w_ij ⟨v_i, v_j⟩`. Above the Barvinok–Pataki rank bound the landscape
//! has no spurious local optima, so this reaches the SDP optimum in
//! practice while handling the paper's 2500-node instances in seconds.
//!
//! Rounding matches the paper: 30 hyperplane slicings, reporting the
//! *average* cut (their comparison statistic) as well as the best.
//!
//! ```
//! use qq_graph::generators;
//! use qq_gw::{goemans_williamson, GwConfig};
//!
//! let g = generators::erdos_renyi(24, 0.3, generators::WeightKind::Uniform, 5);
//! let res = goemans_williamson(&g, &GwConfig::default());
//! assert!(res.best.value <= res.sdp_bound + 1e-6); // bound certifies the cut
//! ```

#![forbid(unsafe_code)]

pub mod rounding;
pub mod sdp;

pub use rounding::{hyperplane_rounding, RoundingOutcome};
pub use sdp::{solve_maxcut_sdp, SdpConfig, SdpSolution};

use qq_classical::CutResult;
use qq_graph::{Graph, MaxCutSolver, SolverError};

/// End-to-end GW configuration.
#[derive(Debug, Clone, Copy)]
pub struct GwConfig {
    /// SDP solver settings.
    pub sdp: SdpConfig,
    /// Number of hyperplane slicings (paper: 30).
    pub slices: usize,
    /// Seed for the rounding hyperplanes.
    pub seed: u64,
}

impl Default for GwConfig {
    fn default() -> Self {
        GwConfig { sdp: SdpConfig::default(), slices: 30, seed: 0x6777 }
    }
}

/// Result of the full GW pipeline.
#[derive(Debug, Clone)]
pub struct GwResult {
    /// Best cut over all slicings.
    pub best: CutResult,
    /// Mean cut value over the slicings — the paper's comparison value.
    pub mean_value: f64,
    /// Relaxation objective at the best factorization found — equals the
    /// SDP optimum (a certified upper bound on MaxCut) when descent
    /// converges at a rank above the Barvinok–Pataki bound, and is always
    /// at least `best.value`.
    pub sdp_bound: f64,
    /// Coordinate-descent sweeps used.
    pub sweeps: usize,
    /// Whether the SDP converged within tolerance.
    pub converged: bool,
}

/// [`MaxCutSolver`] backend running the full GW pipeline, so the
/// classical comparator plugs into the QAOA² orchestrator and registry.
#[derive(Debug, Clone, Copy, Default)]
pub struct GwSolver {
    /// Pipeline configuration.
    pub config: GwConfig,
}

impl MaxCutSolver for GwSolver {
    fn label(&self) -> &str {
        "gw"
    }

    fn solve(&self, g: &Graph, seed: u64) -> Result<CutResult, SolverError> {
        let cfg = GwConfig { seed: self.config.seed ^ seed, ..self.config };
        Ok(goemans_williamson(g, &cfg).best)
    }
}

/// Run Goemans–Williamson: SDP relaxation + hyperplane rounding.
pub fn goemans_williamson(g: &Graph, cfg: &GwConfig) -> GwResult {
    let sol = solve_maxcut_sdp(g, &cfg.sdp);
    let rounded = hyperplane_rounding(g, &sol.vectors, cfg.slices, cfg.seed);
    // Coordinate descent approaches the SDP optimum from below, so an
    // under-converged (or rank-deficient-stalled) run can report a
    // "bound" that a lucky rounding beats. Restart descent from the
    // incumbent cut's embedding, *perturbed off the rank-1 subspace* —
    // a pure ±e0 start would keep every gradient in span(e0) and reduce
    // descent to sign flips. The restart's objective starts within
    // O(ε²)·W of the cut value and descent lifts it monotonically; the
    // exact rank-1 embedding (objective = cut value) remains a fallback
    // candidate, so `best.value <= sdp_bound` holds unconditionally.
    let mut sweeps = sol.sweeps;
    let mut sol = sol;
    if rounded.best.value > sol.objective {
        let n = g.num_nodes();
        let k = sdp::effective_rank(n, &cfg.sdp);
        let eps = 0.05;
        let perturbed = (0..n)
            .map(|i| {
                // deterministic low-discrepancy perturbation; any fixed
                // off-axis direction breaks the rank-1 trap
                let mut row: Vec<f64> = (0..k)
                    .map(|j| eps * (((i * 31 + j * 17 + 7) % 13) as f64 / 13.0 - 0.5))
                    .collect();
                row[0] += rounded.best.cut.spin(i as u32);
                let norm = row.iter().map(|x| x * x).sum::<f64>().sqrt();
                row.iter_mut().for_each(|x| *x /= norm);
                row
            })
            .collect();
        let polished = sdp::solve_maxcut_sdp_from(g, &cfg.sdp, perturbed);
        sweeps += polished.sweeps;
        if polished.objective > sol.objective {
            sol = polished;
        }
        if sol.objective < rounded.best.value {
            // fall back to the exact rank-1 embedding of the cut, whose
            // relaxation objective is exactly the cut value
            let vectors = (0..n)
                .map(|i| {
                    let mut row = vec![0.0; k];
                    row[0] = rounded.best.cut.spin(i as u32);
                    row
                })
                .collect();
            sol = sdp::SdpSolution {
                vectors,
                objective: rounded.best.value,
                sweeps: 0,
                converged: false,
            };
        }
    }
    GwResult {
        best: rounded.best,
        mean_value: rounded.mean_value,
        sdp_bound: sol.objective,
        sweeps,
        converged: sol.converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_classical::exact_maxcut;
    use qq_graph::generators::{self, WeightKind};

    #[test]
    fn bound_dominates_exact_optimum() {
        for seed in 0..4 {
            let g = generators::erdos_renyi(14, 0.4, WeightKind::Random01, seed);
            let res = goemans_williamson(&g, &GwConfig::default());
            let exact = exact_maxcut(&g);
            assert!(
                res.sdp_bound >= exact.value - 1e-6,
                "seed {seed}: bound {} < optimum {}",
                res.sdp_bound,
                exact.value
            );
        }
    }

    #[test]
    fn approximation_ratio_holds_empirically() {
        // E[cut] ≥ 0.878·OPT; with 30 slicings the best is comfortably above.
        for seed in 0..4 {
            let g = generators::erdos_renyi(16, 0.35, WeightKind::Uniform, 100 + seed);
            let res = goemans_williamson(&g, &GwConfig::default());
            let exact = exact_maxcut(&g);
            assert!(
                res.best.value >= 0.878 * exact.value,
                "seed {seed}: {} < 0.878·{}",
                res.best.value,
                exact.value
            );
        }
    }

    #[test]
    fn mean_never_exceeds_best() {
        let g = generators::erdos_renyi(20, 0.3, WeightKind::Random01, 9);
        let res = goemans_williamson(&g, &GwConfig::default());
        assert!(res.mean_value <= res.best.value + 1e-12);
    }

    #[test]
    fn solves_bipartite_optimally() {
        // Even ring: optimum n; SDP is tight and rounding recovers it.
        let g = generators::ring(16);
        let res = goemans_williamson(&g, &GwConfig::default());
        assert_eq!(res.best.value, 16.0);
        assert!((res.sdp_bound - 16.0).abs() < 1e-3, "bound {}", res.sdp_bound);
    }

    #[test]
    fn triangle_sdp_bound_is_nine_fourths() {
        // Known closed form: SDP value of unit K3 is 9/4.
        let g = generators::complete(3);
        let res = goemans_williamson(&g, &GwConfig::default());
        assert!((res.sdp_bound - 2.25).abs() < 1e-4, "bound {}", res.sdp_bound);
        assert_eq!(res.best.value, 2.0);
    }

    #[test]
    fn deterministic_given_seeds() {
        let g = generators::erdos_renyi(18, 0.3, WeightKind::Uniform, 3);
        let a = goemans_williamson(&g, &GwConfig::default());
        let b = goemans_williamson(&g, &GwConfig::default());
        assert_eq!(a.best.cut, b.best.cut);
        assert_eq!(a.sdp_bound, b.sdp_bound);
    }
}
