//! Random-hyperplane rounding (the GW step proper).
//!
//! Draw a standard-normal vector `r`, assign node `i` to side
//! `sign(⟨v_i, r⟩)`. Goemans–Williamson: the expected cut is at least
//! `0.878…` times the SDP objective. The paper applies 30 slicings and
//! *averages* the cut values for its comparisons; both the mean and the
//! best slice are returned.

use qq_classical::CutResult;
use qq_graph::{Cut, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of repeated hyperplane rounding.
#[derive(Debug, Clone)]
pub struct RoundingOutcome {
    /// Best cut over all slicings.
    pub best: CutResult,
    /// Mean cut value (the paper's statistic).
    pub mean_value: f64,
    /// Value of every slicing, in order.
    pub values: Vec<f64>,
}

/// Round SDP `vectors` with `slices` random hyperplanes.
pub fn hyperplane_rounding(
    g: &Graph,
    vectors: &[Vec<f64>],
    slices: usize,
    seed: u64,
) -> RoundingOutcome {
    assert!(slices >= 1, "need at least one slicing");
    assert_eq!(vectors.len(), g.num_nodes(), "one vector per node required");
    let k = vectors.first().map(Vec::len).unwrap_or(0);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut best: Option<CutResult> = None;
    let mut values = Vec::with_capacity(slices);
    for _ in 0..slices {
        let r: Vec<f64> = (0..k).map(|_| gaussian(&mut rng)).collect();
        let cut = Cut::from_fn(g.num_nodes(), |v| {
            vectors[v as usize].iter().zip(&r).map(|(a, b)| a * b).sum::<f64>() < 0.0
        });
        let cand = CutResult::new(cut, g);
        values.push(cand.value);
        if best.as_ref().map(|b| cand.value > b.value).unwrap_or(true) {
            best = Some(cand);
        }
    }
    let mean_value = values.iter().sum::<f64>() / values.len() as f64;
    // INVARIANT: slices >= 1 is asserted at entry, so the loop above
    // installs a candidate on its first iteration.
    RoundingOutcome { best: best.expect("slices >= 1"), mean_value, values }
}

/// Standard normal via Box–Muller (no `rand_distr` in the dependency set).
fn gaussian(rng: &mut StdRng) -> f64 {
    // u ∈ (0, 1]: guard the logarithm
    let u = 1.0 - rng.gen::<f64>();
    let v = rng.gen::<f64>();
    (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdp::{solve_maxcut_sdp, SdpConfig};
    use qq_graph::generators::{self, WeightKind};

    #[test]
    fn mean_is_average_of_values() {
        let g = generators::erdos_renyi(15, 0.4, WeightKind::Uniform, 3);
        let sol = solve_maxcut_sdp(&g, &SdpConfig::default());
        let out = hyperplane_rounding(&g, &sol.vectors, 30, 1);
        let mean = out.values.iter().sum::<f64>() / 30.0;
        assert!((out.mean_value - mean).abs() < 1e-12);
        assert_eq!(out.values.len(), 30);
    }

    #[test]
    fn best_is_max_of_values() {
        let g = generators::erdos_renyi(15, 0.4, WeightKind::Random01, 4);
        let sol = solve_maxcut_sdp(&g, &SdpConfig::default());
        let out = hyperplane_rounding(&g, &sol.vectors, 20, 2);
        let max = out.values.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(out.best.value, max);
    }

    #[test]
    fn antipodal_vectors_round_to_full_cut() {
        // hand-built tight SDP solution for a single edge
        let g = qq_graph::Graph::from_edges(2, [(0, 1, 1.0)]).unwrap();
        let vectors = vec![vec![1.0, 0.0], vec![-1.0, 0.0]];
        let out = hyperplane_rounding(&g, &vectors, 10, 7);
        // antipodal vectors are separated by every hyperplane
        assert!(out.values.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn gaussian_moments_sane() {
        let mut rng = StdRng::seed_from_u64(12);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn seeded_determinism() {
        let g = generators::erdos_renyi(12, 0.5, WeightKind::Uniform, 5);
        let sol = solve_maxcut_sdp(&g, &SdpConfig::default());
        let a = hyperplane_rounding(&g, &sol.vectors, 5, 99);
        let b = hyperplane_rounding(&g, &sol.vectors, 5, 99);
        assert_eq!(a.values, b.values);
    }
}
