//! Flat statevector storage.
//!
//! `2^n` amplitudes in one contiguous allocation. Single-qubit gates run in
//! parallel over gate-aligned blocks with rayon; diagonal gates (the entire
//! QAOA cost layer) run in parallel over arbitrary chunks because they touch
//! each amplitude exactly once.

use crate::complex::C64;
use crate::gates::{self, Mat2};
use crate::SimError;
use rayon::prelude::*;

/// Practical register ceiling for flat storage: 2^30 amplitudes = 16 GiB.
pub const MAX_QUBITS: usize = 30;

/// Amplitudes per parallel task for the gate kernels; 2^14 × 16 B =
/// 256 KiB ≈ L2-sized work items. Registers at or below this size run
/// inline (the vendored rayon's fixed split tree never splits below one
/// chunk, so small states pay no pool overhead). The value is a constant
/// — never derived from the worker count — which keeps chunk boundaries,
/// and therefore every floating-point reduction in the suite,
/// bit-identical at any `RAYON_NUM_THREADS` (DESIGN.md §10).
const PAR_GRAIN: usize = 1 << 14;

/// A flat `2^n`-amplitude statevector.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    amps: Vec<C64>,
    num_qubits: usize,
}

impl StateVector {
    /// `|0…0⟩` on `n` qubits.
    pub fn zero_state(n: usize) -> Self {
        // INVARIANT: documented precondition panic — n must not exceed
        // MAX_QUBITS; use try_zero_state for fallible construction.
        Self::try_zero_state(n).expect("register too large")
    }

    /// Fallible constructor for caller-supplied sizes.
    pub fn try_zero_state(n: usize) -> Result<Self, SimError> {
        if n > MAX_QUBITS {
            return Err(SimError::TooManyQubits { requested: n, max: MAX_QUBITS });
        }
        let mut amps = vec![C64::ZERO; 1usize << n];
        amps[0] = C64::ONE;
        Ok(StateVector { amps, num_qubits: n })
    }

    /// `H^{⊗n}|0…0⟩` — the uniform superposition every QAOA circuit starts
    /// from. Built directly (no gate applications needed).
    pub fn plus_state(n: usize) -> Self {
        let mut s = Self::zero_state(n);
        let amp = C64::real(1.0 / ((1usize << n) as f64).sqrt());
        s.amps.fill(amp);
        s
    }

    /// Construct from raw amplitudes (length must be a power of two).
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        assert!(amps.len().is_power_of_two(), "amplitude count must be 2^n");
        let num_qubits = amps.len().trailing_zeros() as usize;
        StateVector { amps, num_qubits }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Amplitude slice.
    #[inline]
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Mutable amplitude slice (used by circuit execution).
    #[inline]
    pub fn amplitudes_mut(&mut self) -> &mut [C64] {
        &mut self.amps
    }

    /// Squared norm; 1 for any valid quantum state.
    pub fn norm_sqr(&self) -> f64 {
        // REDUCTION: vendored fixed split tree — DEFAULT_GRAIN leaves,
        // partial sums combined in chunk-index order by execute_ordered.
        self.amps.par_iter().map(|a| a.norm_sqr()).sum()
    }

    /// Measurement probability of basis state `i`.
    #[inline]
    pub fn probability(&self, i: usize) -> f64 {
        self.amps[i].norm_sqr()
    }

    fn check_qubit(&self, q: usize) -> Result<(), SimError> {
        if q >= self.num_qubits {
            Err(SimError::QubitOutOfRange { qubit: q, num_qubits: self.num_qubits })
        } else {
            Ok(())
        }
    }

    /// Apply an arbitrary single-qubit unitary to qubit `q`.
    pub fn apply_1q(&mut self, q: usize, m: &Mat2) {
        // INVARIANT: documented precondition panic — callers must pass
        // qubit indices < num_qubits (see SimError::QubitOutOfRange).
        self.check_qubit(q).expect("qubit in range");
        let block = 1usize << (q + 1);
        if block >= self.amps.len() || self.amps.len() <= PAR_GRAIN {
            gates::apply_1q(&mut self.amps, q, m);
        } else {
            // blocks of 2^(q+1) are self-contained for a gate on qubit q
            self.amps
                .par_chunks_mut(block.max(PAR_GRAIN))
                .for_each(|chunk| gates::apply_1q(chunk, q, m));
        }
    }

    /// Hadamard on qubit `q`.
    pub fn h(&mut self, q: usize) {
        self.apply_1q(q, &gates::h_matrix());
    }

    /// Pauli-X on qubit `q`.
    pub fn x(&mut self, q: usize) {
        self.apply_1q(q, &gates::x_matrix());
    }

    /// `RX(θ)` on qubit `q` — the QAOA mixer gate.
    pub fn rx(&mut self, q: usize, theta: f64) {
        self.apply_1q(q, &gates::rx_matrix(theta));
    }

    /// `RY(θ)` on qubit `q`.
    pub fn ry(&mut self, q: usize, theta: f64) {
        self.apply_1q(q, &gates::ry_matrix(theta));
    }

    /// `RZ(θ)` on qubit `q` (diagonal fast path).
    pub fn rz(&mut self, q: usize, theta: f64) {
        // INVARIANT: documented precondition panic — callers must pass
        // qubit indices < num_qubits (see SimError::QubitOutOfRange).
        self.check_qubit(q).expect("qubit in range");
        self.par_diag(|amps, base| gates::apply_rz(amps, base, q, theta));
    }

    /// `RZZ(θ)` between `qa` and `qb` — the QAOA cost gate.
    pub fn rzz(&mut self, qa: usize, qb: usize, theta: f64) {
        // INVARIANT: documented precondition panic — callers must pass
        // qubit indices < num_qubits (see SimError::QubitOutOfRange).
        self.check_qubit(qa).expect("qubit in range");
        // INVARIANT: documented precondition panic — callers must pass
        // qubit indices < num_qubits (see SimError::QubitOutOfRange).
        self.check_qubit(qb).expect("qubit in range");
        assert_ne!(qa, qb, "rzz needs two distinct qubits");
        self.par_diag(|amps, base| gates::apply_rzz(amps, base, qa, qb, theta));
    }

    /// Controlled-Z between `qa` and `qb`.
    pub fn cz(&mut self, qa: usize, qb: usize) {
        // INVARIANT: documented precondition panic — callers must pass
        // qubit indices < num_qubits (see SimError::QubitOutOfRange).
        self.check_qubit(qa).expect("qubit in range");
        // INVARIANT: documented precondition panic — callers must pass
        // qubit indices < num_qubits (see SimError::QubitOutOfRange).
        self.check_qubit(qb).expect("qubit in range");
        self.par_diag(|amps, base| gates::apply_cz(amps, base, qa, qb));
    }

    /// CNOT with control `c`, target `t` — block-parallel pair swaps,
    /// like [`StateVector::apply_1q`]: blocks of `2^(max(c,t)+1)`
    /// amplitudes are self-contained for the swap pattern.
    pub fn cnot(&mut self, c: usize, t: usize) {
        // INVARIANT: documented precondition panic — callers must pass
        // qubit indices < num_qubits (see SimError::QubitOutOfRange).
        self.check_qubit(c).expect("qubit in range");
        // INVARIANT: documented precondition panic — callers must pass
        // qubit indices < num_qubits (see SimError::QubitOutOfRange).
        self.check_qubit(t).expect("qubit in range");
        assert_ne!(c, t, "cnot needs two distinct qubits");
        let block = 1usize << (c.max(t) + 1);
        if block >= self.amps.len() || self.amps.len() <= PAR_GRAIN {
            gates::apply_cnot(&mut self.amps, c, t);
        } else {
            self.amps
                .par_chunks_mut(block.max(PAR_GRAIN))
                .for_each(|chunk| gates::apply_cnot(chunk, c, t));
        }
    }

    /// Global phase `e^{iφ}`.
    pub fn global_phase(&mut self, phi: f64) {
        self.par_diag(|amps, _| gates::apply_global_phase(amps, phi));
    }

    /// Apply a fused run of diagonal gates (see [`gates::DiagTerm`]) —
    /// always exactly **one** sweep over the state, however many gates
    /// the run folded.
    pub fn apply_diag_block(&mut self, phase0: f64, terms: &[gates::DiagTerm]) {
        let dim = 1u64 << self.num_qubits;
        for t in terms {
            assert!(t.mask < dim, "diagonal term mask exceeds the register");
        }
        let plan = gates::DiagPlan::new(phase0, terms);
        self.par_diag(|amps, base| plan.apply(amps, base));
    }

    /// Apply a wall of independent single-qubit unitaries (distinct
    /// qubits) in as few sweeps as possible, returning the number of
    /// full-state sweeps performed.
    ///
    /// Gates whose `2^(q+1)` block fits inside a `PAR_GRAIN` chunk are
    /// applied back-to-back on each chunk while it is cache-resident —
    /// one memory sweep for that whole sub-wall, on the same fixed chunk
    /// boundaries as every other kernel. The few gates above the chunk
    /// size go through the per-gate block path.
    pub fn apply_1q_wall(&mut self, mats: &[(usize, Mat2)]) -> usize {
        for &(q, _) in mats {
            // INVARIANT: documented precondition panic — callers must
            // pass qubit indices < num_qubits.
            self.check_qubit(q).expect("qubit in range");
        }
        if mats.is_empty() {
            return 0;
        }
        if self.amps.len() <= PAR_GRAIN {
            gates::apply_1q_wall(&mut self.amps, mats);
            return 1;
        }
        let (low, high): (Vec<_>, Vec<_>) =
            mats.iter().copied().partition(|&(q, _)| (1usize << (q + 1)) <= PAR_GRAIN);
        let mut sweeps = 0;
        if !low.is_empty() {
            self.amps.par_chunks_mut(PAR_GRAIN).for_each(|chunk| gates::apply_1q_wall(chunk, &low));
            sweeps += 1;
        }
        for (q, m) in high {
            self.apply_1q(q, &m);
            sweeps += 1;
        }
        sweeps
    }

    /// Run a diagonal kernel over parallel chunks, passing each chunk its
    /// global base index.
    fn par_diag(&mut self, f: impl Fn(&mut [C64], u64) + Sync) {
        if self.amps.len() <= PAR_GRAIN {
            f(&mut self.amps, 0);
        } else {
            self.amps
                .par_chunks_mut(PAR_GRAIN)
                .enumerate()
                .for_each(|(i, chunk)| f(chunk, (i * PAR_GRAIN) as u64));
        }
    }

    /// L2-normalize (guards against drift in very deep circuits).
    pub fn renormalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        if n > 0.0 {
            let inv = 1.0 / n;
            self.amps.par_iter_mut().for_each(|a| *a = a.scale(inv));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-10;

    #[test]
    fn zero_state_is_normalized_delta() {
        let s = StateVector::zero_state(5);
        assert_eq!(s.num_qubits(), 5);
        assert!((s.norm_sqr() - 1.0).abs() < EPS);
        assert!((s.probability(0) - 1.0).abs() < EPS);
    }

    #[test]
    fn plus_state_is_uniform() {
        let s = StateVector::plus_state(4);
        let p = 1.0 / 16.0;
        for i in 0..16 {
            assert!((s.probability(i) - p).abs() < EPS);
        }
    }

    #[test]
    fn plus_state_matches_hadamards() {
        let mut s = StateVector::zero_state(3);
        for q in 0..3 {
            s.h(q);
        }
        let direct = StateVector::plus_state(3);
        for (a, b) in s.amplitudes().iter().zip(direct.amplitudes()) {
            assert!((*a - *b).norm_sqr() < EPS);
        }
    }

    #[test]
    fn gates_preserve_norm() {
        let mut s = StateVector::plus_state(6);
        s.rx(0, 0.31);
        s.ry(3, -1.7);
        s.rz(5, 2.2);
        s.rzz(1, 4, 0.9);
        s.cz(0, 5);
        s.cnot(2, 3);
        s.h(1);
        assert!((s.norm_sqr() - 1.0).abs() < EPS);
    }

    #[test]
    fn bell_state_probabilities() {
        let mut s = StateVector::zero_state(2);
        s.h(0);
        s.cnot(0, 1);
        assert!((s.probability(0) - 0.5).abs() < EPS);
        assert!((s.probability(3) - 0.5).abs() < EPS);
        assert!(s.probability(1) < EPS);
        assert!(s.probability(2) < EPS);
    }

    #[test]
    fn rzz_symmetric_in_qubit_order() {
        let mut a = StateVector::plus_state(3);
        let mut b = StateVector::plus_state(3);
        a.rx(0, 0.4);
        b.rx(0, 0.4);
        a.rzz(0, 2, 0.8);
        b.rzz(2, 0, 0.8);
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!((*x - *y).norm_sqr() < EPS);
        }
    }

    #[test]
    #[should_panic(expected = "qubit in range")]
    fn out_of_range_qubit_panics() {
        let mut s = StateVector::zero_state(2);
        s.h(2);
    }

    #[test]
    fn too_many_qubits_is_error() {
        assert!(matches!(
            StateVector::try_zero_state(40),
            Err(SimError::TooManyQubits { requested: 40, .. })
        ));
    }

    #[test]
    fn renormalize_restores_unit_norm() {
        let mut s = StateVector::plus_state(3);
        for a in s.amplitudes_mut() {
            *a = a.scale(3.0);
        }
        s.renormalize();
        assert!((s.norm_sqr() - 1.0).abs() < EPS);
    }

    /// Cross-check the block-parallel cnot against the sequential kernel
    /// on a register large enough (2^15 > PAR_GRAIN) to take the parallel
    /// path, covering low/low, low/high and high/high bit positions.
    #[test]
    fn parallel_cnot_matches_sequential() {
        let n = 15;
        let mut base = StateVector::plus_state(n);
        for q in 0..n {
            base.rx(q, 0.11 + 0.07 * q as f64);
        }
        for (c, t) in [(0, 1), (1, 0), (0, 14), (14, 0), (13, 14), (3, 9)] {
            let mut par = base.clone();
            par.cnot(c, t);
            let mut seq = base.clone();
            gates::apply_cnot(&mut seq.amps, c, t);
            assert_eq!(par.amps, seq.amps, "cnot({c},{t})");
        }
    }

    /// The fused diagonal sweep and the cache-blocked wall must match the
    /// per-gate paths bit-for-bit irrelevant of chunking — exercised on a
    /// register that actually splits into parallel chunks.
    #[test]
    fn fused_entry_points_match_per_gate_paths() {
        let n = 15;
        let mut base = StateVector::plus_state(n);
        for q in 0..n {
            base.ry(q, 0.2 + 0.03 * q as f64);
        }

        let terms = [
            gates::DiagTerm { mask: 0b11, coef: -0.35 },
            gates::DiagTerm { mask: 1 << 14, coef: 0.2 },
            gates::DiagTerm { mask: (1 << 3) | (1 << 13), coef: 0.9 },
        ];
        let mut fused = base.clone();
        fused.apply_diag_block(0.4, &terms);
        // Chunk invariance: the parallel chunked path must be bit-identical
        // to the same plan applied over the whole slice at once.
        let plan = gates::DiagPlan::new(0.4, &terms);
        let mut whole = base.clone();
        plan.apply(&mut whole.amps, 0);
        assert_eq!(fused.amps, whole.amps, "diag block vs whole-slice plan");
        // ...and numerically equal to the per-term reference kernel (the
        // table-driven plan sums phases in a different order, so this leg
        // is a tolerance check, not a bit check).
        let mut seq = base.clone();
        gates::apply_diag_terms(&mut seq.amps, 0, 0.4, &terms);
        for (a, b) in fused.amplitudes().iter().zip(seq.amplitudes()) {
            assert!((*a - *b).norm_sqr() < EPS, "diag block vs reference kernel");
        }

        // wall mixing low-stride (cache-blocked) and high-stride gates
        let wall =
            [(0usize, gates::h_matrix()), (7, gates::rx_matrix(0.31)), (14, gates::ry_matrix(1.1))];
        let mut walled = base.clone();
        let sweeps = walled.apply_1q_wall(&wall);
        assert_eq!(sweeps, 2, "one cache-blocked sweep + one high-qubit pass");
        let mut gated = base.clone();
        for (q, m) in &wall {
            gated.apply_1q(*q, m);
        }
        assert_eq!(walled.amps, gated.amps, "wall vs per-gate application");
    }

    /// Cross-check the parallel block decomposition against the sequential
    /// kernel on every qubit position.
    #[test]
    fn parallel_gate_matches_sequential_all_qubits() {
        for q in 0..6 {
            let mut par = StateVector::plus_state(6);
            par.rx(1, 0.3); // make it non-symmetric
            let mut seq = par.clone();
            let m = gates::rx_matrix(1.234);
            par.apply_1q(q, &m);
            gates::apply_1q(&mut seq.amps, q, &m);
            for (a, b) in par.amplitudes().iter().zip(seq.amplitudes()) {
                assert!((*a - *b).norm_sqr() < EPS, "qubit {q}");
            }
        }
    }
}
