//! # qq-sim — statevector quantum-circuit simulator
//!
//! A from-scratch statevector simulator standing in for the paper's
//! MPI-distributed Qiskit `aer` backend. Two storage engines share one set
//! of gate kernels:
//!
//! * [`state::StateVector`] — flat contiguous amplitudes, the fast path for
//!   the sub-graph sizes QAOA² actually dispatches (≤ ~24 qubits here);
//! * [`blocked::BlockedState`] — cache-blocked chunked amplitudes following
//!   Doi & Horii's technique used by `aer` on supercomputers: gates on low
//!   qubits stay chunk-local, gates on high qubits pair chunks and exchange
//!   them, which is exactly the MPI communication pattern of a
//!   rank-distributed simulation. Exchange volume is accounted in
//!   [`blocked::CommStats`] so the scaling experiments can report the
//!   communication the paper's 512-node runs would incur.
//!
//! Measurement sampling (the paper uses 4096 shots), exact diagonal-operator
//! expectations and top-k amplitude extraction live in [`measure`].
//!
//! ```
//! use qq_sim::prelude::*;
//!
//! let mut psi = StateVector::plus_state(3); // H^{⊗3}|000⟩
//! psi.rzz(0, 1, 0.7);
//! psi.rx(2, 0.3);
//! assert!((psi.norm_sqr() - 1.0).abs() < 1e-12);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod blocked;
pub mod complex;
pub mod gates;
pub mod measure;
pub mod state;

pub use blocked::{BlockedState, CommStats};
pub use complex::C64;
pub use gates::DiagTerm;
pub use state::StateVector;

/// Commonly used items.
pub mod prelude {
    pub use crate::blocked::{BlockedState, CommStats};
    pub use crate::complex::C64;
    pub use crate::gates::DiagTerm;
    pub use crate::measure::{expectation_diagonal, sample_counts, top_k_amplitudes};
    pub use crate::state::StateVector;
}

/// Errors raised by simulator entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Qubit index ≥ register width.
    QubitOutOfRange { qubit: usize, num_qubits: usize },
    /// A two-qubit gate was given twice the same qubit.
    DuplicateQubit { qubit: usize },
    /// Register too large to allocate.
    TooManyQubits { requested: usize, max: usize },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::QubitOutOfRange { qubit, num_qubits } => {
                write!(f, "qubit {qubit} out of range for {num_qubits}-qubit register")
            }
            SimError::DuplicateQubit { qubit } => {
                write!(f, "two-qubit gate applied twice to qubit {qubit}")
            }
            SimError::TooManyQubits { requested, max } => {
                write!(f, "{requested} qubits requested, at most {max} supported")
            }
        }
    }
}

impl std::error::Error for SimError {}
