//! Minimal `f64` complex arithmetic.
//!
//! The offline dependency set has no `num-complex`, and the simulator only
//! needs a handful of operations on a `Copy` pair of doubles — so this is
//! written by hand and kept small enough to inline everywhere.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Complex double: `re + i·im`. 16 bytes, `Copy`, layout-compatible with a
/// pair of `f64`s (amplitude arrays are tightly packed).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Construct from parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Real number as complex.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline(always)]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        C64 { re: c, im: s }
    }

    /// Squared magnitude `|z|²` — the measurement probability of an
    /// amplitude, so it is the hottest operation in the simulator.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline(always)]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        C64 { re: self.re, im: -self.im }
    }

    /// Multiply by a real scalar.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        C64 { re: self.re * s, im: self.im * s }
    }

    /// Argument (phase angle) in `(−π, π]`.
    #[inline(always)]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline(always)]
    fn add(self, o: C64) -> C64 {
        C64 { re: self.re + o.re, im: self.im + o.im }
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline(always)]
    fn sub(self, o: C64) -> C64 {
        C64 { re: self.re - o.re, im: self.im - o.im }
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, o: C64) -> C64 {
        C64 { re: self.re * o.re - self.im * o.im, im: self.re * o.im + self.im * o.re }
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline(always)]
    fn neg(self) -> C64 {
        C64 { re: -self.re, im: -self.im }
    }
}

impl AddAssign for C64 {
    #[inline(always)]
    fn add_assign(&mut self, o: C64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl SubAssign for C64 {
    #[inline(always)]
    fn sub_assign(&mut self, o: C64) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl MulAssign for C64 {
    #[inline(always)]
    fn mul_assign(&mut self, o: C64) {
        *self = *self * o;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, s: f64) -> C64 {
        self.scale(s)
    }
}

impl From<f64> for C64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl std::fmt::Display for C64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn multiplication_matches_definition() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -4.0);
        let p = a * b;
        assert!((p.re - 11.0).abs() < EPS);
        assert!((p.im - 2.0).abs() < EPS);
    }

    #[test]
    fn i_squared_is_minus_one() {
        let z = C64::I * C64::I;
        assert!((z.re + 1.0).abs() < EPS && z.im.abs() < EPS);
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let z = C64::cis(k as f64 * 0.41);
            assert!((z.norm_sqr() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn conjugate_times_self_is_norm() {
        let z = C64::new(-2.5, 1.5);
        let n = z * z.conj();
        assert!((n.re - z.norm_sqr()).abs() < EPS);
        assert!(n.im.abs() < EPS);
    }

    #[test]
    fn arg_quadrants() {
        assert!((C64::new(1.0, 0.0).arg()).abs() < EPS);
        assert!((C64::new(0.0, 1.0).arg() - std::f64::consts::FRAC_PI_2).abs() < EPS);
        assert!((C64::new(-1.0, 0.0).arg() - std::f64::consts::PI).abs() < EPS);
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let mut z = C64::new(0.5, -0.25);
        let w = C64::new(-1.0, 2.0);
        let sum = z + w;
        z += w;
        assert_eq!(z, sum);
        let mut y = C64::new(0.5, -0.25);
        let prod = y * w;
        y *= w;
        assert_eq!(y, prod);
    }
}
